"""Tests for the sketch-based Haar wavelet synopsis application."""

from __future__ import annotations

import numpy as np
import pytest

from repro.apps.wavelets import (
    HaarCoefficient,
    estimate_coefficient,
    estimate_top_synopsis,
    exact_coefficient,
    exact_haar_transform,
    inverse_haar_transform,
    reconstruct_from_synopsis,
)
from repro.generators import EH3
from repro.sketch.ams import SketchScheme
from repro.sketch.estimators import sketch_frequency_vector

BITS = 6
SIZE = 1 << BITS


@pytest.fixture
def piecewise_vector(rng):
    """A piecewise-constant vector: few large Haar coefficients."""
    vector = np.zeros(SIZE)
    vector[:16] = 10.0
    vector[16:32] = 2.0
    vector[48:] = 6.0
    vector += rng.normal(0, 0.2, size=SIZE)
    return vector


class TestExactTransform:
    def test_transform_count(self, piecewise_vector):
        coefficients = exact_haar_transform(piecewise_vector)
        assert len(coefficients) == SIZE  # N-1 details + 1 scaling

    def test_parseval(self, piecewise_vector):
        coefficients = exact_haar_transform(piecewise_vector)
        energy = sum(c.value**2 for c in coefficients)
        assert energy == pytest.approx(float((piecewise_vector**2).sum()))

    def test_perfect_reconstruction(self, piecewise_vector):
        coefficients = exact_haar_transform(piecewise_vector)
        rebuilt = inverse_haar_transform(coefficients, SIZE)
        assert np.allclose(rebuilt, piecewise_vector)

    def test_exact_coefficient_matches_transform(self, piecewise_vector):
        coefficients = {
            (c.level, c.offset): c.value
            for c in exact_haar_transform(piecewise_vector)
        }
        for (level, offset), value in coefficients.items():
            assert exact_coefficient(
                piecewise_vector, level, offset
            ) == pytest.approx(value)

    def test_non_power_of_two_rejected(self):
        with pytest.raises(ValueError):
            exact_haar_transform(np.zeros(12))
        with pytest.raises(ValueError):
            inverse_haar_transform([], 12)

    def test_constant_vector_has_only_scaling(self):
        coefficients = exact_haar_transform(np.full(16, 3.0))
        details = [c for c in coefficients if not c.is_scaling]
        assert all(c.value == pytest.approx(0.0) for c in details)
        scaling = [c for c in coefficients if c.is_scaling][0]
        assert scaling.value == pytest.approx(3.0 * 4)  # 3 * sqrt(16)


class TestSketchEstimates:
    def _scheme(self, source, medians=5, averages=300):
        return SketchScheme.from_generators(
            lambda src: EH3.from_source(BITS, src), medians, averages, source
        )

    def test_coefficient_estimates_close(self, piecewise_vector, source):
        scheme = self._scheme(source)
        data_sketch = sketch_frequency_vector(scheme, piecewise_vector)
        # The three coarsest detail coefficients plus the scaling one.
        targets = [(-1, 0), (BITS, 0), (BITS - 1, 0), (BITS - 1, 1)]
        norm = float(np.linalg.norm(piecewise_vector))
        for level, offset in targets:
            estimate = estimate_coefficient(
                data_sketch, scheme, level, offset, BITS
            )
            exact = exact_coefficient(piecewise_vector, level, offset)
            assert abs(estimate - exact) < 0.25 * norm

    def test_synopsis_beats_scaling_only(self, piecewise_vector, source):
        scheme = self._scheme(source, medians=7, averages=500)
        data_sketch = sketch_frequency_vector(scheme, piecewise_vector)
        synopsis = estimate_top_synopsis(
            data_sketch, scheme, BITS, keep=6, max_level=3
        )
        approx = reconstruct_from_synopsis(synopsis, BITS)
        scaling_only = reconstruct_from_synopsis(synopsis[:1], BITS)
        error_synopsis = float(((approx - piecewise_vector) ** 2).sum())
        error_flat = float(((scaling_only - piecewise_vector) ** 2).sum())
        assert error_synopsis < error_flat

    def test_synopsis_structure(self, piecewise_vector, source):
        scheme = self._scheme(source, medians=2, averages=20)
        data_sketch = sketch_frequency_vector(scheme, piecewise_vector)
        synopsis = estimate_top_synopsis(
            data_sketch, scheme, BITS, keep=4, max_level=4
        )
        assert synopsis[0].is_scaling
        assert len(synopsis) == 5
        magnitudes = [abs(c.value) for c in synopsis[1:]]
        assert magnitudes == sorted(magnitudes, reverse=True)

    def test_validation(self, source):
        scheme = self._scheme(source, medians=1, averages=1)
        data_sketch = scheme.sketch()
        with pytest.raises(ValueError):
            estimate_top_synopsis(data_sketch, scheme, BITS, keep=-1)
        with pytest.raises(ValueError):
            estimate_top_synopsis(
                data_sketch, scheme, BITS, keep=1, max_level=0
            )
        with pytest.raises(ValueError):
            estimate_coefficient(data_sketch, scheme, BITS + 1, 0, BITS)

    def test_inverse_transform_level_bounds(self):
        with pytest.raises(ValueError):
            inverse_haar_transform([HaarCoefficient(9, 0, 1.0)], 16)
