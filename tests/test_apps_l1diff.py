"""Tests for the L1-difference application (Application 2)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.apps.l1diff import (
    encode_entry_interval,
    estimate_l1_difference,
    l1_domain_bits,
    sketch_vector,
    update_vector_entry,
)
from repro.generators import EH3, SeedSource
from repro.sketch.ams import SketchScheme
from repro.stream.exact import l1_difference


def l1_scheme(source, index_bits=4, value_bits=6, medians=5, averages=300):
    bits = l1_domain_bits(index_bits, value_bits)
    return SketchScheme.from_generators(
        lambda src: EH3.from_source(bits, src), medians, averages, source
    )


class TestEncoding:
    def test_interval_layout(self):
        assert encode_entry_interval(0, 5, 4) == (0, 4)
        assert encode_entry_interval(3, 1, 4) == (48, 48)
        assert encode_entry_interval(2, 16, 4) == (32, 47)

    def test_zero_value_contributes_nothing(self):
        assert encode_entry_interval(7, 0, 4) is None

    def test_value_bounds(self):
        with pytest.raises(ValueError):
            encode_entry_interval(0, 17, 4)
        with pytest.raises(ValueError):
            encode_entry_interval(0, -1, 4)

    def test_domain_bits(self):
        assert l1_domain_bits(10, 6) == 16
        with pytest.raises(ValueError):
            l1_domain_bits(0, 4)

    def test_intervals_disjoint_across_indices(self):
        spans = [encode_entry_interval(i, 1 << 4, 4) for i in range(8)]
        for (a1, b1), (a2, b2) in zip(spans, spans[1:]):
            assert b1 < a2


class TestSketching:
    def test_entry_updates_match_vector_sketch(self, source: SeedSource):
        scheme = l1_scheme(source, medians=2, averages=3)
        vector = np.array([3, 0, 7, 1] + [0] * 12)
        whole = sketch_vector(scheme, vector, value_bits=6)
        streamed = scheme.sketch()
        for index, value in enumerate(vector):
            update_vector_entry(streamed, index, int(value), value_bits=6)
        assert np.allclose(whole.values(), streamed.values())

    def test_identical_vectors_give_zero(self, source: SeedSource):
        """X_a - X_b is identically zero for equal inputs: estimate 0."""
        scheme = l1_scheme(source, medians=2, averages=3)
        vector = np.array([5, 2, 0, 9] + [0] * 12)
        a = sketch_vector(scheme, vector, value_bits=6)
        b = sketch_vector(scheme, vector, value_bits=6)
        assert estimate_l1_difference(a, b) == 0.0


class TestEstimation:
    def test_l1_estimate_converges(self, source: SeedSource):
        rng = np.random.default_rng(23)
        vector_a = rng.integers(0, 40, size=16)
        vector_b = rng.integers(0, 40, size=16)
        truth = l1_difference(vector_a, vector_b)
        scheme = l1_scheme(source, medians=7, averages=600)
        a = sketch_vector(scheme, vector_a, value_bits=6)
        b = sketch_vector(scheme, vector_b, value_bits=6)
        estimate = estimate_l1_difference(a, b)
        assert estimate == pytest.approx(truth, rel=0.5)

    def test_single_coordinate_difference_is_exactish(self, source: SeedSource):
        """Vectors differing in one coordinate by d: L1 = d."""
        scheme = l1_scheme(source, medians=7, averages=600)
        vector_a = np.zeros(16, dtype=int)
        vector_b = np.zeros(16, dtype=int)
        vector_a[5] = 20
        vector_b[5] = 12
        a = sketch_vector(scheme, vector_a, value_bits=6)
        b = sketch_vector(scheme, vector_b, value_bits=6)
        estimate = estimate_l1_difference(a, b)
        # The difference sketch holds exactly the 8 tuples (5, 12..19);
        # the self-join of 8 singletons is 8.
        assert estimate == pytest.approx(8.0, abs=4.0)

    def test_order_independence(self, source: SeedSource):
        """Streaming order cannot matter (sketches are linear)."""
        scheme = l1_scheme(source, medians=2, averages=3)
        forward = scheme.sketch()
        backward = scheme.sketch()
        entries = [(0, 3), (2, 9), (7, 1)]
        for index, value in entries:
            update_vector_entry(forward, index, value, value_bits=6)
        for index, value in reversed(entries):
            update_vector_entry(backward, index, value, value_bits=6)
        assert np.allclose(forward.values(), backward.values())
