"""Unit tests for the ablation experiment runners (tiny parameters)."""

from __future__ import annotations


from repro.experiments.ablations import (
    run_ablation_adversarial,
    run_ablation_allocation,
    run_ablation_covers,
    run_ablation_cube,
    run_ablation_h_function,
    run_ablations,
)


class TestIndividualRunners:
    def test_h_function_tiny(self):
        result = run_ablation_h_function(
            domain_bits=8, tuples=5_000, averages=10, trials=4
        )
        errors = dict(zip(result.column("Scheme"), result.column("Error")))
        assert set(errors) == {"EH3", "BCH3", "BCH5"}
        assert all(v >= 0 for v in errors.values())

    def test_adversarial_tiny(self):
        result = run_ablation_adversarial(
            domain_bits=8, tuples=5_000, averages=10, trials=4
        )
        assert len(result.rows) == 3

    def test_cube_tiny(self):
        result = run_ablation_cube(
            domain_bits=8, tuples=5_000, averages=10, trials=4
        )
        assert len(result.rows) == 2

    def test_covers_counts(self):
        result = run_ablation_covers(domain_bits=12, intervals=100)
        pieces = dict(
            zip(result.column("Cover"), result.column("Total pieces"))
        )
        assert pieces["binary"] <= pieces["quaternary"] <= 2 * pieces["binary"]

    def test_allocation_partitions_budget(self):
        result = run_ablation_allocation(
            domain_bits=8, tuples=5_000, total_counters=24, trials=4
        )
        for medians, averages, __ in result.rows:
            assert medians * averages <= 24
            assert averages == 24 // medians


class TestCombinedRunner:
    def test_combined_table_collects_all_studies(self):
        # Tiny parameters are not exposed through run_ablations, so this
        # is the one intentionally slower unit test (~10 s).
        result = run_ablations()
        studies = set(result.column("Study"))
        assert len(studies) == 5
        # Allocation variants flatten their two leading columns.
        variants = result.column("Variant")
        assert any(" x " in str(v) for v in variants)
