"""Tests for the Section 5.3.3 adversarial workload construction."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.bits import adjacent_pair_or_fold
from repro.sketch.variance import var_bch3_exact, var_bch5, var_eh3_exact
from repro.workloads.adversarial import (
    adverse_frequency_vector,
    adverse_support,
    is_pair_aligned,
)


class TestSupportStructure:
    def test_size_is_2_to_pairs(self):
        for bits in (2, 4, 6, 8):
            assert len(adverse_support(bits)) == 1 << (bits // 2)

    def test_membership_predicate(self):
        support = set(int(i) for i in adverse_support(6))
        for i in range(64):
            assert is_pair_aligned(i, 6) == (i in support)

    def test_closed_under_xor(self):
        support = set(int(i) for i in adverse_support(6))
        for a in support:
            for b in support:
                assert a ^ b in support

    def test_h_constant_parity_on_quadruples(self):
        """h(i)^h(j)^h(k)^h(i^j^k) == 0 for support members."""
        support = [int(i) for i in adverse_support(6)]
        h = lambda x: adjacent_pair_or_fold(x, 6)  # noqa: E731
        for i in support[:8]:
            for j in support[:8]:
                for k in support[:8]:
                    l = i ^ j ^ k
                    assert h(i) ^ h(j) ^ h(k) ^ h(l) == 0

    def test_odd_width_rejected(self):
        with pytest.raises(ValueError):
            adverse_support(5)


class TestVarianceCollapse:
    def test_eh3_equals_bch3_on_adverse_data(self):
        """The headline property: EH3's variance == BCH3's exactly."""
        r = adverse_frequency_vector(4, 100)
        assert var_eh3_exact(r, r, 4) == pytest.approx(var_bch3_exact(r, r))

    def test_eh3_worse_than_bch5_on_adverse_data(self):
        r = adverse_frequency_vector(4, 100)
        assert var_eh3_exact(r, r, 4) > 1.5 * var_bch5(r, r)

    def test_jittered_masses_keep_the_property(self, rng):
        r = adverse_frequency_vector(4, 100, rng)
        assert var_eh3_exact(r, r, 4) == pytest.approx(var_bch3_exact(r, r))

    def test_mass_conserved(self, rng):
        r = adverse_frequency_vector(6, 500, rng)
        assert r.sum() == pytest.approx(500)
        off_support = np.ones(64, dtype=bool)
        off_support[adverse_support(6)] = False
        assert (r[off_support] == 0).all()
