"""Estimate-calibration monitoring: coverage math, incidents, workload.

The monitor's contract: truth inside the z-widened one-sigma band is a
hit, coverage below the floor (after ``min_samples``) records exactly
one :class:`Incident` per dip, and the Zipf ground-truth workload
populates the ``query.calibration.*`` instruments deterministically.
"""

from __future__ import annotations

import pytest

from repro import obs
from repro.obs.calibration import (
    ERROR_EDGES,
    CalibrationMonitor,
    coverage_from_snapshot,
    run_calibration_workload,
)
from repro.obs.metrics import MetricsRegistry
from repro.query.types import Estimate

SEED = 20060627


@pytest.fixture
def fresh_obs():
    previous_registry = obs.set_registry(MetricsRegistry())
    previous_enabled = obs.set_enabled(True)
    previous_collector = obs.set_trace_collector(None)
    try:
        yield obs.registry()
    finally:
        obs.set_registry(previous_registry)
        obs.set_enabled(previous_enabled)
        obs.set_trace_collector(previous_collector)


def _estimate(value: float, half_sigma: float) -> Estimate:
    """An estimate whose one-sigma band is ``value +- half_sigma``."""
    return Estimate(
        value=value, ci_low=value - half_sigma, ci_high=value + half_sigma
    )


class TestMonitorValidation:
    def test_floor_above_nominal_rejected(self) -> None:
        with pytest.raises(ValueError, match="floor"):
            CalibrationMonitor(nominal=0.9, floor=0.95)

    def test_bad_z_and_min_samples_rejected(self) -> None:
        with pytest.raises(ValueError, match="z must be positive"):
            CalibrationMonitor(z=0.0)
        with pytest.raises(ValueError, match="min_samples"):
            CalibrationMonitor(min_samples=0)


class TestCoverageMath:
    def test_truth_inside_widened_band_is_hit(self, fresh_obs) -> None:
        monitor = CalibrationMonitor(z=1.96)
        # One-sigma half-width 10 -> the 1.96-sigma band reaches +-19.6.
        assert monitor.observe("eh3", 119.0, _estimate(100.0, 10.0))
        assert not monitor.observe("eh3", 120.0, _estimate(100.0, 10.0))
        assert monitor.coverage("eh3") == pytest.approx(0.5)

    def test_boundary_is_covered(self, fresh_obs) -> None:
        monitor = CalibrationMonitor(z=2.0)
        assert monitor.observe("eh3", 120.0, _estimate(100.0, 10.0))

    def test_bare_float_counts_as_miss(self, fresh_obs) -> None:
        monitor = CalibrationMonitor()
        assert not monitor.observe("eh3", 100.0, 99.0)
        assert monitor.observe("eh3", 100.0, 100.0)  # exactly right

    def test_idle_coverage_is_one(self, fresh_obs) -> None:
        monitor = CalibrationMonitor()
        assert monitor.coverage() == 1.0
        assert monitor.coverage("never-seen") == 1.0

    def test_instruments_populated(self, fresh_obs) -> None:
        monitor = CalibrationMonitor()
        monitor.observe("eh3", 100.0, _estimate(101.0, 5.0))
        monitor.observe("eh3", 100.0, _estimate(500.0, 1.0))
        snapshot = obs.snapshot()
        assert snapshot["query.calibration.samples_total"]["value"] == 2.0
        assert snapshot["query.calibration.eh3.samples_total"]["value"] == 2.0
        assert snapshot["query.calibration.ci_hits_total"]["value"] == 1.0
        assert snapshot["query.calibration.ci_misses_total"]["value"] == 1.0
        assert snapshot["query.calibration.eh3.coverage"]["value"] == 0.5
        assert snapshot["query.calibration.coverage"]["value"] == 0.5
        errors = snapshot["query.calibration.realized_relative_error"]
        assert errors["count"] == 2
        assert tuple(errors["edges"]) == ERROR_EDGES


class TestIncidents:
    def test_incident_fires_once_below_floor(self, fresh_obs) -> None:
        monitor = CalibrationMonitor(floor=0.90, min_samples=10)
        # Tiny CIs far from truth: every observation is a miss.
        for _ in range(15):
            monitor.observe("bch3", 1000.0, _estimate(1.0, 0.001))
        assert len(monitor.incidents) == 1
        incident = monitor.incidents[0]
        assert incident.operation == "calibration"
        assert incident.relation == "bch3"
        assert "below floor" in incident.error
        assert not incident.recovered
        state = obs.snapshot()["query.calibration.incidents_total"]
        assert state["value"] == 1.0

    def test_no_incident_before_min_samples(self, fresh_obs) -> None:
        monitor = CalibrationMonitor(floor=0.90, min_samples=50)
        for _ in range(49):
            monitor.observe("bch3", 1000.0, _estimate(1.0, 0.001))
        assert len(monitor.incidents) == 0

    def test_flag_rearms_after_recovery(self, fresh_obs) -> None:
        monitor = CalibrationMonitor(floor=0.5, min_samples=4)
        miss = lambda: monitor.observe("eh3", 1000.0, _estimate(1.0, 0.001))
        hit = lambda: monitor.observe("eh3", 100.0, _estimate(100.0, 50.0))
        for _ in range(4):
            miss()  # coverage 0.0 < 0.5 -> first incident
        assert len(monitor.incidents) == 1
        for _ in range(8):
            hit()  # coverage recovers to 8/12 >= 0.5 -> re-armed
        assert monitor.coverage("eh3") > 0.5
        for _ in range(8):
            miss()  # coverage dips to 8/20 < 0.5 -> second incident
        assert len(monitor.incidents) == 2

    def test_per_scheme_isolation(self, fresh_obs) -> None:
        monitor = CalibrationMonitor(floor=0.9, min_samples=5)
        for _ in range(10):
            monitor.observe("bad", 1000.0, _estimate(1.0, 0.001))
            monitor.observe("good", 100.0, _estimate(100.0, 50.0))
        assert len(monitor.incidents) == 1
        assert monitor.incidents[0].relation == "bad"
        report = monitor.report()
        assert report["bad"]["flagged"] is True
        assert report["good"]["flagged"] is False
        assert report["good"]["coverage"] == 1.0


class TestWorkload:
    def test_zipf_workload_tracks_per_scheme(self, fresh_obs) -> None:
        monitor = run_calibration_workload(
            SEED,
            schemes=("eh3", "bch3"),
            medians=3,
            averages=8,
            domain_bits=8,
            points=800,
            range_queries=3,
            point_queries=3,
        )
        report = monitor.report()
        assert set(report) == {"eh3", "bch3"}
        # 3 point + 3 range + 1 self-join comparisons per scheme.
        assert all(entry["samples"] == 7 for entry in report.values())
        snapshot = obs.snapshot()
        assert snapshot["query.calibration.samples_total"]["value"] == 14.0
        assert snapshot["query.calibration.workload.seconds"]["count"] == 1

    def test_workload_is_deterministic(self, fresh_obs) -> None:
        kwargs = dict(
            schemes=("eh3",),
            medians=3,
            averages=8,
            domain_bits=8,
            points=800,
            range_queries=2,
            point_queries=2,
        )
        first = run_calibration_workload(SEED, **kwargs).report()
        second = run_calibration_workload(SEED, **kwargs).report()
        assert first == second

    def test_supplied_monitor_accumulates(self, fresh_obs) -> None:
        monitor = CalibrationMonitor()
        run_calibration_workload(
            SEED,
            schemes=("eh3",),
            medians=3,
            averages=8,
            domain_bits=8,
            points=400,
            range_queries=1,
            point_queries=1,
            monitor=monitor,
        )
        assert monitor.report()["eh3"]["samples"] == 3


class TestSnapshotCoverage:
    def test_reads_hit_and_miss_counters(self, fresh_obs) -> None:
        monitor = CalibrationMonitor()
        monitor.observe("eh3", 100.0, _estimate(101.0, 5.0))
        monitor.observe("eh3", 100.0, _estimate(500.0, 1.0))
        assert coverage_from_snapshot(obs.snapshot()) == pytest.approx(0.5)

    def test_empty_snapshot_is_none(self) -> None:
        assert coverage_from_snapshot({}) is None

    def test_hits_only_snapshot(self) -> None:
        snapshot = {
            "query.calibration.ci_hits_total": {
                "type": "counter",
                "value": 4.0,
            }
        }
        assert coverage_from_snapshot(snapshot) == 1.0
