"""The fault-injection harness, importable from the test-suite.

The injectors and the scenario suite live in :mod:`repro.stream.faults`
(library code, so the ``repro-experiments faults`` CLI can run them from
an installed package); this module is the test-suite's front door to the
same machinery.  ``tests/test_faults.py`` drives each scenario as a
pytest case, and other test modules import the low-level injectors
(:func:`truncate_tail`, :func:`corrupt_byte`, :func:`breaking_plane`,
:func:`write_partial_snapshot`) from here to compose their own failure
shapes.
"""

from __future__ import annotations

from repro.stream.faults import (
    ScenarioResult,
    breaking_plane,
    corrupt_byte,
    run_fault_suite,
    truncate_tail,
    wal_segments,
    write_partial_snapshot,
)

__all__ = [
    "ScenarioResult",
    "breaking_plane",
    "corrupt_byte",
    "run_fault_suite",
    "truncate_tail",
    "wal_segments",
    "write_partial_snapshot",
]
