"""Tests for the workload generators (Zipf, regions, spatial)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.workloads.regions import generate_region_dataset
from repro.workloads.spatial import (
    DATASET_SPECS,
    SegmentDataset,
    generate_segments,
    landc,
    lando,
    soil,
)
from repro.workloads.zipf import (
    sample_zipf_counts,
    zipf_frequency_vector,
    zipf_weights,
)


class TestZipf:
    def test_weights_normalized(self):
        for z in (0.0, 0.5, 1.0, 3.0):
            assert zipf_weights(100, z).sum() == pytest.approx(1.0)

    def test_zero_coefficient_is_uniform(self):
        weights = zipf_weights(64, 0.0)
        assert np.allclose(weights, 1.0 / 64)

    def test_monotone_decreasing_in_rank(self):
        weights = zipf_weights(100, 1.5)
        assert (np.diff(weights) <= 0).all()

    def test_skew_grows_with_z(self):
        top_share = [zipf_weights(1000, z)[0] for z in (0.5, 1.0, 2.0, 4.0)]
        assert top_share == sorted(top_share)

    def test_frequency_vector_total_mass(self, rng):
        freq = zipf_frequency_vector(256, 10_000, 1.2, rng=rng)
        assert freq.sum() == pytest.approx(10_000)

    def test_permute_requires_rng(self):
        with pytest.raises(ValueError):
            zipf_frequency_vector(16, 100, 1.0, rng=None, permute=True)

    def test_unpermuted_is_rank_ordered(self):
        freq = zipf_frequency_vector(16, 100, 1.0, permute=False)
        assert (np.diff(freq) <= 0).all()

    def test_sampled_counts_sum_exactly(self, rng):
        counts = sample_zipf_counts(128, 5_000, 2.0, rng)
        assert counts.sum() == 5_000
        assert (counts >= 0).all()

    def test_validation(self):
        with pytest.raises(ValueError):
            zipf_weights(0, 1.0)
        with pytest.raises(ValueError):
            zipf_weights(10, -1.0)


class TestRegions:
    def test_point_budget_respected(self, rng):
        dataset = generate_region_dataset(
            domain_bits=(8, 8), regions=5, total_points=2_000, rng=rng
        )
        assert len(dataset.points) == 2_000
        assert sum(r.points for r in dataset.regions) == 2_000

    def test_points_inside_their_domain(self, rng):
        dataset = generate_region_dataset(
            domain_bits=(8, 8), regions=5, total_points=1_000, rng=rng
        )
        assert dataset.points.min() >= 0
        assert dataset.points.max() < 256

    def test_points_fall_inside_some_region(self, rng):
        dataset = generate_region_dataset(
            domain_bits=(8, 8), regions=3, total_points=500, rng=rng
        )
        for x, y in dataset.points[:100]:
            inside = any(
                r.bounds[0][0] <= x <= r.bounds[0][1]
                and r.bounds[1][0] <= y <= r.bounds[1][1]
                for r in dataset.regions
            )
            assert inside

    def test_frequency_matrix_totals(self, rng):
        dataset = generate_region_dataset(
            domain_bits=(6, 6), regions=3, total_points=300, rng=rng,
            min_side=4, max_side=16,
        )
        matrix = dataset.frequency_matrix()
        assert matrix.shape == (64, 64)
        assert matrix.sum() == 300

    def test_skew_concentrates_points(self, rng):
        flat = generate_region_dataset(
            domain_bits=(8, 8), regions=1, total_points=5_000,
            within_zipf=0.0, rng=np.random.default_rng(1),
        )
        skewed = generate_region_dataset(
            domain_bits=(8, 8), regions=1, total_points=5_000,
            within_zipf=2.5, rng=np.random.default_rng(1),
        )

        def top_cell(dataset):
            __, counts = np.unique(dataset.points, axis=0, return_counts=True)
            return counts.max()

        assert top_cell(skewed) > 4 * top_cell(flat)

    def test_validation(self, rng):
        with pytest.raises(ValueError):
            generate_region_dataset(regions=0, rng=rng)


class TestSpatial:
    def test_paper_object_counts(self):
        assert len(lando(16)) == DATASET_SPECS["LANDO"][0]
        assert len(landc(16)) == DATASET_SPECS["LANDC"][0]
        assert len(soil(16)) == DATASET_SPECS["SOIL"][0]

    def test_reproducible(self):
        a = lando(16)
        b = lando(16)
        assert np.array_equal(a.segments, b.segments)

    def test_segments_valid(self):
        dataset = landc(16)
        assert (dataset.segments[:, 0] <= dataset.segments[:, 1]).all()
        assert dataset.segments.min() >= 0
        assert dataset.segments.max() < (1 << 16)

    def test_left_endpoints(self):
        dataset = soil(16)
        assert np.array_equal(dataset.left_endpoints(), dataset.segments[:, 0])

    def test_coverage_vector_total(self):
        dataset = generate_segments(
            "TINY", 50, 10, 4, 3.0, np.random.default_rng(5)
        )
        coverage = dataset.coverage_vector()
        lengths = dataset.segments[:, 1] - dataset.segments[:, 0] + 1
        assert coverage.sum() == lengths.sum()

    def test_heavy_tailed_lengths(self):
        dataset = lando(20)
        lengths = dataset.segments[:, 1] - dataset.segments[:, 0] + 1
        # Log-normal lengths: the largest parcel dwarfs the median one.
        assert lengths.max() > 8 * np.median(lengths)

    def test_layers_share_geography(self):
        """All three layers hot-spot in the same places (same state)."""
        a = lando(16).coverage_vector()
        b = landc(16).coverage_vector()
        correlation = np.corrcoef(a, b)[0, 1]
        assert correlation > 0.2

    def test_invalid_segments_rejected(self):
        with pytest.raises(ValueError):
            SegmentDataset("BAD", 4, np.array([[5, 3]]))
        with pytest.raises(ValueError):
            SegmentDataset("BAD", 4, np.array([[0, 16]]))
        with pytest.raises(ValueError):
            SegmentDataset("BAD", 4, np.array([1, 2, 3]))

    def test_generator_validation(self):
        with pytest.raises(ValueError):
            generate_segments("X", 0, 10, 2, 3.0, np.random.default_rng(1))
