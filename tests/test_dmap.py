"""Tests for the DMAP dyadic-mapping baseline (paper Section 5.2)."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.dyadic import interval_from_id
from repro.generators import BCH5, EH3, SeedSource
from repro.rangesum.dmap import DMAP, DyadicMapper


class TestDyadicMapper:
    def test_id_counts(self):
        mapper = DyadicMapper(8)
        assert len(mapper.point_ids(13)) == 9  # n + 1
        assert len(mapper.interval_ids(0, 255)) == 1

    def test_point_ids_decode_to_containing_intervals(self):
        mapper = DyadicMapper(6)
        point = 45
        for identifier in mapper.point_ids(point):
            assert interval_from_id(identifier, 6).contains(point)

    def test_interval_ids_decode_to_cover(self):
        mapper = DyadicMapper(8)
        alpha, beta = 37, 200
        covered = []
        for identifier in mapper.interval_ids(alpha, beta):
            piece = interval_from_id(identifier, 8)
            covered.extend(piece.points())
        assert sorted(covered) == list(range(alpha, beta + 1))

    @given(st.data())
    @settings(max_examples=200)
    def test_join_identity(self, data):
        """The DMAP identity: |cover(interval) ∩ containing(point)| = [p in I]."""
        n = data.draw(st.integers(min_value=1, max_value=12))
        mapper = DyadicMapper(n)
        alpha = data.draw(st.integers(min_value=0, max_value=(1 << n) - 1))
        beta = data.draw(st.integers(min_value=alpha, max_value=(1 << n) - 1))
        point = data.draw(st.integers(min_value=0, max_value=(1 << n) - 1))
        common = set(mapper.interval_ids(alpha, beta)) & set(
            mapper.point_ids(point)
        )
        assert len(common) == (1 if alpha <= point <= beta else 0)

    def test_bounds_checked(self):
        mapper = DyadicMapper(4)
        with pytest.raises(ValueError):
            mapper.interval_ids(0, 16)
        with pytest.raises(ValueError):
            mapper.point_ids(16)
        with pytest.raises(ValueError):
            DyadicMapper(0)


class TestDMAPSketching:
    def test_generator_domain_must_cover_ids(self, source: SeedSource):
        generator = EH3.from_source(8, source)
        with pytest.raises(ValueError):
            DMAP(8, generator)  # ids need 9 bits
        DMAP(7, generator)  # fine

    def test_from_source_uses_bch5(self, source: SeedSource):
        dmap = DMAP.from_source(10, source)
        assert isinstance(dmap.generator, BCH5)
        assert dmap.generator.domain_bits == 11
        assert dmap.domain_bits == 10

    def test_contributions_sum_generator_values(self, source: SeedSource):
        dmap = DMAP.from_source(6, source)
        point = 33
        expected = sum(
            dmap.generator.value(i) for i in dmap.mapper.point_ids(point)
        )
        assert dmap.point_contribution(point) == expected

        alpha, beta = 5, 48
        expected = sum(
            dmap.generator.value(i)
            for i in dmap.mapper.interval_ids(alpha, beta)
        )
        assert dmap.interval_contribution(alpha, beta) == expected

    def test_unbiased_join_estimate(self, source: SeedSource):
        """E[interval_contribution * point_contribution] = [point in interval].

        Averaged over many independent DMAP seeds the product must approach
        1 for contained points and 0 for outside points.
        """
        n = 6
        alpha, beta = 10, 40
        inside, outside = 25, 50
        trials = 4000
        sums = {inside: 0.0, outside: 0.0}
        for _ in range(trials):
            dmap = DMAP.from_source(n, source)
            interval_part = dmap.interval_contribution(alpha, beta)
            for point in (inside, outside):
                sums[point] += interval_part * dmap.point_contribution(point)
        assert abs(sums[inside] / trials - 1.0) < 0.25
        assert abs(sums[outside] / trials) < 0.25
