"""Tests: bulk vectorized sketch updates equal their scalar counterparts."""

from __future__ import annotations

import numpy as np
import pytest

from repro.generators import BCH3, EH3
from repro.rangesum.dmap import DMAP, DyadicMapper
from repro.rangesum.multidim import ProductDMAP, ProductGenerator
from repro.sketch.ams import SketchScheme
from repro.sketch.atomic import (
    DMAPChannel,
    GeneratorChannel,
    ProductChannel,
    ProductDMAPChannel,
)
from repro.sketch.bulk import (
    bch3_bulk_interval_update,
    bulk_point_update,
    decompose_binary,
    decompose_quaternary,
    dmap_bulk_id_update,
    dmap_ids_for_intervals,
    dmap_ids_for_points,
    eh3_bulk_interval_update,
    product_bulk_point_update,
    product_dmap_bulk_point_update,
)

BITS = 10


@pytest.fixture
def intervals(rng):
    lows = rng.integers(0, 1 << BITS, size=30)
    highs = rng.integers(0, 1 << BITS, size=30)
    return [(int(min(a, b)), int(max(a, b))) for a, b in zip(lows, highs)]


def eh3_scheme(source):
    return SketchScheme.from_factory(
        lambda src: GeneratorChannel(EH3.from_source(BITS, src)), 2, 3, source
    )


def bch3_scheme(source):
    return SketchScheme.from_factory(
        lambda src: GeneratorChannel(BCH3.from_source(BITS, src)), 2, 3, source
    )


def dmap_scheme(source):
    return SketchScheme.from_factory(
        lambda src: DMAPChannel(DMAP.from_source(BITS, src)), 2, 3, source
    )


class TestDecomposition:
    def test_quaternary_piece_arrays(self):
        pieces = decompose_quaternary([(124, 197)])
        assert len(pieces.lows) == 5
        assert list(pieces.half_levels) == [1, 3, 1, 0, 0]
        assert list(pieces.weights) == [1.0] * 5

    def test_weights_repeat_per_piece(self):
        pieces = decompose_binary([(0, 3), (5, 5)], weights=[2.0, 7.0])
        assert list(pieces.weights) == [2.0, 7.0]

    def test_weight_count_checked(self):
        with pytest.raises(ValueError):
            decompose_binary([(0, 3)], weights=[1.0, 2.0])


class TestEH3Bulk:
    def test_matches_scalar_updates(self, source, intervals):
        scheme = eh3_scheme(source)
        bulk = scheme.sketch()
        eh3_bulk_interval_update(bulk, decompose_quaternary(intervals))
        scalar = scheme.sketch()
        for bounds in intervals:
            scalar.update_interval(bounds)
        assert np.allclose(bulk.values(), scalar.values())

    def test_weighted(self, source, intervals):
        weights = [float(k + 1) for k in range(len(intervals))]
        scheme = eh3_scheme(source)
        bulk = scheme.sketch()
        eh3_bulk_interval_update(
            bulk, decompose_quaternary(intervals, weights)
        )
        scalar = scheme.sketch()
        for bounds, w in zip(intervals, weights):
            scalar.update_interval(bounds, w)
        assert np.allclose(bulk.values(), scalar.values())

    def test_wrong_channel_rejected(self, source, intervals):
        scheme = bch3_scheme(source)
        with pytest.raises(TypeError):
            eh3_bulk_interval_update(
                scheme.sketch(), decompose_quaternary(intervals)
            )


class TestBCH3Bulk:
    def test_matches_scalar_updates(self, source, intervals):
        scheme = bch3_scheme(source)
        bulk = scheme.sketch()
        bch3_bulk_interval_update(bulk, decompose_binary(intervals))
        scalar = scheme.sketch()
        for bounds in intervals:
            scalar.update_interval(bounds)
        assert np.allclose(bulk.values(), scalar.values())

    def test_wrong_channel_rejected(self, source, intervals):
        scheme = eh3_scheme(source)
        with pytest.raises(TypeError):
            bch3_bulk_interval_update(
                scheme.sketch(), decompose_binary(intervals)
            )


class TestPointBulk:
    def test_matches_scalar(self, source, rng):
        scheme = eh3_scheme(source)
        points = rng.integers(0, 1 << BITS, size=50).astype(np.uint64)
        bulk = scheme.sketch()
        bulk_point_update(bulk, points)
        scalar = scheme.sketch()
        for p in points:
            scalar.update_point(int(p))
        assert np.allclose(bulk.values(), scalar.values())

    def test_weighted(self, source, rng):
        scheme = eh3_scheme(source)
        points = rng.integers(0, 1 << BITS, size=20).astype(np.uint64)
        weights = rng.normal(size=20)
        bulk = scheme.sketch()
        bulk_point_update(bulk, points, weights)
        scalar = scheme.sketch()
        for p, w in zip(points, weights):
            scalar.update_point(int(p), float(w))
        assert np.allclose(bulk.values(), scalar.values())


class TestDMAPBulk:
    def test_interval_ids_match_scalar(self, source, intervals):
        scheme = dmap_scheme(source)
        mapper = DyadicMapper(BITS)
        ids, weights = dmap_ids_for_intervals(mapper, intervals)
        bulk = scheme.sketch()
        dmap_bulk_id_update(bulk, ids, weights)
        scalar = scheme.sketch()
        for bounds in intervals:
            scalar.update_interval(bounds)
        assert np.allclose(bulk.values(), scalar.values())

    def test_point_ids_match_scalar(self, source, rng):
        scheme = dmap_scheme(source)
        mapper = DyadicMapper(BITS)
        points = rng.integers(0, 1 << BITS, size=40).astype(np.uint64)
        ids, weights = dmap_ids_for_points(mapper, points)
        bulk = scheme.sketch()
        dmap_bulk_id_update(bulk, ids, weights)
        scalar = scheme.sketch()
        for p in points:
            scalar.update_point(int(p))
        assert np.allclose(bulk.values(), scalar.values())

    def test_point_ids_weighted(self, source, rng):
        mapper = DyadicMapper(BITS)
        points = rng.integers(0, 1 << BITS, size=10).astype(np.uint64)
        weights = rng.normal(size=10)
        ids, flat = dmap_ids_for_points(mapper, points, weights)
        assert len(ids) == 10 * (BITS + 1)
        assert len(flat) == len(ids)

    def test_wrong_channel_rejected(self, source):
        scheme = eh3_scheme(source)
        with pytest.raises(TypeError):
            dmap_bulk_id_update(
                scheme.sketch(), np.array([1], dtype=np.uint64), np.ones(1)
            )


class TestProductBulk:
    def test_product_points_match_scalar(self, source, rng):
        scheme = SketchScheme.from_factory(
            lambda src: ProductChannel(ProductGenerator.eh3((6, 6), src)),
            2,
            2,
            source,
        )
        points = rng.integers(0, 64, size=(30, 2))
        bulk = scheme.sketch()
        product_bulk_point_update(bulk, points)
        scalar = scheme.sketch()
        for x, y in points:
            scalar.update_point((int(x), int(y)))
        assert np.allclose(bulk.values(), scalar.values())

    def test_product_dmap_points_match_scalar(self, source, rng):
        scheme = SketchScheme.from_factory(
            lambda src: ProductDMAPChannel(ProductDMAP.from_source((6, 6), src)),
            2,
            2,
            source,
        )
        points = rng.integers(0, 64, size=(15, 2))
        bulk = scheme.sketch()
        product_dmap_bulk_point_update(bulk, points)
        scalar = scheme.sketch()
        for x, y in points:
            scalar.update_point((int(x), int(y)))
        assert np.allclose(bulk.values(), scalar.values())

    def test_dimension_mismatch_rejected(self, source, rng):
        scheme = SketchScheme.from_factory(
            lambda src: ProductChannel(ProductGenerator.eh3((6, 6), src)),
            1,
            1,
            source,
        )
        with pytest.raises(ValueError):
            product_bulk_point_update(
                scheme.sketch(), rng.integers(0, 64, size=(5, 3))
            )


class TestConsolidation:
    """Duplicate-piece merging must work over the full 64-bit key range."""

    def test_high_lows_still_consolidate(self):
        # Regression: the old packed-key dedup ((low << 6) | level) wrapped
        # once low reached 2^57 and silently stopped merging duplicates.
        from repro.sketch.bulk import _consolidate_pieces

        low = np.uint64((1 << 61) + 64)
        lows = np.array([low, low, low + np.uint64(256)], dtype=np.uint64)
        levels = np.array([3, 3, 3], dtype=np.int64)
        weights = np.array([2.0, 5.0, 1.0])
        out_lows, out_levels, out_weights = _consolidate_pieces(
            lows, levels, weights
        )
        assert out_lows.tolist() == [int(low), int(low) + 256]
        assert out_levels.tolist() == [3, 3]
        assert out_weights.tolist() == [7.0, 1.0]

    def test_distinct_levels_not_merged(self):
        from repro.sketch.bulk import _consolidate_pieces

        low = np.uint64(1 << 60)
        lows = np.array([low, low], dtype=np.uint64)
        levels = np.array([2, 4], dtype=np.int64)
        weights = np.array([1.0, 1.0])
        out_lows, out_levels, out_weights = _consolidate_pieces(
            lows, levels, weights
        )
        assert len(out_lows) == 2

    def test_62_bit_bulk_update_matches_scalar(self, source):
        # End-to-end at domain_bits=62: repeated high intervals exercise
        # consolidation beyond 2^57 and must still match the scalar loop.
        bits = 62
        scheme = SketchScheme.from_factory(
            lambda src: GeneratorChannel(EH3.from_source(bits, src)),
            2,
            3,
            source,
        )
        base = (1 << 61) + (1 << 58)
        intervals = [
            (base, base + 1023),
            (base, base + 1023),  # duplicate: weights must merge
            (base + 4096, base + 8191),
        ]
        weights = [2.0, 3.0, 1.0]
        bulk = scheme.sketch()
        eh3_bulk_interval_update(
            bulk, decompose_quaternary(intervals, weights)
        )
        scalar = scheme.sketch()
        for bounds, weight in zip(intervals, weights):
            for row in scalar.cells:
                for cell in row:
                    cell.update_interval(bounds, weight)
        assert np.array_equal(bulk.values(), scalar.values())

    def test_62_bit_percell_update_matches_scalar(self, source):
        from repro.sketch.bulk import eh3_percell_interval_update

        bits = 62
        scheme = SketchScheme.from_factory(
            lambda src: GeneratorChannel(EH3.from_source(bits, src)),
            2,
            3,
            source,
        )
        base = (1 << 61) + (1 << 58)
        intervals = [(base, base + 255), (base, base + 255)]
        bulk = scheme.sketch()
        eh3_percell_interval_update(bulk, decompose_quaternary(intervals))
        scalar = scheme.sketch()
        for bounds in intervals:
            for row in scalar.cells:
                for cell in row:
                    cell.update_interval(bounds, 1.0)
        assert np.array_equal(bulk.values(), scalar.values())
