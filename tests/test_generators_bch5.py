"""Tests for the BCH5 generating scheme."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.bits import parity
from repro.core.gf2 import field
from repro.generators import BCH5, SeedSource


class TestConstruction:
    def test_seed_bits_column(self):
        # Table 1: seed size 2n + 1.
        for n in (4, 16, 32):
            assert BCH5(n, 0, 0, 0).seed_bits == 2 * n + 1

    def test_mode_validation(self):
        with pytest.raises(ValueError):
            BCH5(4, 0, 0, 0, mode="fast")

    def test_seed_bounds(self):
        with pytest.raises(ValueError):
            BCH5(4, 0, 16, 0)
        with pytest.raises(ValueError):
            BCH5(4, 0, 0, 16)
        with pytest.raises(ValueError):
            BCH5(4, 2, 0, 0)

    def test_independence_attribute(self):
        assert BCH5(4, 0, 0, 0).independence == 5


class TestCube:
    def test_gf_cube_matches_field(self):
        generator = BCH5(8, 0, 0, 0, mode="gf")
        gf = field(8)
        for i in (0, 1, 2, 3, 100, 255):
            assert generator.cube(i) == gf.cube(i)

    def test_arithmetic_cube_truncates(self):
        generator = BCH5(8, 0, 0, 0, mode="arithmetic")
        for i in (0, 1, 2, 7, 255):
            assert generator.cube(i) == (i**3) & 0xFF

    def test_modes_differ_in_general(self):
        gf_gen = BCH5(8, 0, 0, 0, mode="gf")
        ar_gen = BCH5(8, 0, 0, 0, mode="arithmetic")
        assert any(gf_gen.cube(i) != ar_gen.cube(i) for i in range(256))


class TestDefinition:
    def test_formula(self):
        """f(S, i) = s0 ^ S1.i ^ S3.(i^3)."""
        generator = BCH5(6, 1, 0b110101, 0b011011, mode="gf")
        gf = field(6)
        for i in range(64):
            expected = 1 ^ parity(0b110101 & i) ^ parity(0b011011 & gf.cube(i))
            assert generator.bit(i) == expected

    @given(st.integers(min_value=2, max_value=12), st.data())
    @settings(max_examples=30)
    def test_vectorized_matches_scalar_both_modes(self, n, data):
        s0 = data.draw(st.integers(min_value=0, max_value=1))
        s1 = data.draw(st.integers(min_value=0, max_value=(1 << n) - 1))
        s3 = data.draw(st.integers(min_value=0, max_value=(1 << n) - 1))
        for mode in ("gf", "arithmetic"):
            generator = BCH5(n, s0, s1, s3, mode=mode)
            size = min(1 << n, 128)
            indices = np.arange(size, dtype=np.uint64)
            assert np.array_equal(
                generator.values(indices),
                np.array(
                    [generator.value(i) for i in range(size)], dtype=np.int8
                ),
            )

    def test_vectorized_arithmetic_large_domain(self):
        """uint64 wraparound must still give the cube mod 2^n."""
        n = 40
        generator = BCH5(n, 0, 0xABCDE12345, 0x123456789A, mode="arithmetic")
        rng = np.random.default_rng(3)
        indices = rng.integers(0, 1 << n, size=64, dtype=np.uint64)
        vectorized = generator.bits(indices)
        scalar = [generator.bit(int(i)) for i in indices]
        assert list(vectorized) == scalar

    def test_gf_lookup_table_path(self, source: SeedSource):
        """domain_bits <= 16 uses the cube table -- must agree with scalar."""
        generator = BCH5.from_source(12, source, mode="gf")
        indices = np.arange(1 << 12, dtype=np.uint64)
        vectorized = generator.bits(indices)
        scalar = np.array(
            [generator.bit(i) for i in range(1 << 12)], dtype=np.uint8
        )
        assert np.array_equal(vectorized, scalar)

    def test_balanced_when_linear_part_nonzero(self):
        assert BCH5(8, 0, 1, 0).total_sum() == 0
