"""End-to-end (epsilon, delta) guarantee tests for the AMS machinery.

Section 2.1's promise: medians-of-averages turn the atomic estimator into
an (epsilon, delta) approximation.  These tests size a grid with
``recommended_grid`` and verify the empirical coverage actually clears
the promised confidence.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.generators import EH3, SeedSource
from repro.sketch.ams import SketchScheme, recommended_grid
from repro.sketch.estimators import (
    estimate_join_size,
    exact_join_size,
    sketch_frequency_vector,
)
from repro.sketch.variance import var_eh3_model


class TestGuaranteeCoverage:
    def test_planned_grid_meets_epsilon_delta(self):
        """>= 1 - delta of independent runs land within epsilon."""
        domain_bits = 10
        rng = np.random.default_rng(17)
        r = rng.integers(0, 6, size=1 << domain_bits).astype(float)
        s = rng.integers(0, 6, size=1 << domain_bits).astype(float)
        truth = exact_join_size(r, s)

        epsilon, delta = 0.15, 0.15
        variance_ratio = var_eh3_model(r, s, domain_bits // 2) / truth**2
        medians, averages = recommended_grid(epsilon, delta, variance_ratio)

        source = SeedSource(99)
        trials = 30
        hits = 0
        for _ in range(trials):
            scheme = SketchScheme.from_generators(
                lambda src: EH3.from_source(domain_bits, src),
                medians,
                averages,
                source,
            )
            x = sketch_frequency_vector(scheme, r)
            y = sketch_frequency_vector(scheme, s)
            estimate = estimate_join_size(x, y)
            if abs(estimate - truth) <= epsilon * truth:
                hits += 1
        # Expect >= (1 - delta); allow binomial wiggle on 30 trials.
        assert hits >= int((1 - delta) * trials) - 3

    def test_variance_ratio_drives_grid_width(self):
        tight = recommended_grid(0.1, 0.1, variance_ratio=1.0)
        loose = recommended_grid(0.1, 0.1, variance_ratio=10.0)
        assert loose[1] == pytest.approx(10 * tight[1], rel=0.01)
