"""Smoke tests for the experiment harness (tiny parameters)."""

from __future__ import annotations

import pytest

from repro.experiments.fig2 import run_fig2
from repro.experiments.fig3 import run_fig3
from repro.experiments.fig4 import run_fig4
from repro.experiments.fig567 import run_fig567
from repro.experiments.runner import ExperimentResult, format_number, time_per_op
from repro.experiments.table1 import PAPER_TABLE1_NS, run_table1, scheme_seed_bits
from repro.experiments.table2 import run_table2


class TestRunner:
    def test_result_table_rendering(self):
        result = ExperimentResult("Title", ["A", "B"])
        result.add_row("x", 1.5)
        result.add_row("yy", 1_000_000)
        result.add_note("a note")
        text = result.to_text()
        assert "Title" in text
        assert "a note" in text
        assert "yy" in text

    def test_row_width_checked(self):
        result = ExperimentResult("T", ["A", "B"])
        with pytest.raises(ValueError):
            result.add_row("only-one")

    def test_column_extraction(self):
        result = ExperimentResult("T", ["A", "B"])
        result.add_row("x", 1)
        result.add_row("y", 2)
        assert result.column("B") == [1, 2]

    def test_format_number(self):
        assert format_number(None) == "-"
        assert format_number("abc") == "abc"
        assert format_number(12_345) == "12,345"
        assert format_number(1.5e9) == "1.500e+09"
        assert format_number(0) == "0"

    def test_time_per_op(self):
        ns = time_per_op(lambda: sum(range(100)), 100, min_seconds=0.001)
        assert ns > 0

    def test_time_per_op_validation(self):
        with pytest.raises(ValueError):
            time_per_op(lambda: None, 0)


class TestTable1:
    def test_seed_size_column(self):
        sizes = scheme_seed_bits(32)
        assert sizes["BCH3"] == 33
        assert sizes["EH3"] == 33
        assert sizes["BCH5"] == 65
        assert sizes["Massdal2"] == 64
        assert sizes["Massdal4"] == 128
        assert sizes["RM7"] == 1 + 32 + 32 * 31 // 2

    def test_runs_and_orders_schemes(self):
        result = run_table1(
            domain_bits=16, batch=2_000, scalar_samples=100, min_seconds=0.001
        )
        schemes = result.column("Scheme")
        assert schemes == list(PAPER_TABLE1_NS)
        times = dict(zip(schemes, result.column("ns/value (vectorized)")))
        # The paper's qualitative ordering: RM7 is the slowest by far.
        assert times["RM7"] > times["BCH3"]
        assert times["RM7"] > times["EH3"]


class TestTable2:
    def test_runs_with_expected_rows(self):
        result = run_table2(
            domain_bits=16, intervals=20, rm7_intervals=2, min_seconds=0.001
        )
        schemes = result.column("Scheme")
        assert "BCH3" in schemes and "RM7" in schemes
        times = dict(zip(schemes, result.column("ns/op")))
        # RM7's range-sum must be orders slower than BCH3's O(1).
        assert times["RM7"] > 10 * times["BCH3"]
        # A point evaluation is cheaper than any interval operation.
        assert times["EH3 (point)"] < times["EH3"]


class TestFigures:
    def test_fig2_prediction_tracks_measurement(self):
        result = run_fig2(
            domain_bits=10,
            tuples=10_000,
            zipf_values=(0.0, 2.0),
            averages=30,
            trials=4,
        )
        rows = {row[0]: row for row in result.rows}
        # Proposition 5: exactly zero error at z = 0 on a 4^n domain.
        assert rows[0.0][1] == pytest.approx(0.0, abs=1e-9)
        # At z = 2 measurement within 3x of the model (loose, tiny trials).
        measured, predicted = rows[2.0][1], rows[2.0][2]
        assert predicted > 0
        assert measured < 3 * predicted + 0.05

    def test_fig2_sampled_mode(self):
        """Sampled tuples soften Proposition 5's exact zero to near-zero,
        and Eq. 12 still tracks the error."""
        result = run_fig2(
            domain_bits=10,
            tuples=10_000,
            zipf_values=(0.0,),
            averages=20,
            trials=3,
            sampled=True,
        )
        measured, predicted = result.rows[0][1], result.rows[0][2]
        assert 0 < measured < 1.0
        assert predicted > 0
        assert measured < 3 * predicted + 0.05

    def test_fig3_eh3_wins_at_uniform(self):
        result = run_fig3(
            domain_bits=10,
            tuples=10_000,
            zipf_values=(0.0,),
            medians=3,
            averages=20,
            trials=2,
        )
        row = result.rows[0]
        assert row[1] == pytest.approx(0.0, abs=1e-9)  # EH3
        assert row[2] > 0  # BCH5

    def test_fig4_runs(self):
        result = run_fig4(
            dims_bits=(6, 6),
            regions=3,
            total_points=800,
            zipf_values=(0.5,),
            medians=2,
            averages=10,
            queries=5,
            trials=1,
        )
        assert len(result.rows) == 1
        assert result.rows[0][1] >= 0

    def test_fig567_runs(self):
        result = run_fig567(
            domain_bits=12,
            counter_budgets=(32,),
            medians=2,
            trials=1,
            max_segments=300,
        )
        assert len(result.rows) == 3  # three dataset pairs
        for row in result.rows:
            assert row[3] >= 0 and row[4] >= 0


class TestCLI:
    def test_quick_run_table1(self, capsys):
        from repro.cli import main

        assert main(["table1", "--quick"]) == 0
        out = capsys.readouterr().out
        assert "Table 1" in out

    def test_unknown_experiment_rejected(self):
        from repro.cli import main

        with pytest.raises(SystemExit):
            main(["nonsense"])

    def test_json_output_dir(self, capsys, tmp_path):
        import json

        from repro.cli import main

        assert main(
            ["table2", "--quick", "--output-dir", str(tmp_path)]
        ) == 0
        capsys.readouterr()
        data = json.loads((tmp_path / "table2.json").read_text())
        assert data["title"].startswith("Table 2")
        assert len(data["rows"]) == len(data["headers"]) == 4 or data["rows"]

    def test_to_json_roundtrip(self):
        import json

        result = ExperimentResult("T", ["A", "B"])
        result.add_row("x", 1.5)
        result.add_note("n")
        data = json.loads(result.to_json())
        assert data == {
            "title": "T",
            "headers": ["A", "B"],
            "rows": [["x", 1.5]],
            "notes": ["n"],
        }

    def test_column_unknown_header(self):
        result = ExperimentResult("T", ["A"])
        with pytest.raises(ValueError):
            result.column("missing")
