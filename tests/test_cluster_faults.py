"""Cluster chaos scenarios, proven by pytest (real worker processes).

The suite itself lives in :mod:`repro.cluster.faults`; here it runs once
(class-scoped) and each scenario asserts independently, so a CI failure
names the broken invariant instead of a monolithic suite.  A second
test class covers process-transport basics the scenarios assume.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.cluster import ClusterConfig, ClusterProcessor
from repro.cluster.faults import run_cluster_fault_suite
from repro.stream.processor import StreamProcessor

SEED = 20060627

pytestmark = pytest.mark.filterwarnings(
    "ignore::pytest.PytestUnraisableExceptionWarning"
)


class TestClusterScenarioSuite:
    """One pytest case per chaos scenario."""

    @pytest.fixture(scope="class")
    def results(self, tmp_path_factory):
        base = tmp_path_factory.mktemp("cluster-faults")
        return {r.name: r for r in run_cluster_fault_suite(SEED, str(base))}

    @pytest.mark.parametrize(
        "name",
        [
            "kill-nine-mid-batch",
            "hung-worker-heartbeat",
            "torn-wal-tail-restart",
            "duplicate-late-delivery",
            "failed-shard-degraded-answer",
        ],
    )
    def test_scenario(self, results, name):
        assert name in results, f"scenario {name} missing from suite"
        result = results[name]
        assert result.passed, f"{name}: {result.detail}"

    def test_suite_is_exhaustive(self, results):
        assert len(results) == 5


class TestProcessTransportBasics:
    """The production transport end to end, without injected faults."""

    def test_process_cluster_matches_reference(self, tmp_path, rng):
        items = rng.integers(0, 1 << 10, size=300)
        config = ClusterConfig(
            command_timeout=2.0, retries=2, backoff_base=0.01
        )
        with ClusterProcessor(
            str(tmp_path / "cluster"),
            shards=2,
            medians=3,
            averages=16,
            seed=7,
            config=config,
        ) as cluster:
            cluster.register_relation("r", 10)
            handle = cluster.register_self_join("r")
            cluster.ingest_points("r", items)
            cluster.ingest_intervals("r", [[0, 1023], [100, 700]])
            cluster.flush()
            merged = cluster.merged_sketch("r").values()
            answer = cluster.answer(handle)
        ref = StreamProcessor(medians=3, averages=16, seed=7)
        ref.register_relation("r", 10)
        ref_handle = ref.register_self_join("r")
        ref.process_points("r", items)
        ref.process_intervals("r", [[0, 1023], [100, 700]])
        assert np.array_equal(merged, ref.sketch_of("r").values())
        assert answer.value == ref.answer(ref_handle)
        assert answer.coverage == 1.0 and not answer.degraded

    def test_worker_directories_are_isolated(self, tmp_path):
        import os

        config = ClusterConfig(command_timeout=2.0, retries=2)
        with ClusterProcessor(
            str(tmp_path / "cluster"),
            shards=3,
            medians=3,
            averages=16,
            seed=7,
            config=config,
        ) as cluster:
            cluster.register_relation("r", 10)
            cluster.ingest_points("r", list(range(0, 1024, 5)))
            cluster.checkpoint()
            directories = [shard.spec.directory for shard in cluster._shards]
        assert len(set(directories)) == 3
        for directory in directories:
            names = os.listdir(directory)
            assert "manifest.json" in names
            assert any(name.startswith("wal-") for name in names)
