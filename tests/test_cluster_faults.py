"""Cluster chaos scenarios, proven by pytest (real worker processes).

The suite itself lives in :mod:`repro.cluster.faults`; here it runs once
(class-scoped) and each scenario asserts independently, so a CI failure
names the broken invariant instead of a monolithic suite.  A second
test class covers process-transport basics the scenarios assume.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import obs
from repro.cluster import ClusterConfig, ClusterProcessor
from repro.cluster.faults import run_cluster_fault_suite
from repro.obs.tracing import TraceCollector
from repro.stream.processor import StreamProcessor

SEED = 20060627

pytestmark = pytest.mark.filterwarnings(
    "ignore::pytest.PytestUnraisableExceptionWarning"
)


class TestClusterScenarioSuite:
    """One pytest case per chaos scenario."""

    @pytest.fixture(scope="class")
    def suite_run(self, tmp_path_factory):
        # The whole chaos suite runs under one trace collector: crashes,
        # hangs, torn WALs, and duplicated frames must never corrupt the
        # stitched trace (span-id dedup absorbs crash-replay re-ships).
        base = tmp_path_factory.mktemp("cluster-faults")
        collector = TraceCollector()
        previous = obs.set_trace_collector(collector)
        try:
            results = {
                r.name: r for r in run_cluster_fault_suite(SEED, str(base))
            }
        finally:
            obs.set_trace_collector(previous)
        return results, collector.as_chrome_trace()

    @pytest.fixture(scope="class")
    def results(self, suite_run):
        return suite_run[0]

    @pytest.fixture(scope="class")
    def trace(self, suite_run):
        return suite_run[1]

    @pytest.mark.parametrize(
        "name",
        [
            "kill-nine-mid-batch",
            "hung-worker-heartbeat",
            "torn-wal-tail-restart",
            "duplicate-late-delivery",
            "failed-shard-degraded-answer",
        ],
    )
    def test_scenario(self, results, name):
        assert name in results, f"scenario {name} missing from suite"
        result = results[name]
        assert result.passed, f"{name}: {result.detail}"

    def test_suite_is_exhaustive(self, results):
        assert len(results) == 5

    def test_trace_stays_well_formed_under_faults(self, trace):
        assert trace, "the fault suite must produce trace events"
        span_ids = [event["span_id"] for event in trace]
        assert len(span_ids) == len(set(span_ids)), (
            "duplicate span ids: crash-replay or duplicate delivery "
            "defeated the stitch dedup"
        )
        known = set(span_ids)
        # A SIGKILLed worker loses the span it was *inside*; a spooled
        # child re-shipped after restart may therefore point at a parent
        # that died unclosed.  Coordinator-side (pid 0) linkage must
        # still be complete -- the coordinator never crashes.
        dangling = [
            event["name"]
            for event in trace
            if event["pid"] == 0
            and "parent_span_id" in event
            and event["parent_span_id"] not in known
        ]
        assert dangling == [], f"dangling coordinator links: {dangling}"

    def test_single_trace_id_survives_faults(self, trace):
        assert len({event["trace_id"] for event in trace}) == 1

    def test_trace_contains_worker_spans(self, trace):
        # Spans shipped from worker processes (and re-shipped from the
        # crash spool after restarts) made it into the stitched trace.
        workers = [event for event in trace if event["pid"] > 0]
        assert workers
        assert any(
            event["name"] == "cluster.worker.command" for event in workers
        )


class TestProcessTransportBasics:
    """The production transport end to end, without injected faults."""

    def test_process_cluster_matches_reference(self, tmp_path, rng):
        items = rng.integers(0, 1 << 10, size=300)
        config = ClusterConfig(
            command_timeout=2.0, retries=2, backoff_base=0.01
        )
        with ClusterProcessor(
            str(tmp_path / "cluster"),
            shards=2,
            medians=3,
            averages=16,
            seed=7,
            config=config,
        ) as cluster:
            cluster.register_relation("r", 10)
            handle = cluster.register_self_join("r")
            cluster.ingest_points("r", items)
            cluster.ingest_intervals("r", [[0, 1023], [100, 700]])
            cluster.flush()
            merged = cluster.merged_sketch("r").values()
            answer = cluster.answer(handle)
        ref = StreamProcessor(medians=3, averages=16, seed=7)
        ref.register_relation("r", 10)
        ref_handle = ref.register_self_join("r")
        ref.process_points("r", items)
        ref.process_intervals("r", [[0, 1023], [100, 700]])
        assert np.array_equal(merged, ref.sketch_of("r").values())
        assert answer.value == ref.answer(ref_handle)
        assert answer.coverage == 1.0 and not answer.degraded

    def test_worker_directories_are_isolated(self, tmp_path):
        import os

        config = ClusterConfig(command_timeout=2.0, retries=2)
        with ClusterProcessor(
            str(tmp_path / "cluster"),
            shards=3,
            medians=3,
            averages=16,
            seed=7,
            config=config,
        ) as cluster:
            cluster.register_relation("r", 10)
            cluster.ingest_points("r", list(range(0, 1024, 5)))
            cluster.checkpoint()
            directories = [shard.spec.directory for shard in cluster._shards]
        assert len(set(directories)) == 3
        for directory in directories:
            names = os.listdir(directory)
            assert "manifest.json" in names
            assert any(name.startswith("wal-") for name in names)
