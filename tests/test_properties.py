"""Cross-cutting property tests: invariants every component must share.

These hypothesis suites cut across modules: any generator, any
range-summable scheme, any channel -- if a new scheme is added and wired
into the strategies here, it inherits the whole invariant battery.
"""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.generators import (
    BCH3,
    BCH5,
    EH3,
    RM7,
    PolynomialsOverPrimes,
    SeedSource,
    Toeplitz,
)
from repro.rangesum import (
    bch3_range_sum,
    bch5_range_sum,
    eh3_range_sum,
    rm7_range_sum,
)

MAX_BITS = 10


def any_generator(data, bits):
    """Draw one generator of any scheme over a `bits`-wide domain."""
    seed = data.draw(st.integers(min_value=0, max_value=100_000))
    source = SeedSource(seed)
    kind = data.draw(
        st.sampled_from(["bch3", "eh3", "bch5g", "bch5a", "rm7", "poly", "toe"])
    )
    if kind == "bch3":
        return BCH3.from_source(bits, source)
    if kind == "eh3":
        return EH3.from_source(bits, source)
    if kind == "bch5g":
        return BCH5.from_source(bits, source, mode="gf")
    if kind == "bch5a":
        return BCH5.from_source(bits, source, mode="arithmetic")
    if kind == "rm7":
        return RM7.from_source(bits, source)
    if kind == "poly":
        return PolynomialsOverPrimes.from_source(bits, source, k=3, p=2053)
    return Toeplitz.from_source(bits, source)


RANGE_SUMMERS = [
    (BCH3, bch3_range_sum),
    (EH3, eh3_range_sum),
    (RM7, rm7_range_sum),
]


class TestGeneratorInvariants:
    @given(st.data())
    @settings(max_examples=150)
    def test_values_are_plus_minus_one(self, data):
        bits = data.draw(st.integers(min_value=2, max_value=MAX_BITS))
        generator = any_generator(data, bits)
        indices = np.arange(min(1 << bits, 128), dtype=np.uint64)
        values = generator.values(indices)
        assert set(np.unique(values)).issubset({-1, 1})

    @given(st.data())
    @settings(max_examples=150)
    def test_bit_value_correspondence(self, data):
        bits = data.draw(st.integers(min_value=2, max_value=MAX_BITS))
        generator = any_generator(data, bits)
        i = data.draw(st.integers(min_value=0, max_value=(1 << bits) - 1))
        assert generator.value(i) == 1 - 2 * generator.bit(i)

    @given(st.data())
    @settings(max_examples=100)
    def test_determinism(self, data):
        bits = data.draw(st.integers(min_value=2, max_value=MAX_BITS))
        generator = any_generator(data, bits)
        i = data.draw(st.integers(min_value=0, max_value=(1 << bits) - 1))
        assert generator.value(i) == generator.value(i)

    @given(st.data())
    @settings(max_examples=100)
    def test_seed_bits_positive_and_consistent(self, data):
        bits = data.draw(st.integers(min_value=2, max_value=MAX_BITS))
        generator = any_generator(data, bits)
        assert generator.seed_bits >= bits
        assert generator.domain_size == 1 << bits


class TestRangeSumInvariants:
    @given(st.data())
    @settings(max_examples=100, deadline=None)
    def test_additivity(self, data):
        """sum[a, c] == sum[a, b] + sum[b+1, c] for every fast scheme."""
        bits = data.draw(st.integers(min_value=2, max_value=MAX_BITS))
        cls, summer = data.draw(st.sampled_from(RANGE_SUMMERS))
        generator = cls.from_source(bits, SeedSource(data.draw(
            st.integers(min_value=0, max_value=10_000))))
        a = data.draw(st.integers(min_value=0, max_value=(1 << bits) - 2))
        c = data.draw(st.integers(min_value=a + 1, max_value=(1 << bits) - 1))
        b = data.draw(st.integers(min_value=a, max_value=c - 1))
        assert summer(generator, a, c) == summer(generator, a, b) + summer(
            generator, b + 1, c
        )

    @given(st.data())
    @settings(max_examples=100, deadline=None)
    def test_bounded_by_interval_size(self, data):
        bits = data.draw(st.integers(min_value=2, max_value=MAX_BITS))
        cls, summer = data.draw(st.sampled_from(RANGE_SUMMERS))
        generator = cls.from_source(bits, SeedSource(data.draw(
            st.integers(min_value=0, max_value=10_000))))
        a = data.draw(st.integers(min_value=0, max_value=(1 << bits) - 1))
        b = data.draw(st.integers(min_value=a, max_value=(1 << bits) - 1))
        assert abs(summer(generator, a, b)) <= b - a + 1

    @given(st.data())
    @settings(max_examples=60, deadline=None)
    def test_parity_matches_interval_size(self, data):
        """A sum of k +/-1 values has k's parity."""
        bits = data.draw(st.integers(min_value=2, max_value=MAX_BITS))
        cls, summer = data.draw(st.sampled_from(RANGE_SUMMERS))
        generator = cls.from_source(bits, SeedSource(data.draw(
            st.integers(min_value=0, max_value=10_000))))
        a = data.draw(st.integers(min_value=0, max_value=(1 << bits) - 1))
        b = data.draw(st.integers(min_value=a, max_value=(1 << bits) - 1))
        assert (summer(generator, a, b) - (b - a + 1)) % 2 == 0

    @given(st.data())
    @settings(max_examples=40, deadline=None)
    def test_bch5_gf_summer_additivity(self, data):
        bits = data.draw(st.integers(min_value=2, max_value=8))
        generator = BCH5.from_source(
            bits, SeedSource(data.draw(st.integers(0, 10_000))), mode="gf"
        )
        a = data.draw(st.integers(min_value=0, max_value=(1 << bits) - 2))
        c = data.draw(st.integers(min_value=a + 1, max_value=(1 << bits) - 1))
        b = data.draw(st.integers(min_value=a, max_value=c - 1))
        assert bch5_range_sum(generator, a, c) == bch5_range_sum(
            generator, a, b
        ) + bch5_range_sum(generator, b + 1, c)


class TestSketchLinearity:
    @given(st.data())
    @settings(max_examples=40, deadline=None)
    def test_weighted_updates_scale(self, data):
        from repro.sketch.ams import SketchScheme

        bits = 8
        seed = data.draw(st.integers(min_value=0, max_value=10_000))
        source = SeedSource(seed)
        scheme = SketchScheme.from_generators(
            lambda src: EH3.from_source(bits, src), 2, 2, source
        )
        item = data.draw(st.integers(min_value=0, max_value=255))
        weight = data.draw(
            st.floats(min_value=-10, max_value=10, allow_nan=False)
        )
        scaled = scheme.sketch()
        scaled.update_point(item, weight)
        unit = scheme.sketch()
        unit.update_point(item, 1.0)
        assert np.allclose(scaled.values(), weight * unit.values())

    @given(st.data())
    @settings(max_examples=30, deadline=None)
    def test_update_order_irrelevant(self, data):
        from repro.sketch.ams import SketchScheme

        seed = data.draw(st.integers(min_value=0, max_value=10_000))
        source = SeedSource(seed)
        scheme = SketchScheme.from_generators(
            lambda src: EH3.from_source(8, src), 2, 2, source
        )
        items = data.draw(
            st.lists(
                st.integers(min_value=0, max_value=255), min_size=1, max_size=12
            )
        )
        forward = scheme.sketch()
        backward = scheme.sketch()
        for item in items:
            forward.update_point(item)
        for item in reversed(items):
            backward.update_point(item)
        assert np.allclose(forward.values(), backward.values())
