"""Tests for atomic sketches and update channels."""

from __future__ import annotations

import numpy as np
import pytest

from repro.generators import BCH5, EH3, RM7, SeedSource
from repro.rangesum.dmap import DMAP
from repro.rangesum.multidim import ProductDMAP, ProductGenerator
from repro.sketch.atomic import (
    AtomicSketch,
    DMAPChannel,
    GeneratorChannel,
    ProductChannel,
    ProductDMAPChannel,
)


class TestGeneratorChannel:
    def test_point_is_generator_value(self, source: SeedSource):
        generator = EH3.from_source(8, source)
        channel = GeneratorChannel(generator)
        for i in (0, 100, 255):
            assert channel.point(i) == generator.value(i)

    def test_interval_uses_fast_range_sum(self, source: SeedSource):
        generator = EH3.from_source(8, source)
        channel = GeneratorChannel(generator)
        assert channel.interval((10, 200)) == generator.range_sum(10, 200)

    def test_interval_falls_back_to_brute_force(self, source: SeedSource):
        generator = RM7.from_source(8, source)  # no .range_sum method
        channel = GeneratorChannel(generator)
        expected = sum(generator.value(i) for i in range(10, 40))
        assert channel.interval((10, 39)) == expected

    def test_points_vectorized(self, source: SeedSource):
        generator = BCH5.from_source(8, source, mode="arithmetic")
        channel = GeneratorChannel(generator)
        items = np.array([3, 7, 200], dtype=np.uint64)
        assert list(channel.points(items)) == [
            generator.value(3),
            generator.value(7),
            generator.value(200),
        ]


class TestOtherChannels:
    def test_dmap_channel(self, source: SeedSource):
        dmap = DMAP.from_source(8, source)
        channel = DMAPChannel(dmap)
        assert channel.point(5) == dmap.point_contribution(5)
        assert channel.interval((3, 77)) == dmap.interval_contribution(3, 77)

    def test_product_channel(self, source: SeedSource):
        product = ProductGenerator.eh3((4, 4), source)
        channel = ProductChannel(product)
        assert channel.point((3, 9)) == product.value((3, 9))
        rect = ((0, 7), (2, 12))
        assert channel.interval(rect) == product.rect_sum(rect)

    def test_product_dmap_channel(self, source: SeedSource):
        product = ProductDMAP.from_source((4, 4), source)
        channel = ProductDMAPChannel(product)
        assert channel.point((3, 9)) == product.point_contribution((3, 9))
        rect = ((0, 7), (2, 12))
        assert channel.interval(rect) == product.rect_contribution(rect)


class TestAtomicSketch:
    def test_point_updates_accumulate(self, source: SeedSource):
        generator = EH3.from_source(8, source)
        sketch = AtomicSketch(GeneratorChannel(generator))
        sketch.update_point(5)
        sketch.update_point(5)
        sketch.update_point(9, weight=2.5)
        expected = 2 * generator.value(5) + 2.5 * generator.value(9)
        assert sketch.value == pytest.approx(expected)

    def test_interval_equals_pointwise(self, source: SeedSource):
        generator = EH3.from_source(8, source)
        fast = AtomicSketch(GeneratorChannel(generator))
        slow = AtomicSketch(GeneratorChannel(generator))
        fast.update_interval((20, 120))
        for i in range(20, 121):
            slow.update_point(i)
        assert fast.value == pytest.approx(slow.value)

    def test_update_points_with_weights(self, source: SeedSource):
        generator = EH3.from_source(8, source)
        sketch = AtomicSketch(GeneratorChannel(generator))
        items = np.array([1, 2, 3], dtype=np.uint64)
        weights = np.array([1.0, -2.0, 0.5])
        sketch.update_points(items, weights)
        expected = sum(
            w * generator.value(int(i)) for i, w in zip(items, weights)
        )
        assert sketch.value == pytest.approx(expected)

    def test_update_points_weight_shape_checked(self, source: SeedSource):
        sketch = AtomicSketch(GeneratorChannel(EH3.from_source(8, source)))
        with pytest.raises(ValueError):
            sketch.update_points(np.array([1, 2]), np.array([1.0]))

    def test_combined_requires_shared_channel(self, source: SeedSource):
        channel = GeneratorChannel(EH3.from_source(8, source))
        other_channel = GeneratorChannel(EH3.from_source(8, source))
        a = AtomicSketch(channel, 3.0)
        b = AtomicSketch(channel, 4.0)
        assert a.combined(b).value == 7.0
        with pytest.raises(ValueError):
            a.combined(AtomicSketch(other_channel))

    def test_combined_is_union_sketch(self, source: SeedSource):
        """Distributed property: sketch(A) + sketch(B) = sketch(A u B)."""
        generator = EH3.from_source(8, source)
        channel = GeneratorChannel(generator)
        part_a = AtomicSketch(channel)
        part_b = AtomicSketch(channel)
        whole = AtomicSketch(channel)
        for i in (1, 2, 3):
            part_a.update_point(i)
            whole.update_point(i)
        for i in (200, 201):
            part_b.update_point(i)
            whole.update_point(i)
        assert part_a.combined(part_b).value == pytest.approx(whole.value)
