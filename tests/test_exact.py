"""Tests for the exact reference aggregates."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.stream.exact import (
    join_size,
    l1_difference,
    region_frequency_sum,
    segments_intersecting,
    segments_intersecting_brute,
    self_join_size,
)


class TestVectorAggregates:
    def test_join_size(self):
        assert join_size([1, 2, 3], [3, 2, 1]) == 3 + 4 + 3

    def test_self_join(self):
        assert self_join_size([1, 2, 3]) == 14

    def test_l1(self):
        assert l1_difference([1, 5, 2], [4, 5, 0]) == 5

    def test_shape_checked(self):
        with pytest.raises(ValueError):
            join_size([1], [1, 2])
        with pytest.raises(ValueError):
            l1_difference([1], [1, 2])


class TestSegmentsIntersecting:
    def test_simple_cases(self):
        first = [(0, 10)]
        assert segments_intersecting(first, [(5, 15)]) == 1
        assert segments_intersecting(first, [(11, 15)]) == 0
        assert segments_intersecting(first, [(10, 15)]) == 1  # touching counts
        assert segments_intersecting(first, [(2, 3)]) == 1  # nesting counts

    def test_counts_pairs(self):
        first = [(0, 4), (10, 14)]
        second = [(3, 11), (20, 21)]
        assert segments_intersecting(first, second) == 2

    @given(st.data())
    @settings(max_examples=100)
    def test_matches_brute_force(self, data):
        def segments(count):
            result = []
            for _ in range(count):
                a = data.draw(st.integers(min_value=0, max_value=63))
                b = data.draw(st.integers(min_value=a, max_value=63))
                result.append((a, b))
            return result

        first = segments(data.draw(st.integers(min_value=1, max_value=12)))
        second = segments(data.draw(st.integers(min_value=1, max_value=12)))
        assert segments_intersecting(first, second) == (
            segments_intersecting_brute(first, second)
        )

    def test_shape_validated(self):
        with pytest.raises(ValueError):
            segments_intersecting(np.zeros(3), np.zeros((2, 2)))


class TestRegionFrequencySum:
    def test_counts_inside(self):
        points = np.array([[0, 0], [2, 3], [5, 5], [2, 9]])
        assert region_frequency_sum(points, [(0, 2), (0, 5)]) == 2
        assert region_frequency_sum(points, [(0, 9), (0, 9)]) == 4
        assert region_frequency_sum(points, [(6, 9), (6, 9)]) == 0

    def test_dimension_checked(self):
        points = np.array([[1, 2, 3]])
        with pytest.raises(ValueError):
            region_frequency_sum(points, [(0, 5), (0, 5)])
