"""End-to-end integration tests crossing all library layers."""

from __future__ import annotations

import numpy as np
import pytest

from repro import (
    BCH3,
    EH3,
    SeedSource,
    SketchScheme,
    estimate_product,
    relative_error,
)
from repro.rangesum.dmap import DMAP
from repro.sketch.atomic import DMAPChannel, GeneratorChannel
from repro.sketch.estimators import (
    estimate_join_size,
    exact_join_size,
    sketch_frequency_vector,
)
from repro.stream.streams import IntervalStream, PointStream, frequency_vector
from repro.workloads.zipf import sample_zipf_counts


class TestStreamingPipeline:
    def test_interval_stream_vs_expanded_points(self, source: SeedSource):
        """The same relation streamed as intervals and as points gives the
        SAME sketch (not merely close) for a fast range-summable scheme."""
        scheme = SketchScheme.from_generators(
            lambda src: EH3.from_source(10, src), 3, 5, source
        )
        intervals = IntervalStream(10)
        intervals.append(5, 200)
        intervals.append(100, 100)
        intervals.append(700, 1023)

        points = PointStream(10)
        for update in intervals:
            for i in range(update.low, update.high + 1):
                points.append(i)

        interval_sketch = scheme.sketch()
        for update in intervals:
            interval_sketch.update_interval((update.low, update.high))
        point_sketch = scheme.sketch()
        for update in points:
            point_sketch.update_point(update.item)
        assert np.allclose(interval_sketch.values(), point_sketch.values())

    def test_distributed_merge_equals_centralized(self, source: SeedSource):
        """Sketch halves separately, add -- the distributed story of §2.1."""
        scheme = SketchScheme.from_generators(
            lambda src: BCH3.from_source(8, src), 2, 4, source
        )
        rng = np.random.default_rng(1)
        data = rng.integers(0, 256, size=500)
        site_a = scheme.sketch()
        site_b = scheme.sketch()
        central = scheme.sketch()
        for k, item in enumerate(data):
            (site_a if k % 2 else site_b).update_point(int(item))
            central.update_point(int(item))
        merged = site_a.combined(site_b)
        assert np.allclose(merged.values(), central.values())

    def test_zipf_join_accuracy_eh3(self, source: SeedSource):
        """Size-of-join over sampled low-skew Zipf data lands near truth.

        At z = 0.4 the Eq. 12 model predicts a one-row relative error of
        about 0.08 with 200 averages; 0.3 is a ~4-sigma bound.
        """
        rng = np.random.default_rng(5)
        domain_bits = 10
        r = sample_zipf_counts(1 << domain_bits, 20_000, 0.4, rng)
        s = sample_zipf_counts(1 << domain_bits, 20_000, 0.4, rng)
        truth = exact_join_size(r, s)
        scheme = SketchScheme.from_generators(
            lambda src: EH3.from_source(domain_bits, src), 7, 200, source
        )
        x = sketch_frequency_vector(scheme, r)
        y = sketch_frequency_vector(scheme, s)
        assert relative_error(estimate_join_size(x, y), truth) < 0.3

    def test_eh3_and_dmap_estimate_same_quantity(self, source: SeedSource):
        """Both methods target the identical interval-point join."""
        domain_bits = 8
        intervals = [(10, 120), (50, 200), (0, 255)]
        points = [60, 130, 250, 60]
        truth = sum(
            1 for (a, b) in intervals for p in points if a <= p <= b
        )

        eh3_scheme = SketchScheme.from_factory(
            lambda src: GeneratorChannel(EH3.from_source(domain_bits, src)),
            5,
            400,
            source,
        )
        dmap_scheme = SketchScheme.from_factory(
            lambda src: DMAPChannel(DMAP.from_source(domain_bits, src)),
            5,
            400,
            source,
        )
        for scheme in (eh3_scheme, dmap_scheme):
            x = scheme.sketch()
            for bounds in intervals:
                x.update_interval(bounds)
            y = scheme.sketch()
            for p in points:
                y.update_point(p)
            estimate = estimate_product(x, y)
            assert estimate == pytest.approx(truth, rel=0.6)

    def test_frequency_vector_reconstruction_consistency(self):
        """Stream -> frequency vector -> exact join equals direct count."""
        stream_r = IntervalStream(6)
        stream_r.append(0, 31)
        stream_r.append(16, 47)
        stream_s = PointStream(6)
        for p in (5, 20, 40, 40, 60):
            stream_s.append(p)
        r = frequency_vector(stream_r)
        s = frequency_vector(stream_s)
        # point 5 covered once, 20 twice, each 40 twice... count directly:
        expected = 1 + 2 + 2 * 1 + 0
        assert exact_join_size(r, s) == expected


class TestAdditionalScenarios:
    def test_interval_interval_join_overlap_mass(self, source: SeedSource):
        """Both relations interval-built: the join is the overlap mass."""
        scheme = SketchScheme.from_generators(
            lambda src: EH3.from_source(10, src), 7, 400, source
        )
        r_intervals = [(0, 499), (250, 749)]
        s_intervals = [(400, 899)]
        x = scheme.sketch()
        for bounds in r_intervals:
            x.update_interval(bounds)
        y = scheme.sketch()
        for bounds in s_intervals:
            y.update_interval(bounds)
        # Exact: sum over i of cov_R(i) * cov_S(i).
        cov_r = np.zeros(1 << 10)
        for a, b in r_intervals:
            cov_r[a : b + 1] += 1
        cov_s = np.zeros(1 << 10)
        for a, b in s_intervals:
            cov_s[a : b + 1] += 1
        truth = float(np.dot(cov_r, cov_s))
        estimate = estimate_product(x, y)
        assert estimate == pytest.approx(truth, rel=0.5)

    def test_turnstile_deletions(self, source: SeedSource):
        """Negative-weight updates model deletions exactly (linearity)."""
        scheme = SketchScheme.from_generators(
            lambda src: EH3.from_source(8, src), 3, 5, source
        )
        with_churn = scheme.sketch()
        for item in (5, 9, 9, 200):
            with_churn.update_point(item)
        with_churn.update_point(9, weight=-1.0)  # delete one copy of 9
        with_churn.update_interval((100, 150))
        with_churn.update_interval((100, 150), weight=-1.0)  # retract it

        clean = scheme.sketch()
        for item in (5, 9, 200):
            clean.update_point(item)
        assert np.allclose(with_churn.values(), clean.values())
