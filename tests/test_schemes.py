"""Tests: the scheme capability registry (:mod:`repro.schemes`).

The registry is the single description of every generating scheme --
construction, capabilities, serialization codec -- and the consumers
(plane, serialization, batched range-sums, bench, stream processor)
dispatch through it.  These tests pin the registry's contents and error
contracts, and prove the one-file extension story end to end on the
``polyprime`` scheme (generator + packed plane + codec registered in
``repro.schemes.builtin`` alone).
"""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.generators import EH3, SeedSource, Toeplitz
from repro.rangesum import batched_range_sums, eh3_range_sums
from repro.rangesum.dmap import DMAP
from repro.schemes import (
    PolyPrimePlane,
    SchemeCodec,
    SchemeSpec,
    SerializationError,
    UnknownSchemeError,
    UnsupportedSchemeError,
    all_specs,
    decode_generator,
    get_spec,
    register,
    registered_kinds,
    registered_schemes,
    spec_for,
)
from repro.sketch.ams import SketchScheme
from repro.sketch.atomic import DMAPChannel, GeneratorChannel, ProductChannel
from repro.sketch.plane import (
    DMAPPlane,
    counter_plane,
    plane_decision,
    require_plane,
)
from repro.sketch.serialize import generator_to_dict, scheme_fingerprint


def _grid(factory, medians=2, averages=4, seed=7):
    return SketchScheme.from_factory(factory, medians, averages, SeedSource(seed))


class TestRegistryContents:
    def test_builtin_schemes_registered(self):
        assert registered_schemes() == (
            "eh3", "bch3", "bch5", "rm7", "polyprime", "toeplitz",
        )

    def test_every_scheme_declares_a_codec(self):
        """CI guard: a registered scheme without a codec would make its
        sketches unshippable -- the registry must never hold one."""
        for spec in all_specs():
            assert isinstance(spec.codec, SchemeCodec), spec.name
            assert spec.codec.kind, spec.name
            assert callable(spec.codec.encode), spec.name
            assert callable(spec.codec.decode), spec.name

    def test_codec_kinds_unique_and_listed(self):
        kinds = registered_kinds()
        assert len(kinds) == len(set(kinds))
        assert set(kinds) == {spec.codec.kind for spec in all_specs()}

    def test_capability_table_shape(self):
        for spec in all_specs():
            capabilities = spec.capabilities()
            assert set(capabilities) == {
                "fast_range_sum", "range_sum", "range_sums",
                "plane", "fast_intervals", "dmap_inner",
            }
            assert all(isinstance(v, bool) for v in capabilities.values())

    def test_unknown_scheme_lists_registry(self):
        with pytest.raises(UnknownSchemeError, match="registered schemes"):
            get_spec("nope")

    def test_unknown_kind_lists_registered_kinds(self):
        with pytest.raises(SerializationError, match="registered kinds"):
            decode_generator({"kind": "mystery"})

    def test_duplicate_name_rejected(self):
        spec = get_spec("eh3")
        with pytest.raises(ValueError, match="already registered"):
            register(spec)

    def test_spec_for_resolves_subclasses(self, source):
        # ToeplitzHash subclasses Toeplitz; the most derived registered
        # ancestor owns it.
        generator = Toeplitz.from_source(8, source)
        assert spec_for(generator) is get_spec("toeplitz")
        assert spec_for(type(generator)) is get_spec("toeplitz")
        assert spec_for(int) is None


class TestBatchedRangeSumDispatch:
    def test_dispatches_to_registered_kernel(self, source, rng):
        generator = EH3.from_source(10, source)
        lows = rng.integers(0, 1 << 10, size=20, dtype=np.uint64)
        highs = rng.integers(0, 1 << 10, size=20, dtype=np.uint64)
        alphas, betas = np.minimum(lows, highs), np.maximum(lows, highs)
        assert np.array_equal(
            batched_range_sums(generator, alphas, betas),
            eh3_range_sums(generator, alphas, betas),
        )

    def test_missing_capability_is_typed(self, source):
        generator = get_spec("polyprime").factory(10, source)
        with pytest.raises(UnsupportedSchemeError, match="polyprime"):
            batched_range_sums(generator, [0], [5])

    def test_unregistered_generator_is_typed(self):
        class Custom:
            pass

        with pytest.raises(UnsupportedSchemeError, match="not a registered"):
            batched_range_sums(Custom(), [0], [5])


class TestPlaneDecisions:
    def test_covered_grid_has_no_reason(self):
        decision = plane_decision(
            _grid(lambda src: GeneratorChannel(EH3.from_source(8, src)))
        )
        assert decision.plane is not None
        assert decision.reason is None

    def test_planeless_scheme_reason_names_capability(self, source):
        grid = _grid(
            lambda src: GeneratorChannel(Toeplitz.from_source(8, src))
        )
        decision = plane_decision(grid)
        assert decision.plane is None
        assert "toeplitz" in decision.reason
        assert "plane" in decision.reason
        assert counter_plane(grid) is None  # the None contract survives

    def test_mixed_channel_grid_reason(self, source):
        from repro.rangesum.multidim import ProductGenerator

        decision = plane_decision(
            _grid(
                lambda src: ProductChannel(ProductGenerator.eh3((4, 4), src))
            )
        )
        assert decision.plane is None
        assert decision.reason is not None

    def test_require_plane_raises_typed_error(self, source):
        grid = _grid(
            lambda src: GeneratorChannel(Toeplitz.from_source(8, src))
        )
        with pytest.raises(UnsupportedSchemeError, match="toeplitz"):
            require_plane(grid)

    def test_dmap_incompatible_inner_scheme_reason(self, source):
        # DMAP over toeplitz: the inner scheme never declared dmap_inner,
        # and the decision says so instead of silently returning None.
        grid = _grid(
            lambda src: DMAPChannel(
                DMAP(8, Toeplitz.from_source(9, src))
            )
        )
        decision = plane_decision(grid)
        assert decision.plane is None
        assert "dmap_inner" in decision.reason
        assert "toeplitz" in decision.reason

    def test_dmap_over_eh3_gains_a_plane(self, source, rng):
        # The registry generalized DMAPPlane beyond its old hand-wired
        # BCH5 inner scheme: any dmap_inner-capable scheme now packs.
        grid = _grid(
            lambda src: DMAPChannel(DMAP(8, EH3.from_source(9, src)))
        )
        plane = counter_plane(grid)
        assert isinstance(plane, DMAPPlane)
        fast = grid.sketch()
        slow = grid.sketch()
        for _ in range(8):
            a, b = sorted(rng.integers(0, 1 << 8, size=2).tolist())
            fast.update_interval((a, b), 2.0)
            for row in slow.cells:
                for cell in row:
                    cell.update_interval((a, b), 2.0)
        assert np.array_equal(fast.values(), slow.values())


class TestPolyprimeEndToEnd:
    """The one-file extension story, proven on every capability path."""

    def test_plane_bit_identical_to_scalar(self, source, rng):
        grid = _grid(
            lambda src: GeneratorChannel(get_spec("polyprime").factory(10, src)),
            medians=2,
            averages=70,  # > 64 counters: exercises the multi-word path
        )
        plane = counter_plane(grid)
        assert isinstance(plane, PolyPrimePlane)
        points = rng.integers(0, 1 << 10, size=3000, dtype=np.uint64)
        weights = rng.integers(-4, 5, size=3000).astype(np.float64)
        totals = plane.point_totals(points, weights)
        scalar = np.zeros(grid.counters)
        position = 0
        for row in grid.channels:
            for channel in row:
                values = channel.generator.values(points).astype(np.float64)
                scalar[position] = float(np.dot(values, weights))
                position += 1
        assert np.array_equal(totals, scalar)

    def test_serialize_roundtrip_fingerprint_identity(self, source):
        grid = _grid(
            lambda src: GeneratorChannel(get_spec("polyprime").factory(8, src))
        )
        from repro.sketch.serialize import scheme_from_dict, scheme_to_dict

        rebuilt = scheme_from_dict(json.loads(json.dumps(scheme_to_dict(grid))))
        assert scheme_fingerprint(rebuilt) == scheme_fingerprint(grid)

    def test_bench_selectable(self):
        from repro.bench import run_bulk_bench

        report = run_bulk_bench(
            medians=2,
            averages=8,
            domain_bits=10,
            intervals=8,
            points=400,
            repeats=1,
            schemes=("polyprime",),
        )
        workload = report["workloads"]["polyprime_point_batch"]
        assert workload["identical"] is True
        assert "skipped" not in report

    def test_processor_scheme_and_wal_recovery(self, tmp_path, rng):
        from repro.stream.processor import StreamProcessor

        directory = str(tmp_path / "durable")
        with StreamProcessor(
            medians=2,
            averages=6,
            seed=11,
            scheme="polyprime",
            durability=directory,
        ) as processor:
            processor.register_relation("r", 10)
            handle = processor.register_self_join("r")
            points = rng.integers(0, 1 << 10, size=200, dtype=np.uint64)
            processor.process_points("r", points)
            before = processor.answer(handle)
            fingerprint = scheme_fingerprint(processor.scheme_of("r"))
            processor.checkpoint()

        manifest = json.loads(
            (tmp_path / "durable" / "manifest.json").read_text()
        )
        assert manifest["scheme"] == "polyprime"

        recovered = StreamProcessor.recover(directory)
        assert (
            scheme_fingerprint(recovered.scheme_of("r")) == fingerprint
        )
        [handle] = recovered.query_handles()
        assert recovered.answer(handle) == before
        recovered.close()

    def test_stats_report_plane_coverage(self):
        from repro.stream.processor import StreamProcessor

        covered = StreamProcessor(medians=2, averages=4, scheme="polyprime")
        covered.register_relation("r", 10)
        planes = covered.stats()["planes"]
        assert planes["domain:10"]["plane"] == "PolyPrimePlane"
        assert planes["domain:10"]["reason"] is None

        uncovered = StreamProcessor(medians=2, averages=4, scheme="toeplitz")
        uncovered.register_relation("r", 10)
        planes = uncovered.stats()["planes"]
        assert planes["domain:10"]["plane"] is None
        assert "toeplitz" in planes["domain:10"]["reason"]


class TestProcessorSchemeParameter:
    def test_scheme_and_factory_mutually_exclusive(self):
        from repro.stream.processor import StreamProcessor

        with pytest.raises(ValueError, match="not both"):
            StreamProcessor(
                scheme="eh3",
                generator_factory=lambda bits, src: EH3.from_source(bits, src),
            )

    def test_unknown_scheme_name_lists_registry(self):
        from repro.stream.processor import StreamProcessor

        with pytest.raises(UnknownSchemeError, match="registered schemes"):
            StreamProcessor(scheme="nope")

    def test_default_manifest_records_eh3(self, tmp_path):
        from repro.stream.processor import StreamProcessor

        directory = str(tmp_path / "d")
        with StreamProcessor(
            medians=2, averages=3, seed=5, durability=directory
        ) as processor:
            processor.register_relation("r", 8)
        manifest = json.loads((tmp_path / "d" / "manifest.json").read_text())
        assert manifest["scheme"] == "eh3"


class TestNewRegistrationContract:
    def test_register_requires_unique_kind(self):
        eh3 = get_spec("eh3")
        clashing = SchemeSpec(
            name="eh3-clone",
            cls=eh3.cls,
            summary="clone",
            independence=3,
            seed_bits="n + 1",
            factory=eh3.factory,
            codec=eh3.codec,  # same kind string -> wire-format clash
        )
        with pytest.raises(ValueError, match="kind"):
            register(clashing)

    def test_unsupported_generator_serialization_is_typed(self):
        class Custom:
            pass

        with pytest.raises(UnsupportedSchemeError):
            generator_to_dict(Custom())
