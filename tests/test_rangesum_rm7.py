"""Tests for the RM7 range-summation via quadratic counting."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.dyadic import DyadicInterval
from repro.generators import RM7, SeedSource
from repro.rangesum import (
    brute_force_range_sum,
    rm7_dyadic_sum,
    rm7_range_sum,
    rm7_restrict_to_dyadic,
)
from repro.rangesum.quadratic import brute_force_counts


class TestRestriction:
    def test_restricted_poly_matches_generator(self, source: SeedSource):
        """Q(x) over the free bits must equal f(S, high | x) everywhere."""
        generator = RM7.from_source(8, source)
        for level, offset in ((3, 5), (4, 2), (0, 77), (8, 0)):
            interval = DyadicInterval(level, offset)
            poly = rm7_restrict_to_dyadic(generator, interval)
            assert poly.variables == level
            for x in range(1 << level):
                assert poly.evaluate(x) == generator.bit(interval.low | x)

    def test_counts_match_enumeration(self, source: SeedSource):
        generator = RM7.from_source(7, source)
        interval = DyadicInterval(5, 2)
        poly = rm7_restrict_to_dyadic(generator, interval)
        zeros, ones = brute_force_counts(poly)
        assert rm7_dyadic_sum(generator, interval) == zeros - ones

    def test_out_of_domain_rejected(self, source: SeedSource):
        generator = RM7.from_source(4, source)
        with pytest.raises(ValueError):
            rm7_restrict_to_dyadic(generator, DyadicInterval(5, 0))


class TestDyadicSums:
    @given(st.data())
    @settings(max_examples=100, deadline=None)
    def test_matches_brute_force(self, data):
        n = data.draw(st.integers(min_value=2, max_value=10))
        seed = data.draw(st.integers(min_value=0, max_value=10_000))
        generator = RM7.from_source(n, SeedSource(seed))
        level = data.draw(st.integers(min_value=0, max_value=n))
        offset = data.draw(
            st.integers(min_value=0, max_value=(1 << (n - level)) - 1)
        )
        interval = DyadicInterval(level, offset)
        assert rm7_dyadic_sum(generator, interval) == brute_force_range_sum(
            generator, interval.low, interval.high - 1
        )

    def test_whole_domain(self, source: SeedSource):
        generator = RM7.from_source(8, source)
        assert rm7_dyadic_sum(
            generator, DyadicInterval(8, 0)
        ) == generator.total_sum()


class TestGeneralIntervals:
    @given(st.data())
    @settings(max_examples=100, deadline=None)
    def test_matches_brute_force(self, data):
        n = data.draw(st.integers(min_value=2, max_value=9))
        seed = data.draw(st.integers(min_value=0, max_value=10_000))
        generator = RM7.from_source(n, SeedSource(seed))
        alpha = data.draw(st.integers(min_value=0, max_value=(1 << n) - 1))
        beta = data.draw(st.integers(min_value=alpha, max_value=(1 << n) - 1))
        assert rm7_range_sum(generator, alpha, beta) == brute_force_range_sum(
            generator, alpha, beta
        )

    def test_additivity_on_large_domain(self):
        """Polynomial-time on a 2^32 domain where brute force is hopeless."""
        generator = RM7.from_source(32, SeedSource(99))
        a, b = 123_456, 3_000_000_000
        mid = 1 << 28
        assert rm7_range_sum(generator, a, b) == rm7_range_sum(
            generator, a, mid
        ) + rm7_range_sum(generator, mid + 1, b)

    def test_single_points(self, source: SeedSource):
        generator = RM7.from_source(6, source)
        for i in (0, 17, 63):
            assert rm7_range_sum(generator, i, i) == generator.value(i)
