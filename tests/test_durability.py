"""Unit tests for the WAL, snapshots, and processor checkpoint/recover."""

from __future__ import annotations

import json
import os
import zlib

import numpy as np
import pytest

from repro.stream import (
    DurabilityConfig,
    DurabilityError,
    RecoveryError,
    SnapshotCorruptionError,
    StreamProcessor,
    WALCorruptionError,
    WriteAheadLog,
)
from repro.stream.durability import (
    encode_record,
    list_snapshots,
    load_latest_snapshot,
    write_snapshot,
)
from repro.generators.seeds import SeedSource

from .faults import corrupt_byte, truncate_tail, wal_segments


def _config(tmp_path, **kwargs):
    return DurabilityConfig(directory=str(tmp_path / "wal"), **kwargs)


def _log(tmp_path, **kwargs):
    config = _config(tmp_path, **kwargs)
    return WriteAheadLog(config.directory, config)


class TestConfig:
    def test_bad_sync_mode(self, tmp_path):
        with pytest.raises(ValueError, match="sync mode"):
            _config(tmp_path, sync="sometimes")

    def test_tiny_segments_rejected(self, tmp_path):
        with pytest.raises(ValueError, match="segment_max_bytes"):
            _config(tmp_path, segment_max_bytes=8)

    def test_zero_snapshots_rejected(self, tmp_path):
        with pytest.raises(ValueError, match="snapshots_keep"):
            _config(tmp_path, snapshots_keep=0)

    def test_negative_checkpoint_every_rejected(self, tmp_path):
        with pytest.raises(ValueError, match="checkpoint_every"):
            _config(tmp_path, checkpoint_every=-1)


class TestFraming:
    def test_record_layout(self):
        record = encode_record(7, b"hello")
        assert len(record) == 16 + 5
        length = int.from_bytes(record[0:4], "little")
        crc = int.from_bytes(record[4:8], "little")
        seq = int.from_bytes(record[8:16], "little")
        assert length == 5
        assert seq == 7
        assert crc == zlib.crc32((7).to_bytes(8, "little") + b"hello")
        assert record[16:] == b"hello"

    def test_crc_covers_seq(self):
        # Same payload, different seq => different CRC.
        a = encode_record(1, b"x")[4:8]
        b = encode_record(2, b"x")[4:8]
        assert a != b


class TestWriteAheadLog:
    def test_append_assigns_contiguous_seqs(self, tmp_path):
        log = _log(tmp_path)
        seqs = [log.append(f"r{i}".encode()) for i in range(5)]
        assert seqs == [1, 2, 3, 4, 5]
        log.close()

    def test_replay_round_trip(self, tmp_path):
        log = _log(tmp_path)
        payloads = [f"record-{i}".encode() for i in range(10)]
        log.append_many(payloads)
        replayed = list(log.replay())
        assert replayed == list(enumerate(payloads, start=1))
        log.close()

    def test_replay_after_seq(self, tmp_path):
        log = _log(tmp_path)
        log.append_many([b"a", b"b", b"c", b"d"])
        assert [seq for seq, _ in log.replay(after_seq=2)] == [3, 4]
        log.close()

    def test_append_many_empty_is_noop(self, tmp_path):
        log = _log(tmp_path)
        log.append(b"only")
        assert log.append_many([]) == 1
        assert log.next_seq == 2
        log.close()

    def test_closed_log_rejects_appends(self, tmp_path):
        log = _log(tmp_path)
        log.close()
        with pytest.raises(DurabilityError, match="closed"):
            log.append(b"late")

    def test_rotation_by_size(self, tmp_path):
        log = _log(tmp_path, segment_max_bytes=64)
        for i in range(10):
            log.append(b"x" * 60)
        log.close()
        segments = wal_segments(log.directory)
        assert len(segments) == 10 + 1  # each append rotates; one empty tail
        # Names encode the first seq each segment holds.
        bases = [int(os.path.basename(p)[4:-4], 16) for p in segments]
        assert bases == sorted(bases)

    def test_reopen_continues_sequence(self, tmp_path):
        log = _log(tmp_path)
        log.append_many([b"a", b"b", b"c"])
        log.close()
        reopened = _log(tmp_path)
        assert reopened.next_seq == 4
        reopened.append(b"d")
        assert [seq for seq, _ in reopened.replay()] == [1, 2, 3, 4]
        reopened.close()

    def test_torn_tail_truncated_on_reopen(self, tmp_path):
        log = _log(tmp_path)
        log.append_many([b"aaaa", b"bbbb", b"cccc"])
        log.close()
        tail = wal_segments(log.directory)[-1]
        truncate_tail(tail, 3)  # rip into the last record's payload
        reopened = _log(tmp_path)
        assert reopened.next_seq == 3  # record 3 is gone
        assert [seq for seq, _ in reopened.replay()] == [1, 2]
        # The torn bytes were physically truncated.
        assert os.path.getsize(tail) == 2 * (16 + 4)
        reopened.close()

    def test_corrupt_sealed_segment_raises(self, tmp_path):
        log = _log(tmp_path, segment_max_bytes=64)
        for i in range(4):
            log.append(b"y" * 60)
        log.close()
        first = wal_segments(log.directory)[0]
        corrupt_byte(first, os.path.getsize(first) // 2)
        reopened = _log(tmp_path)
        with pytest.raises(WALCorruptionError, match="corrupted"):
            list(reopened.replay())
        reopened.close()

    def test_sequence_gap_raises(self, tmp_path):
        log = _log(tmp_path, segment_max_bytes=64)
        for i in range(4):
            log.append(b"z" * 60)
        log.close()
        # Delete a middle segment: records vanish, replay must notice.
        os.remove(wal_segments(log.directory)[1])
        reopened = _log(tmp_path)
        with pytest.raises(WALCorruptionError, match="gap"):
            list(reopened.replay())
        reopened.close()

    def test_prune_keeps_active_segment(self, tmp_path):
        log = _log(tmp_path, segment_max_bytes=64)
        for i in range(5):
            log.append(b"w" * 60)
        deleted = log.prune(upto_seq=log.next_seq)
        remaining = wal_segments(log.directory)
        assert len(remaining) >= 1
        assert all(path not in remaining for path in deleted)
        log.close()

    def test_sync_none_survives_clean_close(self, tmp_path):
        log = _log(tmp_path, sync="none")
        log.append_many([b"a", b"b"])
        log.close()  # close() force-flushes even under sync="none"
        assert [seq for seq, _ in _log(tmp_path, sync="none").replay()] == [1, 2]


class TestSnapshots:
    def test_round_trip(self, tmp_path):
        directory = str(tmp_path)
        write_snapshot(directory, 42, {"hello": [1, 2.5, "three"]})
        loaded = load_latest_snapshot(directory)
        assert loaded is not None
        seq, state, failures = loaded
        assert seq == 42
        assert state == {"hello": [1, 2.5, "three"]}
        assert failures == []

    def test_keep_prunes_oldest(self, tmp_path):
        directory = str(tmp_path)
        for seq in (1, 2, 3, 4):
            write_snapshot(directory, seq, {"seq": seq}, keep=2)
        names = [os.path.basename(p) for p in list_snapshots(directory)]
        assert names == [f"snap-{3:016x}.json", f"snap-{4:016x}.json"]

    def test_corrupt_newest_falls_back(self, tmp_path):
        directory = str(tmp_path)
        write_snapshot(directory, 1, {"good": True})
        bad = write_snapshot(directory, 2, {"bad": True})
        with open(bad, "r+") as handle:
            document = json.load(handle)
            document["crc"] ^= 1
            handle.seek(0)
            json.dump(document, handle)
            handle.truncate()
        seq, state, failures = load_latest_snapshot(directory)
        assert seq == 1 and state == {"good": True}
        assert failures == [bad]

    def test_all_corrupt_raises(self, tmp_path):
        directory = str(tmp_path)
        path = write_snapshot(directory, 1, {"x": 1})
        truncate_tail(path, 10)
        with pytest.raises(SnapshotCorruptionError, match="all 1 snapshots"):
            load_latest_snapshot(directory)

    def test_empty_directory_returns_none(self, tmp_path):
        assert load_latest_snapshot(str(tmp_path)) is None
        assert load_latest_snapshot(str(tmp_path / "missing")) is None


class TestProcessorDurability:
    def _fill(self, processor):
        processor.register_relation("r", 10)
        processor.register_relation("s", 10)
        join = processor.register_join("r", "s")
        self_join = processor.register_self_join("r")
        for item in range(200):
            processor.process_point("r", item % 1024, 1.0 + (item % 3))
        processor.process_intervals("r", [[0, 100], [256, 900]])
        processor.process_points("s", list(range(64)))
        processor.process_interval("s", 10, 500, 2.0)
        return join, self_join

    def test_checkpoint_recover_round_trip(self, tmp_path):
        directory = str(tmp_path / "state")
        with StreamProcessor(
            medians=3, averages=8, seed=11, durability=directory
        ) as processor:
            join, self_join = self._fill(processor)
            processor.checkpoint()
            before = {
                "r": processor.sketch_of("r").values().copy(),
                "s": processor.sketch_of("s").values().copy(),
                "join": processor.answer(join),
                "self": processor.answer(self_join),
            }
        recovered = StreamProcessor.recover(directory)
        assert np.array_equal(recovered.sketch_of("r").values(), before["r"])
        assert np.array_equal(recovered.sketch_of("s").values(), before["s"])
        handles = {h.kind: h for h in recovered.query_handles()}
        assert recovered.answer(handles["join"]) == before["join"]
        assert recovered.answer(handles["self_join"]) == before["self"]

    def test_recover_without_any_checkpoint(self, tmp_path):
        directory = str(tmp_path / "state")
        with StreamProcessor(
            medians=2, averages=8, seed=5, durability=directory
        ) as processor:
            self._fill(processor)
            reference = processor.sketch_of("r").values().copy()
        recovered = StreamProcessor.recover(directory)
        assert np.array_equal(recovered.sketch_of("r").values(), reference)

    def test_auto_checkpoint_writes_snapshots(self, tmp_path):
        directory = str(tmp_path / "state")
        config = DurabilityConfig(directory=directory, checkpoint_every=50)
        with StreamProcessor(
            medians=2, averages=8, seed=5, durability=config
        ) as processor:
            self._fill(processor)
        assert len(list_snapshots(directory)) >= 1

    def test_merge_survives_recovery(self, tmp_path):
        directory = str(tmp_path / "state")
        with StreamProcessor(
            medians=2, averages=8, seed=5, durability=directory
        ) as processor:
            processor.register_relation("r", 10)
            processor.process_points("r", list(range(32)))
            remote = processor.scheme_of("r").sketch()
            remote.update_interval((0, 511), 3.0)
            processor.merge_sketch("r", remote)
            reference = processor.sketch_of("r").values().copy()
        recovered = StreamProcessor.recover(directory)
        assert np.array_equal(recovered.sketch_of("r").values(), reference)

    def test_fresh_processor_refuses_used_directory(self, tmp_path):
        directory = str(tmp_path / "state")
        with StreamProcessor(medians=2, averages=4, seed=1,
                             durability=directory):
            pass
        with pytest.raises(DurabilityError, match="already holds"):
            StreamProcessor(medians=2, averages=4, seed=1,
                            durability=directory)

    def test_recover_missing_manifest(self, tmp_path):
        with pytest.raises(RecoveryError, match="manifest"):
            StreamProcessor.recover(str(tmp_path / "nowhere"))

    def test_seedsource_processor_cannot_be_durable_recovered(self, tmp_path):
        directory = str(tmp_path / "state")
        with StreamProcessor(
            medians=2, averages=4, seed=SeedSource(99), durability=directory
        ) as processor:
            processor.register_relation("r", 8)
            processor.process_point("r", 1)
        with pytest.raises(RecoveryError, match="SeedSource"):
            StreamProcessor.recover(directory)

    def test_tampered_seed_fails_fingerprint_check(self, tmp_path):
        directory = str(tmp_path / "state")
        with StreamProcessor(
            medians=2, averages=4, seed=7, durability=directory
        ) as processor:
            processor.register_relation("r", 8)
            processor.process_point("r", 1)
            processor.checkpoint()
        manifest_path = os.path.join(directory, "manifest.json")
        with open(manifest_path) as handle:
            manifest = json.load(handle)
        manifest["seed"] = 8  # wrong seed => different derived schemes
        with open(manifest_path, "w") as handle:
            json.dump(manifest, handle)
        with pytest.raises(RecoveryError, match="fingerprint"):
            StreamProcessor.recover(directory)

    def test_checkpoint_requires_durability(self):
        processor = StreamProcessor(medians=2, averages=4, seed=1)
        with pytest.raises(DurabilityError, match="not enabled"):
            processor.checkpoint()

    def test_quarantine_counts_survive_checkpoint(self, tmp_path):
        directory = str(tmp_path / "state")
        with StreamProcessor(
            medians=2, averages=4, seed=1, policy="quarantine",
            durability=directory,
        ) as processor:
            processor.register_relation("r", 8)
            processor.process_point("r", -5)
            processor.process_point("r", 1)
            processor.checkpoint()
            assert processor.stats()["quarantined_total"] == 1


class TestMergeReplay:
    """Merge ops in the WAL: fingerprints recorded, re-verified on replay."""

    @staticmethod
    def _read_records(path):
        import struct

        header = struct.Struct("<IIQ")
        with open(path, "rb") as handle:
            data = handle.read()
        offset = 0
        records = []
        while offset < len(data):
            length, _crc, seq = header.unpack_from(data, offset)
            offset += header.size
            payload = data[offset:offset + length]
            offset += length
            records.append((seq, json.loads(payload.decode("utf-8"))))
        return records

    @staticmethod
    def _write_records(path, records):
        from repro.stream.durability import canonical_json

        blob = b"".join(
            encode_record(seq, canonical_json(op).encode("utf-8"))
            for seq, op in records
        )
        with open(path, "wb") as handle:
            handle.write(blob)

    def _build_interleaved(self, directory):
        """A WAL interleaving ingest batches and two merge ops."""
        processor = StreamProcessor(
            medians=2, averages=8, seed=5, durability=directory
        )
        processor.register_relation("r", 10)
        processor.process_points("r", list(range(32)))
        remote = processor.scheme_of("r").sketch()
        remote.update_interval((0, 255), 2.0)
        processor.merge_sketch("r", remote)
        processor.process_points("r", list(range(100, 164)))
        processor.process_intervals("r", [[5, 800], [0, 1023]])
        second = processor.scheme_of("r").sketch()
        second.update_point(7, 3.0)
        processor.merge_sketch("r", second)
        processor.process_points("r", [1, 2, 3])
        return processor

    def test_interleaved_merges_and_batches_replay_exactly(self, tmp_path):
        directory = str(tmp_path / "state")
        with self._build_interleaved(directory) as processor:
            reference = processor.sketch_of("r").values().copy()
        recovered = StreamProcessor.recover(directory)
        assert np.array_equal(recovered.sketch_of("r").values(), reference)

    def test_interleaved_replay_across_a_checkpoint(self, tmp_path):
        directory = str(tmp_path / "state")
        with self._build_interleaved(directory) as processor:
            processor.checkpoint()
            third = processor.scheme_of("r").sketch()
            third.update_interval((100, 900), 1.0)
            processor.merge_sketch("r", third)
            processor.process_points("r", [9, 9, 9])
            reference = processor.sketch_of("r").values().copy()
        recovered = StreamProcessor.recover(directory)
        assert np.array_equal(recovered.sketch_of("r").values(), reference)

    def test_merge_record_carries_the_scheme_fingerprint(self, tmp_path):
        from repro.sketch.serialize import scheme_fingerprint

        directory = str(tmp_path / "state")
        with self._build_interleaved(directory) as processor:
            expected = scheme_fingerprint(processor.scheme_of("r"))
        merges = [
            op
            for segment in wal_segments(directory)
            for _seq, op in self._read_records(segment)
            if op["op"] == "merge"
        ]
        assert len(merges) == 2
        for op in merges:
            assert op["fingerprint"] == expected

    def test_nonfinite_merge_rejected_at_commit_time(self, tmp_path):
        from repro.stream.errors import InvalidUpdateError

        directory = str(tmp_path / "state")
        with StreamProcessor(
            medians=2, averages=8, seed=5, durability=directory
        ) as processor:
            processor.register_relation("r", 10)
            processor.process_points("r", list(range(16)))
            reference = processor.sketch_of("r").values().copy()
            poisoned = processor.scheme_of("r").sketch()
            poisoned.cells[0][0].value = float("nan")
            with pytest.raises(InvalidUpdateError, match="non-finite"):
                processor.merge_sketch("r", poisoned)
        # The rejected merge never reached the WAL...
        ops = [
            op
            for segment in wal_segments(directory)
            for _seq, op in self._read_records(segment)
        ]
        assert not any(op["op"] == "merge" for op in ops)
        # ...so recovery replays the clean stream only.
        recovered = StreamProcessor.recover(directory)
        assert np.array_equal(recovered.sketch_of("r").values(), reference)

    def test_tampered_merge_fingerprint_rejected_on_replay(self, tmp_path):
        from repro.stream.errors import SchemeMismatchError

        directory = str(tmp_path / "state")
        self._build_interleaved(directory).close()
        segment = wal_segments(directory)[-1]
        records = self._read_records(segment)
        tampered = 0
        for _seq, op in records:
            if op["op"] == "merge":
                op["fingerprint"] = "0" * 64
                tampered += 1
        assert tampered
        self._write_records(segment, records)
        with pytest.raises(SchemeMismatchError, match="fingerprint"):
            StreamProcessor.recover(directory)

    def test_nonfinite_merge_values_rejected_on_replay(self, tmp_path):
        from repro.stream.errors import InvalidUpdateError

        directory = str(tmp_path / "state")
        self._build_interleaved(directory).close()
        segment = wal_segments(directory)[-1]
        records = self._read_records(segment)
        poisoned = 0
        for _seq, op in records:
            if op["op"] == "merge" and not poisoned:
                op["values"][0][0] = float("inf")
                poisoned += 1
        assert poisoned
        self._write_records(segment, records)
        with pytest.raises(InvalidUpdateError, match="non-finite"):
            StreamProcessor.recover(directory)
