"""Tests for the EH3 generating scheme (paper Section 3.1.1)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.bits import adjacent_pair_or_fold
from repro.generators import BCH3, EH3


class TestConstruction:
    def test_seed_bits_same_as_bch3(self):
        for n in (4, 16, 32):
            assert EH3(n, 0, 0).seed_bits == BCH3(n, 0, 0).seed_bits == n + 1

    def test_invalid_seeds_rejected(self):
        with pytest.raises(ValueError):
            EH3(4, 3, 0)
        with pytest.raises(ValueError):
            EH3(4, 0, 1 << 4)


class TestDefinition:
    def test_eq5_eh3_is_bch3_xor_h(self):
        """f_EH3(S, i) = f_BCH3(S, i) XOR h(i)."""
        eh3 = EH3(8, 1, 0xB7)
        bch3 = BCH3(8, 1, 0xB7)
        for i in range(256):
            assert eh3.bit(i) == bch3.bit(i) ^ adjacent_pair_or_fold(i, 8)

    def test_h_matches_eq6(self):
        generator = EH3(6, 0, 0)
        for i in range(64):
            expected = (
                ((i >> 0 | i >> 1) & 1)
                ^ ((i >> 2 | i >> 3) & 1)
                ^ ((i >> 4 | i >> 5) & 1)
            )
            assert generator.h(i) == expected

    @given(st.integers(min_value=1, max_value=16), st.data())
    @settings(max_examples=50)
    def test_vectorized_matches_scalar(self, n, data):
        s0 = data.draw(st.integers(min_value=0, max_value=1))
        s1 = data.draw(st.integers(min_value=0, max_value=(1 << n) - 1))
        generator = EH3(n, s0, s1)
        size = min(1 << n, 256)
        indices = np.arange(size, dtype=np.uint64)
        assert np.array_equal(
            generator.values(indices),
            np.array([generator.value(i) for i in range(size)], dtype=np.int8),
        )

    def test_nonlinear_unlike_bch3(self):
        """h makes the bit function nonlinear in the index bits."""
        generator = EH3(4, 0, 0)
        broken = False
        for i in range(16):
            for j in range(16):
                if (
                    generator.bit(i) ^ generator.bit(j) ^ generator.bit(0)
                    != generator.bit(i ^ j)
                ):
                    broken = True
        assert broken


class TestZeroOrPairs:
    def test_paper_example_seed(self):
        """S1 = 184 = 10111000b has exactly one pair ORing to 0."""
        generator = EH3(8, 0, 184)
        assert generator.zero_or_pairs() == 1
        assert generator.zero_or_pairs_below(1) == 1  # the low pair (0,0)
        assert generator.zero_or_pairs_below(0) == 0

    def test_all_zero_seed(self):
        generator = EH3(8, 0, 0)
        assert generator.zero_or_pairs() == 4
        assert generator.zero_or_pairs_below(2) == 2

    def test_all_ones_seed(self):
        generator = EH3(8, 0, 255)
        assert generator.zero_or_pairs() == 0

    def test_odd_width_counts_padded_pair(self):
        # Width 5 has 3 pairs; the top pair is (bit 4, implicit 0).
        generator = EH3(5, 0, 0b01111)
        assert generator.zero_or_pairs() == 1  # only the (0, pad) pair

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            EH3(8, 0, 0).zero_or_pairs_below(-1)


class TestRestriction:
    def test_pair_aligned_restriction(self):
        generator = EH3(8, 1, 0xC5)
        restricted = generator.restrict_low_bits(4)
        for i in range(16):
            assert restricted.bit(i) == generator.bit(i)

    def test_unaligned_restriction_rejected(self):
        with pytest.raises(ValueError):
            EH3(8, 0, 0).restrict_low_bits(3)

    def test_full_width_restriction_allowed(self):
        generator = EH3(5, 0, 7)
        same = generator.restrict_low_bits(5)
        assert same.s1 == generator.s1


class TestStatistics:
    def test_balanced_for_every_seed_on_small_domain(self):
        """EH3 values are exactly balanced over 4^n domains for every seed.

        (This is Proposition 5's engine: the total range-sum magnitude is
        2^(n/2), not 0 -- but each xi is +/-1 with probability 1/2 over
        seeds; here we check the 1-wise uniformity per index instead.)
        """
        n = 4
        for i in range(1 << n):
            total = 0
            for s0 in (0, 1):
                for s1 in range(1 << n):
                    total += EH3(n, s0, s1).value(i)
            assert total == 0

    def test_total_sum_magnitude_on_quaternary_domain(self):
        """Theorem 2 with the whole domain: |sum| = 2^(n/2) exactly."""
        n = 8
        for s1 in (0, 1, 184, 255, 0b1010):
            generator = EH3(n, 0, s1)
            assert abs(generator.total_sum()) == 1 << (n // 2)
