"""Tests for the BCH3 generating scheme."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.bits import parity
from repro.generators import BCH3, SeedSource


class TestConstruction:
    def test_seed_bits_column(self):
        # Table 1: seed size n + 1.
        for n in (4, 16, 32):
            generator = BCH3(n, 1, (1 << n) - 1)
            assert generator.seed_bits == n + 1

    def test_invalid_seeds_rejected(self):
        with pytest.raises(ValueError):
            BCH3(4, 2, 0)
        with pytest.raises(ValueError):
            BCH3(4, 0, 16)
        with pytest.raises(ValueError):
            BCH3(0, 0, 0)
        with pytest.raises(ValueError):
            BCH3(65, 0, 0)

    def test_from_source_deterministic(self):
        a = BCH3.from_source(16, SeedSource(5))
        b = BCH3.from_source(16, SeedSource(5))
        assert (a.s0, a.s1) == (b.s0, b.s1)

    def test_independence_attribute(self):
        assert BCH3(4, 0, 3).independence == 3


class TestValues:
    def test_definition_eq4(self):
        """f(S, i) = s0 XOR S1 . i, xi = (-1)^f."""
        generator = BCH3(6, 1, 0b101101)
        for i in range(64):
            expected_bit = 1 ^ parity(0b101101 & i)
            assert generator.bit(i) == expected_bit
            assert generator.value(i) == (1 - 2 * expected_bit)

    def test_index_zero_depends_only_on_s0(self):
        assert BCH3(8, 0, 0xAB).value(0) == 1
        assert BCH3(8, 1, 0xAB).value(0) == -1

    def test_out_of_domain_rejected(self):
        generator = BCH3(4, 0, 5)
        with pytest.raises(ValueError):
            generator.bit(16)
        with pytest.raises(ValueError):
            generator.values(np.array([3, 16], dtype=np.uint64))

    @given(st.integers(min_value=1, max_value=16), st.data())
    @settings(max_examples=50)
    def test_vectorized_matches_scalar(self, n, data):
        s0 = data.draw(st.integers(min_value=0, max_value=1))
        s1 = data.draw(st.integers(min_value=0, max_value=(1 << n) - 1))
        generator = BCH3(n, s0, s1)
        size = min(1 << n, 256)
        indices = np.arange(size, dtype=np.uint64)
        assert np.array_equal(
            generator.values(indices),
            np.array([generator.value(i) for i in range(size)], dtype=np.int8),
        )

    def test_linearity_in_index(self):
        """BCH3 bits are linear: f(i) ^ f(j) ^ f(0) = f(i ^ j)."""
        generator = BCH3(10, 1, 0x2A5)
        rng = np.random.default_rng(1)
        for _ in range(100):
            i, j = (int(x) for x in rng.integers(0, 1 << 10, size=2))
            assert (
                generator.bit(i) ^ generator.bit(j) ^ generator.bit(0)
                == generator.bit(i ^ j)
            )

    def test_balanced_over_domain_for_nonzero_seed(self):
        """Proposition 1: a nonzero S1 makes the family perfectly balanced."""
        generator = BCH3(8, 0, 0b1)
        assert generator.total_sum() == 0

    def test_constant_for_zero_seed(self):
        assert BCH3(8, 0, 0).total_sum() == 256
        assert BCH3(8, 1, 0).total_sum() == -256


class TestRestriction:
    def test_restrict_low_bits(self):
        generator = BCH3(8, 1, 0b10110110)
        restricted = generator.restrict_low_bits(4)
        for i in range(16):
            assert restricted.bit(i) == generator.bit(i)

    def test_restrict_bounds(self):
        generator = BCH3(8, 0, 0)
        with pytest.raises(ValueError):
            generator.restrict_low_bits(0)
        with pytest.raises(ValueError):
            generator.restrict_low_bits(9)
