"""Tests for the field-mode BCH5 2XOR-AND range-summation (extension).

This algorithm goes beyond the paper: Theorem 3's degree argument rules
out the arithmetic cube, but the extension-field cube is the quadratic
Gold function, so the Ehrenfeucht-Karpinski counting applies.  See the
module docstring of repro.rangesum.bch5_rangesum.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.dyadic import DyadicInterval
from repro.generators import BCH5, SeedSource
from repro.rangesum import (
    bch5_dyadic_sum,
    bch5_quadratic_form,
    bch5_range_sum,
    brute_force_range_sum,
)


class TestQuadraticForm:
    @given(st.data())
    @settings(max_examples=60, deadline=None)
    def test_form_reproduces_bits(self, data):
        n = data.draw(st.integers(min_value=2, max_value=8))
        seed = data.draw(st.integers(min_value=0, max_value=5_000))
        generator = BCH5.from_source(n, SeedSource(seed), mode="gf")
        poly = bch5_quadratic_form(generator)
        for i in range(1 << n):
            assert poly.evaluate(i) == generator.bit(i)

    def test_arithmetic_mode_rejected(self, source: SeedSource):
        generator = BCH5.from_source(6, source, mode="arithmetic")
        with pytest.raises(ValueError):
            bch5_quadratic_form(generator)

    def test_pure_linear_when_s3_zero(self, source: SeedSource):
        generator = BCH5(6, 1, 0b101010, 0, mode="gf")
        poly = bch5_quadratic_form(generator)
        assert poly.adjacency == (0,) * 6
        assert poly.linear == 0b101010
        assert poly.constant == 1


class TestRangeSums:
    @given(st.data())
    @settings(max_examples=100, deadline=None)
    def test_dyadic_matches_brute_force(self, data):
        n = data.draw(st.integers(min_value=2, max_value=10))
        seed = data.draw(st.integers(min_value=0, max_value=5_000))
        generator = BCH5.from_source(n, SeedSource(seed), mode="gf")
        level = data.draw(st.integers(min_value=0, max_value=n))
        offset = data.draw(
            st.integers(min_value=0, max_value=(1 << (n - level)) - 1)
        )
        interval = DyadicInterval(level, offset)
        assert bch5_dyadic_sum(generator, interval) == brute_force_range_sum(
            generator, interval.low, interval.high - 1
        )

    @given(st.data())
    @settings(max_examples=100, deadline=None)
    def test_general_matches_brute_force(self, data):
        n = data.draw(st.integers(min_value=2, max_value=9))
        seed = data.draw(st.integers(min_value=0, max_value=5_000))
        generator = BCH5.from_source(n, SeedSource(seed), mode="gf")
        alpha = data.draw(st.integers(min_value=0, max_value=(1 << n) - 1))
        beta = data.draw(st.integers(min_value=alpha, max_value=(1 << n) - 1))
        assert bch5_range_sum(generator, alpha, beta) == brute_force_range_sum(
            generator, alpha, beta
        )

    def test_large_domain_additivity(self):
        generator = BCH5.from_source(40, SeedSource(7), mode="gf")
        a, b = 999, (1 << 39) + 777
        mid = 1 << 30
        assert bch5_range_sum(generator, a, b) == bch5_range_sum(
            generator, a, mid
        ) + bch5_range_sum(generator, mid + 1, b)

    def test_out_of_domain_rejected(self, source: SeedSource):
        generator = BCH5.from_source(4, source, mode="gf")
        with pytest.raises(ValueError):
            bch5_dyadic_sum(generator, DyadicInterval(5, 0))
