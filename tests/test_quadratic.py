"""Tests for GF(2) quadratic-form solution counting (2XOR-AND)."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.rangesum.quadratic import (
    QuadraticPolynomial,
    brute_force_counts,
    count_values,
    count_zeros,
)


def random_poly(data, max_vars: int = 10) -> QuadraticPolynomial:
    l = data.draw(st.integers(min_value=0, max_value=max_vars))
    constant = data.draw(st.integers(min_value=0, max_value=1))
    linear = data.draw(st.integers(min_value=0, max_value=max((1 << l) - 1, 0)))
    rows = []
    for u in range(l):
        width = l - u - 1
        row = data.draw(st.integers(min_value=0, max_value=max((1 << width) - 1, 0)))
        rows.append(row << (u + 1) if width > 0 else 0)
    return QuadraticPolynomial.from_upper_rows(l, constant, linear, tuple(rows))


class TestConstruction:
    def test_symmetry_enforced(self):
        with pytest.raises(ValueError):
            QuadraticPolynomial(2, 0, 0, (0b10, 0b00))

    def test_diagonal_rejected(self):
        with pytest.raises(ValueError):
            QuadraticPolynomial(2, 0, 0, (0b01, 0b10))

    def test_from_upper_rows_builds_symmetric(self):
        poly = QuadraticPolynomial.from_upper_rows(3, 0, 0, (0b110, 0b100, 0))
        assert poly.adjacency == (0b110, 0b101, 0b011)

    def test_constant_only(self):
        poly = QuadraticPolynomial(0, 1, 0, ())
        assert count_zeros(poly) == 0
        poly = QuadraticPolynomial(0, 0, 0, ())
        assert count_zeros(poly) == 1


class TestEvaluate:
    def test_known_function(self):
        # Q = x0 x1 ^ x2
        poly = QuadraticPolynomial.from_upper_rows(3, 0, 0b100, (0b010, 0, 0))
        truth = [poly.evaluate(x) for x in range(8)]
        expected = [((x & 1) & (x >> 1 & 1)) ^ (x >> 2 & 1) for x in range(8)]
        assert truth == expected


class TestCounting:
    def test_single_hyperbolic_term(self):
        # Q = x0 x1: one of four assignments gives 1.
        poly = QuadraticPolynomial.from_upper_rows(2, 0, 0, (0b10, 0))
        assert count_values(poly) == (3, 1)

    def test_complemented_hyperbolic(self):
        poly = QuadraticPolynomial.from_upper_rows(2, 1, 0, (0b10, 0))
        assert count_values(poly) == (1, 3)

    def test_pure_linear_balanced(self):
        poly = QuadraticPolynomial.from_upper_rows(4, 0, 0b1010, (0, 0, 0, 0))
        assert count_values(poly) == (8, 8)

    def test_two_independent_hyperbolics(self):
        # Q = x0 x1 ^ x2 x3: zeros = (16 + 4) / 2 = 10.
        poly = QuadraticPolynomial.from_upper_rows(
            4, 0, 0, (0b0010, 0, 0b1000, 0)
        )
        assert count_values(poly) == (10, 6)

    def test_chain_requires_substitution(self):
        # Q = x0 x1 ^ x1 x2: shares x1 -> the elimination must substitute.
        poly = QuadraticPolynomial.from_upper_rows(3, 0, 0, (0b010, 0b100, 0))
        assert count_values(poly) == brute_force_counts(poly)

    def test_triangle(self):
        # Q = x0 x1 ^ x0 x2 ^ x1 x2.
        poly = QuadraticPolynomial.from_upper_rows(3, 0, 0, (0b110, 0b100, 0))
        assert count_values(poly) == brute_force_counts(poly)

    def test_complete_graph_k4_with_linear(self):
        rows = (0b1110, 0b1100, 0b1000, 0)
        poly = QuadraticPolynomial.from_upper_rows(4, 1, 0b0101, rows)
        assert count_values(poly) == brute_force_counts(poly)

    @given(st.data())
    @settings(max_examples=300, deadline=None)
    def test_matches_brute_force(self, data):
        poly = random_poly(data)
        assert count_values(poly) == brute_force_counts(poly)

    @given(st.data())
    @settings(max_examples=50, deadline=None)
    def test_complement_flips_counts(self, data):
        poly = random_poly(data, max_vars=8)
        flipped = QuadraticPolynomial(
            poly.variables, poly.constant ^ 1, poly.linear, poly.adjacency
        )
        zeros, ones = count_values(poly)
        assert count_values(flipped) == (ones, zeros)

    def test_counts_total(self):
        poly = QuadraticPolynomial.from_upper_rows(
            5, 0, 0b10011, (0b00110, 0b01000, 0b11000, 0b10000, 0)
        )
        zeros, ones = count_values(poly)
        assert zeros + ones == 32

    def test_brute_force_guard(self):
        poly = QuadraticPolynomial(25, 0, 0, tuple([0] * 25))
        with pytest.raises(ValueError):
            brute_force_counts(poly)
