"""Tests for the bit kernels in repro.core.bits."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core import bits


class TestParity:
    def test_small_values(self):
        assert bits.parity(0) == 0
        assert bits.parity(1) == 1
        assert bits.parity(2) == 1
        assert bits.parity(3) == 0
        assert bits.parity(0b1011) == 1

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            bits.parity(-1)

    @given(st.integers(min_value=0, max_value=(1 << 128) - 1))
    def test_matches_popcount_parity(self, x):
        assert bits.parity(x) == bin(x).count("1") % 2

    @given(st.integers(min_value=0, max_value=(1 << 64) - 1))
    def test_parity_u64_agrees(self, x):
        assert bits.parity_u64(x) == bits.parity(x)

    def test_parity_u64_truncates_to_64_bits(self):
        assert bits.parity_u64(1 << 64) == 0  # the set bit is above 64

    @given(
        st.lists(st.integers(min_value=0, max_value=(1 << 64) - 1), max_size=50)
    )
    def test_parity_array_matches_scalar(self, values):
        arr = np.array(values, dtype=np.uint64)
        expected = np.array([bits.parity(v) for v in values], dtype=np.uint8)
        assert np.array_equal(bits.parity_array(arr), expected)

    def test_parity_array_signed_nonnegative_ok(self):
        arr = np.array([1, 2, 3], dtype=np.int64)
        assert np.array_equal(bits.parity_array(arr), [1, 1, 0])

    def test_parity_array_rejects_negative(self):
        with pytest.raises(ValueError):
            bits.parity_array(np.array([-1], dtype=np.int64))

    def test_parity_array_rejects_floats(self):
        with pytest.raises(TypeError):
            bits.parity_array(np.array([1.0]))


class TestPopcount:
    @given(st.integers(min_value=0, max_value=(1 << 100) - 1))
    def test_matches_bin_count(self, x):
        assert bits.popcount(x) == bin(x).count("1")

    @given(
        st.lists(st.integers(min_value=0, max_value=(1 << 64) - 1), max_size=50)
    )
    def test_popcount_array_matches_scalar(self, values):
        arr = np.array(values, dtype=np.uint64)
        expected = [bits.popcount(v) for v in values]
        assert list(bits.popcount_array(arr)) == expected

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            bits.popcount(-5)


class TestTrailingZerosOnes:
    def test_powers_of_two(self):
        for k in range(60):
            assert bits.trailing_zeros(1 << k) == k

    def test_general(self):
        assert bits.trailing_zeros(12) == 2
        assert bits.trailing_zeros(7) == 0

    def test_zero_rejected(self):
        with pytest.raises(ValueError):
            bits.trailing_zeros(0)

    def test_trailing_ones(self):
        assert bits.trailing_ones(0) == 0
        assert bits.trailing_ones(0b0111) == 3
        assert bits.trailing_ones(0b1011) == 2

    @given(st.integers(min_value=1, max_value=(1 << 64) - 1))
    def test_trailing_zeros_definition(self, x):
        t = bits.trailing_zeros(x)
        assert x % (1 << t) == 0
        assert (x >> t) & 1 == 1


class TestMaskAndExtract:
    def test_mask(self):
        assert bits.mask(0) == 0
        assert bits.mask(4) == 0b1111
        with pytest.raises(ValueError):
            bits.mask(-1)

    def test_extract_bit(self):
        assert bits.extract_bit(0b1010, 1) == 1
        assert bits.extract_bit(0b1010, 0) == 0
        with pytest.raises(ValueError):
            bits.extract_bit(5, -1)

    def test_extract_bits_lsb_first(self):
        assert bits.extract_bits(0b1101, 4) == (1, 0, 1, 1)

    def test_bit_reverse(self):
        assert bits.bit_reverse(0b0011, 4) == 0b1100
        assert bits.bit_reverse(0b1, 1) == 0b1
        with pytest.raises(ValueError):
            bits.bit_reverse(16, 4)

    @given(st.integers(min_value=0, max_value=255))
    def test_bit_reverse_involution(self, x):
        assert bits.bit_reverse(bits.bit_reverse(x, 8), 8) == x


class TestInterleave:
    @given(
        st.integers(min_value=0, max_value=(1 << 16) - 1),
        st.integers(min_value=0, max_value=(1 << 16) - 1),
    )
    def test_roundtrip(self, x, y):
        z = bits.interleave_bits(x, y, 16)
        assert bits.deinterleave_bits(z, 16) == (x, y)

    def test_even_positions_hold_x(self):
        z = bits.interleave_bits(0b11, 0b00, 2)
        assert z == 0b0101

    def test_bounds_checked(self):
        with pytest.raises(ValueError):
            bits.interleave_bits(4, 0, 2)
        with pytest.raises(ValueError):
            bits.deinterleave_bits(1 << 8, 4)


class TestAdjacentPairOrFold:
    """h(i) of EH3 (paper Eq. 6)."""

    def _reference(self, i: int, width: int) -> int:
        pairs = (width + 1) // 2
        acc = 0
        for t in range(pairs):
            a = (i >> (2 * t)) & 1
            b = (i >> (2 * t + 1)) & 1
            acc ^= a | b
        return acc

    @given(
        st.integers(min_value=2, max_value=32),
        st.data(),
    )
    def test_matches_reference(self, width, data):
        i = data.draw(st.integers(min_value=0, max_value=(1 << width) - 1))
        assert bits.adjacent_pair_or_fold(i, width) == self._reference(i, width)

    def test_zero_index(self):
        assert bits.adjacent_pair_or_fold(0, 8) == 0

    def test_single_pair(self):
        # h over one pair is just OR.
        assert bits.adjacent_pair_or_fold(0b00, 2) == 0
        assert bits.adjacent_pair_or_fold(0b01, 2) == 1
        assert bits.adjacent_pair_or_fold(0b10, 2) == 1
        assert bits.adjacent_pair_or_fold(0b11, 2) == 1

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            bits.adjacent_pair_or_fold(-1, 4)

    @given(st.integers(min_value=2, max_value=32))
    def test_array_matches_scalar(self, width):
        values = np.arange(min(1 << width, 512), dtype=np.uint64)
        vectorized = bits.adjacent_pair_or_fold_array(values, width)
        scalar = [bits.adjacent_pair_or_fold(int(v), width) for v in values]
        assert list(vectorized) == scalar
