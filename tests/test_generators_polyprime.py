"""Tests for the polynomials-over-primes scheme (paper Section 3.3)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.primefield import MERSENNE_31
from repro.generators import PolynomialsOverPrimes, SeedSource, massdal2, massdal4


class TestConstruction:
    def test_requires_p_at_least_domain(self):
        with pytest.raises(ValueError):
            PolynomialsOverPrimes(6, (1, 2), p=31)  # 2^6 = 64 > 31
        PolynomialsOverPrimes(4, (1, 2), p=31)  # 16 <= 31: fine

    def test_coefficients_validated(self):
        with pytest.raises(ValueError):
            PolynomialsOverPrimes(4, (), p=31)
        with pytest.raises(ValueError):
            PolynomialsOverPrimes(4, (31,), p=31)

    def test_independence_is_coefficient_count(self):
        assert PolynomialsOverPrimes(4, (1, 2), p=31).independence == 2
        assert PolynomialsOverPrimes(4, (1, 2, 3, 4), p=31).independence == 4

    def test_seed_bits_doubles_bch(self):
        # Table 1's "2n" and "4n" rows: k * ceil(log2 p).
        generator = massdal2(20, SeedSource(1))
        assert generator.seed_bits == 2 * 31
        generator = massdal4(20, SeedSource(1))
        assert generator.seed_bits == 4 * 31


class TestValues:
    def test_raw_value_is_horner(self):
        generator = PolynomialsOverPrimes(4, (3, 5, 7), p=31)
        for i in range(16):
            expected = (3 + 5 * i + 7 * i * i) % 31
            assert generator.raw_value(i) == expected
            assert generator.bit(i) == expected & 1

    def test_vectorized_matches_scalar_mersenne(self):
        generator = massdal4(16, SeedSource(9))
        indices = np.arange(1 << 16, dtype=np.uint64)
        vectorized = generator.bits(indices)
        sample = np.linspace(0, (1 << 16) - 1, 200, dtype=int)
        for i in sample:
            assert vectorized[i] == generator.bit(int(i))

    def test_vectorized_matches_scalar_small_prime(self):
        generator = PolynomialsOverPrimes(3, (3, 7, 11), p=13)
        indices = np.arange(8, dtype=np.uint64)
        assert list(generator.bits(indices)) == [
            generator.bit(i) for i in range(8)
        ]

    def test_bias_value(self):
        generator = massdal2(20, SeedSource(1))
        assert generator.bias() == 1.0 / MERSENNE_31

    def test_constant_polynomial(self):
        generator = PolynomialsOverPrimes(4, (6,), p=31)
        assert all(generator.bit(i) == 0 for i in range(16))
        generator = PolynomialsOverPrimes(4, (7,), p=31)
        assert all(generator.bit(i) == 1 for i in range(16))


class TestTheorem1:
    def test_pairwise_uniform_over_zp(self):
        """Theorem 1 exactly, on a small prime: enumerate all seeds.

        For k = 2 the pairs (X_i, X_j), i != j, must be uniform over
        Z_p x Z_p when (a0, a1) ranges over all of Z_p^2.
        """
        p = 7
        i, j = 2, 5
        counts = np.zeros((p, p), dtype=int)
        for a0 in range(p):
            for a1 in range(p):
                xi = (a0 + a1 * i) % p
                xj = (a0 + a1 * j) % p
                counts[xi, xj] += 1
        assert (counts == 1).all()

    def test_output_bit_nearly_balanced(self):
        """The LSB is biased by exactly 1/p over a full polynomial family."""
        p = 7
        i = 3
        ones = 0
        for a0 in range(p):
            for a1 in range(p):
                ones += (a0 + a1 * i) % p & 1
        # Each X_i is uniform over Z_7 -> P[odd] = 3/7.
        assert ones == p * 3
