"""Tests for dyadic intervals and minimal covers (paper Section 2.3)."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.dyadic import (
    DyadicInterval,
    all_dyadic_intervals,
    containing_intervals,
    interval_from_id,
    interval_id,
    minimal_dyadic_cover,
    minimal_quaternary_cover,
    render_dyadic_tree,
)


class TestDyadicInterval:
    def test_endpoints_and_size(self):
        interval = DyadicInterval(level=3, offset=2)
        assert interval.low == 16
        assert interval.high == 24
        assert interval.size == 8

    def test_contains(self):
        interval = DyadicInterval(2, 1)  # [4, 8)
        assert interval.contains(4)
        assert interval.contains(7)
        assert not interval.contains(8)
        assert not interval.contains(3)

    def test_split_and_parent_roundtrip(self):
        interval = DyadicInterval(4, 3)
        left, right = interval.split()
        assert left.parent() == interval
        assert right.parent() == interval
        assert left.low == interval.low
        assert right.high == interval.high
        assert left.high == right.low

    def test_singleton_cannot_split(self):
        with pytest.raises(ValueError):
            DyadicInterval(0, 5).split()

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            DyadicInterval(-1, 0)
        with pytest.raises(ValueError):
            DyadicInterval(0, -1)


class TestMinimalDyadicCover:
    def test_paper_example_interval(self):
        # Example 1 of the paper decomposes [124, 197] (inclusive).
        cover = minimal_dyadic_cover(124, 197)
        spans = [(piece.low, piece.high) for piece in cover]
        assert spans == [(124, 128), (128, 192), (192, 196), (196, 198)]

    def test_whole_domain_is_one_piece(self):
        cover = minimal_dyadic_cover(0, 255)
        assert len(cover) == 1
        assert cover[0] == DyadicInterval(8, 0)

    def test_singleton(self):
        assert minimal_dyadic_cover(5, 5) == [DyadicInterval(0, 5)]

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            minimal_dyadic_cover(5, 4)
        with pytest.raises(ValueError):
            minimal_dyadic_cover(-1, 3)

    @given(st.data())
    def test_cover_properties(self, data):
        n = data.draw(st.integers(min_value=1, max_value=16))
        alpha = data.draw(st.integers(min_value=0, max_value=(1 << n) - 1))
        beta = data.draw(st.integers(min_value=alpha, max_value=(1 << n) - 1))
        cover = minimal_dyadic_cover(alpha, beta)
        # Pieces are disjoint, contiguous, and exactly cover [alpha, beta].
        position = alpha
        for piece in cover:
            assert piece.low == position
            position = piece.high
        assert position == beta + 1
        # Paper bound: at most 2n - 2 pieces for n >= 2.
        assert len(cover) <= max(2 * n - 2, 1)

    @given(st.data())
    def test_cover_is_minimal(self, data):
        """No two adjacent pieces can merge into a single dyadic interval."""
        n = data.draw(st.integers(min_value=1, max_value=12))
        alpha = data.draw(st.integers(min_value=0, max_value=(1 << n) - 1))
        beta = data.draw(st.integers(min_value=alpha, max_value=(1 << n) - 1))
        cover = minimal_dyadic_cover(alpha, beta)
        for a, b in zip(cover, cover[1:]):
            merged_as_one = (
                a.level == b.level
                and a.offset % 2 == 0
                and b.offset == a.offset + 1
            )
            assert not merged_as_one


class TestQuaternaryCover:
    def test_paper_example(self):
        # The quaternary cover of Example 1: five pieces, sizes 4,64,4,1,1.
        cover = minimal_quaternary_cover(124, 197)
        spans = [(piece.low, piece.high) for piece in cover]
        assert spans == [
            (124, 128),
            (128, 192),
            (192, 196),
            (196, 197),
            (197, 198),
        ]

    @given(st.data())
    def test_all_levels_even(self, data):
        n = data.draw(st.integers(min_value=1, max_value=14))
        alpha = data.draw(st.integers(min_value=0, max_value=(1 << n) - 1))
        beta = data.draw(st.integers(min_value=alpha, max_value=(1 << n) - 1))
        cover = minimal_quaternary_cover(alpha, beta)
        position = alpha
        for piece in cover:
            assert piece.level % 2 == 0
            assert piece.low == position
            position = piece.high
        assert position == beta + 1

    @given(st.data())
    def test_at_most_twice_binary_cover(self, data):
        n = data.draw(st.integers(min_value=1, max_value=14))
        alpha = data.draw(st.integers(min_value=0, max_value=(1 << n) - 1))
        beta = data.draw(st.integers(min_value=alpha, max_value=(1 << n) - 1))
        binary = minimal_dyadic_cover(alpha, beta)
        quaternary = minimal_quaternary_cover(alpha, beta)
        assert len(binary) <= len(quaternary) <= 2 * len(binary)


class TestContainingIntervals:
    def test_count_is_n_plus_one(self):
        assert len(containing_intervals(5, 4)) == 5

    def test_all_contain_the_point(self):
        for point in (0, 7, 15):
            for interval in containing_intervals(point, 4):
                assert interval.contains(point)

    def test_one_per_level(self):
        levels = [i.level for i in containing_intervals(9, 4)]
        assert levels == [0, 1, 2, 3, 4]

    def test_out_of_domain_rejected(self):
        with pytest.raises(ValueError):
            containing_intervals(16, 4)

    def test_exactly_one_cover_member_contains_any_inside_point(self):
        """The identity DMAP rests on (paper Section 5.2)."""
        n = 8
        alpha, beta = 37, 200
        cover = minimal_dyadic_cover(alpha, beta)
        cover_set = set(cover)
        for point in range(1 << n):
            containing = [
                i for i in containing_intervals(point, n) if i in cover_set
            ]
            assert len(containing) == (1 if alpha <= point <= beta else 0)


class TestIntervalIds:
    def test_root_is_one(self):
        assert interval_id(DyadicInterval(4, 0), 4) == 1

    def test_singletons_fill_top_range(self):
        n = 4
        ids = [interval_id(DyadicInterval(0, q), n) for q in range(1 << n)]
        assert ids == list(range(1 << n, 1 << (n + 1)))

    def test_roundtrip_all(self):
        n = 6
        for interval in all_dyadic_intervals(n):
            identifier = interval_id(interval, n)
            assert interval_from_id(identifier, n) == interval

    def test_ids_unique(self):
        n = 6
        ids = [interval_id(i, n) for i in all_dyadic_intervals(n)]
        assert len(ids) == len(set(ids))
        assert min(ids) == 1
        assert max(ids) == (1 << (n + 1)) - 1

    def test_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            interval_id(DyadicInterval(5, 0), 4)
        with pytest.raises(ValueError):
            interval_from_id(0, 4)
        with pytest.raises(ValueError):
            interval_from_id(1 << 5, 4)


class TestEnumerationAndRendering:
    def test_total_interval_count(self):
        # 2^(n+1) - 1 dyadic intervals over a 2^n domain.
        for n in range(5):
            assert len(list(all_dyadic_intervals(n))) == (1 << (n + 1)) - 1

    def test_render_figure1_domain(self):
        art = render_dyadic_tree(4)
        assert "[0,16)" in art
        assert "[8,16)" in art
        assert "[15,16)" in art
        # n + 1 interval rows plus the axis row.
        assert len(art.splitlines()) == 6

    def test_render_rejects_large_domains(self):
        with pytest.raises(ValueError):
            render_dyadic_tree(10)


class TestCoverArrays:
    """Batched covers must equal the scalar covers piece for piece."""

    @staticmethod
    def _intervals(raw):
        return [(min(a, b), max(a, b)) for a, b in raw]

    @given(
        st.lists(
            st.tuples(
                st.integers(0, (1 << 62) - 1), st.integers(0, (1 << 62) - 1)
            ),
            max_size=10,
        )
    )
    def test_dyadic_matches_scalar(self, raw):
        from repro.core.dyadic import dyadic_cover_arrays

        intervals = self._intervals(raw)
        cover = dyadic_cover_arrays(
            [a for a, _ in intervals], [b for _, b in intervals]
        )
        expected = [
            (position, piece.low, piece.level)
            for position, (alpha, beta) in enumerate(intervals)
            for piece in minimal_dyadic_cover(alpha, beta)
        ]
        got = list(
            zip(
                cover.index.tolist(),
                cover.lows.tolist(),
                cover.levels.tolist(),
            )
        )
        assert got == expected
        assert cover.intervals == len(intervals)
        assert cover.counts().tolist() == [
            len(minimal_dyadic_cover(a, b)) for a, b in intervals
        ]

    @given(
        st.lists(
            st.tuples(
                st.integers(0, (1 << 62) - 1), st.integers(0, (1 << 62) - 1)
            ),
            max_size=10,
        )
    )
    def test_quaternary_matches_scalar(self, raw):
        from repro.core.dyadic import quaternary_cover_arrays

        intervals = self._intervals(raw)
        cover = quaternary_cover_arrays(
            [a for a, _ in intervals], [b for _, b in intervals]
        )
        expected = [
            (position, piece.low, piece.level)
            for position, (alpha, beta) in enumerate(intervals)
            for piece in minimal_quaternary_cover(alpha, beta)
        ]
        got = list(
            zip(
                cover.index.tolist(),
                cover.lows.tolist(),
                cover.levels.tolist(),
            )
        )
        assert got == expected
        assert not any(level % 2 for level in cover.levels.tolist())

    def test_empty_batch(self):
        from repro.core.dyadic import dyadic_cover_arrays

        cover = dyadic_cover_arrays([], [])
        assert cover.intervals == 0
        assert cover.lows.size == 0
        assert cover.counts().tolist() == []

    def test_full_domain_single_piece(self):
        from repro.core.dyadic import dyadic_cover_arrays

        cover = dyadic_cover_arrays([0], [(1 << 62) - 1])
        assert cover.lows.tolist() == [0]
        assert cover.levels.tolist() == [62]

    def test_reversed_interval_rejected(self):
        from repro.core.dyadic import dyadic_cover_arrays

        with pytest.raises(ValueError):
            dyadic_cover_arrays([5], [4])

    def test_beyond_63_bits_overflows(self):
        from repro.core.dyadic import dyadic_cover_arrays

        with pytest.raises(OverflowError):
            dyadic_cover_arrays([0], [1 << 63])
