"""Tests for the sketch-driven dynamic histogram builder."""

from __future__ import annotations

import numpy as np
import pytest

from repro.apps.histogram_builder import (
    Bucket,
    build_histogram,
    exact_count_oracle,
    histogram_sse,
    sketch_count_oracle,
)
from repro.apps.histograms import sketch_data_points
from repro.generators import SeedSource
from repro.rangesum.multidim import ProductGenerator
from repro.sketch.ams import SketchScheme
from repro.sketch.atomic import ProductChannel


@pytest.fixture
def bimodal_points(rng):
    dense = rng.integers(0, 16, size=(800, 2))
    sparse = rng.integers(40, 64, size=(200, 2))
    return np.concatenate([dense, sparse])


def frequency_matrix(points, bits=6):
    freq = np.zeros((1 << bits, 1 << bits))
    np.add.at(freq, (points[:, 0], points[:, 1]), 1.0)
    return freq


class TestBucket:
    def test_area_and_density(self):
        bucket = Bucket(rect=((0, 3), (0, 4)), count=40.0)
        assert bucket.area == 20
        assert bucket.density == 2.0


class TestExactDrivenBuilder:
    def test_bucket_count_respected(self, bimodal_points):
        histogram = build_histogram(
            (6, 6), exact_count_oracle(bimodal_points), 8
        )
        assert len(histogram.buckets) == 8

    def test_buckets_partition_domain(self, bimodal_points):
        histogram = build_histogram(
            (6, 6), exact_count_oracle(bimodal_points), 10
        )
        total_area = sum(bucket.area for bucket in histogram.buckets)
        assert total_area == 64 * 64
        # Every point of a sample grid lies in exactly one bucket.
        for x in range(0, 64, 7):
            for y in range(0, 64, 9):
                containing = [
                    b
                    for b in histogram.buckets
                    if b.rect[0][0] <= x <= b.rect[0][1]
                    and b.rect[1][0] <= y <= b.rect[1][1]
                ]
                assert len(containing) == 1

    def test_mass_conserved(self, bimodal_points):
        histogram = build_histogram(
            (6, 6), exact_count_oracle(bimodal_points), 6
        )
        assert histogram.total_mass() == pytest.approx(len(bimodal_points))

    def test_splits_reduce_sse(self, bimodal_points):
        freq = frequency_matrix(bimodal_points)
        oracle = exact_count_oracle(bimodal_points)
        single = build_histogram((6, 6), oracle, 1)
        many = build_histogram((6, 6), oracle, 8)
        assert histogram_sse(many, freq) < histogram_sse(single, freq)

    def test_density_lookup(self, bimodal_points):
        histogram = build_histogram(
            (6, 6), exact_count_oracle(bimodal_points), 4
        )
        # The dense corner must predict a higher density than the void.
        dense = histogram.density_at((5, 5))
        void = histogram.density_at((30, 30))
        assert dense > void

    def test_point_outside_rejected(self, bimodal_points):
        histogram = build_histogram(
            (6, 6), exact_count_oracle(bimodal_points), 2
        )
        with pytest.raises(ValueError):
            histogram.density_at((64, 0))

    def test_validation(self, bimodal_points):
        with pytest.raises(ValueError):
            build_histogram((6, 6), exact_count_oracle(bimodal_points), 0)

    def test_singleton_domain_stops_splitting(self):
        points = np.zeros((5, 1), dtype=int)
        histogram = build_histogram((1,), exact_count_oracle(points), 10)
        # A 2-cell domain can produce at most 2 buckets.
        assert len(histogram.buckets) <= 2


class TestSketchDrivenBuilder:
    def test_sketch_histogram_near_exact_quality(self, bimodal_points):
        source = SeedSource(9)
        scheme = SketchScheme.from_factory(
            lambda src: ProductChannel(ProductGenerator.eh3((6, 6), src)),
            5,
            120,
            source,
        )
        data_sketch = sketch_data_points(scheme, bimodal_points)
        freq = frequency_matrix(bimodal_points)

        sketch_hist = build_histogram(
            (6, 6), sketch_count_oracle(data_sketch, scheme), 8
        )
        exact_hist = build_histogram(
            (6, 6), exact_count_oracle(bimodal_points), 8
        )
        single = build_histogram(
            (6, 6), exact_count_oracle(bimodal_points), 1
        )
        sse_sketch = histogram_sse(sketch_hist, freq)
        sse_exact = histogram_sse(exact_hist, freq)
        sse_single = histogram_sse(single, freq)
        # Streaming (sketch-only) splits capture most of the benefit.
        assert sse_sketch < sse_single
        assert sse_sketch < 3 * sse_exact
