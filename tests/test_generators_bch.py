"""Tests for the general BCH scheme (arbitrary independence level)."""

from __future__ import annotations

from itertools import product

import numpy as np
import pytest

from repro.generators import BCH3, BCH5, SeedSource
from repro.generators.bch import BCH
from repro.theory.independence import is_kwise_independent


class TestConstruction:
    def test_seed_bits(self):
        for k in (1, 2, 3, 4):
            generator = BCH(8, 0, [0] * k)
            assert generator.seed_bits == 8 * k + 1
            assert generator.independence == 2 * k + 1

    def test_validation(self):
        with pytest.raises(ValueError):
            BCH(8, 2, [0])
        with pytest.raises(ValueError):
            BCH(8, 0, [])
        with pytest.raises(ValueError):
            BCH(8, 0, [256])
        with pytest.raises(ValueError):
            BCH.from_source(8, 0, SeedSource(1))


class TestConsistencyWithSpecializedClasses:
    def test_level1_is_bch3(self, source: SeedSource):
        s0 = source.bit()
        s1 = source.bits(8)
        general = BCH(8, s0, [s1])
        special = BCH3(8, s0, s1)
        for i in range(256):
            assert general.bit(i) == special.bit(i)

    def test_level2_is_gf_bch5(self, source: SeedSource):
        s0 = source.bit()
        s1 = source.bits(8)
        s3 = source.bits(8)
        general = BCH(8, s0, [s1, s3])
        special = BCH5(8, s0, s1, s3, mode="gf")
        for i in range(256):
            assert general.bit(i) == special.bit(i)


class TestPowers:
    def test_odd_powers_in_field(self, source: SeedSource):
        from repro.core.gf2 import field

        generator = BCH(6, 0, [1, 1, 1])
        gf = field(6)
        for i in (0, 1, 5, 44, 63):
            powers = generator._powers(i)
            assert powers == [gf.pow(i, 1), gf.pow(i, 3), gf.pow(i, 5)]


class TestVectorized:
    def test_table_path_matches_scalar(self, source: SeedSource):
        generator = BCH.from_source(9, 3, source)
        indices = np.arange(512, dtype=np.uint64)
        vectorized = generator.bits(indices)
        scalar = np.array([generator.bit(i) for i in range(512)], dtype=np.uint8)
        assert np.array_equal(vectorized, scalar)

    def test_large_domain_fallback(self, source: SeedSource):
        generator = BCH.from_source(20, 2, source)
        indices = np.array([0, 1, 77, 1 << 19], dtype=np.uint64)
        vectorized = generator.bits(indices)
        assert list(vectorized) == [generator.bit(int(i)) for i in indices]


class TestIndependence:
    def test_level3_is_7wise_exhaustive(self):
        """BCH level 3 over a 2^3 domain: exactly 7-wise independent."""
        n = 3
        generators = [
            BCH(n, s0, [a, b, c])
            for s0 in (0, 1)
            for a, b, c in product(range(8), range(8), range(8))
        ]
        assert is_kwise_independent(generators, n, 7)
        assert not is_kwise_independent(generators, n, 8)
