"""Tests for stream abstractions and frequency-vector reconstruction."""

from __future__ import annotations

import numpy as np
import pytest

from repro.stream.streams import (
    IntervalStream,
    IntervalUpdate,
    PointStream,
    PointUpdate,
    frequency_vector,
    stream_from_frequencies,
)


class TestUpdates:
    def test_interval_update_size(self):
        update = IntervalUpdate(3, 7)
        assert update.size == 5

    def test_empty_interval_rejected(self):
        with pytest.raises(ValueError):
            IntervalUpdate(5, 4)

    def test_point_defaults(self):
        update = PointUpdate(9)
        assert update.weight == 1.0


class TestPointStream:
    def test_append_and_iterate(self):
        stream = PointStream(4)
        stream.append(3)
        stream.append(7, weight=2.0)
        assert len(stream) == 2
        assert [u.item for u in stream] == [3, 7]

    def test_domain_enforced(self):
        stream = PointStream(4)
        with pytest.raises(ValueError):
            stream.append(16)

    def test_frequency_vector(self):
        stream = PointStream(3)
        stream.append(1)
        stream.append(1)
        stream.append(5, weight=-1.0)
        freq = frequency_vector(stream)
        assert list(freq) == [0, 2, 0, 0, 0, -1, 0, 0]


class TestIntervalStream:
    def test_append_and_total(self):
        stream = IntervalStream(4)
        stream.append(0, 3)
        stream.append(10, 10, weight=5.0)
        assert len(stream) == 2
        assert stream.total_points() == 4 + 5

    def test_domain_enforced(self):
        stream = IntervalStream(4)
        with pytest.raises(ValueError):
            stream.append(10, 16)

    def test_frequency_vector_expands_intervals(self):
        stream = IntervalStream(3)
        stream.append(1, 3)
        stream.append(2, 5, weight=2.0)
        freq = frequency_vector(stream)
        assert list(freq) == [0, 1, 3, 3, 2, 2, 0, 0]


class TestRoundTrips:
    def test_stream_from_frequencies(self):
        freq = np.array([0, 2, 0, 1])
        stream = stream_from_frequencies(freq, 2)
        rebuilt = frequency_vector(stream)
        assert list(rebuilt) == [0, 2, 0, 1]

    def test_non_integer_counts_rejected(self):
        with pytest.raises(ValueError):
            stream_from_frequencies(np.array([0.5]), 2)

    def test_too_long_rejected(self):
        with pytest.raises(ValueError):
            stream_from_frequencies(np.zeros(5), 2)
