"""Tests for the d-dimensional spatial join extension."""

from __future__ import annotations

from itertools import product

import numpy as np
import pytest

from repro.apps.spatialjoin2d import (
    RectDataset,
    estimate_rect_join,
    exact_rect_join,
    rect_join_reduction_truth,
    sketch_rect_dataset,
)
from repro.generators import EH3, SeedSource
from repro.rangesum.multidim import ProductGenerator
from repro.sketch.ams import SketchScheme
from repro.sketch.atomic import GeneratorChannel, ProductChannel


def tiny_pair():
    first = RectDataset(
        "A",
        (3, 3),
        np.array(
            [
                [[0, 3], [1, 4]],
                [[2, 6], [0, 2]],
                [[5, 7], [3, 7]],
            ]
        ),
    )
    second = RectDataset(
        "B",
        (3, 3),
        np.array(
            [
                [[1, 2], [2, 5]],
                [[4, 7], [1, 3]],
            ]
        ),
    )
    return first, second


class TestRectDataset:
    def test_validation(self):
        with pytest.raises(ValueError):
            RectDataset("X", (3, 3), np.zeros((2, 2)))  # wrong rank
        with pytest.raises(ValueError):
            RectDataset("X", (3,), np.zeros((2, 2, 2), dtype=int))
        with pytest.raises(ValueError):
            RectDataset("X", (3, 3), np.array([[[3, 1], [0, 2]]]))
        with pytest.raises(ValueError):
            RectDataset("X", (3, 3), np.array([[[0, 8], [0, 2]]]))

    def test_metadata(self):
        first, __ = tiny_pair()
        assert len(first) == 3
        assert first.dimensions == 2


class TestExactReferences:
    def test_exact_join_by_hand(self):
        first, second = tiny_pair()
        # Verified by hand: B0 meets A0 and A1; B1 meets A1 and A2.
        assert exact_rect_join(first, second) == 4

    def test_reduction_truth_near_exact(self):
        first, second = tiny_pair()
        truth = exact_rect_join(first, second)
        reduced = rect_join_reduction_truth(first, second)
        assert abs(reduced - truth) <= 1.0  # end-point coincidences only

    def test_matches_bruteforce_on_random_data(self, rng):
        lows = rng.integers(0, 40, size=(30, 2))
        highs = lows + rng.integers(0, 20, size=(30, 2))
        first = RectDataset("A", (6, 6), np.stack([lows, np.minimum(highs, 63)], axis=2))
        lows = rng.integers(0, 40, size=(25, 2))
        highs = lows + rng.integers(0, 20, size=(25, 2))
        second = RectDataset("B", (6, 6), np.stack([lows, np.minimum(highs, 63)], axis=2))
        expected = 0
        for r in first.rects:
            for s in second.rects:
                if all(
                    max(r[k, 0], s[k, 0]) <= min(r[k, 1], s[k, 1])
                    for k in range(2)
                ):
                    expected += 1
        assert exact_rect_join(first, second) == expected


class TestEstimator:
    def test_exactly_unbiased_over_full_seed_space(self):
        """E[estimator] == reduction truth, enumerated over ALL seeds."""
        first, second = tiny_pair()
        target = rect_join_reduction_truth(first, second)
        total = 0.0
        count = 0
        for s0x, s1x in product((0, 1), range(8)):
            for s0y, s1y in product((0, 1), range(8)):
                generator = ProductGenerator(
                    [EH3(3, s0x, s1x), EH3(3, s0y, s1y)]
                )
                scheme = SketchScheme([[ProductChannel(generator)]])
                first_sketches = sketch_rect_dataset(scheme, first)
                second_sketches = sketch_rect_dataset(scheme, second)
                total += estimate_rect_join(first_sketches, second_sketches)
                count += 1
        assert total / count == pytest.approx(target)

    def test_estimate_converges_statistically(self, rng, source: SeedSource):
        lows = rng.integers(0, 48, size=(40, 2))
        sides = rng.integers(4, 16, size=(40, 2))
        first = RectDataset(
            "A", (6, 6), np.stack([lows, np.minimum(lows + sides, 63)], axis=2)
        )
        lows = rng.integers(0, 48, size=(40, 2))
        sides = rng.integers(4, 16, size=(40, 2))
        second = RectDataset(
            "B", (6, 6), np.stack([lows, np.minimum(lows + sides, 63)], axis=2)
        )
        target = rect_join_reduction_truth(first, second)
        estimates = []
        for _ in range(5):
            scheme = SketchScheme.from_factory(
                lambda src: ProductChannel(ProductGenerator.eh3((6, 6), src)),
                5,
                400,
                source,
            )
            estimates.append(
                estimate_rect_join(
                    sketch_rect_dataset(scheme, first),
                    sketch_rect_dataset(scheme, second),
                )
            )
        assert np.mean(estimates) == pytest.approx(target, rel=0.5)

    def test_requires_product_channels(self, source: SeedSource):
        first, __ = tiny_pair()
        scheme = SketchScheme.from_factory(
            lambda src: GeneratorChannel(EH3.from_source(6, src)), 1, 1, source
        )
        with pytest.raises(TypeError):
            sketch_rect_dataset(scheme, first)

    def test_one_dimensional_special_case(self, source: SeedSource):
        """d = 1 must agree with the dedicated 1-D reduction."""
        from repro.apps.spatialjoin import endpoint_join_truth
        from repro.workloads.spatial import SegmentDataset

        segments = np.array([[0, 10], [5, 20], [30, 40]])
        others = np.array([[8, 33], [25, 28]])
        first_1d = SegmentDataset("A", 6, segments)
        second_1d = SegmentDataset("B", 6, others)
        first = RectDataset("A", (6,), segments[:, None, :])
        second = RectDataset("B", (6,), others[:, None, :])
        assert rect_join_reduction_truth(first, second) == pytest.approx(
            endpoint_join_truth(first_1d, second_1d)
        )


class TestMixedSum:
    def test_mixed_matches_manual_product(self, source: SeedSource):
        generator = ProductGenerator.eh3((5, 5), source)
        gx, gy = generator.factors
        spec = ((3, 17), 9)
        assert generator.mixed_sum(spec) == gx.range_sum(3, 17) * gy.value(9)
        spec = (4, (0, 31))
        assert generator.mixed_sum(spec) == gx.value(4) * gy.range_sum(0, 31)

    def test_all_pairs_equals_rect_sum(self, source: SeedSource):
        generator = ProductGenerator.eh3((5, 5), source)
        rect = ((2, 9), (11, 30))
        assert generator.mixed_sum(rect) == generator.rect_sum(rect)

    def test_rank_checked(self, source: SeedSource):
        generator = ProductGenerator.eh3((5, 5), source)
        with pytest.raises(ValueError):
            generator.mixed_sum((1,))
