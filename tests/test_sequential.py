"""Tests for incremental sequential generation."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.generators import BCH3, EH3, RM7, SeedSource, Toeplitz
from repro.generators.sequential import sequential_bits, sequential_values


class TestSequentialBits:
    @given(st.data())
    @settings(max_examples=100)
    def test_bch3_matches_direct(self, data):
        n = data.draw(st.integers(min_value=1, max_value=14))
        s0 = data.draw(st.integers(min_value=0, max_value=1))
        s1 = data.draw(st.integers(min_value=0, max_value=(1 << n) - 1))
        generator = BCH3(n, s0, s1)
        start = data.draw(st.integers(min_value=0, max_value=(1 << n) - 1))
        count = data.draw(st.integers(min_value=1, max_value=(1 << n) - start))
        scanned = list(sequential_bits(generator, start, count))
        direct = [generator.bit(i) for i in range(start, start + count)]
        assert scanned == direct

    @given(st.data())
    @settings(max_examples=100)
    def test_eh3_matches_direct(self, data):
        n = data.draw(st.integers(min_value=1, max_value=14))
        s0 = data.draw(st.integers(min_value=0, max_value=1))
        s1 = data.draw(st.integers(min_value=0, max_value=(1 << n) - 1))
        generator = EH3(n, s0, s1)
        start = data.draw(st.integers(min_value=0, max_value=(1 << n) - 1))
        count = data.draw(st.integers(min_value=1, max_value=(1 << n) - start))
        scanned = list(sequential_bits(generator, start, count))
        direct = [generator.bit(i) for i in range(start, start + count)]
        assert scanned == direct

    def test_generic_fallback(self, source: SeedSource):
        generator = RM7.from_source(6, source)
        scanned = list(sequential_bits(generator, 10, 30))
        assert scanned == [generator.bit(i) for i in range(10, 40)]

    def test_values_mapping(self, source: SeedSource):
        generator = EH3.from_source(8, source)
        values = list(sequential_values(generator, 0, 256))
        assert values == [generator.value(i) for i in range(256)]

    def test_whole_domain_scan(self):
        generator = EH3(8, 1, 0xB4)
        assert sum(sequential_values(generator, 0, 256)) == generator.total_sum()

    def test_bounds_checked(self, source: SeedSource):
        generator = BCH3.from_source(4, source)
        with pytest.raises(ValueError):
            list(sequential_bits(generator, 10, 7))
        with pytest.raises(ValueError):
            list(sequential_bits(generator, 0, -1))

    def test_empty_scan(self, source: SeedSource):
        generator = BCH3.from_source(4, source)
        assert list(sequential_bits(generator, 3, 0)) == []


class TestToeplitzRangeSum:
    def test_collapse_preserves_bits(self, source: SeedSource):
        generator = Toeplitz.from_source(8, source)
        collapsed = generator.as_bch3()
        for i in range(256):
            assert collapsed.bit(i) == generator.bit(i)

    def test_range_sum_matches_brute_force(self, source: SeedSource):
        from repro.rangesum import brute_force_range_sum

        generator = Toeplitz.from_source(10, source)
        for alpha, beta in ((0, 1023), (17, 900), (512, 513)):
            assert generator.range_sum(alpha, beta) == brute_force_range_sum(
                generator, alpha, beta
            )
