"""Tests for generator/scheme/sketch serialization."""

from __future__ import annotations

import json

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.generators import BCH5, EH3, SeedSource
from repro.rangesum.dmap import DMAP
from repro.rangesum.multidim import ProductDMAP, ProductGenerator
from repro.schemes import all_specs, get_spec, registered_schemes
from repro.sketch.ams import SketchScheme, estimate_product
from repro.sketch.atomic import (
    DMAPChannel,
    GeneratorChannel,
    ProductChannel,
    ProductDMAPChannel,
)
from repro.sketch.serialize import (
    SERIALIZE_VERSION,
    channel_from_dict,
    channel_to_dict,
    generator_from_dict,
    generator_to_dict,
    scheme_fingerprint,
    scheme_from_dict,
    scheme_to_dict,
    sketch_from_dict,
    sketch_to_dict,
    values_checksum,
)


def _scheme_bits(name: str) -> int:
    # RM7's O(n^2) seed and slow sweeps want a small domain in tests.
    return 6 if name == "rm7" else 10


def _roundtrip_bitwise(generator) -> None:
    data = json.loads(json.dumps(generator_to_dict(generator)))
    rebuilt = generator_from_dict(data)
    indices = np.arange(min(generator.domain_size, 256), dtype=np.uint64)
    assert np.array_equal(
        rebuilt.bits(indices), generator.bits(indices)
    ), type(generator).__name__


class TestGeneratorRoundTrip:
    @pytest.mark.parametrize("name", registered_schemes())
    def test_registered_kinds_roundtrip_bitwise(
        self, source: SeedSource, name: str
    ):
        """Every scheme in the registry round-trips bit-for-bit -- a new
        registration is covered here with no test edit."""
        spec = get_spec(name)
        _roundtrip_bitwise(spec.factory(_scheme_bits(name), source))

    def test_bch5_arithmetic_variant_roundtrips(self, source: SeedSource):
        # The registry factory draws the default (gf) cube; the
        # arithmetic variant shares the codec kind and must survive too.
        _roundtrip_bitwise(BCH5.from_source(10, source, mode="arithmetic"))

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="registered kinds"):
            generator_from_dict({"kind": "mystery"})

    def test_unsupported_generator_rejected(self):
        class Custom:
            pass

        with pytest.raises(TypeError):
            generator_to_dict(Custom())


class TestChannelRoundTrip:
    def test_dmap_channel(self, source: SeedSource):
        channel = DMAPChannel(DMAP.from_source(8, source))
        rebuilt = channel_from_dict(
            json.loads(json.dumps(channel_to_dict(channel)))
        )
        for bounds in ((0, 100), (37, 201)):
            assert rebuilt.interval(bounds) == channel.interval(bounds)
        for point in (0, 99, 255):
            assert rebuilt.point(point) == channel.point(point)

    def test_product_channels(self, source: SeedSource):
        product = ProductChannel(ProductGenerator.eh3((5, 5), source))
        rebuilt = channel_from_dict(channel_to_dict(product))
        assert rebuilt.point((3, 7)) == product.point((3, 7))
        rect = ((0, 10), (4, 21))
        assert rebuilt.interval(rect) == product.interval(rect)

        pdmap = ProductDMAPChannel(ProductDMAP.from_source((5, 5), source))
        rebuilt = channel_from_dict(channel_to_dict(pdmap))
        assert rebuilt.point((3, 7)) == pdmap.point((3, 7))

    def test_unknown_channel_kind(self):
        with pytest.raises(ValueError):
            channel_from_dict({"kind": "other"})


class TestSchemeAndSketch:
    def test_distributed_protocol(self, source: SeedSource):
        """The real use-case: coordinator ships the scheme, sites sketch,
        serialized sketches merge and estimate correctly."""
        scheme = SketchScheme.from_generators(
            lambda src: EH3.from_source(10, src), 3, 40, source
        )
        wire_scheme = json.dumps(scheme_to_dict(scheme))

        # Site A (separate process, reconstructs the scheme from JSON).
        site_scheme = scheme_from_dict(json.loads(wire_scheme))
        site_sketch = site_scheme.sketch()
        for point in (5, 5, 200):
            site_sketch.update_point(point)
        wire_sketch = json.dumps(sketch_to_dict(site_sketch))

        # Coordinator rebuilds the sketch AGAINST ITS OWN scheme object
        # and compares with a locally built one.
        received = sketch_from_dict(json.loads(wire_sketch), scheme=scheme)
        local = scheme.sketch()
        for point in (5, 5, 200):
            local.update_point(point)
        assert np.allclose(received.values(), local.values())
        # And the combined estimate works.
        probe = scheme.sketch()
        probe.update_point(5)
        # X = (2 xi_5 + xi_200) xi_5 = 2 + noise of sd 1/sqrt(averages).
        assert estimate_product(received, probe) == pytest.approx(2.0, abs=0.6)

    def test_shape_mismatch_rejected(self, source: SeedSource):
        scheme = SketchScheme.from_generators(
            lambda src: EH3.from_source(8, src), 2, 2, source
        )
        data = sketch_to_dict(scheme.sketch())
        data["values"] = [[0.0]]
        with pytest.raises(ValueError):
            sketch_from_dict(data)

    def test_kind_tags_checked(self):
        with pytest.raises(ValueError):
            scheme_from_dict({"kind": "nope"})
        with pytest.raises(ValueError):
            sketch_from_dict({"kind": "nope"})


# One factory per supported channel kind: every registered generator
# scheme wrapped directly (derived from the registry, so a new
# registration is exercised automatically), the BCH5 arithmetic variant,
# DMAP, and the two d-dimensional products.
ALL_CHANNEL_FACTORIES = [
    *(
        (
            f"generator-{spec.name}",
            lambda src, spec=spec: GeneratorChannel(
                spec.factory(6 if spec.name == "rm7" else 8, src)
            ),
        )
        for spec in all_specs()
    ),
    ("generator-bch5-arith",
     lambda src: GeneratorChannel(BCH5.from_source(8, src, mode="arithmetic"))),
    ("dmap", lambda src: DMAPChannel(DMAP.from_source(8, src))),
    ("product",
     lambda src: ProductChannel(ProductGenerator.eh3((4, 4), src))),
    ("product-dmap",
     lambda src: ProductDMAPChannel(ProductDMAP.from_source((4, 4), src))),
]

_MULTIDIM = {"product", "product-dmap"}


def _exercise(name: str, sketch) -> None:
    """Stream a fixed workload appropriate to the channel's domain."""
    if name in _MULTIDIM:
        for point in ((3, 7), (0, 0), (15, 15), (3, 7)):
            sketch.update_point(point, 1.0)
        sketch.update_interval(((0, 10), (4, 15)), 2.0)
        sketch.update_point((9, 2), -1.0)
    else:
        for point in (5, 5, 17, 40, 63):
            sketch.update_point(point, 1.0)
        sketch.update_interval((3, 50), 2.0)
        sketch.update_point(11, -3.5)


class TestAllChannelKindsRoundTrip:
    @pytest.mark.parametrize(
        "name, factory", ALL_CHANNEL_FACTORIES, ids=[n for n, _ in
                                                     ALL_CHANNEL_FACTORIES]
    )
    def test_sketch_roundtrip_bitwise(self, source, name, factory):
        scheme = SketchScheme.from_factory(factory, 2, 6, source)
        sketch = scheme.sketch()
        _exercise(name, sketch)
        wire = json.loads(json.dumps(sketch_to_dict(sketch)))
        rebuilt = sketch_from_dict(wire)  # scheme reconstructed from wire
        assert np.array_equal(rebuilt.values(), sketch.values())
        # The self-join answer (the paper's F2 estimate) is bit-identical.
        assert estimate_product(rebuilt, rebuilt) == estimate_product(
            sketch, sketch
        )

    @pytest.mark.parametrize(
        "name, factory", ALL_CHANNEL_FACTORIES, ids=[n for n, _ in
                                                     ALL_CHANNEL_FACTORIES]
    )
    def test_scheme_fingerprint_stable_across_roundtrip(
        self, source, name, factory
    ):
        scheme = SketchScheme.from_factory(factory, 2, 3, source)
        rebuilt = scheme_from_dict(
            json.loads(json.dumps(scheme_to_dict(scheme)))
        )
        assert scheme_fingerprint(rebuilt) == scheme_fingerprint(scheme)


class TestWireIntegrity:
    def _sketch(self, source):
        scheme = SketchScheme.from_generators(
            lambda src: EH3.from_source(8, src), 2, 4, source
        )
        sketch = scheme.sketch()
        sketch.update_interval((0, 100), 1.0)
        return scheme, sketch

    def test_checksum_corruption_detected(self, source):
        _, sketch = self._sketch(source)
        data = sketch_to_dict(sketch)
        data["values"][0][0] += 1.0
        with pytest.raises(ValueError, match="checksum"):
            sketch_from_dict(data)

    def test_non_finite_counters_rejected(self, source):
        _, sketch = self._sketch(source)
        data = sketch_to_dict(sketch)
        data["values"][0][0] = float("nan")
        data["values"][1][2] = float("inf")
        data["checksum"] = values_checksum(data["values"])
        with pytest.raises(ValueError, match="2 non-finite"):
            sketch_from_dict(data)

    def test_fingerprint_mismatch_against_provided_scheme(self, source):
        scheme, sketch = self._sketch(source)
        other = SketchScheme.from_generators(
            lambda src: EH3.from_source(8, src), 2, 4, source
        )
        data = sketch_to_dict(sketch, include_scheme=False)
        with pytest.raises(ValueError, match="fingerprint"):
            sketch_from_dict(data, scheme=other)

    def test_scheme_fingerprint_tamper_detected(self, source):
        scheme, _ = self._sketch(source)
        data = scheme_to_dict(scheme)
        data["fingerprint"] = "0" * 64
        with pytest.raises(ValueError, match="fingerprint"):
            scheme_from_dict(data)

    def test_future_version_rejected(self, source):
        scheme, sketch = self._sketch(source)
        bad_scheme = scheme_to_dict(scheme)
        bad_scheme["version"] = SERIALIZE_VERSION + 1
        with pytest.raises(ValueError, match="version"):
            scheme_from_dict(bad_scheme)
        bad_sketch = sketch_to_dict(sketch)
        bad_sketch["version"] = SERIALIZE_VERSION + 1
        with pytest.raises(ValueError, match="version"):
            sketch_from_dict(bad_sketch)

    def test_v0_envelopes_still_accepted(self, source):
        # Pre-versioned payloads carry no version/checksum/fingerprint.
        scheme, sketch = self._sketch(source)
        data = sketch_to_dict(sketch)
        for key in ("version", "checksum", "fingerprint"):
            data.pop(key)
            data["scheme"].pop(key, None)
        rebuilt = sketch_from_dict(data)
        assert np.array_equal(rebuilt.values(), sketch.values())

    def test_missing_scheme_needs_argument(self, source):
        _, sketch = self._sketch(source)
        data = sketch_to_dict(sketch, include_scheme=False)
        with pytest.raises(ValueError, match="pass scheme="):
            sketch_from_dict(data)


class TestSerializeProperty:
    """deserialize(serialize(s)) answers queries bit-identically."""

    @settings(max_examples=30, deadline=None)
    @given(
        updates=st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=255),
                st.floats(
                    min_value=-1e6, max_value=1e6,
                    allow_nan=False, allow_infinity=False,
                ),
            ),
            max_size=30,
        ),
        seed=st.integers(min_value=0, max_value=2**32 - 1),
    )
    def test_roundtrip_answers_bit_identical(self, updates, seed):
        scheme = SketchScheme.from_generators(
            lambda src: EH3.from_source(8, src), 2, 4, SeedSource(seed)
        )
        sketch = scheme.sketch()
        for item, weight in updates:
            sketch.update_point(item, weight)
        wire = json.loads(json.dumps(sketch_to_dict(sketch)))
        rebuilt = sketch_from_dict(wire)
        assert np.array_equal(rebuilt.values(), sketch.values())
        probe = scheme.sketch()
        probe.update_interval((0, 128), 1.0)
        # Attach the probe to the *rebuilt* scheme: fingerprints agree
        # because the seed material is identical, so the receiver can
        # combine sketches deserialized from different messages.
        rebuilt_probe = sketch_from_dict(
            json.loads(json.dumps(sketch_to_dict(probe))),
            scheme=rebuilt.scheme,
        )
        assert estimate_product(rebuilt, rebuilt_probe) == estimate_product(
            sketch, probe
        )
