"""Tests for generator/scheme/sketch serialization."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.generators import (
    BCH3,
    BCH5,
    EH3,
    RM7,
    SeedSource,
    Toeplitz,
    massdal2,
)
from repro.rangesum.dmap import DMAP
from repro.rangesum.multidim import ProductDMAP, ProductGenerator
from repro.sketch.ams import SketchScheme, estimate_product
from repro.sketch.atomic import (
    DMAPChannel,
    GeneratorChannel,
    ProductChannel,
    ProductDMAPChannel,
)
from repro.sketch.serialize import (
    channel_from_dict,
    channel_to_dict,
    generator_from_dict,
    generator_to_dict,
    scheme_from_dict,
    scheme_to_dict,
    sketch_from_dict,
    sketch_to_dict,
)


def all_generator_kinds(source: SeedSource):
    return [
        BCH3.from_source(10, source),
        EH3.from_source(10, source),
        BCH5.from_source(10, source, mode="gf"),
        BCH5.from_source(10, source, mode="arithmetic"),
        RM7.from_source(6, source),
        massdal2(10, source),
        Toeplitz.from_source(10, source),
    ]


class TestGeneratorRoundTrip:
    def test_all_kinds_roundtrip_bitwise(self, source: SeedSource):
        for generator in all_generator_kinds(source):
            data = json.loads(json.dumps(generator_to_dict(generator)))
            rebuilt = generator_from_dict(data)
            indices = np.arange(
                min(generator.domain_size, 256), dtype=np.uint64
            )
            assert np.array_equal(
                rebuilt.bits(indices), generator.bits(indices)
            ), type(generator).__name__

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            generator_from_dict({"kind": "mystery"})

    def test_unsupported_generator_rejected(self):
        class Custom:
            pass

        with pytest.raises(TypeError):
            generator_to_dict(Custom())


class TestChannelRoundTrip:
    def test_dmap_channel(self, source: SeedSource):
        channel = DMAPChannel(DMAP.from_source(8, source))
        rebuilt = channel_from_dict(
            json.loads(json.dumps(channel_to_dict(channel)))
        )
        for bounds in ((0, 100), (37, 201)):
            assert rebuilt.interval(bounds) == channel.interval(bounds)
        for point in (0, 99, 255):
            assert rebuilt.point(point) == channel.point(point)

    def test_product_channels(self, source: SeedSource):
        product = ProductChannel(ProductGenerator.eh3((5, 5), source))
        rebuilt = channel_from_dict(channel_to_dict(product))
        assert rebuilt.point((3, 7)) == product.point((3, 7))
        rect = ((0, 10), (4, 21))
        assert rebuilt.interval(rect) == product.interval(rect)

        pdmap = ProductDMAPChannel(ProductDMAP.from_source((5, 5), source))
        rebuilt = channel_from_dict(channel_to_dict(pdmap))
        assert rebuilt.point((3, 7)) == pdmap.point((3, 7))

    def test_unknown_channel_kind(self):
        with pytest.raises(ValueError):
            channel_from_dict({"kind": "other"})


class TestSchemeAndSketch:
    def test_distributed_protocol(self, source: SeedSource):
        """The real use-case: coordinator ships the scheme, sites sketch,
        serialized sketches merge and estimate correctly."""
        scheme = SketchScheme.from_generators(
            lambda src: EH3.from_source(10, src), 3, 40, source
        )
        wire_scheme = json.dumps(scheme_to_dict(scheme))

        # Site A (separate process, reconstructs the scheme from JSON).
        site_scheme = scheme_from_dict(json.loads(wire_scheme))
        site_sketch = site_scheme.sketch()
        for point in (5, 5, 200):
            site_sketch.update_point(point)
        wire_sketch = json.dumps(sketch_to_dict(site_sketch))

        # Coordinator rebuilds the sketch AGAINST ITS OWN scheme object
        # and compares with a locally built one.
        received = sketch_from_dict(json.loads(wire_sketch), scheme=scheme)
        local = scheme.sketch()
        for point in (5, 5, 200):
            local.update_point(point)
        assert np.allclose(received.values(), local.values())
        # And the combined estimate works.
        probe = scheme.sketch()
        probe.update_point(5)
        # X = (2 xi_5 + xi_200) xi_5 = 2 + noise of sd 1/sqrt(averages).
        assert estimate_product(received, probe) == pytest.approx(2.0, abs=0.6)

    def test_shape_mismatch_rejected(self, source: SeedSource):
        scheme = SketchScheme.from_generators(
            lambda src: EH3.from_source(8, src), 2, 2, source
        )
        data = sketch_to_dict(scheme.sketch())
        data["values"] = [[0.0]]
        with pytest.raises(ValueError):
            sketch_from_dict(data)

    def test_kind_tags_checked(self):
        with pytest.raises(ValueError):
            scheme_from_dict({"kind": "nope"})
        with pytest.raises(ValueError):
            sketch_from_dict({"kind": "nope"})
