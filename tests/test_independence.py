"""Exhaustive k-wise independence certification (Definition 1).

These tests enumerate the FULL seed space of each scheme on a small domain
and verify the exact uniform k-wise independence degree -- both that the
claimed degree holds and that one degree more fails (so the schemes are not
secretly better, which would invalidate the paper's variance analysis).
"""

from __future__ import annotations

from itertools import combinations

import pytest

from repro.generators import BCH3, BCH5, EH3, RM7, SeedSource, Toeplitz
from repro.generators.toeplitz import ToeplitzHash
from repro.theory.independence import (
    bit_table,
    is_kwise_independent,
    max_exact_independence,
    pattern_counts,
    sampled_pattern_chisq,
)

N = 4  # domain 2^4 = 16: big enough to be meaningful, small enough to enumerate


def all_bch3(n: int) -> list[BCH3]:
    return [
        BCH3(n, s0, s1) for s0 in (0, 1) for s1 in range(1 << n)
    ]


def all_eh3(n: int) -> list[EH3]:
    return [
        EH3(n, s0, s1) for s0 in (0, 1) for s1 in range(1 << n)
    ]


def all_bch5(n: int) -> list[BCH5]:
    return [
        BCH5(n, s0, s1, s3, mode="gf")
        for s0 in (0, 1)
        for s1 in range(1 << n)
        for s3 in range(1 << n)
    ]


def all_rm7(n: int) -> list[RM7]:
    """Every RM7 seed over a (tiny) n-bit domain."""
    generators = []
    pair_positions = [(u, v) for u in range(n) for v in range(u + 1, n)]
    for s0 in (0, 1):
        for s1 in range(1 << n):
            for quad in range(1 << len(pair_positions)):
                rows = [0] * n
                for bit, (u, v) in enumerate(pair_positions):
                    if (quad >> bit) & 1:
                        rows[u] |= 1 << v
                generators.append(RM7(n, s0, s1, rows))
    return generators


class TestBCH3:
    def test_exactly_3_wise(self):
        generators = all_bch3(N)
        assert is_kwise_independent(generators, N, 3)
        assert not is_kwise_independent(generators, N, 4)

    def test_max_degree(self):
        assert max_exact_independence(all_bch3(3), 3) == 3

    def test_4wise_failure_is_the_xor_quadruples(self):
        """BCH3 fails 4-wise exactly on quadruples with i^j^k^l == 0."""
        generators = all_bch3(N)
        table = bit_table(generators, N)
        for quad in combinations(range(8), 4):
            counts = pattern_counts(table, list(quad))
            uniform = (counts == len(generators) // 16).all()
            i, j, k, l = quad
            assert uniform == (i ^ j ^ k ^ l != 0)


class TestEH3:
    def test_exactly_3_wise(self):
        generators = all_eh3(N)
        assert is_kwise_independent(generators, N, 3)
        assert not is_kwise_independent(generators, N, 4)

    def test_same_independence_as_bch3(self):
        """The nonlinear h neither helps nor hurts formal independence."""
        assert max_exact_independence(all_eh3(3), 3) == 3


class TestBCH5:
    def test_exactly_5_wise(self):
        generators = all_bch5(N)
        assert is_kwise_independent(generators, N, 5)
        assert not is_kwise_independent(generators, N, 6)

    def test_arithmetic_mode_weaker(self):
        """The paper's footnote-2 arithmetic cube loses exact 5-wiseness...

        ...on some domains -- it is a speed/accuracy trade-off, not an
        equivalent construction.  We check 4-wise failure exists OR holds;
        the important property is that the GF mode is the certified one.
        (For n = 4 the arithmetic cube i^3 mod 16 is degenerate: e.g. it
        maps both 2 -> 8 and 6 -> 8.)
        """
        generators = [
            BCH5(N, s0, s1, s3, mode="arithmetic")
            for s0 in (0, 1)
            for s1 in range(1 << N)
            for s3 in range(1 << N)
        ]
        assert not is_kwise_independent(generators, N, 5)


class TestRM7:
    def test_exactly_7_wise_small_domain(self):
        n = 3  # seed space 2^(1+3+3) = 128, domain 8
        generators = all_rm7(n)
        assert is_kwise_independent(generators, n, 7)
        assert not is_kwise_independent(generators, n, 8)

    def test_at_least_4_wise_n4(self):
        """On n = 4 check 4-wise uniformity on sampled index subsets."""
        generators = all_rm7(4)  # 2^11 = 2048 seeds
        subsets = [(0, 1, 2, 3), (1, 5, 10, 15), (3, 6, 9, 12), (0, 7, 8, 15)]
        assert is_kwise_independent(generators, 4, 4, index_subsets=subsets)


class TestToeplitz:
    def test_exactly_3_wise(self):
        """The 1-bit projection collapses to BCH3, hence exactly 3-wise."""
        n, m = 3, 2
        generators = [
            Toeplitz(n, ToeplitzHash(n, m, diag, off))
            for diag in range(1 << (n + m - 1))
            for off in range(1 << m)
        ]
        assert is_kwise_independent(generators, n, 3)
        assert not is_kwise_independent(generators, n, 4)


class TestSampledChiSquare:
    def test_polyprime_bits_look_uniform(self):
        source = SeedSource(123)
        from repro.generators import massdal4

        statistic = sampled_pattern_chisq(
            lambda: massdal4(10, source),
            positions=(1, 17, 300, 999),
            samples=800,
        )
        # 15 degrees of freedom; 99.9th percentile ~ 37.7.
        assert statistic < 45.0

    def test_rejects_bad_sample_count(self):
        with pytest.raises(ValueError):
            sampled_pattern_chisq(lambda: None, (0,), 0)


class TestHarness:
    def test_non_divisible_seed_space_fails(self):
        """A seed space not divisible by 2^k can never be k-wise uniform."""
        generators = all_bch3(2)[:-1]  # 7 seeds
        assert not is_kwise_independent(generators, 2, 2)

    def test_pattern_counts_shape(self):
        generators = all_bch3(3)
        table = bit_table(generators, 3)
        counts = pattern_counts(table, [0, 1, 2])
        assert counts.shape == (8,)
        assert counts.sum() == len(generators)
