"""The typed query engine: bit-identity, planning, hierarchy surfaces.

This suite is the acceptance gate of the ``repro.query`` refactor:

* **bit-identity** -- every refactored path (point, range-sum, F2,
  join-size; local, stream processor, cluster) must return the exact
  floats of the historical inline reduction
  ``float(np.median((x.values() * y.values()).mean(axis=1)))``, for
  every registered scheme;
* **planner properties** -- every :class:`LevelPlan` tiles its interval
  exactly once and matches the scalar ``core/dyadic`` decomposition;
* **hierarchy** -- interval maintenance lands the same counters as
  point-by-point feeding, descent recovers every true heavy hitter on a
  zipf workload within the paper-predicted error envelope, and the rank
  descent finds the true median.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.dyadic import minimal_dyadic_cover, minimal_quaternary_cover
from repro.generators import SeedSource
from repro.query import engine
from repro.query.estimate import (
    empirical_sigma,
    estimate_from_products,
    median_of_means,
    predicted_relative_error,
)
from repro.query.hierarchy import DyadicHierarchy
from repro.query.plan import plan_for_scheme, plan_interval
from repro.query.types import (
    Estimate,
    F2Query,
    HeavyHittersQuery,
    JoinSizeQuery,
    PointQuery,
    QuantileQuery,
    RangeSumQuery,
)
from repro.schemes import get_spec, registered_schemes
from repro.sketch.ams import SketchMatrix, SketchScheme

DOMAIN_BITS = 8
MEDIANS = 3
AVERAGES = 8


def _scheme_for(name: str, domain_bits: int = DOMAIN_BITS) -> SketchScheme:
    spec = get_spec(name)
    return SketchScheme.from_generators(
        lambda source: spec.factory(domain_bits, source),
        MEDIANS,
        AVERAGES,
        SeedSource(0xFEED),
    )


def _loaded_pair(name: str) -> tuple[SketchScheme, SketchMatrix, SketchMatrix]:
    scheme = _scheme_for(name)
    rng = np.random.default_rng(5)
    x = scheme.sketch()
    y = scheme.sketch()
    x.update_points(
        rng.integers(0, 1 << DOMAIN_BITS, size=400, dtype=np.uint64)
    )
    y.update_points(
        rng.integers(0, 1 << DOMAIN_BITS, size=400, dtype=np.uint64)
    )
    return scheme, x, y


def _inline_reduce(x: SketchMatrix, y: SketchMatrix) -> float:
    """The pre-refactor estimate: the exact inline reduction it used."""
    return float(np.median((x.values() * y.values()).mean(axis=1)))


# ---------------------------------------------------------------------------
# The shared reduction


class TestEstimateReduction:
    @pytest.mark.parametrize(
        "shape", [(1, 1), (1, 5), (2, 3), (3, 4), (4, 4), (5, 7), (8, 16)]
    )
    def test_median_of_means_bit_identical_to_numpy(self, shape, rng):
        products = rng.normal(scale=100.0, size=shape)
        expected = float(np.median(products.mean(axis=1)))
        assert median_of_means(products) == expected

    @pytest.mark.parametrize("shape", [(1, 1), (2, 3), (3, 4), (5, 7)])
    def test_estimate_value_is_median_of_means(self, shape, rng):
        products = rng.normal(scale=50.0, size=shape)
        est = estimate_from_products(products)
        assert est.value == median_of_means(products)
        assert est.medians == shape[0]
        assert est.averages == shape[1]
        assert est.plan.kind == "none"

    def test_confidence_band_is_sigma_wide(self, rng):
        products = rng.normal(size=(5, 9))
        est = estimate_from_products(products)
        sigma = empirical_sigma(products)
        assert est.ci_high == est.value + sigma
        assert est.ci_low == est.value - sigma
        widened = estimate_from_products(products, error_width_factor=2.5)
        assert widened.ci_high == widened.value + 2.5 * sigma
        assert widened.error_width_factor == 2.5

    def test_rejects_non_grid_input(self):
        with pytest.raises(ValueError):
            estimate_from_products(np.ones(7))
        with pytest.raises(ValueError):
            median_of_means(np.ones((2, 2, 2)))

    def test_predicted_relative_error_formula(self):
        expected = np.sqrt(2.0 / np.pi) * np.sqrt(9.0 / 16.0) / 3.0
        assert predicted_relative_error(9.0, 3.0, 16) == pytest.approx(
            float(expected)
        )
        one_sigma = predicted_relative_error(9.0, 3.0, 16, absolute=False)
        assert one_sigma == pytest.approx(float(np.sqrt(9.0 / 16.0) / 3.0))
        with pytest.raises(ValueError):
            predicted_relative_error(1.0, 0.0, 16)
        with pytest.raises(ValueError):
            predicted_relative_error(1.0, 1.0, 0)


# ---------------------------------------------------------------------------
# Bit-identity of every refactored estimate path, per registered scheme


@pytest.mark.parametrize("name", registered_schemes())
class TestBitIdentity:
    def test_join_size_matches_inline_reduction(self, name):
        _, x, y = _loaded_pair(name)
        assert engine.join_size(x, y).value == _inline_reduce(x, y)

    def test_f2_matches_inline_reduction(self, name):
        _, x, _ = _loaded_pair(name)
        assert engine.self_join(x).value == _inline_reduce(x, x)

    def test_point_matches_probe_sketch(self, name):
        scheme, x, _ = _loaded_pair(name)
        for item in (0, 3, 77, (1 << DOMAIN_BITS) - 1):
            probe = scheme.sketch()
            probe.update_point(item)
            est = engine.point(x, item)
            assert est.value == _inline_reduce(x, probe)
            assert est.plan.kind == "point"

    def test_range_sum_matches_update_interval(self, name):
        scheme, x, _ = _loaded_pair(name)
        rng = np.random.default_rng(17)
        bounds = rng.integers(0, 1 << DOMAIN_BITS, size=(12, 2))
        for a, b in bounds:
            low, high = int(min(a, b)), int(max(a, b))
            probe = scheme.sketch()
            probe.update_interval((low, high))
            est = engine.range_sum(x, low, high)
            assert est.value == _inline_reduce(x, probe)

    def test_execute_on_mapping_matches_direct_calls(self, name):
        _, x, y = _loaded_pair(name)
        sketches = {"r": x, "s": y}
        assert (
            engine.execute(JoinSizeQuery("r", "s"), sketches).value
            == engine.join_size(x, y).value
        )
        assert (
            engine.execute(F2Query("r"), sketches).value
            == engine.self_join(x).value
        )
        assert (
            engine.execute(PointQuery("r", 9), sketches).value
            == engine.point(x, 9).value
        )
        assert (
            engine.execute(RangeSumQuery("r", 10, 90), sketches).value
            == engine.range_sum(x, 10, 90).value
        )


class TestEngineGuards:
    def test_mismatched_schemes_rejected(self):
        _, x, _ = _loaded_pair("eh3")
        _, other, _ = _loaded_pair("bch3")
        with pytest.raises(ValueError, match="share a scheme"):
            engine.product(x, other)

    def test_execute_rejects_hierarchical_on_mapping(self):
        _, x, _ = _loaded_pair("eh3")
        with pytest.raises(TypeError, match="hierarch"):
            engine.execute(HeavyHittersQuery("r", 5.0), {"r": x})
        with pytest.raises(TypeError, match="hierarch"):
            engine.execute(QuantileQuery("r", 0.5), {"r": x})

    def test_execute_rejects_non_target(self):
        with pytest.raises(TypeError):
            engine.execute(F2Query("r"), 42)

    def test_product_of_values_needs_grids(self):
        with pytest.raises(ValueError):
            engine.product_of_values([])

    def test_product_of_values_matches_pairwise(self):
        _, x, y = _loaded_pair("eh3")
        est = engine.product_of_values([x.values(), y.values()])
        assert est.value == _inline_reduce(x, y)


# ---------------------------------------------------------------------------
# Planner properties over a seeded interval population


def _random_bounds(count: int, bits: int, seed: int) -> list[tuple[int, int]]:
    rng = np.random.default_rng(seed)
    pairs = rng.integers(0, 1 << bits, size=(count, 2))
    return [(int(min(a, b)), int(max(a, b))) for a, b in pairs]


@pytest.mark.parametrize("name", registered_schemes())
class TestPlannerProperties:
    def test_plans_cover_exactly_once(self, name):
        scheme = _scheme_for(name)
        for low, high in _random_bounds(60, DOMAIN_BITS, seed=23):
            plan = plan_for_scheme(scheme, low, high)
            assert plan.alpha == low and plan.beta == high
            if plan.kind in ("binary", "quaternary"):
                assert plan.covers_exactly()
            elif plan.kind == "endpoints":
                assert plan.lows == (low,)
            else:  # scalar: the channels re-derive their own cover
                assert plan.pieces == 0

    def test_plans_match_scalar_dyadic_decomposition(self, name):
        scheme = _scheme_for(name)
        for low, high in _random_bounds(60, DOMAIN_BITS, seed=29):
            plan = plan_for_scheme(scheme, low, high)
            if plan.kind == "binary":
                assert plan.intervals() == minimal_dyadic_cover(low, high)
            elif plan.kind == "quaternary":
                assert plan.intervals() == minimal_quaternary_cover(low, high)
                assert all(level % 2 == 0 for level in plan.levels)

    def test_guarded_bounds_fall_back_to_scalar(self, name):
        scheme = _scheme_for(name)
        assert plan_for_scheme(scheme, -3, 10).kind == "scalar"
        assert plan_for_scheme(scheme, 0, 1 << 63).kind == "scalar"
        assert plan_for_scheme(scheme, 0.5, 10).kind == "scalar"


class TestPlanInterval:
    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown decomposition"):
            plan_interval(0, 7, "hexary")

    def test_stats_shape(self):
        plan = plan_interval(3, 200, "binary")
        stats = plan.stats()
        assert stats.kind == "binary"
        assert stats.pieces == plan.pieces
        assert stats.max_level == max(plan.levels)

    def test_scalar_plan_has_no_dyadic_intervals(self):
        plan = plan_interval(-1, 10, "binary")
        assert plan.kind == "scalar"
        with pytest.raises(ValueError):
            plan.intervals()


# ---------------------------------------------------------------------------
# The dyadic hierarchy: maintenance exactness and descent surfaces


def _hierarchy(bits: int = 6, averages: int = AVERAGES) -> DyadicHierarchy:
    spec = get_spec("eh3")
    scheme = SketchScheme.from_generators(
        lambda source: spec.factory(bits, source),
        MEDIANS,
        averages,
        SeedSource(0xFEED),
    )
    return DyadicHierarchy(scheme, bits)


class TestHierarchyMaintenance:
    def test_interval_update_matches_point_feeding(self):
        fast = _hierarchy()
        slow = _hierarchy()
        fast.update_interval(5, 37, weight=2.0)
        for item in range(5, 38):
            slow.update_point(item, weight=2.0)
        for level in range(fast.levels):
            np.testing.assert_array_equal(
                fast.sketch_at(level).values(),
                slow.sketch_at(level).values(),
            )

    def test_batched_points_match_single_points(self):
        batched = _hierarchy()
        single = _hierarchy()
        items = [3, 9, 9, 41, 60]
        batched.update_points(items)
        for item in items:
            single.update_point(item)
        for level in range(batched.levels):
            np.testing.assert_array_equal(
                batched.sketch_at(level).values(),
                single.sketch_at(level).values(),
            )

    def test_scalar_fallbacks_match_fast_paths(self):
        fast = _hierarchy()
        scalar = _hierarchy()
        fast.update_points([1, 17, 33])
        fast.update_interval(8, 23)
        scalar.scalar_update_points([1, 17, 33])
        scalar.scalar_update_interval(8, 23)
        for level in range(fast.levels):
            np.testing.assert_array_equal(
                fast.sketch_at(level).values(),
                scalar.sketch_at(level).values(),
            )

    def test_estimate_blocks_bit_identical_to_point_queries(self):
        hierarchy = _hierarchy()
        rng = np.random.default_rng(3)
        hierarchy.update_points(
            rng.integers(0, 64, size=500, dtype=np.uint64)
        )
        for level in (0, 2, 5):
            blocks = list(range(0, 64 >> level, 3))
            batched = hierarchy.estimate_blocks(level, blocks)
            for position, block in enumerate(blocks):
                direct = engine.point(
                    hierarchy.sketch_at(level), block
                ).value
                assert batched[position] == direct

    def test_counters_roundtrip(self):
        original = _hierarchy()
        original.update_points([2, 2, 50])
        restored = _hierarchy()
        restored.restore_counters(original.counters_state())
        for level in range(original.levels):
            np.testing.assert_array_equal(
                restored.sketch_at(level).values(),
                original.sketch_at(level).values(),
            )
        with pytest.raises(ValueError, match="levels"):
            restored.restore_counters([[[0.0]]])

    def test_rejects_bad_construction_and_intervals(self):
        with pytest.raises(ValueError):
            _hierarchy(bits=0)
        hierarchy = _hierarchy()
        with pytest.raises(ValueError, match="empty interval"):
            hierarchy.update_interval(9, 3)


class TestHeavyHitterDescent:
    """The paper-facing acceptance: zipf recall within the envelope."""

    @pytest.fixture(scope="class")
    def zipf(self):
        bits = 12
        rng = np.random.default_rng(7)
        draws = rng.zipf(1.3, size=20_000)
        items = draws[draws < (1 << bits)]
        spec = get_spec("eh3")
        scheme = SketchScheme.from_generators(
            lambda source: spec.factory(bits, source),
            5,
            200,
            SeedSource(42),
        )
        hierarchy = DyadicHierarchy(scheme, bits)
        hierarchy.update_points(items.astype(np.uint64))
        counts = np.bincount(items, minlength=1 << bits)
        return hierarchy, counts, items.size

    def test_recovers_every_true_hitter(self, zipf):
        hierarchy, counts, total = zipf
        threshold = 0.01 * total
        true_hitters = {
            int(item) for item in np.flatnonzero(counts >= threshold)
        }
        assert true_hitters  # the workload must actually contain hitters
        envelopes = hierarchy.predicted_envelopes()
        slack = [2.0 * envelope for envelope in envelopes]
        reported = hierarchy.heavy_hitters(threshold, slack=slack)
        reported_items = {hitter.item for hitter in reported}
        assert true_hitters <= reported_items
        # Precision side of the trade: everything reported cleared the
        # lowered leaf bar.
        assert all(
            hitter.estimate >= threshold - slack[0] for hitter in reported
        )

    def test_envelopes_follow_the_paper_formula(self, zipf):
        hierarchy, _, _ = zipf
        envelopes = hierarchy.predicted_envelopes()
        assert len(envelopes) == hierarchy.levels
        for level, envelope in enumerate(envelopes):
            f2 = max(engine.self_join(hierarchy.sketch_at(level)).value, 0.0)
            expected = predicted_relative_error(
                f2, 1.0, hierarchy.scheme.averages
            )
            assert envelope == expected
            assert envelope >= 0.0

    def test_true_hitter_estimates_within_envelope(self, zipf):
        hierarchy, counts, total = zipf
        threshold = 0.01 * total
        true_hitters = np.flatnonzero(counts >= threshold)
        estimates = hierarchy.estimate_blocks(0, true_hitters)
        envelope = hierarchy.predicted_envelopes()[0]
        errors = np.abs(estimates - counts[true_hitters])
        # The envelope is the *expected* absolute error; allow the same
        # 2x excursion budget the descent slack uses.
        assert float(errors.max()) <= 2.0 * envelope

    def test_median_quantile_finds_the_true_median(self, zipf):
        hierarchy, counts, _ = zipf
        cumulative = np.cumsum(counts)
        true_median = int(np.searchsorted(cumulative, cumulative[-1] / 2.0))
        est = hierarchy.quantile(0.5)
        assert est.value == float(true_median)
        assert est.plan.kind == "descent"

    def test_slack_validation(self):
        hierarchy = _hierarchy()
        with pytest.raises(ValueError, match="threshold"):
            hierarchy.heavy_hitters(0.0)
        with pytest.raises(ValueError, match="entries"):
            hierarchy.heavy_hitters(1.0, slack=[0.0, 0.0])
        with pytest.raises(ValueError, match="non-negative"):
            hierarchy.heavy_hitters(1.0, slack=-1.0)

    def test_empty_hierarchy_reports_nothing(self):
        hierarchy = _hierarchy()
        assert hierarchy.heavy_hitters(10.0) == []


# ---------------------------------------------------------------------------
# Processor executors stay bit-identical through the dispatch


class TestStreamProcessorQueries:
    @pytest.fixture()
    def processor(self):
        from repro.stream.processor import StreamProcessor

        processor = StreamProcessor(medians=3, averages=8, seed=99)
        processor.register_relation("r", 8)
        processor.register_relation("s", 8)
        processor.register_hierarchy("r")
        rng = np.random.default_rng(13)
        processor.process_points(
            "r", rng.integers(0, 256, size=300, dtype=np.uint64)
        )
        processor.process_points(
            "s", rng.integers(0, 256, size=300, dtype=np.uint64)
        )
        return processor

    def test_answer_dispatches_through_query(self, processor):
        self_join = processor.register_self_join("r")
        join = processor.register_join("r", "s")
        assert (
            processor.answer(self_join)
            == processor.query(F2Query("r")).value
        )
        assert (
            processor.answer(join)
            == processor.query(JoinSizeQuery("r", "s")).value
        )

    def test_query_values_match_engine_on_live_sketches(self, processor):
        x = processor.sketch_of("r")
        y = processor.sketch_of("s")
        assert processor.query(F2Query("r")).value == _inline_reduce(x, x)
        assert (
            processor.query(JoinSizeQuery("r", "s")).value
            == _inline_reduce(x, y)
        )
        probe = processor.scheme_of("r").sketch()
        probe.update_interval((10, 99))
        assert (
            processor.query(RangeSumQuery("r", 10, 99)).value
            == _inline_reduce(x, probe)
        )

    def test_execute_defers_to_processor(self, processor):
        assert (
            engine.execute(F2Query("r"), processor).value
            == processor.query(F2Query("r")).value
        )

    def test_hierarchy_surfaces_require_registration(self, processor):
        with pytest.raises(ValueError, match="hierarchy"):
            processor.heavy_hitters("s", threshold=1.0)
        hitters = processor.heavy_hitters("r", threshold=5.0)
        assert all(isinstance(h.estimate, float) for h in hitters)
        est = processor.quantile("r", 0.5)
        assert isinstance(est, Estimate)

    def test_unsupported_query_rejected(self, processor):
        with pytest.raises(TypeError):
            processor.query(object())


class TestClusterQueries:
    @pytest.fixture()
    def cluster(self, tmp_path):
        from repro.cluster import ClusterConfig, ClusterProcessor

        with ClusterProcessor(
            str(tmp_path / "cluster"),
            shards=2,
            medians=3,
            averages=8,
            seed=31,
            transport="inline",
            config=ClusterConfig(heartbeat_interval=0.0),
        ) as cluster:
            cluster.register_relation("r", 8)
            cluster.ingest_points("r", list(range(0, 200, 3)))
            yield cluster

    def test_answer_matches_typed_query(self, cluster):
        handle = cluster.register_self_join("r")
        answer = cluster.answer(handle)
        estimate = cluster.query(F2Query("r"))
        assert answer.value == estimate.value
        assert answer.coverage == estimate.coverage
        assert estimate.shards is not None
        assert estimate.shards.total_shards == 2

    def test_point_and_range_queries_return_estimates(self, cluster):
        point = cluster.query(PointQuery("r", 3))
        assert isinstance(point, Estimate)
        assert point.plan.kind == "point"
        span = cluster.query(RangeSumQuery("r", 0, 63))
        assert isinstance(span, Estimate)
        assert span.shards is not None

    def test_hierarchical_queries_rejected(self, cluster):
        with pytest.raises(TypeError):
            cluster.query(HeavyHittersQuery("r", 1.0))


# ---------------------------------------------------------------------------
# The bench leg records the identity check and the latency target


class TestQueryEngineBench:
    def test_bench_verifies_identity_and_records_target(self):
        from repro.bench import QUERY_ENGINE_RATIO_TARGET, run_query_engine_bench

        report = run_query_engine_bench(
            points=2_000, queries=8, repeats=1, averages=16
        )
        assert report["config"]["target"] == QUERY_ENGINE_RATIO_TARGET
        for workload in report["workloads"].values():
            assert workload["identical"] is True
            assert workload["ratio"] > 0.0
