"""Tests: the packed structure-of-arrays counter plane.

The plane collapses a whole ``medians x averages`` grid into bit-sliced
seed tables; every batched total it produces must be bit-for-bit what the
per-cell scalar loop computes (within float64's exact-integer range).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.dyadic import dyadic_cover_arrays, quaternary_cover_arrays
from repro.generators import BCH3, EH3, SeedSource
from repro.rangesum.dmap import DMAP
from repro.rangesum.multidim import ProductGenerator
from repro.schemes import PolyPrimePlane, all_specs, get_spec
from repro.sketch.ams import SketchScheme
from repro.sketch.atomic import DMAPChannel, GeneratorChannel, ProductChannel
from repro.sketch.plane import (
    BCH3Plane,
    BCH5Plane,
    DMAPPlane,
    EH3Plane,
    add_totals,
    counter_plane,
    pack_counter_bits,
)

BITS = 10

# Domains narrower than the default where a scheme's test grid wants one
# (BCH5's O(n^2) per-bit work is the only such case today).
_SCHEME_BITS = {"bch5": 8}


def _scheme(channel_factory, medians=2, averages=3, seed=0xDEADBEEF):
    return SketchScheme.from_factory(
        channel_factory, medians, averages, SeedSource(seed)
    )


def scheme_channels(name):
    """Generator-channel factory for a registered scheme, by name."""
    spec = get_spec(name)
    bits = _SCHEME_BITS.get(name, BITS)
    return lambda src: GeneratorChannel(spec.factory(bits, src))


def eh3_channels(bits=BITS):
    return lambda src: GeneratorChannel(EH3.from_source(bits, src))


def bch3_channels(bits=BITS):
    return lambda src: GeneratorChannel(BCH3.from_source(bits, src))


def dmap_channels(bits=BITS):
    return lambda src: DMAPChannel(DMAP.from_source(bits, src))


# Every registered scheme that declares a plane kernel participates in
# the parametrized bit-identity suites below -- registering a new scheme
# with a plane (e.g. polyprime) adds it here with no test edit.
PLANE_SCHEMES = [spec.name for spec in all_specs() if spec.plane is not None]
INTERVAL_SCHEMES = [
    spec.name for spec in all_specs() if spec.interval_kind is not None
]

POINT_FACTORIES = [
    *((name, scheme_channels(name)) for name in PLANE_SCHEMES),
    ("dmap", dmap_channels()),
]
INTERVAL_FACTORIES = [
    *((name, scheme_channels(name)) for name in INTERVAL_SCHEMES),
    ("dmap", dmap_channels()),
]


def _scalar_point_values(scheme, points, weights):
    """Per-counter totals via the per-cell scalar loop."""
    totals = []
    for row in scheme.channels:
        for channel in row:
            total = 0.0
            for point, weight in zip(points, weights):
                total += weight * channel.point(int(point))
            totals.append(total)
    return np.array(totals)


class TestPlaneConstruction:
    def test_plane_types(self):
        assert isinstance(counter_plane(_scheme(eh3_channels())), EH3Plane)
        assert isinstance(counter_plane(_scheme(bch3_channels())), BCH3Plane)
        assert isinstance(
            counter_plane(_scheme(scheme_channels("bch5"))), BCH5Plane
        )
        assert isinstance(
            counter_plane(_scheme(scheme_channels("polyprime"))),
            PolyPrimePlane,
        )
        assert isinstance(counter_plane(_scheme(dmap_channels())), DMAPPlane)

    def test_product_grid_has_no_plane(self):
        scheme = _scheme(
            lambda src: ProductChannel(ProductGenerator.eh3((4, 4), src))
        )
        assert counter_plane(scheme) is None

    def test_plane_cached_on_scheme(self):
        scheme = _scheme(eh3_channels())
        assert counter_plane(scheme) is counter_plane(scheme)
        assert scheme.plane() is counter_plane(scheme)

    def test_pack_counter_bits_roundtrip(self, rng):
        bits = rng.integers(0, 2, size=(5, 130), dtype=np.uint64)
        packed = pack_counter_bits(bits)
        assert packed.shape == (5, 3)
        unpacked = (
            packed[:, :, None] >> np.arange(64, dtype=np.uint64)
        ) & np.uint64(1)
        assert np.array_equal(
            unpacked.reshape(5, -1)[:, : bits.shape[1]], bits
        )


@pytest.mark.parametrize(
    "factory",
    [factory for _, factory in POINT_FACTORIES],
    ids=[name for name, _ in POINT_FACTORIES],
)
class TestPointTotals:
    def test_matches_scalar_small_batch(self, factory, rng):
        scheme = _scheme(factory)
        plane = counter_plane(scheme)
        bits = plane.domain_bits if hasattr(plane, "domain_bits") else BITS
        points = rng.integers(0, 1 << min(bits, BITS), size=7, dtype=np.uint64)
        weights = rng.integers(-5, 6, size=7).astype(np.float64)
        got = plane.point_totals(points, weights)
        expected = _scalar_point_values(scheme, points, weights)
        assert np.array_equal(got, expected)

    def test_matches_scalar_histogram_batch(self, factory, rng):
        # Batches above 32 take the per-byte histogram path.
        scheme = _scheme(factory, medians=2, averages=40)
        plane = counter_plane(scheme)
        points = rng.integers(0, 1 << 8, size=200, dtype=np.uint64)
        weights = rng.integers(1, 4, size=200).astype(np.float64)
        got = plane.point_totals(points, weights)
        expected = _scalar_point_values(scheme, points, weights)
        assert np.array_equal(got, expected)

    def test_out_of_domain_rejected(self, factory):
        scheme = _scheme(factory)
        plane = counter_plane(scheme)
        bits = plane.domain_bits
        with pytest.raises(ValueError):
            plane.point_totals(np.array([1 << bits], dtype=np.uint64))


class TestIntervalTotals:
    def _scalar_interval_values(self, scheme, intervals, weights):
        totals = []
        for row in scheme.channels:
            for channel in row:
                total = 0.0
                for bounds, weight in zip(intervals, weights):
                    total += weight * channel.interval(bounds)
                totals.append(total)
        return np.array(totals)

    def test_eh3_pieces_match_scalar(self, rng):
        scheme = _scheme(eh3_channels())
        plane = counter_plane(scheme)
        lows = rng.integers(0, 1 << BITS, size=20)
        highs = rng.integers(0, 1 << BITS, size=20)
        intervals = [
            (int(min(a, b)), int(max(a, b))) for a, b in zip(lows, highs)
        ]
        weights = rng.integers(1, 5, size=20).astype(np.float64)
        cover = quaternary_cover_arrays(
            [a for a, _ in intervals], [b for _, b in intervals]
        )
        got = plane.interval_totals(
            cover.lows, cover.levels >> 1, weights[cover.index]
        )
        expected = self._scalar_interval_values(scheme, intervals, weights)
        assert np.array_equal(got, expected)

    def test_bch3_pieces_match_scalar(self, rng):
        scheme = _scheme(bch3_channels())
        plane = counter_plane(scheme)
        lows = rng.integers(0, 1 << BITS, size=20)
        highs = rng.integers(0, 1 << BITS, size=20)
        intervals = [
            (int(min(a, b)), int(max(a, b))) for a, b in zip(lows, highs)
        ]
        weights = rng.integers(1, 5, size=20).astype(np.float64)
        cover = dyadic_cover_arrays(
            [a for a, _ in intervals], [b for _, b in intervals]
        )
        got = plane.interval_totals(
            cover.lows, cover.levels, weights[cover.index]
        )
        expected = self._scalar_interval_values(scheme, intervals, weights)
        assert np.array_equal(got, expected)

    def test_dmap_intervals_match_scalar(self, rng):
        scheme = _scheme(dmap_channels())
        plane = counter_plane(scheme)
        lows = rng.integers(0, 1 << BITS, size=15)
        highs = rng.integers(0, 1 << BITS, size=15)
        alphas = np.minimum(lows, highs).astype(np.uint64)
        betas = np.maximum(lows, highs).astype(np.uint64)
        weights = rng.integers(1, 5, size=15).astype(np.float64)
        got = plane.interval_totals(alphas, betas, weights)
        intervals = list(zip(alphas.tolist(), betas.tolist()))
        expected = self._scalar_interval_values(scheme, intervals, weights)
        assert np.array_equal(got, expected)

    def test_piece_outside_domain_rejected(self):
        plane = counter_plane(_scheme(eh3_channels()))
        with pytest.raises(ValueError):
            plane.interval_totals(
                np.array([1 << BITS], dtype=np.uint64), np.array([0])
            )


class TestSketchMatrixPlanePath:
    @pytest.mark.parametrize(
        "factory",
        [factory for _, factory in POINT_FACTORIES],
        ids=[name for name, _ in POINT_FACTORIES],
    )
    def test_update_point_bit_identical(self, factory, rng):
        scheme = _scheme(factory)
        fast = scheme.sketch()
        slow = scheme.sketch()
        for point in rng.integers(0, 1 << 8, size=10).tolist():
            weight = float(rng.integers(-3, 4))
            fast.update_point(int(point), weight)
            for row in slow.cells:
                for cell in row:
                    cell.update_point(int(point), weight)
        assert np.array_equal(fast.values(), slow.values())

    @pytest.mark.parametrize(
        "factory",
        [factory for _, factory in INTERVAL_FACTORIES],
        ids=[name for name, _ in INTERVAL_FACTORIES],
    )
    def test_update_interval_bit_identical(self, factory, rng):
        scheme = _scheme(factory)
        fast = scheme.sketch()
        slow = scheme.sketch()
        for _ in range(10):
            a, b = sorted(rng.integers(0, 1 << BITS, size=2).tolist())
            weight = float(rng.integers(1, 5))
            fast.update_interval((int(a), int(b)), weight)
            for row in slow.cells:
                for cell in row:
                    cell.update_interval((int(a), int(b)), weight)
        assert np.array_equal(fast.values(), slow.values())

    def test_update_points_and_intervals_batch(self, rng):
        scheme = _scheme(eh3_channels(), medians=2, averages=40)
        points = rng.integers(0, 1 << BITS, size=100, dtype=np.uint64)
        point_weights = rng.integers(1, 4, size=100).astype(np.float64)
        lows = rng.integers(0, 1 << BITS, size=50)
        highs = rng.integers(0, 1 << BITS, size=50)
        intervals = [
            (int(min(a, b)), int(max(a, b))) for a, b in zip(lows, highs)
        ]
        interval_weights = rng.integers(1, 4, size=50).astype(np.float64)

        fast = scheme.sketch()
        fast.update_points(points, point_weights)
        fast.update_intervals(intervals, interval_weights)

        slow = scheme.sketch()
        for point, weight in zip(points.tolist(), point_weights):
            for row in slow.cells:
                for cell in row:
                    cell.update_point(int(point), float(weight))
        for bounds, weight in zip(intervals, interval_weights):
            for row in slow.cells:
                for cell in row:
                    cell.update_interval(bounds, float(weight))
        assert np.array_equal(fast.values(), slow.values())

    def test_exotic_bounds_fall_back_to_scalar(self):
        # Non-integer bounds must keep raising exactly as the scalar
        # channels do, not be swallowed by the plane path.
        scheme = _scheme(eh3_channels())
        sketch = scheme.sketch()
        with pytest.raises(TypeError):
            sketch.update_interval(((0, 1), (0, 1)))

    def test_wide_domain_updates_close(self):
        # At 62 bits BCH3 totals exceed float64's exact-integer range, so
        # the plane and scalar paths may differ in the last ulp only.
        scheme = SketchScheme.from_factory(
            lambda src: GeneratorChannel(BCH3.from_source(62, src)),
            2,
            3,
            SeedSource(1),
        )
        fast = scheme.sketch()
        slow = scheme.sketch()
        top = (1 << 62) - 1
        for bounds in [(0, top), (123, top - 5), (1 << 57, 1 << 61)]:
            fast.update_interval(bounds, 3.0)
            for row in slow.cells:
                for cell in row:
                    cell.update_interval(bounds, 3.0)
        assert np.allclose(fast.values(), slow.values(), rtol=1e-12)

    def test_wide_domain_eh3_bit_identical(self):
        scheme = SketchScheme.from_factory(
            lambda src: GeneratorChannel(EH3.from_source(62, src)),
            2,
            3,
            SeedSource(1),
        )
        fast = scheme.sketch()
        slow = scheme.sketch()
        top = (1 << 62) - 1
        for bounds in [(0, top), (123, top - 5), (1 << 57, 1 << 61)]:
            fast.update_interval(bounds, 2.0)
            for row in slow.cells:
                for cell in row:
                    cell.update_interval(bounds, 2.0)
        assert np.array_equal(fast.values(), slow.values())


class TestAddTotals:
    def test_row_major_scatter(self):
        scheme = _scheme(eh3_channels(), medians=2, averages=3)
        sketch = scheme.sketch()
        totals = np.arange(6, dtype=np.float64)
        add_totals(sketch, totals)
        assert np.array_equal(
            sketch.values(), totals.reshape(2, 3)
        )
