"""Tests for the executable propositions of Section 5.3."""

from __future__ import annotations

import numpy as np
import pytest

from repro.generators import BCH3, EH3
from repro.sketch.variance import zy_counts
from repro.theory.model import (
    eh3_error_prediction,
    expectation_over_seeds,
    proposition1_value_counts,
    proposition2_expectation,
    proposition3_expectation,
    proposition4_brute_counts,
)

N = 4


class TestProposition1:
    def test_balanced_when_any_parameter_set(self):
        for params in (0b0001, 0b1000, 0b1111):
            zeros, ones = proposition1_value_counts(params, 4, 0)
            assert zeros == ones == 8

    def test_degenerate_when_no_parameter(self):
        assert proposition1_value_counts(0, 4, 0) == (16, 0)
        assert proposition1_value_counts(0, 4, 1) == (0, 16)

    def test_matches_enumeration(self):
        for params in range(8):
            for constant in (0, 1):
                zeros = sum(
                    1
                    for x in range(8)
                    if (constant ^ bin(params & x).count("1")) % 2 == 0
                )
                expected = proposition1_value_counts(params, 3, constant)
                assert expected == (zeros, 8 - zeros)

    def test_validation(self):
        with pytest.raises(ValueError):
            proposition1_value_counts(16, 4, 0)
        with pytest.raises(ValueError):
            proposition1_value_counts(0, 4, 2)


class TestProposition2:
    def test_matches_exact_expectation(self):
        """BCH3's quadruple expectation, exact over the full seed space."""
        quadruples = [
            (0, 1, 2, 3),  # XOR = 0 -> expectation 1
            (1, 2, 4, 7),  # XOR = 0 -> expectation 1
            (0, 1, 2, 4),  # XOR = 7 -> expectation 0
            (3, 5, 6, 9),  # XOR != 0 -> 0
        ]
        for quad in quadruples:
            exact = expectation_over_seeds(
                lambda s0, s1: BCH3(N, s0, s1), N, quad
            )
            assert exact == proposition2_expectation(N, *quad)

    def test_distinctness_required(self):
        with pytest.raises(ValueError):
            proposition2_expectation(N, 1, 1, 2, 3)


class TestProposition3:
    def test_matches_exact_expectation(self):
        quadruples = [
            (0, 1, 2, 3),
            (1, 2, 4, 7),
            (0, 3, 12, 15),
            (0, 1, 2, 4),
            (2, 5, 8, 15),
            (4, 8, 2, 14),
        ]
        for quad in quadruples:
            exact = expectation_over_seeds(
                lambda s0, s1: EH3(N, s0, s1), N, quad
            )
            assert exact == proposition3_expectation(N, *quad)

    def test_negative_case_exists(self):
        """Some XOR-zero quadruple must give -1 -- EH3's whole point."""
        found = any(
            proposition3_expectation(N, i, j, k, i ^ j ^ k) == -1
            for i in range(16)
            for j in range(i + 1, 16)
            for k in range(j + 1, 16)
            if (i ^ j ^ k) not in (i, j, k) and (i ^ j ^ k) > k
        )
        assert found


class TestProposition4:
    def test_brute_force_matches_recursion_n1(self):
        assert proposition4_brute_counts(1) == zy_counts(1)

    def test_brute_force_matches_recursion_n2(self):
        assert proposition4_brute_counts(2) == zy_counts(2)

    def test_brute_force_bounds(self):
        with pytest.raises(ValueError):
            proposition4_brute_counts(3)


class TestErrorPrediction:
    def test_uniform_data_prediction_is_zero(self):
        """On uniform 4^n data the model variance collapses to ~0."""
        r = np.full(16, 10.0)
        assert eh3_error_prediction(r, r, 2, averages=10) < 0.05

    def test_prediction_decreases_with_averages(self):
        rng = np.random.default_rng(3)
        r = rng.integers(1, 10, size=16).astype(float)
        few = eh3_error_prediction(r, r, 2, averages=4)
        many = eh3_error_prediction(r, r, 2, averages=64)
        assert many < few


class TestRaoBound:
    def test_small_cases(self):
        from repro.theory.model import rao_seed_lower_bound

        # 1-wise over n bits: sample space >= 2 -> 1 seed bit.
        assert rao_seed_lower_bound(1, 8) == 1
        # 2-wise: >= 1 + n points.
        assert rao_seed_lower_bound(2, 7) == 3  # log2(8) = 3
        # Bounds grow with both k and n.
        assert rao_seed_lower_bound(5, 16) > rao_seed_lower_bound(3, 16)
        assert rao_seed_lower_bound(3, 32) > rao_seed_lower_bound(3, 8)

    def test_schemes_respect_the_bound(self):
        """Every scheme's seed meets Rao; BCH sits closest (paper §3.1)."""
        from repro.experiments.table1 import scheme_seed_bits
        from repro.theory.model import rao_seed_lower_bound

        n = 32
        sizes = scheme_seed_bits(n)
        bounds = {
            "BCH3": rao_seed_lower_bound(3, n),
            "EH3": rao_seed_lower_bound(3, n),
            "BCH5": rao_seed_lower_bound(5, n),
            "RM7": rao_seed_lower_bound(7, n),
        }
        for scheme, bound in bounds.items():
            assert sizes[scheme] >= bound, scheme
        # BCH5 is closer to its bound than the polynomial scheme of the
        # same independence level (Massdal4, 4-wise <= 5-wise seed sizes).
        assert sizes["BCH5"] < sizes["Massdal4"]

    def test_validation(self):
        from repro.theory.model import rao_seed_lower_bound

        with pytest.raises(ValueError):
            rao_seed_lower_bound(0, 4)
        with pytest.raises(ValueError):
            rao_seed_lower_bound(3, 0)
