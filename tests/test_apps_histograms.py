"""Tests for the selectivity-estimation application (Application 3)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.apps.histograms import (
    SelectivityEstimator,
    estimate_average_frequency,
    estimate_region_count,
    exact_region_count,
    random_query_rects,
    rect_area,
    sketch_data_points,
    sketch_region,
)
from repro.generators import SeedSource
from repro.rangesum.multidim import ProductGenerator
from repro.sketch.ams import SketchScheme
from repro.sketch.atomic import ProductChannel


def product_scheme(source, medians=5, averages=200, bits=(6, 6)):
    return SketchScheme.from_factory(
        lambda src: ProductChannel(ProductGenerator.eh3(bits, src)),
        medians,
        averages,
        source,
    )


@pytest.fixture
def clustered_points(rng):
    cluster = rng.integers(10, 30, size=(300, 2))
    spread = rng.integers(0, 64, size=(100, 2))
    return np.concatenate([cluster, spread])


class TestGeometry:
    def test_rect_area(self):
        assert rect_area(((0, 3), (0, 4))) == 20
        assert rect_area(((5, 5),)) == 1
        with pytest.raises(ValueError):
            rect_area(((3, 2),))

    def test_random_query_rects_within_domain(self, rng):
        rects = random_query_rects(rng, (6, 6), 20, min_side=4, max_side=16)
        assert len(rects) == 20
        for rect in rects:
            for low, high in rect:
                assert 0 <= low <= high < 64
                assert 4 <= high - low + 1 <= 16


class TestEstimation:
    def test_region_count_converges(self, clustered_points, source: SeedSource):
        scheme = product_scheme(source)
        data_sketch = sketch_data_points(scheme, clustered_points)
        rect = ((8, 32), (8, 32))
        truth = exact_region_count(clustered_points, rect)
        estimate = estimate_region_count(data_sketch, scheme, rect)
        assert truth > 100  # the cluster is inside
        assert estimate == pytest.approx(truth, rel=0.5)

    def test_average_frequency_scales(self, clustered_points, source: SeedSource):
        scheme = product_scheme(source)
        data_sketch = sketch_data_points(scheme, clustered_points)
        rect = ((8, 32), (8, 32))
        count = estimate_region_count(data_sketch, scheme, rect)
        average = estimate_average_frequency(data_sketch, scheme, rect)
        assert average == pytest.approx(count / rect_area(rect))

    def test_estimator_wrapper(self, clustered_points, source: SeedSource):
        scheme = product_scheme(source)
        estimator = SelectivityEstimator(scheme, clustered_points)
        rect = ((8, 32), (8, 32))
        truth = estimator.exact_count(rect)
        assert estimator.count(rect) == pytest.approx(truth, rel=0.5)
        assert estimator.selectivity(rect) == pytest.approx(
            estimator.count(rect) / len(clustered_points)
        )
        assert estimator.average_frequency(rect) == pytest.approx(
            estimator.count(rect) / rect_area(rect)
        )

    def test_empty_dataset_selectivity_rejected(self, source: SeedSource):
        scheme = product_scheme(source, medians=1, averages=1)
        estimator = SelectivityEstimator(scheme, np.empty((0, 2), dtype=int))
        with pytest.raises(ValueError):
            estimator.selectivity(((0, 3), (0, 3)))

    def test_region_sketch_single_update(self, source: SeedSource):
        scheme = product_scheme(source, medians=1, averages=1)
        rect = ((0, 7), (0, 7))
        sketch = sketch_region(scheme, rect)
        channel = scheme.channels[0][0]
        assert sketch.values()[0, 0] == channel.interval(rect)
