"""Tests for the chain-join extension (Dobra et al. [8])."""

from __future__ import annotations

import numpy as np
import pytest

from repro.generators import BCH5, EH3, SeedSource
from repro.sketch.multijoin import ChainJoinScheme, exact_chain_join


def eh3_chain(attribute_bits, medians, averages, source):
    return ChainJoinScheme(
        attribute_bits,
        lambda bits, src: EH3.from_source(bits, src),
        medians,
        averages,
        source,
    )


class TestExactChainJoin:
    def test_binary_join(self):
        r = [1, 1, 2]
        s = [1, 2, 2, 3]
        # join on equality: 1 matches twice*once + 2 matches once*twice.
        assert exact_chain_join([r, s]) == 2 * 1 + 1 * 2

    def test_three_way_chain(self):
        r = [1, 2]
        s = [(1, 10), (1, 20), (2, 10)]
        t = [10, 10, 30]
        # r=1 -> (1,10),(1,20); r=2 -> (2,10).  t matches value 10 twice.
        # paths: 1-(1,10)-10 x2, 2-(2,10)-10 x2 => 4.
        assert exact_chain_join([r, s, t]) == 4

    def test_empty_middle(self):
        assert exact_chain_join([[1, 2], [], [1]]) == 0

    def test_validation(self):
        with pytest.raises(ValueError):
            exact_chain_join([[1]])


class TestChainJoinScheme:
    def test_relation_count_and_attribute_sharing(self, source: SeedSource):
        chain = eh3_chain((6, 6), 2, 3, source)
        assert chain.relations == 3
        # End relations see one attribute, the middle sees two; attribute
        # generators are SHARED between adjacent relations per cell.
        left = chain.scheme_for(0).channels[0][0]
        middle = chain.scheme_for(1).channels[0][0]
        right = chain.scheme_for(2).channels[0][0]
        assert len(left.generators) == 1
        assert len(middle.generators) == 2
        assert len(right.generators) == 1
        assert left.generators[0] is middle.generators[0]
        assert right.generators[0] is middle.generators[1]

    def test_position_bounds(self, source: SeedSource):
        chain = eh3_chain((6,), 1, 1, source)
        with pytest.raises(ValueError):
            chain.scheme_for(2)

    def test_binary_join_estimate(self, source: SeedSource):
        """Two-relation chain reduces to the ordinary size-of-join."""
        rng = np.random.default_rng(4)
        r = rng.integers(0, 64, size=400)
        s = rng.integers(0, 64, size=300)
        truth = exact_chain_join([r, s])
        chain = eh3_chain((6,), 7, 300, source)
        x = chain.sketch_relation(0, [int(v) for v in r])
        y = chain.sketch_relation(1, [int(v) for v in s])
        estimate = chain.estimate([x, y])
        assert estimate == pytest.approx(truth, rel=0.4)

    def test_three_way_estimate(self, source: SeedSource):
        rng = np.random.default_rng(9)
        r = [int(v) for v in rng.integers(0, 32, size=150)]
        s = [
            (int(a), int(b))
            for a, b in zip(
                rng.integers(0, 32, size=200), rng.integers(0, 32, size=200)
            )
        ]
        t = [int(v) for v in rng.integers(0, 32, size=150)]
        truth = exact_chain_join([r, s, t])
        chain = eh3_chain((5, 5), 7, 500, source)
        sketches = [
            chain.sketch_relation(0, r),
            chain.sketch_relation(1, s),
            chain.sketch_relation(2, t),
        ]
        estimate = chain.estimate(sketches)
        assert truth > 0
        assert estimate == pytest.approx(truth, rel=0.6)

    def test_three_way_unbiased_with_bch5(self):
        """Average the 3-way estimator over many independent grids."""
        rng = np.random.default_rng(11)
        r = [1, 2, 3]
        s = [(1, 4), (2, 5), (3, 4)]
        t = [4, 4, 5]
        truth = exact_chain_join([r, s, t])
        source = SeedSource(55)
        estimates = []
        for _ in range(300):
            chain = ChainJoinScheme(
                (4, 4),
                lambda bits, src: BCH5.from_source(bits, src, mode="gf"),
                1,
                1,
                source,
            )
            sketches = [
                chain.sketch_relation(0, r),
                chain.sketch_relation(1, s),
                chain.sketch_relation(2, t),
            ]
            estimates.append(chain.estimate(sketches))
        sem = np.std(estimates) / np.sqrt(len(estimates))
        assert np.mean(estimates) == pytest.approx(truth, abs=4 * sem + 0.5)

    def test_interval_updates_on_end_relation(self, source: SeedSource):
        """An end relation specified as intervals sketches via range-sums."""
        chain = eh3_chain((6,), 2, 3, source)
        fast = chain.scheme_for(0).sketch()
        fast.update_interval((10, 30))
        slow = chain.scheme_for(0).sketch()
        for v in range(10, 31):
            slow.update_point(v)
        assert np.allclose(fast.values(), slow.values())

    def test_mixed_interval_updates_on_middle_relation(self, source: SeedSource):
        chain = eh3_chain((5, 5), 2, 3, source)
        fast = chain.scheme_for(1).sketch()
        fast.update_interval(((4, 9), 7))
        slow = chain.scheme_for(1).sketch()
        for v in range(4, 10):
            slow.update_point((v, 7))
        assert np.allclose(fast.values(), slow.values())

    def test_estimate_requires_own_sketches(self, source: SeedSource):
        chain_a = eh3_chain((5,), 1, 2, source)
        chain_b = eh3_chain((5,), 1, 2, source)
        x = chain_a.sketch_relation(0, [1])
        y = chain_b.sketch_relation(1, [1])
        with pytest.raises(ValueError):
            chain_a.estimate([x, y])
        with pytest.raises(ValueError):
            chain_a.estimate([x])

    def test_arity_checked(self, source: SeedSource):
        chain = eh3_chain((5, 5), 1, 1, source)
        with pytest.raises(ValueError):
            chain.sketch_relation(1, [3])  # middle relation needs pairs
