"""Tests: batched range-sum kernels equal their scalar counterparts.

Every batched kernel must be *bit-identical* to a Python loop over the
scalar algorithm it vectorizes -- including empty batches, singleton
intervals, and full-domain intervals.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.generators import BCH3, EH3, SeedSource
from repro.generators.bch5 import BCH5
from repro.rangesum import (
    DMAP,
    bch3_range_sum,
    bch3_range_sums,
    bch5_range_sum,
    bch5_range_sums,
    eh3_range_sum,
    eh3_range_sums,
)


def _intervals_strategy(domain_bits: int, max_size: int = 12):
    top = (1 << domain_bits) - 1
    return st.lists(
        st.tuples(st.integers(0, top), st.integers(0, top)),
        max_size=max_size,
    ).map(lambda raw: [(min(a, b), max(a, b)) for a, b in raw])


def _arrays(intervals):
    alphas = np.array([a for a, _ in intervals], dtype=np.uint64)
    betas = np.array([b for _, b in intervals], dtype=np.uint64)
    return alphas, betas


class TestEH3Batched:
    @settings(deadline=None, max_examples=40)
    @given(
        bits=st.integers(1, 62),
        data=st.data(),
    )
    def test_matches_scalar(self, bits, data):
        intervals = data.draw(_intervals_strategy(bits))
        generator = EH3.from_source(bits, SeedSource(bits))
        alphas, betas = _arrays(intervals)
        expected = [eh3_range_sum(generator, a, b) for a, b in intervals]
        got = eh3_range_sums(generator, alphas, betas)
        assert got.dtype == np.int64
        assert got.tolist() == expected

    def test_full_domain_and_singletons(self):
        for bits in (1, 5, 32, 62):
            generator = EH3.from_source(bits, SeedSource(7 * bits))
            top = (1 << bits) - 1
            cases = [(0, top), (0, 0), (top, top)]
            alphas, betas = _arrays(cases)
            expected = [eh3_range_sum(generator, a, b) for a, b in cases]
            assert eh3_range_sums(generator, alphas, betas).tolist() == expected

    def test_empty_batch(self):
        generator = EH3.from_source(16, SeedSource(1))
        out = eh3_range_sums(generator, [], [])
        assert out.shape == (0,)
        assert out.dtype == np.int64

    def test_reversed_interval_rejected(self):
        generator = EH3.from_source(8, SeedSource(1))
        with pytest.raises(ValueError):
            eh3_range_sums(generator, [5], [3])

    def test_out_of_domain_rejected(self):
        generator = EH3.from_source(8, SeedSource(1))
        with pytest.raises(ValueError):
            eh3_range_sums(generator, [0], [1 << 8])


class TestBCH3Batched:
    @settings(deadline=None, max_examples=40)
    @given(
        bits=st.integers(1, 62),
        seed=st.integers(0, 5),
        data=st.data(),
    )
    def test_matches_scalar(self, bits, seed, data):
        intervals = data.draw(_intervals_strategy(bits))
        generator = BCH3.from_source(bits, SeedSource(seed))
        alphas, betas = _arrays(intervals)
        expected = [bch3_range_sum(generator, a, b) for a, b in intervals]
        got = bch3_range_sums(generator, alphas, betas)
        assert got.dtype == np.int64
        assert got.tolist() == expected

    def test_zero_s1_seed(self):
        # s1 == 0 makes every value equal: the count short-circuit path.
        generator = BCH3(8, s0=1, s1=0)
        cases = [(0, 255), (3, 3), (10, 200)]
        alphas, betas = _arrays(cases)
        expected = [bch3_range_sum(generator, a, b) for a, b in cases]
        assert bch3_range_sums(generator, alphas, betas).tolist() == expected

    def test_full_domain_and_singletons(self):
        for bits in (1, 9, 33, 62):
            generator = BCH3.from_source(bits, SeedSource(bits))
            top = (1 << bits) - 1
            cases = [(0, top), (0, 0), (top, top)]
            alphas, betas = _arrays(cases)
            expected = [bch3_range_sum(generator, a, b) for a, b in cases]
            assert (
                bch3_range_sums(generator, alphas, betas).tolist() == expected
            )

    def test_empty_batch(self):
        generator = BCH3.from_source(16, SeedSource(1))
        assert bch3_range_sums(generator, [], []).shape == (0,)


class TestBCH5Batched:
    @settings(deadline=None, max_examples=20)
    @given(
        bits=st.integers(2, 9),
        data=st.data(),
    )
    def test_matches_scalar(self, bits, data):
        intervals = data.draw(_intervals_strategy(bits, max_size=6))
        generator = BCH5.from_source(bits, SeedSource(bits), mode="gf")
        alphas, betas = _arrays(intervals)
        expected = [bch5_range_sum(generator, a, b) for a, b in intervals]
        got = bch5_range_sums(generator, alphas, betas)
        assert got.tolist() == expected

    def test_empty_batch(self):
        generator = BCH5.from_source(6, SeedSource(3), mode="gf")
        assert bch5_range_sums(generator, [], []).shape == (0,)

    def test_quadratic_form_cached_on_generator(self):
        generator = BCH5.from_source(6, SeedSource(3), mode="gf")
        bch5_range_sums(generator, [0], [5])
        form = generator._quadratic_form
        assert form is not None
        bch5_range_sums(generator, [1], [4])
        assert generator._quadratic_form is form


class TestDMAPBatched:
    @settings(deadline=None, max_examples=25)
    @given(
        bits=st.integers(1, 24),
        data=st.data(),
    )
    def test_interval_contributions_match_scalar(self, bits, data):
        intervals = data.draw(_intervals_strategy(bits, max_size=8))
        dmap = DMAP.from_source(bits, SeedSource(bits))
        alphas, betas = _arrays(intervals)
        expected = [dmap.interval_contribution(a, b) for a, b in intervals]
        got = dmap.interval_contributions(alphas, betas)
        assert got.tolist() == expected

    @settings(deadline=None, max_examples=25)
    @given(
        bits=st.integers(1, 24),
        data=st.data(),
    )
    def test_point_contributions_match_scalar(self, bits, data):
        points = data.draw(
            st.lists(st.integers(0, (1 << bits) - 1), max_size=10)
        )
        dmap = DMAP.from_source(bits, SeedSource(bits))
        expected = [dmap.point_contribution(p) for p in points]
        got = dmap.point_contributions(np.array(points, dtype=np.uint64))
        assert got.tolist() == expected

    def test_empty_batches(self):
        dmap = DMAP.from_source(10, SeedSource(2))
        assert dmap.interval_contributions([], []).shape == (0,)
        assert dmap.point_contributions(np.zeros(0, np.uint64)).shape == (0,)


class TestGeneratorMethodDelegation:
    def test_generators_expose_range_sums(self):
        source = SeedSource(11)
        eh3 = EH3.from_source(12, source)
        bch3 = BCH3.from_source(12, source)
        bch5 = BCH5.from_source(8, source, mode="gf")
        cases = [(0, 100), (5, 5), (0, (1 << 12) - 1)]
        alphas, betas = _arrays(cases)
        assert eh3.range_sums(alphas, betas).tolist() == [
            eh3_range_sum(eh3, a, b) for a, b in cases
        ]
        assert bch3.range_sums(alphas, betas).tolist() == [
            bch3_range_sum(bch3, a, b) for a, b in cases
        ]
        small = [(0, 100), (5, 5), (0, 255)]
        alphas, betas = _arrays(small)
        assert bch5.range_sums(alphas, betas).tolist() == [
            bch5_range_sum(bch5, a, b) for a, b in small
        ]


class TestProductBatched:
    def test_rect_sums_match_scalar(self, rng):
        from repro.rangesum.multidim import ProductGenerator

        dims_bits = (8, 6)
        generator = ProductGenerator.eh3(dims_bits, SeedSource(5))
        rects = []
        for _ in range(20):
            rect = []
            for bits in dims_bits:
                a, b = sorted(rng.integers(0, 1 << bits, 2).tolist())
                rect.append((int(a), int(b)))
            rects.append(tuple(rect))
        expected = [generator.rect_sum(rect) for rect in rects]
        assert generator.rect_sums(rects).tolist() == expected

    def test_rect_contributions_match_scalar(self, rng):
        from repro.rangesum.multidim import ProductDMAP

        dims_bits = (8, 6)
        product = ProductDMAP.from_source(dims_bits, SeedSource(5))
        rects = []
        for _ in range(20):
            rect = []
            for bits in dims_bits:
                a, b = sorted(rng.integers(0, 1 << bits, 2).tolist())
                rect.append((int(a), int(b)))
            rects.append(tuple(rect))
        expected = [product.rect_contribution(rect) for rect in rects]
        assert product.rect_contributions(rects).tolist() == expected

    def test_empty_and_bad_shapes(self):
        from repro.rangesum.multidim import ProductGenerator

        generator = ProductGenerator.eh3((4, 4), SeedSource(1))
        assert generator.rect_sums([]).shape == (0,)
        with pytest.raises(ValueError):
            generator.rect_sums([[(0, 1)]])  # wrong rank
