"""The static-analysis framework: rules, suppressions, baseline, CLI gate.

Each rule is exercised on small source fixtures at paths inside and
outside its scope; the final meta-test pins the shipped baseline to a
fresh scan of ``src/repro`` so the tree can never drift dirty silently.
"""

from __future__ import annotations

import io
import json
import textwrap
from pathlib import Path

import pytest

from repro.analysis import (
    ALL_RULES,
    AnalysisReport,
    Violation,
    analyze_paths,
    analyze_source,
    collect_suppressions,
    load_baseline,
    rule_by_id,
    run_analyze,
    write_baseline,
)

REPO_ROOT = Path(__file__).resolve().parents[1]


def scan(source: str, path: str) -> list[Violation]:
    return analyze_source(textwrap.dedent(source), path)


def rule_ids(violations: list[Violation]) -> list[str]:
    return [v.rule for v in violations]


# ---------------------------------------------------------------------------
# R001: registry-bypass dispatch.
# ---------------------------------------------------------------------------


class TestRegistryBypass:
    def test_isinstance_on_scheme_class_flagged(self) -> None:
        found = scan(
            """\
            def f(g):
                return isinstance(g, EH3)
            """,
            "src/repro/sketch/thing.py",
        )
        assert rule_ids(found) == ["R001"]
        assert "EH3" in found[0].message
        assert found[0].line == 2

    def test_tuple_and_dotted_classes_flagged(self) -> None:
        found = scan(
            """\
            def f(c):
                return isinstance(c, (GeneratorChannel, atomic.DMAPChannel))
            """,
            "src/repro/experiments/thing.py",
        )
        assert rule_ids(found) == ["R001", "R001"]

    def test_issubclass_flagged(self) -> None:
        found = scan(
            "ok = issubclass(cls, Generator)\n",
            "src/repro/apps/thing.py",
        )
        assert rule_ids(found) == ["R001"]

    def test_structural_checks_not_flagged(self) -> None:
        found = scan(
            """\
            def f(x):
                if isinstance(x, (int, float, str)):
                    return isinstance(x, np.integer)
                return isinstance(x, numpy.random.Generator)
            """,
            "src/repro/sketch/thing.py",
        )
        assert found == []

    def test_schemes_and_analysis_out_of_scope(self) -> None:
        source = "ok = isinstance(g, EH3)\n"
        assert scan(source, "src/repro/schemes/builtin.py") == []
        assert scan(source, "src/repro/analysis/rules.py") == []

    def test_suppression_with_reason_covers(self) -> None:
        found = scan(
            """\
            def f(x):
                # repro: allow[R001] protocol fallback for ad-hoc factors
                return isinstance(x, RangeSummable)
            """,
            "src/repro/rangesum/thing.py",
        )
        assert found == []


# ---------------------------------------------------------------------------
# R002: integer-width hazards in kernel modules.
# ---------------------------------------------------------------------------


class TestIntegerWidthHazard:
    def test_unpinned_constructors_flagged(self) -> None:
        found = scan(
            """\
            import numpy as np
            a = np.arange(10)
            b = np.zeros(4)
            c = np.full((2, 2), 7)
            """,
            "src/repro/rangesum/thing.py",
        )
        assert rule_ids(found) == ["R002", "R002", "R002"]

    def test_pinned_constructors_clean(self) -> None:
        found = scan(
            """\
            import numpy as np
            a = np.arange(10, dtype=np.uint64)
            b = np.zeros(4, np.int64)
            c = np.arange(0, 10, 1, np.int64)
            """,
            "src/repro/core/thing.py",
        )
        assert found == []

    def test_unpinned_accumulator_flagged(self) -> None:
        found = scan(
            """\
            import numpy as np
            total = np.cumsum(values) & 1
            ok = np.sum(values, dtype=np.int64)
            """,
            "src/repro/sketch/plane.py",
        )
        assert rule_ids(found) == ["R002"]
        assert "cumsum" in found[0].message

    def test_non_kernel_modules_out_of_scope(self) -> None:
        source = "import numpy as np\na = np.arange(10)\n"
        assert scan(source, "src/repro/experiments/fig4.py") == []
        assert scan(source, "src/repro/sketch/ams.py") == []

    def test_non_numpy_calls_ignored(self) -> None:
        found = scan(
            "a = arange(10)\nb = mymod.zeros(3)\n",
            "src/repro/core/thing.py",
        )
        assert found == []


# ---------------------------------------------------------------------------
# R003: determinism guards.
# ---------------------------------------------------------------------------


class TestDeterminismGuard:
    def test_unseeded_default_rng_flagged(self) -> None:
        found = scan(
            "import numpy as np\nrng = np.random.default_rng()\n",
            "src/repro/workloads/thing.py",
        )
        assert rule_ids(found) == ["R003"]

    def test_seeded_default_rng_clean(self) -> None:
        found = scan(
            """\
            import numpy as np
            a = np.random.default_rng(0)
            b = np.random.default_rng(seed)
            """,
            "src/repro/workloads/thing.py",
        )
        assert found == []

    def test_legacy_global_numpy_rng_flagged(self) -> None:
        found = scan(
            "import numpy as np\nx = np.random.randint(0, 10)\n",
            "src/repro/experiments/thing.py",
        )
        assert rule_ids(found) == ["R003"]

    def test_wall_clock_flagged_monotonic_deferred_to_r005(self) -> None:
        found = scan(
            """\
            import time
            stamp = time.time()
            tick = time.perf_counter()
            """,
            "src/repro/stream/thing.py",
        )
        assert sorted(rule_ids(found)) == ["R003", "R005"]
        r003 = next(v for v in found if v.rule == "R003")
        assert "wall-clock" in r003.message

    def test_stdlib_random_module_and_names_flagged(self) -> None:
        found = scan(
            """\
            import random
            from random import randint as ri
            a = random.random()
            b = ri(0, 5)
            """,
            "src/repro/apps/thing.py",
        )
        assert rule_ids(found) == ["R003", "R003"]

    def test_unrelated_random_attribute_clean(self) -> None:
        found = scan(
            "value = source.random_word()\nx = rng.random()\n",
            "src/repro/apps/thing.py",
        )
        assert found == []


# ---------------------------------------------------------------------------
# R004: exception boundaries in the durability layer.
# ---------------------------------------------------------------------------


class TestExceptionBoundaryAudit:
    def test_undocumented_broad_handler_flagged(self) -> None:
        found = scan(
            """\
            try:
                work()
            except Exception:
                pass
            """,
            "src/repro/stream/processor.py",
        )
        assert rule_ids(found) == ["R004"]

    def test_bare_except_flagged(self) -> None:
        found = scan(
            "try:\n    work()\nexcept:\n    pass\n",
            "src/repro/stream/wal.py",
        )
        assert rule_ids(found) == ["R004"]

    def test_documented_boundary_clean(self) -> None:
        found = scan(
            """\
            try:
                work()
            except Exception as exc:  # noqa: BLE001 -- degradation boundary
                log(exc)
            """,
            "src/repro/stream/processor.py",
        )
        assert found == []

    def test_narrow_handler_clean(self) -> None:
        found = scan(
            """\
            try:
                work()
            except (ValueError, OSError):
                pass
            """,
            "src/repro/stream/wal.py",
        )
        assert found == []

    def test_outside_stream_out_of_scope(self) -> None:
        found = scan(
            "try:\n    work()\nexcept Exception:\n    pass\n",
            "src/repro/experiments/thing.py",
        )
        assert found == []

    def test_cluster_broad_handler_flagged(self) -> None:
        found = scan(
            """\
            try:
                reply = handle(message)
            except Exception:
                reply = error_reply("worker-error", "boom")
            """,
            "src/repro/cluster/worker.py",
        )
        assert rule_ids(found) == ["R004"]

    def test_cluster_documented_boundary_clean(self) -> None:
        found = scan(
            """\
            try:
                run(scenario)
            except Exception as exc:  # noqa: BLE001 -- scenario isolation
                record(exc)
            """,
            "src/repro/cluster/faults.py",
        )
        assert found == []

    def test_cluster_unseeded_rng_flagged_by_r003(self) -> None:
        found = scan(
            "import numpy as np\njitter = np.random.default_rng()\n",
            "src/repro/cluster/coordinator.py",
        )
        assert rule_ids(found) == ["R003"]


# ---------------------------------------------------------------------------
# R005: clock injection (monotonic timing goes through repro.obs).
# ---------------------------------------------------------------------------


class TestClockInjectionGuard:
    def test_dotted_monotonic_calls_flagged(self) -> None:
        found = scan(
            """\
            import time
            a = time.monotonic()
            b = time.perf_counter()
            c = time.monotonic_ns()
            d = time.perf_counter_ns()
            """,
            "src/repro/stream/thing.py",
        )
        assert rule_ids(found) == ["R005"] * 4
        assert "repro.obs.monotonic" in found[0].message

    def test_from_import_and_alias_flagged(self) -> None:
        found = scan(
            """\
            from time import perf_counter
            from time import monotonic as mono
            import time as t
            x = perf_counter()
            y = mono()
            z = t.perf_counter()
            """,
            "src/repro/experiments/thing.py",
        )
        assert rule_ids(found) == ["R005"] * 3

    def test_obs_package_and_bench_exempt(self) -> None:
        source = "import time\nx = time.perf_counter()\n"
        assert scan(source, "src/repro/obs/metrics.py") == []
        assert scan(source, "src/repro/bench.py") == []

    def test_injected_clock_and_other_time_calls_clean(self) -> None:
        found = scan(
            """\
            import time
            from repro import obs
            start = obs.monotonic()
            time.sleep(0.01)
            stamp = clock.monotonic()
            """,
            "src/repro/sketch/thing.py",
        )
        assert found == []

    def test_suppression_with_reason_covers(self) -> None:
        found = scan(
            """\
            import time
            # repro: allow[R005] calibrating the fake clock itself
            x = time.monotonic()
            """,
            "src/repro/stream/thing.py",
        )
        assert found == []


# ---------------------------------------------------------------------------
# R006: kernel-tier vectorization (no scalar modulo, no per-element loops).
# ---------------------------------------------------------------------------


class TestKernelLoopGuard:
    def test_modulo_and_loops_flagged(self) -> None:
        found = scan(
            """\
            r = x % p
            acc %= p
            for i in range(n):
                pass
            while pending:
                pass
            """,
            "src/repro/sketch/backends/stride_backend.py",
        )
        assert rule_ids(found) == ["R006"] * 4
        assert "shift-add" in found[0].message

    def test_only_outermost_loop_flagged(self) -> None:
        found = scan(
            """\
            for w in range(words):
                for k in range(8):
                    work(w, k)
            """,
            "src/repro/sketch/plane.py",
        )
        assert [v.line for v in found] == [1]

    def test_string_formatting_and_comprehensions_clean(self) -> None:
        found = scan(
            """\
            msg = "%s bits" % bits
            rows = [f(i) for i in items]
            total = sum(g(j) for j in items)
            """,
            "src/repro/sketch/backends/numpy_backend.py",
        )
        assert found == []

    def test_numba_backend_and_registry_exempt(self) -> None:
        source = "for i in range(n):\n    acc = (acc * x + c[i]) % p\n"
        assert scan(source, "src/repro/sketch/backends/numba_backend.py") == []
        assert scan(source, "src/repro/sketch/backends/__init__.py") == []
        assert scan(source, "src/repro/stream/processor.py") == []

    def test_justified_loop_suppressed(self) -> None:
        found = scan(
            """\
            # repro: allow[R006] per-seed-bit pass over the whole batch
            for j in range(bits):
                acc ^= table[j]
            """,
            "src/repro/sketch/backends/numpy_backend.py",
        )
        assert found == []

    def test_kernel_tier_modules_in_scope(self) -> None:
        source = "x = a % b\n"
        for path in (
            "src/repro/sketch/plane.py",
            "src/repro/schemes/builtin.py",
            "src/repro/sketch/backends/numpy_backend.py",
        ):
            assert rule_ids(scan(source, path)) == ["R006"], path


# ---------------------------------------------------------------------------
# R007: estimate calls outside the query engine.
# ---------------------------------------------------------------------------


class TestEstimatePathBypass:
    def test_direct_estimate_calls_flagged(self) -> None:
        found = scan(
            """\
            def f(x, y):
                a = estimate_product(x, y)
                b = ams.estimate_join_size(x, y)
                return a + b + estimate_self_join(x)
            """,
            "src/repro/apps/thing.py",
        )
        assert rule_ids(found) == ["R007", "R007", "R007"]
        assert "query engine" in found[0].message

    def test_engine_calls_clean(self) -> None:
        found = scan(
            """\
            def f(x, y):
                return query_engine.product(x, y).value
            """,
            "src/repro/apps/thing.py",
        )
        assert found == []

    def test_front_ends_and_query_out_of_scope(self) -> None:
        source = "v = estimate_product(x, y)\n"
        for path in (
            "src/repro/sketch/ams.py",
            "src/repro/sketch/estimators.py",
            "src/repro/query/engine.py",
            "src/repro/analysis/rules.py",
        ):
            assert scan(source, path) == [], path

    def test_other_modules_in_scope(self) -> None:
        source = "v = estimate_join_size(x, y)\n"
        for path in (
            "src/repro/experiments/thing.py",
            "src/repro/stream/thing.py",
            "src/repro/sketch/other.py",
        ):
            assert rule_ids(scan(source, path)) == ["R007"], path

    def test_suppression_with_reason_covers(self) -> None:
        found = scan(
            """\
            # repro: allow[R007] legacy comparison harness needs raw floats
            v = estimate_product(x, y)
            """,
            "src/repro/experiments/thing.py",
        )
        assert found == []


# ---------------------------------------------------------------------------
# R012: span handles must be context-managed or explicitly ended.
# ---------------------------------------------------------------------------


class TestSpanLifecycleGuard:
    def test_discarded_and_unended_handles_flagged(self) -> None:
        found = scan(
            """\
            from repro import obs

            def f():
                obs.span("a.b", op="load")
                handle = obs.start_span("c.d")
                return 1
            """,
            "src/repro/stream/thing.py",
        )
        assert rule_ids(found) == ["R012", "R012"]
        assert "discarded" in found[0].message
        assert "'handle'" in found[1].message
        assert found[0].line == 4
        assert found[1].line == 5

    def test_with_item_and_ended_handles_clean(self) -> None:
        found = scan(
            """\
            from repro import obs

            def f():
                with obs.span("a.b"):
                    pass
                handle = obs.start_span("c.d")
                try:
                    pass
                finally:
                    handle.end()
            """,
            "src/repro/stream/thing.py",
        )
        assert found == []

    def test_named_handle_as_with_item_clean(self) -> None:
        found = scan(
            """\
            def f():
                handle = span("a.b")
                with handle:
                    pass
            """,
            "src/repro/query/thing.py",
        )
        assert found == []

    def test_forwarded_handles_transfer_ownership(self) -> None:
        # Returning or passing a handle elsewhere is not a leak here.
        found = scan(
            """\
            def opener():
                return start_span("a.b")

            def registrar(sink):
                sink.attach(start_span("c.d"))
            """,
            "src/repro/cluster/thing.py",
        )
        assert found == []

    def test_scopes_are_independent(self) -> None:
        # A .end() in another function does not close this scope's span.
        found = scan(
            """\
            def opener():
                handle = start_span("a.b")

            def closer(handle):
                handle.end()
            """,
            "src/repro/stream/thing.py",
        )
        assert rule_ids(found) == ["R012"]
        assert found[0].line == 2

    def test_nested_function_is_its_own_scope(self) -> None:
        found = scan(
            """\
            def outer():
                with span("a.b"):
                    def inner():
                        span("c.d")
                    return inner
            """,
            "src/repro/query/thing.py",
        )
        assert rule_ids(found) == ["R012"]
        assert found[0].line == 4

    def test_obs_package_exempt(self) -> None:
        source = "def f():\n    span('a.b')\n"
        assert scan(source, "src/repro/obs/tracing.py") == []
        assert (
            rule_ids(scan(source, "src/repro/stream/thing.py")) == ["R012"]
        )

    def test_suppression_with_reason_covers(self) -> None:
        found = scan(
            """\
            def f():
                # repro: allow[R012] fire-and-forget marker span
                obs.span("a.b")
            """,
            "src/repro/stream/thing.py",
        )
        assert found == []


# ---------------------------------------------------------------------------
# Suppressions and R000.
# ---------------------------------------------------------------------------


class TestSuppressions:
    def test_reasonless_suppression_reported_and_inert(self) -> None:
        found = scan(
            """\
            def f(g):
                return isinstance(g, EH3)  # repro: allow[R001]
            """,
            "src/repro/sketch/thing.py",
        )
        assert sorted(rule_ids(found)) == ["R000", "R001"]

    def test_standalone_comment_covers_next_line(self) -> None:
        found = scan(
            """\
            # repro: allow[R001] the blessed fallback
            ok = isinstance(g, EH3)
            """,
            "src/repro/sketch/thing.py",
        )
        assert found == []

    def test_wrong_rule_does_not_cover(self) -> None:
        # The R001 finding survives, and the mismatched marker is itself
        # reported stale (R000) since R002 never fired on its line.
        found = scan(
            "ok = isinstance(g, EH3)  # repro: allow[R002] wrong rule\n",
            "src/repro/sketch/thing.py",
        )
        assert rule_ids(found) == ["R000", "R001"]

    def test_multiple_rules_in_one_marker(self) -> None:
        lines = ["x = 1  # repro: allow[R001, R002] shared justification"]
        (suppression,) = collect_suppressions(lines)
        assert suppression.rules == ("R001", "R002")
        assert suppression.covers("R001", 1)
        assert suppression.covers("R002", 1)
        assert not suppression.covers("R003", 1)

    def test_syntax_error_reported_as_r000(self) -> None:
        found = scan("def broken(:\n", "src/repro/core/thing.py")
        assert rule_ids(found) == ["R000"]
        assert "does not parse" in found[0].message


# ---------------------------------------------------------------------------
# Baseline mechanics and the CLI gate.
# ---------------------------------------------------------------------------


class TestBaseline:
    def test_round_trip_and_report_split(self, tmp_path: Path) -> None:
        old = scan(
            "a = isinstance(g, EH3)\n", "src/repro/sketch/thing.py"
        )
        baseline_file = tmp_path / "baseline.json"
        write_baseline(baseline_file, old)
        baseline = load_baseline(baseline_file)
        fresh_and_old = scan(
            "a = isinstance(g, EH3)\nb = isinstance(g, BCH3)\n",
            "src/repro/sketch/thing.py",
        )
        report = AnalysisReport(violations=fresh_and_old, baseline=baseline)
        assert [v.snippet for v in report.baselined] == [
            "a = isinstance(g, EH3)"
        ]
        assert [v.snippet for v in report.fresh] == [
            "b = isinstance(g, BCH3)"
        ]
        assert report.summary() == "R001 x2"

    def test_missing_baseline_is_empty(self, tmp_path: Path) -> None:
        assert load_baseline(tmp_path / "absent.json") == frozenset()

    def test_version_mismatch_rejected(self, tmp_path: Path) -> None:
        stale = tmp_path / "baseline.json"
        stale.write_text(json.dumps({"version": 99, "violations": []}))
        with pytest.raises(ValueError, match="version"):
            load_baseline(stale)

    def test_strict_gate_fails_then_baseline_clears(
        self, tmp_path: Path
    ) -> None:
        kernel = tmp_path / "repro" / "rangesum"
        kernel.mkdir(parents=True)
        (kernel / "bad.py").write_text(
            "import numpy as np\na = np.arange(10)\n"
        )
        baseline = tmp_path / "baseline.json"
        out = io.StringIO()
        assert (
            run_analyze(
                paths=[str(kernel)],
                strict=True,
                baseline_path=str(baseline),
                stream=out,
            )
            == 1
        )
        assert "R002" in out.getvalue()
        assert (
            run_analyze(
                paths=[str(kernel)],
                refresh_baseline=True,
                baseline_path=str(baseline),
                stream=io.StringIO(),
            )
            == 0
        )
        assert (
            run_analyze(
                paths=[str(kernel)],
                strict=True,
                baseline_path=str(baseline),
                stream=io.StringIO(),
            )
            == 0
        )

    def test_rule_lookup(self) -> None:
        assert rule_by_id("R001").id == "R001"
        with pytest.raises(KeyError, match="R001"):
            rule_by_id("R999")
        assert [rule.id for rule in ALL_RULES] == [
            "R001",
            "R002",
            "R003",
            "R004",
            "R005",
            "R006",
            "R007",
            "R012",
            "R008",
            "R009",
            "R010",
            "R011",
        ]


class TestShippedBaseline:
    """The tree itself must scan clean against the checked-in baseline."""

    def test_fresh_scan_matches_shipped_baseline(self) -> None:
        violations = analyze_paths(
            [REPO_ROOT / "src" / "repro"], root=REPO_ROOT
        )
        baseline = load_baseline(REPO_ROOT / "analysis-baseline.json")
        report = AnalysisReport(violations=violations, baseline=baseline)
        assert report.fresh == [], "\n".join(
            v.render() for v in report.fresh
        )
        # Every baselined fingerprint must still exist somewhere, or the
        # baseline has gone stale and should be refreshed.
        live = {v.fingerprint() for v in violations}
        stale = baseline - live
        assert stale == set(), f"stale baseline entries: {sorted(stale)}"

    def test_shipped_baseline_is_empty(self) -> None:
        # PR 4 fixed or suppressed-with-reason every historical finding;
        # keep it that way -- new violations need a fix or an inline
        # '# repro: allow[R00x] reason', not a baseline entry.
        assert load_baseline(REPO_ROOT / "analysis-baseline.json") == frozenset()


# ---------------------------------------------------------------------------
# R000: stale suppressions.
# ---------------------------------------------------------------------------


class TestStaleSuppressions:
    def test_stale_marker_flagged(self) -> None:
        found = scan(
            "x = compute()  # repro: allow[R001] fixed long ago\n",
            "src/repro/sketch/thing.py",
        )
        assert rule_ids(found) == ["R000"]
        assert "stale suppression" in found[0].message

    def test_live_marker_not_flagged(self) -> None:
        found = scan(
            "ok = isinstance(g, EH3)  # repro: allow[R001] registry "
            "migration pending\n",
            "src/repro/sketch/thing.py",
        )
        assert found == []

    def test_partial_rule_run_cannot_judge_staleness(self) -> None:
        # Running only R002 cannot tell whether an R001 marker is stale.
        found = analyze_source(
            "x = compute()  # repro: allow[R001] fixed long ago\n",
            "src/repro/sketch/thing.py",
            rules=[rule_by_id("R002")],
        )
        assert found == []

    def test_marker_text_inside_string_is_not_a_suppression(self) -> None:
        # Rule docs quote the marker syntax in string literals; the
        # tokenizer keeps those from registering (and from going stale).
        found = scan(
            "HELP = \"justify with '# repro: allow[R001] reason'\"\n",
            "src/repro/sketch/thing.py",
        )
        assert found == []

    def test_standalone_stale_marker_flagged(self) -> None:
        found = scan(
            """\
            # repro: allow[R001] the next line used to dispatch on type
            x = compute()
            """,
            "src/repro/sketch/thing.py",
        )
        assert rule_ids(found) == ["R000"]


# ---------------------------------------------------------------------------
# --diff: changed-lines-only reporting.
# ---------------------------------------------------------------------------


class TestDiffScan:
    def _seed_repo(self, tmp_path: Path) -> Path:
        import subprocess

        def git(*argv: str) -> None:
            subprocess.run(
                ["git", "-C", str(tmp_path), *argv],
                check=True,
                capture_output=True,
                env={
                    "GIT_AUTHOR_NAME": "t",
                    "GIT_AUTHOR_EMAIL": "t@t",
                    "GIT_COMMITTER_NAME": "t",
                    "GIT_COMMITTER_EMAIL": "t@t",
                    "HOME": str(tmp_path),
                    "PATH": "/usr/bin:/bin:/usr/local/bin",
                },
            )

        package = tmp_path / "repro" / "sketch"
        package.mkdir(parents=True)
        target = package / "thing.py"
        target.write_text("a = 1\nb = 2\nok = isinstance(g, EH3)\n")
        git("init", "-q")
        git("add", ".")
        git("commit", "-q", "-m", "seed")
        # Change line 2 only; the pre-existing violation on line 3 is
        # NOT part of this change.
        target.write_text("a = 1\nb = isinstance(g, BCH3)\nok = isinstance(g, EH3)\n")
        return target

    def test_changed_lines_parse(self, tmp_path: Path) -> None:
        from repro.analysis.diff import changed_lines

        self._seed_repo(tmp_path)
        touched = changed_lines("HEAD", tmp_path)
        assert touched == {"repro/sketch/thing.py": {2}}

    def test_diff_scan_reports_only_touched_lines(
        self, tmp_path: Path, monkeypatch: pytest.MonkeyPatch
    ) -> None:
        target = self._seed_repo(tmp_path)
        monkeypatch.chdir(tmp_path)
        out = io.StringIO()
        code = run_analyze(
            paths=[str(target)],
            strict=True,
            diff_ref="HEAD",
            baseline_path=str(tmp_path / "absent.json"),
            stream=out,
        )
        text = out.getvalue()
        assert code == 1
        assert "BCH3" in text  # the line this change touched
        assert text.count("R001") >= 1
        assert ":3:" not in text  # the untouched pre-existing finding

    def test_bad_ref_is_a_clean_error(
        self, tmp_path: Path, monkeypatch: pytest.MonkeyPatch
    ) -> None:
        target = self._seed_repo(tmp_path)
        monkeypatch.chdir(tmp_path)
        out = io.StringIO()
        code = run_analyze(
            paths=[str(target)],
            diff_ref="no-such-ref",
            baseline_path=str(tmp_path / "absent.json"),
            stream=out,
        )
        assert code == 2
        assert "analyze --diff" in out.getvalue()


# ---------------------------------------------------------------------------
# SARIF artifact.
# ---------------------------------------------------------------------------


class TestSarifOutput:
    def test_sarif_structure(self) -> None:
        from repro.analysis.sarif import SARIF_VERSION, to_sarif

        violations = scan(
            "ok = isinstance(g, EH3)\n", "src/repro/sketch/thing.py"
        )
        log = to_sarif(violations, ALL_RULES)
        assert log["version"] == SARIF_VERSION
        run = log["runs"][0]
        driver = run["tool"]["driver"]
        assert driver["name"] == "repro-analyze"
        rule_ids_listed = [entry["id"] for entry in driver["rules"]]
        assert rule_ids_listed[0] == "R000"
        assert "R011" in rule_ids_listed
        (result,) = run["results"]
        assert result["ruleId"] == "R001"
        assert result["level"] == "error"
        location = result["locations"][0]["physicalLocation"]
        assert location["artifactLocation"]["uri"] == (
            "src/repro/sketch/thing.py"
        )
        assert location["region"]["startLine"] == 1
        assert "reproFingerprint/v1" in result["partialFingerprints"]

    def test_baselined_findings_are_notes(self) -> None:
        from repro.analysis.sarif import to_sarif

        violations = scan(
            "ok = isinstance(g, EH3)\n", "src/repro/sketch/thing.py"
        )
        baseline = frozenset(v.fingerprint() for v in violations)
        log = to_sarif(violations, ALL_RULES, baseline)
        (result,) = log["runs"][0]["results"]
        assert result["level"] == "note"

    def test_cli_writes_artifact(self, tmp_path: Path) -> None:
        bad = tmp_path / "repro" / "sketch"
        bad.mkdir(parents=True)
        (bad / "thing.py").write_text("ok = isinstance(g, EH3)\n")
        sarif_path = tmp_path / "scan.sarif"
        out = io.StringIO()
        run_analyze(
            paths=[str(bad)],
            sarif_path=str(sarif_path),
            baseline_path=str(tmp_path / "absent.json"),
            stream=out,
        )
        log = json.loads(sarif_path.read_text())
        assert log["runs"][0]["results"], "artifact must carry findings"
        assert "sarif:" in out.getvalue()


# ---------------------------------------------------------------------------
# --graph / --why introspection.
# ---------------------------------------------------------------------------


class TestIntrospectionCLI:
    def test_graph_artifact_round_trips(self, tmp_path: Path) -> None:
        from repro.analysis.callgraph import CallGraph

        package = tmp_path / "repro" / "apps"
        package.mkdir(parents=True)
        (package / "thing.py").write_text(
            "def f():\n    return g()\n\ndef g():\n    return 1\n"
        )
        graph_path = tmp_path / "graph.json"
        out = io.StringIO()
        run_analyze(
            paths=[str(package)],
            graph_path=str(graph_path),
            baseline_path=str(tmp_path / "absent.json"),
            stream=out,
        )
        data = json.loads(graph_path.read_text())
        clone = CallGraph.from_dict(data)
        assert any(
            info.qualname == "f" for info in clone.functions.values()
        )
        assert "graph:" in out.getvalue()

    def test_why_prints_evidence_chain(self, tmp_path: Path) -> None:
        package = tmp_path / "repro" / "apps"
        package.mkdir(parents=True)
        (package / "thing.py").write_text(
            "import time\n"
            "from repro.generators.eh3 import EH3\n"
            "\n"
            "def make():\n"
            "    seed = time.time_ns()\n"
            "    return EH3(seed)\n"
        )
        out = io.StringIO()
        code = run_analyze(
            paths=[str(package)],
            why="R008",
            baseline_path=str(tmp_path / "absent.json"),
            stream=out,
        )
        text = out.getvalue()
        assert code == 0
        assert "source: time.time_ns" in text
        assert "fingerprint: R008::" in text

    def test_why_without_match_fails(self, tmp_path: Path) -> None:
        package = tmp_path / "repro" / "apps"
        package.mkdir(parents=True)
        (package / "thing.py").write_text("x = 1\n")
        out = io.StringIO()
        code = run_analyze(
            paths=[str(package)],
            why="R008::nope",
            baseline_path=str(tmp_path / "absent.json"),
            stream=out,
        )
        assert code == 1
        assert "no finding" in out.getvalue()
