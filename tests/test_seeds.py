"""Tests for seed-material generation and family construction."""

from __future__ import annotations

import numpy as np
import pytest

from repro.generators import EH3, SeedSource
from repro.generators.seeds import family_grid, make_family, seeds_array


class TestSeedSource:
    def test_deterministic_from_seed(self):
        a = SeedSource(42)
        b = SeedSource(42)
        assert [a.bits(16) for _ in range(10)] == [
            b.bits(16) for _ in range(10)
        ]

    def test_bits_width(self):
        source = SeedSource(1)
        for width in (0, 1, 7, 32, 33, 64, 100):
            value = source.bits(width)
            assert 0 <= value < (1 << max(width, 1)) or width == 0
            if width == 0:
                assert value == 0

    def test_bits_fill_the_range(self):
        """High bits must actually vary (catching shift bugs)."""
        source = SeedSource(2)
        values = [source.bits(64) for _ in range(200)]
        assert any(v >> 63 for v in values)
        assert any(not (v >> 63) for v in values)

    def test_bit_is_binary(self):
        source = SeedSource(3)
        values = {source.bit() for _ in range(100)}
        assert values == {0, 1}

    def test_below(self):
        source = SeedSource(4)
        for _ in range(100):
            assert 0 <= source.below(7) < 7
        with pytest.raises(ValueError):
            source.below(0)

    def test_negative_width_rejected(self):
        with pytest.raises(ValueError):
            SeedSource(5).bits(-1)

    def test_wraps_existing_numpy_generator(self):
        rng = np.random.default_rng(9)
        source = SeedSource(rng)
        assert source.rng is rng

    def test_spawn_independent(self):
        parent = SeedSource(6)
        child = parent.spawn()
        # Child draws do not perturb the parent stream.
        before = parent.bits(32)
        child.bits(32)
        parent2 = SeedSource(6)
        parent2.spawn()
        assert before == parent2.bits(32)


class TestFamilies:
    def test_make_family_sizes_and_independence(self):
        source = SeedSource(7)
        family = make_family(
            lambda src: EH3.from_source(10, src), 8, source
        )
        assert len(family) == 8
        seeds = {(g.s0, g.s1) for g in family}
        assert len(seeds) == 8  # collisions all but impossible

    def test_make_family_validation(self):
        with pytest.raises(ValueError):
            make_family(lambda src: None, 0, SeedSource(1))

    def test_family_grid_shape(self):
        source = SeedSource(8)
        grid = family_grid(
            lambda src: EH3.from_source(8, src), 3, 4, source
        )
        assert len(grid) == 3
        assert all(len(row) == 4 for row in grid)

    def test_family_grid_validation(self):
        with pytest.raises(ValueError):
            family_grid(lambda src: None, 0, 1, SeedSource(1))

    def test_seeds_array(self):
        seeds = seeds_array(SeedSource(9), 20, 12)
        assert len(seeds) == 20
        assert all(0 <= s < (1 << 12) for s in seeds)
