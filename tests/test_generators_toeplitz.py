"""Tests for the Toeplitz hash family generator."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.bits import parity
from repro.generators import SeedSource, Toeplitz, ToeplitzHash


class TestToeplitzHash:
    def test_dimension_validation(self):
        with pytest.raises(ValueError):
            ToeplitzHash(0, 4, 0, 0)
        with pytest.raises(ValueError):
            ToeplitzHash(4, 4, 1 << 7, 0)  # needs n + m - 1 = 7 bits
        with pytest.raises(ValueError):
            ToeplitzHash(4, 4, 0, 16)  # offset needs m = 4 bits

    def test_rows_share_diagonals(self):
        """Toeplitz structure: entry (r, c) equals entry (r+1, c+1)."""
        hash_function = ToeplitzHash.from_source(6, 4, SeedSource(2))
        for r in range(3):
            row = hash_function.row(r)
            next_row = hash_function.row(r + 1)
            for c in range(5):
                assert (row >> c) & 1 == (next_row >> (c + 1)) & 1

    def test_hash_is_affine(self):
        hash_function = ToeplitzHash.from_source(8, 5, SeedSource(3))
        c = hash_function.hash(0)
        for i in (1, 3, 77, 200):
            for j in (2, 5, 130):
                # T(i ^ j) + c == (Ti + c) ^ (Tj + c) ^ c
                assert hash_function.hash(i ^ j) == (
                    hash_function.hash(i) ^ hash_function.hash(j) ^ c
                )

    def test_hash_width(self):
        hash_function = ToeplitzHash.from_source(8, 3, SeedSource(4))
        for i in range(256):
            assert 0 <= hash_function.hash(i) < 8

    def test_input_width_checked(self):
        hash_function = ToeplitzHash.from_source(4, 4, SeedSource(5))
        with pytest.raises(ValueError):
            hash_function.hash(16)

    def test_parity_row_is_xor_of_rows(self):
        hash_function = ToeplitzHash.from_source(6, 4, SeedSource(6))
        expected = 0
        for r in range(4):
            expected ^= hash_function.row(r)
        assert hash_function.parity_row() == expected


class TestToeplitzGenerator:
    def test_bit_is_hash_parity(self):
        generator = Toeplitz.from_source(8, SeedSource(7), m=5)
        for i in range(256):
            assert generator.bit(i) == parity(generator.hash_function.hash(i))

    def test_vectorized_matches_scalar(self):
        generator = Toeplitz.from_source(10, SeedSource(8))
        indices = np.arange(1 << 10, dtype=np.uint64)
        assert np.array_equal(
            generator.bits(indices),
            np.array([generator.bit(i) for i in range(1 << 10)], dtype=np.uint8),
        )

    def test_width_mismatch_rejected(self):
        hash_function = ToeplitzHash.from_source(6, 4, SeedSource(9))
        with pytest.raises(ValueError):
            Toeplitz(8, hash_function)

    def test_independence_attribute(self):
        # 3-wise: the parity projection is a uniformly-seeded BCH3.
        assert Toeplitz.from_source(6, SeedSource(10)).independence == 3

    def test_two_wise_independence_sampled(self):
        """Sampled 2-wise balance: each sign pattern near 1/4."""
        rng_source = SeedSource(11)
        i, j = 5, 40
        counts = np.zeros(4, dtype=int)
        samples = 2000
        for _ in range(samples):
            generator = Toeplitz.from_source(6, rng_source, m=4)
            counts[generator.bit(i) << 1 | generator.bit(j)] += 1
        assert (counts > samples / 4 - 150).all()
        assert (counts < samples / 4 + 150).all()
