"""Tests for the O(1) BCH3 range-summation algorithm."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.dyadic import DyadicInterval, minimal_dyadic_cover
from repro.generators import BCH3
from repro.rangesum import bch3_dyadic_sum, bch3_range_sum, brute_force_range_sum


class TestDyadicSum:
    def test_zero_unless_low_seed_bits_vanish(self):
        generator = BCH3(8, 0, 0b10110100)  # trailing zeros: 2
        assert bch3_dyadic_sum(generator, DyadicInterval(1, 0)) != 0
        assert bch3_dyadic_sum(generator, DyadicInterval(2, 3)) != 0
        assert bch3_dyadic_sum(generator, DyadicInterval(3, 1)) == 0
        assert bch3_dyadic_sum(generator, DyadicInterval(8, 0)) == 0

    def test_full_magnitude_when_nonzero(self):
        generator = BCH3(8, 1, 0b10110100)
        interval = DyadicInterval(2, 5)
        expected = interval.size * generator.value(interval.low)
        assert bch3_dyadic_sum(generator, interval) == expected

    def test_out_of_domain_rejected(self):
        with pytest.raises(ValueError):
            bch3_dyadic_sum(BCH3(4, 0, 1), DyadicInterval(5, 0))

    @given(st.data())
    @settings(max_examples=200)
    def test_matches_brute_force(self, data):
        n = data.draw(st.integers(min_value=1, max_value=12))
        s0 = data.draw(st.integers(min_value=0, max_value=1))
        s1 = data.draw(st.integers(min_value=0, max_value=(1 << n) - 1))
        level = data.draw(st.integers(min_value=0, max_value=n))
        offset = data.draw(st.integers(min_value=0, max_value=(1 << (n - level)) - 1))
        generator = BCH3(n, s0, s1)
        interval = DyadicInterval(level, offset)
        assert bch3_dyadic_sum(generator, interval) == brute_force_range_sum(
            generator, interval.low, interval.high - 1
        )


class TestGeneralIntervals:
    @given(st.data())
    @settings(max_examples=300)
    def test_matches_brute_force(self, data):
        n = data.draw(st.integers(min_value=1, max_value=13))
        s0 = data.draw(st.integers(min_value=0, max_value=1))
        s1 = data.draw(st.integers(min_value=0, max_value=(1 << n) - 1))
        alpha = data.draw(st.integers(min_value=0, max_value=(1 << n) - 1))
        beta = data.draw(st.integers(min_value=alpha, max_value=(1 << n) - 1))
        generator = BCH3(n, s0, s1)
        assert bch3_range_sum(generator, alpha, beta) == brute_force_range_sum(
            generator, alpha, beta
        )

    def test_zero_seed_sums_whole_count(self):
        generator = BCH3(10, 0, 0)
        assert bch3_range_sum(generator, 17, 600) == 584
        generator = BCH3(10, 1, 0)
        assert bch3_range_sum(generator, 17, 600) == -584

    def test_single_point(self):
        generator = BCH3(10, 1, 0x155)
        for i in (0, 1, 511, 1023):
            assert bch3_range_sum(generator, i, i) == generator.value(i)

    def test_whole_domain(self):
        generator = BCH3(10, 0, 0b1000000000)
        assert bch3_range_sum(generator, 0, 1023) == brute_force_range_sum(
            generator, 0, 1023
        )

    def test_empty_interval_rejected(self):
        with pytest.raises(ValueError):
            bch3_range_sum(BCH3(4, 0, 1), 5, 4)

    def test_outside_domain_rejected(self):
        with pytest.raises(ValueError):
            bch3_range_sum(BCH3(4, 0, 1), 0, 16)

    def test_generator_method_delegates(self):
        generator = BCH3(8, 0, 0xB4)
        assert generator.range_sum(10, 200) == bch3_range_sum(generator, 10, 200)

    def test_additivity_across_split(self):
        """range_sum[a, c] = range_sum[a, b] + range_sum[b+1, c]."""
        generator = BCH3(12, 1, 0xABC)
        a, b, c = 100, 2000, 4000
        assert bch3_range_sum(generator, a, c) == bch3_range_sum(
            generator, a, b
        ) + bch3_range_sum(generator, b + 1, c)

    def test_large_domain_constant_work(self):
        """Runs instantly on a 2^60 domain -- no linear scan possible."""
        generator = BCH3(60, 0, (1 << 59) | 0b1000)
        total = bch3_range_sum(generator, 12345, (1 << 59) + 987654321)
        # Verify against the cover-based dyadic evaluation.
        expected = sum(
            bch3_dyadic_sum(generator, piece)
            for piece in minimal_dyadic_cover(12345, (1 << 59) + 987654321)
        )
        assert total == expected
