"""Tests for multi-dimensional product generators and product DMAP."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.generators import BCH3, SeedSource
from repro.rangesum.multidim import ProductDMAP, ProductGenerator


class TestProductGenerator:
    def test_value_is_product(self, source: SeedSource):
        product = ProductGenerator.eh3((4, 4), source)
        gx, gy = product.factors
        for x in range(16):
            for y in range(0, 16, 3):
                assert product.value((x, y)) == gx.value(x) * gy.value(y)

    def test_metadata(self, source: SeedSource):
        product = ProductGenerator.eh3((4, 6), source)
        assert product.dimensions == 2
        assert product.independence == 3
        assert product.seed_bits == 5 + 7

    def test_rank_mismatch_rejected(self, source: SeedSource):
        product = ProductGenerator.eh3((4, 4), source)
        with pytest.raises(ValueError):
            product.value((1, 2, 3))
        with pytest.raises(ValueError):
            product.rect_sum(((0, 3),))

    def test_empty_factors_rejected(self):
        with pytest.raises(ValueError):
            ProductGenerator(())

    @given(st.data())
    @settings(max_examples=60, deadline=None)
    def test_rect_sum_matches_enumeration(self, data):
        seed = data.draw(st.integers(min_value=0, max_value=10_000))
        source = SeedSource(seed)
        product = ProductGenerator.eh3((5, 5), source)
        x0 = data.draw(st.integers(min_value=0, max_value=31))
        x1 = data.draw(st.integers(min_value=x0, max_value=31))
        y0 = data.draw(st.integers(min_value=0, max_value=31))
        y1 = data.draw(st.integers(min_value=y0, max_value=31))
        rect = ((x0, x1), (y0, y1))
        assert product.rect_sum(rect) == product.rect_sum_brute(rect)

    def test_three_dimensional_rect(self, source: SeedSource):
        product = ProductGenerator.eh3((3, 3, 3), source)
        rect = ((0, 5), (1, 6), (2, 7))
        assert product.rect_sum(rect) == product.rect_sum_brute(rect)

    def test_non_rangesummable_factor_rejected(self, source: SeedSource):
        from repro.generators import RM7

        # RM7 has no range_sum method on the generator object.
        product = ProductGenerator([RM7.from_source(4, source)])
        with pytest.raises(TypeError):
            product.rect_sum(((0, 3),))

    def test_bch3_factors_work(self, source: SeedSource):
        product = ProductGenerator(
            [BCH3.from_source(4, source), BCH3.from_source(4, source)]
        )
        rect = ((2, 9), (4, 12))
        assert product.rect_sum(rect) == product.rect_sum_brute(rect)


class TestProductDMAP:
    def test_point_contribution_is_product(self, source: SeedSource):
        product = ProductDMAP.from_source((4, 4), source)
        dx, dy = product.dmaps
        point = (7, 12)
        assert product.point_contribution(point) == dx.point_contribution(
            7
        ) * dy.point_contribution(12)

    def test_rect_contribution_is_product(self, source: SeedSource):
        product = ProductDMAP.from_source((4, 4), source)
        dx, dy = product.dmaps
        rect = ((1, 9), (3, 14))
        assert product.rect_contribution(rect) == dx.interval_contribution(
            1, 9
        ) * dy.interval_contribution(3, 14)

    def test_join_identity_in_expectation(self, source: SeedSource):
        """Product-DMAP estimates rectangle membership unbiasedly."""
        trials = 3000
        rect = ((2, 10), (4, 12))
        inside = (5, 6)
        outside = (14, 1)
        sums = {inside: 0.0, outside: 0.0}
        for _ in range(trials):
            product = ProductDMAP.from_source((4, 4), source)
            rect_part = product.rect_contribution(rect)
            for point in (inside, outside):
                sums[point] += rect_part * product.point_contribution(point)
        assert abs(sums[inside] / trials - 1.0) < 0.4
        assert abs(sums[outside] / trials) < 0.4

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            ProductDMAP(())

    def test_rank_mismatch_rejected(self, source: SeedSource):
        product = ProductDMAP.from_source((4, 4), source)
        with pytest.raises(ValueError):
            product.point_contribution((1,))
