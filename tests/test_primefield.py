"""Tests for GF(p) prime-field arithmetic and Mersenne reductions."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.primefield import (
    MERSENNE_31,
    MERSENNE_61,
    PrimeField,
    is_prime,
    mod_mersenne31,
    mod_mersenne31_array,
    next_prime_at_least,
    prime_field,
)


class TestPrimality:
    def test_small_primes(self):
        primes = [2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31]
        for n in range(32):
            assert is_prime(n) == (n in primes)

    def test_mersenne_primes(self):
        assert is_prime(MERSENNE_31)
        assert is_prime(MERSENNE_61)

    def test_mersenne_composites(self):
        assert not is_prime((1 << 29) - 1)  # 2^29-1 = 233 * 1103 * 2089
        assert not is_prime((1 << 32) - 1)

    def test_carmichael_numbers_rejected(self):
        for n in (561, 1105, 1729, 2465, 2821, 6601):
            assert not is_prime(n)

    @given(st.integers(min_value=2, max_value=100_000))
    def test_next_prime_at_least(self, n):
        p = next_prime_at_least(n)
        assert p >= n
        assert is_prime(p)
        # No prime strictly between n and p.
        assert all(not is_prime(q) for q in range(n, p))


class TestMersenneReduction:
    @given(st.integers(min_value=0, max_value=(1 << 64) - 1))
    def test_scalar_matches_mod(self, x):
        assert mod_mersenne31(x) == x % MERSENNE_31

    def test_boundary_values(self):
        assert mod_mersenne31(MERSENNE_31) == 0
        assert mod_mersenne31(MERSENNE_31 - 1) == MERSENNE_31 - 1
        assert mod_mersenne31(2 * MERSENNE_31) == 0
        assert mod_mersenne31(2 * MERSENNE_31 + 5) == 5

    @given(
        st.lists(
            st.integers(min_value=0, max_value=(1 << 62) - 1),
            min_size=1,
            max_size=50,
        )
    )
    def test_array_matches_mod(self, values):
        arr = np.array(values, dtype=np.uint64)
        reduced = mod_mersenne31_array(arr)
        expected = [v % MERSENNE_31 for v in values]
        assert list(reduced) == expected


class TestPrimeField:
    def test_rejects_composite(self):
        with pytest.raises(ValueError):
            PrimeField(10)

    def test_basic_arithmetic(self):
        gf = prime_field(17)
        assert gf.add(9, 12) == 4
        assert gf.sub(3, 9) == 11
        assert gf.mul(5, 7) == 1
        assert gf.inverse(5) == 7
        assert gf.pow(2, 4) == 16

    def test_zero_inverse_rejected(self):
        with pytest.raises(ZeroDivisionError):
            prime_field(7).inverse(0)

    def test_out_of_range_rejected(self):
        gf = prime_field(7)
        with pytest.raises(ValueError):
            gf.add(7, 0)
        with pytest.raises(ValueError):
            gf.mul(-1, 3)

    @given(st.integers(min_value=1, max_value=16))
    def test_fermat_little(self, a):
        gf = prime_field(17)
        assert gf.pow(a, 16) == 1

    def test_horner_matches_naive(self):
        gf = prime_field(MERSENNE_31)
        coefficients = (123456789, 987654321, 555555555, 42)
        for x in (0, 1, 2, 10**9, MERSENNE_31 - 1):
            naive = (
                sum(c * pow(x, k, MERSENNE_31) for k, c in enumerate(coefficients))
                % MERSENNE_31
            )
            assert gf.eval_poly(coefficients, x) == naive

    def test_horner_array_matches_scalar_mersenne31(self):
        gf = prime_field(MERSENNE_31)
        coefficients = (7, 11, 13)
        xs = np.array([0, 1, 5, 10**6, MERSENNE_31 - 1], dtype=np.uint64)
        vectorized = gf.eval_poly_array(coefficients, xs)
        scalar = [gf.eval_poly(coefficients, int(x)) for x in xs]
        assert list(vectorized) == scalar

    def test_horner_array_generic_prime(self):
        gf = prime_field(101)
        coefficients = (3, 1, 4, 1, 5)
        xs = np.arange(101, dtype=np.uint64)
        vectorized = gf.eval_poly_array(coefficients, xs)
        scalar = [gf.eval_poly(coefficients, int(x)) for x in xs]
        assert list(vectorized) == scalar

    def test_prime_field_cached(self):
        assert prime_field(31) is prime_field(31)
