"""Tests for the median-of-averages AMS estimator grid."""

from __future__ import annotations

import numpy as np
import pytest

from repro.generators import EH3, SeedSource
from repro.sketch.ams import (
    SketchScheme,
    estimate_product,
    recommended_grid,
)
from repro.sketch.atomic import GeneratorChannel


def eh3_scheme(source: SeedSource, medians=3, averages=5, bits=10) -> SketchScheme:
    return SketchScheme.from_generators(
        lambda src: EH3.from_source(bits, src), medians, averages, source
    )


class TestSchemeConstruction:
    def test_grid_dimensions(self, source: SeedSource):
        scheme = eh3_scheme(source, medians=3, averages=5)
        assert scheme.medians == 3
        assert scheme.averages == 5
        assert scheme.counters == 15

    def test_all_channels_independent(self, source: SeedSource):
        scheme = eh3_scheme(source, medians=2, averages=3)
        seeds = {
            (cell.generator.s0, cell.generator.s1)
            for row in scheme.channels
            for cell in row
        }
        assert len(seeds) == 6  # overwhelmingly likely for a 11-bit seed

    def test_empty_grid_rejected(self):
        with pytest.raises(ValueError):
            SketchScheme([])
        with pytest.raises(ValueError):
            SketchScheme([[]])

    def test_ragged_grid_rejected(self, source: SeedSource):
        channel = GeneratorChannel(EH3.from_source(4, source))
        with pytest.raises(ValueError):
            SketchScheme([[channel], [channel, channel]])

    def test_bad_dimensions_rejected(self, source: SeedSource):
        with pytest.raises(ValueError):
            eh3_scheme(source, medians=0)


class TestRecommendedGrid:
    def test_grows_with_precision(self):
        m1, a1 = recommended_grid(0.1, 0.05)
        m2, a2 = recommended_grid(0.05, 0.05)
        assert a2 > a1
        assert m1 == m2

    def test_grows_with_confidence(self):
        m1, _ = recommended_grid(0.1, 0.1)
        m2, _ = recommended_grid(0.1, 0.001)
        assert m2 > m1

    def test_bounds_validated(self):
        with pytest.raises(ValueError):
            recommended_grid(0.0, 0.1)
        with pytest.raises(ValueError):
            recommended_grid(0.1, 1.0)


class TestSketchMatrix:
    def test_update_point_touches_every_cell(self, source: SeedSource):
        scheme = eh3_scheme(source)
        sketch = scheme.sketch()
        sketch.update_point(7)
        values = sketch.values()
        assert values.shape == (3, 5)
        assert (np.abs(values) == 1).all()

    def test_frequency_vector_fast_path(self, source: SeedSource):
        scheme = eh3_scheme(source, bits=8)
        frequencies = np.zeros(256)
        frequencies[[3, 70, 200]] = [2.0, 1.0, 5.0]

        fast = scheme.sketch()
        fast.update_frequency_vector(frequencies)
        slow = scheme.sketch()
        for i, f in enumerate(frequencies):
            if f:
                slow.update_point(i, f)
        assert np.allclose(fast.values(), slow.values())

    def test_combined_and_difference(self, source: SeedSource):
        scheme = eh3_scheme(source, bits=8)
        a = scheme.sketch()
        b = scheme.sketch()
        a.update_point(5)
        b.update_point(200, weight=3.0)
        union = a.combined(b)
        assert np.allclose(union.values(), a.values() + b.values())
        diff = a.difference(b)
        assert np.allclose(diff.values(), a.values() - b.values())

    def test_cross_scheme_operations_rejected(self, source: SeedSource):
        a = eh3_scheme(source).sketch()
        b = eh3_scheme(source).sketch()
        with pytest.raises(ValueError):
            a.combined(b)
        with pytest.raises(ValueError):
            a.difference(b)
        with pytest.raises(ValueError):
            estimate_product(a, b)


class TestEstimateProduct:
    def test_point_in_interval_indicator(self, source: SeedSource):
        """E[X_interval * X_point] = 1 iff the point is inside.

        Per-cell variance is about the interval's size (F2 of the interval
        relation), so the tolerance follows sqrt(size / averages).
        """
        scheme = eh3_scheme(source, medians=7, averages=800, bits=12)
        interval_sketch = scheme.sketch()
        interval_sketch.update_interval((100, 160))  # 61 points
        inside = scheme.sketch()
        inside.update_point(130)
        outside = scheme.sketch()
        outside.update_point(50)
        # sd ~ sqrt(61 / 800) ~ 0.28 per row; medians tighten further.
        assert estimate_product(interval_sketch, inside) == pytest.approx(
            1.0, abs=0.7
        )
        assert estimate_product(interval_sketch, outside) == pytest.approx(
            0.0, abs=0.7
        )

    def test_exact_on_identical_singletons(self, source: SeedSource):
        """xi_i * xi_i = 1 always: the estimate is exact, not just unbiased."""
        scheme = eh3_scheme(source)
        x = scheme.sketch()
        x.update_point(13, weight=4.0)
        y = scheme.sketch()
        y.update_point(13, weight=2.0)
        assert estimate_product(x, y) == pytest.approx(8.0)

    def test_median_is_robust_to_one_bad_row(self, source: SeedSource):
        scheme = eh3_scheme(source, medians=3, averages=2)
        x = scheme.sketch()
        x.update_point(9)
        y = scheme.sketch()
        y.update_point(9)
        # Corrupt one full row of x; the median survives.
        for cell in x.cells[0]:
            cell.value = 1e9
        assert estimate_product(x, y) == pytest.approx(1.0)
