"""Tests for the RM7 Reed-Muller generating scheme."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.bits import parity
from repro.generators import RM7, SeedSource


def random_rm7(n: int, source: SeedSource) -> RM7:
    return RM7.from_source(n, source)


class TestConstruction:
    def test_seed_bits_column(self):
        # Table 1: 1 + n + n(n-1)/2.
        for n in (4, 8, 32):
            generator = RM7(n, 0, 0, [0] * n)
            assert generator.seed_bits == 1 + n + n * (n - 1) // 2

    def test_row_count_enforced(self):
        with pytest.raises(ValueError):
            RM7(4, 0, 0, [0, 0, 0])

    def test_rows_must_be_strictly_upper(self):
        # Row 1 may only set bits above position 1.
        with pytest.raises(ValueError):
            RM7(4, 0, 0, [0, 0b0010, 0, 0])
        with pytest.raises(ValueError):
            RM7(4, 0, 0, [0b0001, 0, 0, 0])

    def test_valid_upper_rows_accepted(self):
        generator = RM7(4, 0, 0, [0b1110, 0b1100, 0b1000, 0])
        assert generator.seed_bits == 1 + 4 + 6


class TestDefinition:
    def test_quadratic_term_evaluation(self):
        """f includes i_u AND i_v for each seeded pair."""
        # Only the pair (0, 1) is active.
        generator = RM7(4, 0, 0, [0b0010, 0, 0, 0])
        for i in range(16):
            expected = (i & 1) & ((i >> 1) & 1)
            assert generator.bit(i) == expected

    def test_eq7_full_formula(self):
        generator = RM7(4, 1, 0b1010, [0b0110, 0b0100, 0b1000, 0])
        for i in range(16):
            quadratic = 0
            for u in range(4):
                for v in range(u + 1, 4):
                    coefficient = generator.quadratic_coefficient(u, v)
                    quadratic ^= coefficient & (i >> u) & (i >> v) & 1
            expected = 1 ^ parity(0b1010 & i) ^ quadratic
            assert generator.bit(i) == expected

    def test_quadratic_coefficient_symmetric_lookup(self):
        generator = RM7(4, 0, 0, [0b0110, 0b0100, 0, 0])
        assert generator.quadratic_coefficient(0, 1) == 1
        assert generator.quadratic_coefficient(1, 0) == 1
        assert generator.quadratic_coefficient(0, 3) == 0
        with pytest.raises(ValueError):
            generator.quadratic_coefficient(2, 2)
        with pytest.raises(ValueError):
            generator.quadratic_coefficient(0, 4)

    @given(st.integers(min_value=2, max_value=10), st.integers(min_value=0, max_value=1000))
    @settings(max_examples=30)
    def test_vectorized_matches_scalar(self, n, seed):
        generator = RM7.from_source(n, SeedSource(seed))
        size = min(1 << n, 128)
        indices = np.arange(size, dtype=np.uint64)
        assert np.array_equal(
            generator.values(indices),
            np.array([generator.value(i) for i in range(size)], dtype=np.int8),
        )

    def test_from_source_produces_valid_layout(self, source: SeedSource):
        for _ in range(20):
            generator = RM7.from_source(6, source)
            for u, row in enumerate(generator.q_rows):
                assert row & ((1 << (u + 1)) - 1) == 0

    def test_reduces_to_bch3_without_quadratic(self):
        from repro.generators import BCH3

        rm7 = RM7(6, 1, 0b101010, [0] * 6)
        bch3 = BCH3(6, 1, 0b101010)
        for i in range(64):
            assert rm7.bit(i) == bch3.bit(i)
