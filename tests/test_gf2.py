"""Tests for GF(2^k) extension-field arithmetic."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.gf2 import (
    IRREDUCIBLE_POLYS,
    GF2Field,
    clmul,
    field,
    is_irreducible,
    poly_divmod,
    poly_gcd,
    poly_mod,
)


class TestClmul:
    def test_simple_products(self):
        # (x + 1)(x + 1) = x^2 + 1 over GF(2)
        assert clmul(0b11, 0b11) == 0b101
        assert clmul(0b10, 0b10) == 0b100
        assert clmul(0, 12345) == 0
        assert clmul(1, 12345) == 12345

    @given(
        st.integers(min_value=0, max_value=(1 << 32) - 1),
        st.integers(min_value=0, max_value=(1 << 32) - 1),
    )
    def test_commutative(self, a, b):
        assert clmul(a, b) == clmul(b, a)

    @given(
        st.integers(min_value=0, max_value=(1 << 20) - 1),
        st.integers(min_value=0, max_value=(1 << 20) - 1),
        st.integers(min_value=0, max_value=(1 << 20) - 1),
    )
    def test_distributive_over_xor(self, a, b, c):
        assert clmul(a, b ^ c) == clmul(a, b) ^ clmul(a, c)

    def test_degree_adds(self):
        a, b = 0b1001, 0b101
        product = clmul(a, b)
        assert product.bit_length() - 1 == (a.bit_length() - 1) + (
            b.bit_length() - 1
        )

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            clmul(-1, 2)


class TestPolyDivision:
    @given(
        st.integers(min_value=0, max_value=(1 << 24) - 1),
        st.integers(min_value=1, max_value=(1 << 12) - 1),
    )
    def test_divmod_identity(self, a, b):
        q, r = poly_divmod(a, b)
        assert clmul(q, b) ^ r == a
        assert r.bit_length() < b.bit_length()

    def test_division_by_zero(self):
        with pytest.raises(ZeroDivisionError):
            poly_divmod(5, 0)

    def test_mod_of_smaller_is_identity(self):
        assert poly_mod(0b101, 0b10011) == 0b101

    def test_gcd_of_multiples(self):
        g = 0b111  # x^2 + x + 1 (irreducible)
        a = clmul(g, 0b1011)
        b = clmul(g, 0b1101)
        assert poly_gcd(a, b) % g == 0
        assert poly_mod(poly_gcd(a, b), g) == 0


class TestIrreducibility:
    def test_known_irreducibles(self):
        assert is_irreducible(0b111)  # x^2+x+1
        assert is_irreducible(0b1011)  # x^3+x+1
        assert is_irreducible(0b10011)  # x^4+x+1
        assert is_irreducible(0x11B)  # the AES polynomial

    def test_known_reducibles(self):
        assert not is_irreducible(0b101)  # x^2+1 = (x+1)^2
        assert not is_irreducible(0b110)  # x^2+x = x(x+1)
        assert not is_irreducible(0b1111)  # x^3+x^2+x+1 = (x+1)(x^2+1)
        assert not is_irreducible(1)  # degree 0

    def test_exhaustive_degree_4(self):
        # There are exactly 3 irreducible degree-4 polynomials over GF(2).
        irreducible = [
            p for p in range(1 << 4, 1 << 5) if is_irreducible(p)
        ]
        assert irreducible == [0b10011, 0b11001, 0b11111]

    @pytest.mark.parametrize("degree", sorted(IRREDUCIBLE_POLYS))
    def test_table_entries_are_irreducible(self, degree):
        poly = IRREDUCIBLE_POLYS[degree]
        assert poly.bit_length() - 1 == degree
        assert is_irreducible(poly)


class TestFieldAxioms:
    @pytest.mark.parametrize("degree", [1, 2, 3, 4])
    def test_multiplicative_group_small_fields(self, degree):
        gf = field(degree)
        # Every nonzero element has an inverse, and inverses verify.
        for a in range(1, gf.order):
            inv = gf.inverse(a)
            assert gf.mul(a, inv) == 1

    def test_zero_has_no_inverse(self):
        with pytest.raises(ZeroDivisionError):
            field(4).inverse(0)

    @given(st.data())
    @settings(max_examples=100)
    def test_associativity_gf256(self, data):
        gf = field(8)
        a = data.draw(st.integers(min_value=0, max_value=255))
        b = data.draw(st.integers(min_value=0, max_value=255))
        c = data.draw(st.integers(min_value=0, max_value=255))
        assert gf.mul(gf.mul(a, b), c) == gf.mul(a, gf.mul(b, c))
        assert gf.mul(a, gf.add(b, c)) == gf.add(gf.mul(a, b), gf.mul(a, c))

    def test_aes_known_product(self):
        # {53} * {CA} = {01} in the AES field: a classic test vector.
        gf = field(8)
        assert gf.mul(0x53, 0xCA) == 0x01

    def test_pow_and_cube(self):
        gf = field(8)
        for a in (0, 1, 2, 0x53, 0xFF):
            assert gf.cube(a) == gf.pow(a, 3)
            assert gf.pow(a, 1) == a
            assert gf.pow(a, 0) == 1

    def test_frobenius_additivity(self):
        # Squaring is additive in characteristic 2: (a+b)^2 = a^2 + b^2.
        gf = field(6)
        for a in range(gf.order):
            for b in (0, 1, 5, 63):
                assert gf.square(a ^ b) == gf.square(a) ^ gf.square(b)

    def test_fermat(self):
        # a^(2^k) == a for all elements.
        gf = field(5)
        for a in range(gf.order):
            assert gf.pow(a, gf.order) == a

    def test_element_bounds_enforced(self):
        gf = field(4)
        with pytest.raises(ValueError):
            gf.mul(16, 1)
        with pytest.raises(ValueError):
            gf.add(-1, 0)

    def test_mismatched_modulus_rejected(self):
        with pytest.raises(ValueError):
            GF2Field(degree=4, modulus=0b111)  # degree-2 modulus

    def test_unknown_degree_rejected(self):
        with pytest.raises(ValueError):
            field(65)

    def test_field_is_cached(self):
        assert field(8) is field(8)

    def test_cube_in_large_field(self):
        gf = field(32)
        a = 0xDEADBEEF
        assert gf.cube(a) == gf.pow(a, 3)
        assert gf.mul(gf.cube(a), gf.inverse(a)) == gf.square(a)
