"""Tests for the high-level estimation front-ends."""

from __future__ import annotations

import numpy as np
import pytest

from repro.generators import EH3, SeedSource
from repro.sketch.ams import SketchScheme
from repro.sketch.estimators import (
    estimate_join_size,
    estimate_self_join,
    exact_join_size,
    exact_self_join,
    relative_error,
    sketch_frequency_vector,
    sketch_intervals,
    sketch_points,
)


def scheme_of(source, medians=5, averages=60, bits=10) -> SketchScheme:
    return SketchScheme.from_generators(
        lambda src: EH3.from_source(bits, src), medians, averages, source
    )


class TestExactQuantities:
    def test_exact_join_size(self):
        r = np.array([1.0, 2.0, 0.0, 3.0])
        s = np.array([2.0, 1.0, 9.0, 1.0])
        assert exact_join_size(r, s) == 1 * 2 + 2 * 1 + 3 * 1

    def test_exact_self_join(self):
        assert exact_self_join([3.0, 4.0]) == 25.0

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            exact_join_size([1.0], [1.0, 2.0])

    def test_relative_error(self):
        assert relative_error(110.0, 100.0) == pytest.approx(0.1)
        assert relative_error(90.0, 100.0) == pytest.approx(0.1)
        with pytest.raises(ValueError):
            relative_error(1.0, 0.0)


class TestSketchBuilders:
    def test_points_and_frequency_agree(self, source: SeedSource):
        scheme = scheme_of(source)
        frequencies = np.zeros(1 << 10)
        points = [5, 5, 9, 700]
        for p in points:
            frequencies[p] += 1
        from_points = sketch_points(scheme, points)
        from_vector = sketch_frequency_vector(scheme, frequencies)
        assert np.allclose(from_points.values(), from_vector.values())

    def test_intervals_equal_expanded_points(self, source: SeedSource):
        scheme = scheme_of(source)
        from_intervals = sketch_intervals(scheme, [(10, 20), (100, 100)])
        from_points = sketch_points(
            scheme, list(range(10, 21)) + [100]
        )
        assert np.allclose(from_intervals.values(), from_points.values())


class TestEstimationAccuracy:
    def test_join_size_converges(self, source: SeedSource):
        rng = np.random.default_rng(7)
        scheme = scheme_of(source, medians=7, averages=150)
        r = rng.integers(0, 4, size=1 << 10).astype(float)
        s = rng.integers(0, 4, size=1 << 10).astype(float)
        truth = exact_join_size(r, s)
        x = sketch_frequency_vector(scheme, r)
        y = sketch_frequency_vector(scheme, s)
        assert relative_error(estimate_join_size(x, y), truth) < 0.2

    def test_self_join_uniform_is_exact_for_eh3(self, source: SeedSource):
        """Proposition 5 end-to-end: uniform data on a 4^n domain gives a
        ZERO-variance EH3 self-join estimate -- exact regardless of seeds."""
        scheme = scheme_of(source, medians=2, averages=3, bits=10)
        frequencies = np.full(1 << 10, 5.0)
        sketch = sketch_frequency_vector(scheme, frequencies)
        truth = exact_self_join(frequencies)
        assert estimate_self_join(sketch) == pytest.approx(truth, rel=1e-9)

    def test_interval_relation_join(self, source: SeedSource):
        """Join of an interval-built relation with a point relation."""
        scheme = scheme_of(source, medians=7, averages=800)
        intervals = [(0, 511), (100, 300)]
        x = sketch_intervals(scheme, intervals)
        y = sketch_points(scheme, [200, 600])
        # Point 200 is covered by both intervals, 600 by the first only.
        # Per-cell variance ~ F2(intervals) * F2(points) ~ 1115 * 2, so
        # one row's sd is ~ sqrt(2230 / 800) ~ 1.7.
        truth = 2 + 1
        assert estimate_join_size(x, y) == pytest.approx(truth, abs=3.0)
