"""Tests for the continuous-query stream processor."""

from __future__ import annotations

import numpy as np
import pytest

from repro.generators import BCH5
from repro.stream import (
    InvalidUpdateError,
    SchemeMismatchError,
    UnknownRelationError,
)
from repro.stream.processor import StreamProcessor


class TestRegistration:
    def test_relations_and_memory(self):
        processor = StreamProcessor(medians=3, averages=10)
        processor.register_relation("r", 10)
        processor.register_relation("s", 10)
        assert processor.relations() == ["r", "s"]
        assert processor.memory_words() == 2 * 30

    def test_duplicate_rejected(self):
        processor = StreamProcessor()
        processor.register_relation("r", 8)
        with pytest.raises(ValueError):
            processor.register_relation("r", 8)

    def test_same_domain_shares_scheme(self):
        processor = StreamProcessor(medians=2, averages=3)
        processor.register_relation("r", 9)
        processor.register_relation("s", 9)
        processor.register_relation("t", 12)
        assert processor.scheme_of("r") is processor.scheme_of("s")
        assert processor.scheme_of("r") is not processor.scheme_of("t")

    def test_cross_domain_join_rejected(self):
        processor = StreamProcessor()
        processor.register_relation("r", 8)
        processor.register_relation("t", 12)
        with pytest.raises(ValueError):
            processor.register_join("r", "t")

    def test_unknown_relation_rejected(self):
        processor = StreamProcessor()
        with pytest.raises(ValueError):
            processor.process_point("ghost", 1)
        with pytest.raises(ValueError):
            processor.register_self_join("ghost")

    def test_bad_dimensions_rejected(self):
        with pytest.raises(ValueError):
            StreamProcessor(medians=0)
        processor = StreamProcessor()
        with pytest.raises(ValueError):
            processor.register_relation("r", 0)


class TestContinuousQueries:
    def test_join_estimate_tracks_stream(self):
        processor = StreamProcessor(medians=7, averages=250, seed=5)
        processor.register_relation("r", 10)
        processor.register_relation("s", 10)
        join = processor.register_join("r", "s")

        rng = np.random.default_rng(2)
        r_items = rng.integers(0, 1 << 10, size=800)
        s_items = rng.integers(0, 1 << 10, size=600)
        for item in r_items:
            processor.process_point("r", int(item))
        for item in s_items:
            processor.process_point("s", int(item))

        truth = float(
            np.dot(
                np.bincount(r_items, minlength=1 << 10),
                np.bincount(s_items, minlength=1 << 10),
            )
        )
        assert processor.answer(join) == pytest.approx(truth, rel=0.5)

    def test_interval_stream_self_join(self):
        processor = StreamProcessor(medians=7, averages=300, seed=6)
        processor.register_relation("coverage", 10)
        f2 = processor.register_self_join("coverage")
        intervals = [(0, 499), (250, 749), (600, 1023)]
        for low, high in intervals:
            processor.process_interval("coverage", low, high)
        coverage = np.zeros(1 << 10)
        for low, high in intervals:
            coverage[low : high + 1] += 1
        truth = float(np.dot(coverage, coverage))
        assert processor.answer(f2) == pytest.approx(truth, rel=0.4)

    def test_deletions(self):
        processor = StreamProcessor(medians=2, averages=4, seed=7)
        processor.register_relation("r", 8)
        processor.process_point("r", 3)
        processor.process_point("r", 3, weight=-1.0)
        assert np.allclose(processor.sketch_of("r").values(), 0.0)

    def test_distributed_merge(self):
        coordinator = StreamProcessor(medians=3, averages=50, seed=8)
        coordinator.register_relation("r", 8)
        coordinator.register_relation("s", 8)
        join = coordinator.register_join("r", "s")

        # A remote site sketches part of r under the SAME scheme.
        remote = coordinator.scheme_of("r").sketch()
        for item in (5, 5, 9):
            remote.update_point(item)
        coordinator.process_point("r", 9)
        coordinator.merge_sketch("r", remote)
        coordinator.process_point("s", 5)

        # r holds {5:2, 9:2}; joining with s = {5:1} gives 2.
        assert coordinator.answer(join) == pytest.approx(2.0, abs=1.5)

    def test_stale_handle_rejected(self):
        a = StreamProcessor(seed=9)
        a.register_relation("r", 8)
        handle = a.register_self_join("r")
        b = StreamProcessor(seed=9)
        b.register_relation("r", 8)
        with pytest.raises(ValueError):
            b.answer(handle)

    def test_custom_generator_factory(self):
        processor = StreamProcessor(
            medians=2,
            averages=3,
            seed=10,
            generator_factory=lambda bits, src: BCH5.from_source(
                bits, src, mode="arithmetic"
            ),
        )
        processor.register_relation("r", 8)
        processor.process_point("r", 7)
        cell = processor.scheme_of("r").channels[0][0]
        assert isinstance(cell.generator, BCH5)


class TestTypedIngestionErrors:
    """The validation front door, seen through the processor API."""

    def _processor(self, **kwargs):
        processor = StreamProcessor(medians=2, averages=4, seed=21, **kwargs)
        processor.register_relation("r", 8)
        return processor

    def test_unknown_relation_typed(self):
        processor = self._processor()
        with pytest.raises(UnknownRelationError, match="ghost"):
            processor.process_interval("ghost", 1, 2)

    def test_inverted_interval_rejected(self):
        processor = self._processor()
        with pytest.raises(InvalidUpdateError, match="inverted-interval"):
            processor.process_interval("r", 9, 3)

    @pytest.mark.parametrize("low, high", [(0, 256), (-1, 5), (300, 400)])
    def test_out_of_domain_interval_rejected(self, low, high):
        processor = self._processor()
        with pytest.raises(InvalidUpdateError, match="out-of-domain"):
            processor.process_interval("r", low, high)

    def test_negative_point_rejected(self):
        processor = self._processor()
        with pytest.raises(InvalidUpdateError, match="negative-item"):
            processor.process_point("r", -1)

    def test_overflow_point_rejected(self):
        processor = self._processor()
        with pytest.raises(InvalidUpdateError, match="out-of-domain"):
            processor.process_point("r", 1 << 20)

    def test_nan_weight_rejected(self):
        processor = self._processor()
        with pytest.raises(InvalidUpdateError, match="non-finite-weight"):
            processor.process_point("r", 3, weight=float("nan"))

    def test_rejection_leaves_counters_untouched(self):
        processor = self._processor()
        processor.process_point("r", 3)
        before = processor.sketch_of("r").values().copy()
        for bad in (lambda: processor.process_point("r", -1),
                    lambda: processor.process_interval("r", 9, 3)):
            with pytest.raises(InvalidUpdateError):
                bad()
        assert np.array_equal(processor.sketch_of("r").values(), before)

    def test_quarantine_policy_keeps_serving(self):
        processor = self._processor(policy="quarantine")
        processor.process_point("r", -1)
        processor.process_point("r", 3)
        assert processor.stats()["quarantined_total"] == 1
        assert processor.sketch_of("r").values().any()

    def test_merge_scheme_mismatch_typed(self):
        mine = self._processor()
        theirs = StreamProcessor(medians=2, averages=4, seed=22)
        theirs.register_relation("r", 8)
        with pytest.raises(SchemeMismatchError, match="fingerprint"):
            mine.merge_sketch("r", theirs.sketch_of("r"))

    def test_merge_same_seed_foreign_object_accepted(self):
        # A sketch from a different process (different scheme OBJECT,
        # same seed material) must merge: fingerprints decide.
        mine = self._processor()
        twin = StreamProcessor(medians=2, averages=4, seed=21)
        twin.register_relation("r", 8)
        twin.process_point("r", 5)
        mine.merge_sketch("r", twin.sketch_of("r"))
        assert np.array_equal(
            mine.sketch_of("r").values(), twin.sketch_of("r").values()
        )

    def test_merge_non_finite_counters_rejected(self):
        processor = self._processor()
        remote = processor.scheme_of("r").sketch()
        remote.cells[0][0].value = float("inf")
        with pytest.raises(InvalidUpdateError, match="non-finite"):
            processor.merge_sketch("r", remote)

    def test_typed_errors_still_value_errors(self):
        # Pre-taxonomy callers catch ValueError; that contract holds.
        processor = self._processor()
        with pytest.raises(ValueError):
            processor.process_point("r", -1)
        with pytest.raises(ValueError):
            processor.process_point("ghost", 1)
