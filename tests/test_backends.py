"""Tests: the kernel backend tier (registry, selection, bit identity).

Every registered (scheme x backend) pair must produce bit-identical
totals to the per-cell scalar loop on adversarial batches, and every
unavailable or unsupported backend must *degrade with a recorded
reason* -- never raise out of the plane-decision path.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.dyadic import dyadic_cover_arrays, quaternary_cover_arrays
from repro.generators import SeedSource
from repro.schemes import PolyPrimePlane, all_specs, get_spec
from repro.sketch.ams import SketchScheme
from repro.sketch.atomic import GeneratorChannel
from repro.sketch.backends import (
    BACKEND_ENV_VAR,
    BackendUnsupportedError,
    KernelBackend,
    UnknownBackendError,
    _BACKENDS,
    backend_availability,
    get_backend,
    register_backend,
    registered_backends,
    select_backend,
)
from repro.sketch.plane import counter_plane, plane_decision

BITS = 10

# BCH5's O(n^2) per-bit seeding wants a narrower test domain.
_SCHEME_BITS = {"bch5": 8}

PLANE_SCHEMES = [spec.name for spec in all_specs() if spec.plane is not None]
BACKENDS = list(registered_backends())
PAIRS = [
    (scheme, backend) for scheme in PLANE_SCHEMES for backend in BACKENDS
]


def _scheme(name, medians=2, averages=3, seed=0xBADC0DE, bits=None):
    spec = get_spec(name)
    bits = bits or _SCHEME_BITS.get(name, BITS)
    return SketchScheme.from_factory(
        lambda src: GeneratorChannel(spec.factory(bits, src)),
        medians,
        averages,
        SeedSource(seed),
    )


def _scalar_point_values(scheme, points, weights):
    totals = []
    for row in scheme.channels:
        for channel in row:
            total = 0.0
            for point, weight in zip(points, weights):
                total += weight * channel.point(int(point))
            totals.append(total)
    return np.array(totals)


def _scalar_interval_values(scheme, intervals, weights):
    totals = []
    for row in scheme.channels:
        for channel in row:
            total = 0.0
            for bounds, weight in zip(intervals, weights):
                total += weight * channel.interval(bounds)
            totals.append(total)
    return np.array(totals)


def _adversarial_points(bits, size, rng):
    """Domain edges, duplicates, and random interior points."""
    top = (1 << bits) - 1
    edges = np.array([0, 0, top, top, 1, top - 1], dtype=np.uint64)
    interior = rng.integers(0, top + 1, size=size, dtype=np.uint64)
    return np.concatenate([edges, interior, edges])


def _pair_usable(scheme_name, backend_name):
    """Can this (scheme, backend) pair actually bind, and if not why?"""
    spec = get_spec(scheme_name)
    if spec.backends is not None and backend_name not in spec.backends:
        return False
    return get_backend(backend_name).availability() is None


class TestRegistry:
    def test_builtin_backends_registered(self):
        names = registered_backends()
        assert {"numpy", "stride", "numba"} <= set(names)
        # Priority order: stride leads, numpy (the fallback) trails.
        assert names.index("stride") < names.index("numba")
        assert names[-1] == "numpy"

    def test_unknown_backend_lists_registry(self):
        with pytest.raises(UnknownBackendError, match="stride"):
            get_backend("vulkan")

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ValueError, match="already registered"):
            register_backend(get_backend("numpy"))

    def test_availability_map(self):
        availability = backend_availability()
        assert availability["numpy"] is None
        assert availability["stride"] is None
        # numba is optional: usable, or unavailable with a reason.
        assert availability["numba"] is None or "numba" in availability["numba"]


class TestSelection:
    def test_default_is_best_available_priority(self):
        assert select_backend().backend.name == "stride"

    def test_explicit_request_honoured(self):
        selection = select_backend(requested="numpy")
        assert selection.backend.name == "numpy"
        assert selection.reason is None

    def test_env_var_respected(self, monkeypatch):
        monkeypatch.setenv(BACKEND_ENV_VAR, "numpy")
        assert select_backend().backend.name == "numpy"

    def test_explicit_beats_env(self, monkeypatch):
        monkeypatch.setenv(BACKEND_ENV_VAR, "numpy")
        assert select_backend(requested="stride").backend.name == "stride"

    def test_unsupported_request_degrades_with_reason(self):
        selection = select_backend(supported=("numpy",), requested="stride")
        assert selection.backend.name == "numpy"
        assert "no 'stride' kernel support" in selection.reason

    def test_unknown_request_degrades_with_reason(self):
        selection = select_backend(requested="vulkan")
        assert selection.backend.name == "stride"
        assert "unknown backend 'vulkan'" in selection.reason

    def test_empty_capability_list_falls_back_to_numpy(self):
        selection = select_backend(supported=())
        assert selection.backend.name == "numpy"
        assert "no declared backend is available" in selection.reason

    def test_unavailable_backend_skipped_with_reason(self):
        class GhostBackend(KernelBackend):
            name = "ghosttest"
            priority = 999

            def availability(self):
                return "test stub is never usable"

        register_backend(GhostBackend())
        try:
            selection = select_backend(requested="ghosttest")
            assert selection.backend.name == "stride"
            assert "test stub is never usable" in selection.reason
            # Priority iteration also skips it silently.
            assert select_backend().backend.name == "stride"
        finally:
            _BACKENDS.pop("ghosttest")


@pytest.mark.parametrize(
    "scheme_name,backend_name", PAIRS, ids=[f"{s}-{b}" for s, b in PAIRS]
)
class TestSchemeBackendMatrix:
    """Identity for usable pairs; recorded degradation for the rest."""

    def test_point_totals_or_recorded_degradation(
        self, scheme_name, backend_name, rng
    ):
        scheme = _scheme(scheme_name, medians=2, averages=40)
        decision = plane_decision(scheme, backend=backend_name)
        if not _pair_usable(scheme_name, backend_name):
            assert decision.plane is not None
            assert decision.backend != backend_name
            assert decision.backend_reason is not None
            assert backend_name in decision.backend_reason
            return
        assert decision.backend == backend_name
        plane = decision.plane
        bits = plane.domain_bits
        # Large batch (histogram / adder-tree paths) with signed weights.
        points = _adversarial_points(bits, 200, rng)
        weights = rng.integers(-5, 6, size=points.size).astype(np.float64)
        got = plane.point_totals(points, weights)
        expected = _scalar_point_values(scheme, points, weights)
        assert np.array_equal(got, expected)
        # Small batch (direct unpack path).
        small = points[:7]
        got_small = plane.point_totals(small, weights[:7])
        assert np.array_equal(
            got_small, _scalar_point_values(scheme, small, weights[:7])
        )
        # Unweighted batch (pure popcount route on some backends).
        got_ones = plane.point_totals(points)
        assert np.array_equal(
            got_ones,
            _scalar_point_values(scheme, points, np.ones(points.size)),
        )

    def test_empty_batch_is_zero(self, scheme_name, backend_name):
        if not _pair_usable(scheme_name, backend_name):
            pytest.skip(f"backend {backend_name!r} cannot bind {scheme_name!r}")
        scheme = _scheme(scheme_name)
        plane = counter_plane(scheme, backend=backend_name)
        got = plane.point_totals(np.array([], dtype=np.uint64))
        assert np.array_equal(got, np.zeros(plane.counters))


@pytest.mark.parametrize("backend_name", BACKENDS)
class TestIntervalIdentity:
    def _intervals(self, bits, size, rng):
        top = (1 << bits) - 1
        lows = rng.integers(0, top + 1, size=size)
        highs = rng.integers(0, top + 1, size=size)
        pairs = [(int(min(a, b)), int(max(a, b))) for a, b in zip(lows, highs)]
        return pairs + [(0, top), (0, 0), (top, top)]

    def test_eh3_quaternary_pieces(self, backend_name, rng):
        if not _pair_usable("eh3", backend_name):
            pytest.skip(f"backend {backend_name!r} unavailable")
        scheme = _scheme("eh3")
        plane = counter_plane(scheme, backend=backend_name)
        intervals = self._intervals(BITS, 20, rng)
        weights = rng.integers(1, 5, size=len(intervals)).astype(np.float64)
        cover = quaternary_cover_arrays(
            [a for a, _ in intervals], [b for _, b in intervals]
        )
        got = plane.interval_totals(
            cover.lows, cover.levels >> 1, weights[cover.index]
        )
        expected = _scalar_interval_values(scheme, intervals, weights)
        assert np.array_equal(got, expected)

    def test_bch3_dyadic_pieces(self, backend_name, rng):
        if not _pair_usable("bch3", backend_name):
            pytest.skip(f"backend {backend_name!r} unavailable")
        scheme = _scheme("bch3")
        plane = counter_plane(scheme, backend=backend_name)
        intervals = self._intervals(BITS, 20, rng)
        weights = rng.integers(1, 5, size=len(intervals)).astype(np.float64)
        cover = dyadic_cover_arrays(
            [a for a, _ in intervals], [b for _, b in intervals]
        )
        got = plane.interval_totals(cover.lows, cover.levels, weights[cover.index])
        expected = _scalar_interval_values(scheme, intervals, weights)
        assert np.array_equal(got, expected)

    def test_wide_domain_eh3_bit_identical_across_backends(self, backend_name):
        # 62-bit bounds exercise the >=2^57 packed-key edge of the bulk
        # dedup path and the widest uint64 arithmetic the kernels see.
        if not _pair_usable("eh3", backend_name):
            pytest.skip(f"backend {backend_name!r} unavailable")
        top = (1 << 62) - 1
        bounds = [(0, top), (123, top - 5), (1 << 57, 1 << 61)]

        def values(backend):
            scheme = _scheme("eh3", bits=62)
            scheme.kernel_backend = backend
            sketch = scheme.sketch()
            for pair in bounds:
                sketch.update_interval(pair, 2.0)
            return sketch.values()

        assert np.array_equal(values(backend_name), values("numpy"))


class TestDegradation:
    def test_polyprime_requested_stride_degrades(self):
        scheme = _scheme("polyprime")
        decision = plane_decision(scheme, backend="stride")
        assert decision.plane is not None
        assert decision.backend == "numpy" or decision.backend == "numba"
        assert "no 'stride' kernel support" in decision.backend_reason

    def test_plane_decision_never_raises_for_registered_backends(self):
        for scheme_name in PLANE_SCHEMES:
            for backend_name in registered_backends():
                decision = plane_decision(
                    _scheme(scheme_name), backend=backend_name
                )
                assert decision.plane is not None, (scheme_name, backend_name)
                assert decision.backend is not None

    def test_stride_poly_kernel_declares_unsupported(self):
        spec = get_spec("polyprime")
        source = SeedSource(7)
        generators = [spec.factory(BITS, source) for _ in range(3)]
        with pytest.raises(BackendUnsupportedError, match="byte-lookup"):
            PolyPrimePlane(generators, backend="stride")

    def test_construction_rejection_degrades_to_numpy(self):
        # A backend that is selectable (registered, declared by the
        # scheme, available) but whose kernels decline the grid must be
        # swapped for the reference engine with the reason kept.
        import dataclasses

        from repro.schemes import registry as scheme_registry

        class PickyBackend(KernelBackend):
            name = "pickytest"
            priority = 500

            def parity_kernel(self, table):
                raise BackendUnsupportedError("declines every grid")

            def bit_sums(self, packed, weights):
                raise AssertionError("never reached")

        register_backend(PickyBackend())
        spec = get_spec("eh3")
        patched = dataclasses.replace(
            spec, backends=(*spec.backends, "pickytest")
        )
        scheme_registry._SPECS["eh3"] = patched
        scheme_registry._BY_CLS[spec.cls] = patched
        try:
            scheme = _scheme("eh3")
            decision = plane_decision(scheme, backend="pickytest")
            assert decision.plane is not None
            assert decision.backend == "numpy"
            assert "declines every grid" in decision.backend_reason
        finally:
            scheme_registry._SPECS["eh3"] = spec
            scheme_registry._BY_CLS[spec.cls] = spec
            _BACKENDS.pop("pickytest")

    def test_scheme_kernel_backend_attribute_respected(self):
        scheme = _scheme("eh3")
        scheme.kernel_backend = "numpy"
        decision = plane_decision(scheme)
        assert decision.backend == "numpy"

    def test_env_var_steers_plane_binding(self, monkeypatch):
        monkeypatch.setenv(BACKEND_ENV_VAR, "numpy")
        decision = plane_decision(_scheme("eh3"))
        assert decision.backend == "numpy"

    def test_decisions_cached_per_requested_backend(self):
        scheme = _scheme("eh3")
        default = plane_decision(scheme)
        assert plane_decision(scheme) is default
        numpy_decision = plane_decision(scheme, backend="numpy")
        assert numpy_decision is not default
        assert plane_decision(scheme, backend="numpy") is numpy_decision
