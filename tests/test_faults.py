"""Fault-injection scenarios: the recovery invariants, proven by pytest.

Each scenario from :mod:`repro.stream.faults` runs as its own test, plus
parametrized kill-points that interrupt ingestion at many positions
(including mid-snapshot territory) and assert the recovered counters are
bit-identical to an uninterrupted run.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.stream import DurabilityConfig, StreamProcessor
from repro.stream.faults import (
    _reference_counters,
    _feed,
    _workload,
    run_fault_suite,
)

from .faults import breaking_plane, truncate_tail, wal_segments

SEED = 20060627


class TestScenarioSuite:
    """The whole deterministic suite, one pytest case per scenario."""

    @pytest.fixture(scope="class")
    def results(self, tmp_path_factory):
        base = tmp_path_factory.mktemp("faults")
        return {r.name: r for r in run_fault_suite(SEED, str(base))}

    @pytest.mark.parametrize(
        "name",
        [
            "kill-and-recover",
            "torn-wal-tail",
            "partial-snapshot-fallback",
            "sealed-corruption-detected",
            "plane-degradation",
            "quarantine-isolation",
        ],
    )
    def test_scenario(self, results, name):
        assert name in results, f"scenario {name} never ran"
        assert results[name].passed, results[name].detail


class TestKillPoints:
    """Interrupt at arbitrary records; recovery must be exact."""

    @pytest.mark.parametrize("kill_at_fraction", [0.05, 0.31, 0.5, 0.77, 0.99])
    def test_kill_recover_finish(self, tmp_path, kill_at_fraction):
        ops = _workload(SEED, points=120, intervals=30)
        reference = _reference_counters(SEED, ops)
        cut = max(1, int(len(ops) * kill_at_fraction))
        directory = str(tmp_path / "state")
        processor = StreamProcessor(
            medians=3,
            averages=16,
            seed=SEED,
            durability=DurabilityConfig(
                directory=directory, checkpoint_every=23
            ),
        )
        processor.register_relation("r", 12)
        _feed(processor, ops, 0, cut)
        del processor  # killed: no close, no final checkpoint
        recovered = StreamProcessor.recover(directory)
        _feed(recovered, ops, cut)
        assert np.array_equal(recovered.sketch_of("r").values(), reference)

    def test_double_recovery_is_idempotent(self, tmp_path):
        """Recovering twice from the same state replays exactly once."""
        ops = _workload(SEED, points=60, intervals=10)
        directory = str(tmp_path / "state")
        processor = StreamProcessor(
            medians=2, averages=8, seed=SEED,
            durability=str(directory),
        )
        processor.register_relation("r", 12)
        _feed(processor, ops)
        processor.close()
        first = StreamProcessor.recover(directory)
        second = StreamProcessor.recover(directory)
        assert np.array_equal(
            first.sketch_of("r").values(), second.sketch_of("r").values()
        )
        assert first.stats()["applied_seq"] == second.stats()["applied_seq"]


class TestDegradationGuarantees:
    """The acceptance criteria of the graceful-degradation path."""

    def _processor(self, policy="quarantine"):
        processor = StreamProcessor(
            medians=3, averages=16, seed=SEED, policy=policy
        )
        processor.register_relation("r", 12)
        return processor

    def test_no_exception_escapes_under_quarantine(self):
        processor = self._processor("quarantine")
        items = np.arange(64, dtype=np.uint64)
        with breaking_plane(processor, "r", fail_after=0):
            processor.process_points("r", items)  # must not raise
        assert len(processor.incidents) == 1
        assert processor.incidents[0].recovered

    def test_degraded_counters_identical_for_both_batch_kinds(self):
        healthy = self._processor()
        degraded = self._processor()
        items = np.arange(128, dtype=np.uint64)
        weights = np.arange(1, 129, dtype=np.float64)
        intervals = [[i * 8, i * 8 + 11] for i in range(40)]
        healthy.process_points("r", items, weights)
        healthy.process_intervals("r", intervals)
        with breaking_plane(degraded, "r", fail_after=0):
            with breaking_plane(
                degraded, "r", fail_after=0, method="interval_totals"
            ):
                degraded.process_points("r", items, weights)
                degraded.process_intervals("r", intervals)
        assert np.array_equal(
            healthy.sketch_of("r").values(), degraded.sketch_of("r").values()
        )
        assert [i.operation for i in degraded.incidents] == [
            "points", "intervals",
        ]

    def test_raise_policy_still_degrades_silently(self):
        """Degradation is not a policy matter: fast-path failures fall
        back even under ``raise`` (only double failures propagate)."""
        processor = self._processor("raise")
        with breaking_plane(processor, "r", fail_after=0):
            processor.process_points("r", np.arange(16, dtype=np.uint64))
        assert len(processor.incidents) == 1

    def test_torn_tail_then_corrupt_byte_distinct(self, tmp_path):
        """Torn tail is tolerated; the same bytes flipped mid-segment in
        a sealed segment are corruption."""
        directory = str(tmp_path / "state")
        processor = StreamProcessor(
            medians=2, averages=4, seed=SEED, durability=directory
        )
        processor.register_relation("r", 8)
        for item in range(50):
            processor.process_point("r", item)
        processor.close()
        tail = wal_segments(directory)[-1]
        truncate_tail(tail, 5)
        recovered = StreamProcessor.recover(directory)
        # 50 points written; the torn final record is dropped.
        assert recovered.stats()["applied_seq"] == 50  # register + 49 points
