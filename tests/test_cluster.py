"""The shard cluster: protocol, dedup, routing, supervision, answers.

Process-spawning coverage lives in ``test_cluster_faults.py``; this
module keeps to the deterministic fast paths -- frame codec units, the
worker's command-index dedup cursor, inline-transport clusters (real
protocol, no processes), and the degraded-answer contract.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.cluster import (
    ClusterConfig,
    ClusterProcessor,
    ShardCommandError,
    ShardFailedError,
)
from repro.cluster.errors import FrameCorruptionError
from repro.cluster.protocol import decode_frame, encode_frame
from repro.cluster.transport import InlineTransport, get_transport
from repro.cluster.worker import ShardServer, WorkerSpec
from repro.stream.processor import StreamProcessor

SEED = 20060627


def inline_config(**overrides) -> ClusterConfig:
    base = dict(
        command_timeout=0.02,
        retries=6,
        backoff_base=0.0005,
        heartbeat_interval=0.0,
        heartbeat_deadline=0.01,
        max_inflight=4,
    )
    base.update(overrides)
    return ClusterConfig(**base)


def make_cluster(tmp_path, shards=3, transport=None, **overrides):
    return ClusterProcessor(
        str(tmp_path / "cluster"),
        shards=shards,
        medians=3,
        averages=16,
        seed=7,
        transport=transport or InlineTransport(),
        config=inline_config(**overrides),
    )


def reference(ops, domain_bits=10) -> StreamProcessor:
    processor = StreamProcessor(medians=3, averages=16, seed=7)
    processor.register_relation("r", domain_bits)
    for kind, payload in ops:
        if kind == "points":
            processor.process_points("r", payload)
        else:
            processor.process_intervals("r", payload)
    return processor


class TestFrameCodec:
    def test_round_trip(self):
        seq, message = decode_frame(
            encode_frame(42, {"kind": "health", "x": [1, 2]})
        )
        assert seq == 42
        assert message == {"kind": "health", "x": [1, 2]}

    def test_crc_detects_flips(self):
        frame = bytearray(encode_frame(7, {"kind": "health"}))
        frame[-1] ^= 0x40
        with pytest.raises(FrameCorruptionError):
            decode_frame(bytes(frame))

    def test_short_frame_rejected(self):
        with pytest.raises(FrameCorruptionError):
            decode_frame(b"\x01\x02\x03")

    def test_non_command_payload_rejected(self):
        import json
        import struct
        import zlib

        payload = json.dumps([1, 2, 3]).encode()
        crc = zlib.crc32((9).to_bytes(8, "little") + payload) & 0xFFFFFFFF
        frame = struct.pack("<IQ", crc, 9) + payload
        with pytest.raises(FrameCorruptionError):
            decode_frame(frame)


class TestShardServerDedup:
    """The worker's WAL-backed exactly-once command cursor."""

    @pytest.fixture
    def server(self, tmp_path):
        return ShardServer(
            WorkerSpec(
                shard_id=0,
                directory=str(tmp_path / "shard"),
                medians=3,
                averages=16,
                seed=7,
            )
        )

    def test_mutations_advance_the_cursor(self, server):
        reply = server.handle(
            {"kind": "register", "index": 1, "name": "r", "domain_bits": 10}
        )
        assert reply["kind"] == "ok" and reply["applied_index"] == 1
        reply = server.handle(
            {
                "kind": "points",
                "index": 2,
                "relation": "r",
                "items": [1, 2, 3],
                "weights": None,
            }
        )
        assert reply["kind"] == "ok"
        assert server.applied_index == 2

    def test_duplicate_acked_without_reapplying(self, server):
        server.handle(
            {"kind": "register", "index": 1, "name": "r", "domain_bits": 10}
        )
        command = {
            "kind": "points",
            "index": 2,
            "relation": "r",
            "items": [5],
            "weights": None,
        }
        server.handle(command)
        before = server.processor.sketch_of("r").values().copy()
        reply = server.handle(command)  # the retry of an applied command
        assert reply["kind"] == "dup"
        assert np.array_equal(server.processor.sketch_of("r").values(), before)

    def test_gap_rejected_with_expected_index(self, server):
        server.handle(
            {"kind": "register", "index": 1, "name": "r", "domain_bits": 10}
        )
        reply = server.handle(
            {
                "kind": "points",
                "index": 5,
                "relation": "r",
                "items": [1],
                "weights": None,
            }
        )
        assert reply["kind"] == "gap" and reply["expected_index"] == 2
        assert server.applied_index == 1

    def test_restart_recovers_the_cursor(self, server, tmp_path):
        server.handle(
            {"kind": "register", "index": 1, "name": "r", "domain_bits": 10}
        )
        server.handle(
            {
                "kind": "points",
                "index": 2,
                "relation": "r",
                "items": [3, 4],
                "weights": None,
            }
        )
        server.close()
        reborn = ShardServer(server.spec)  # same directory -> recovery
        assert reborn.applied_index == 2
        reply = reborn.handle(
            {
                "kind": "points",
                "index": 2,
                "relation": "r",
                "items": [3, 4],
                "weights": None,
            }
        )
        assert reply["kind"] == "dup"

    def test_error_reply_for_bad_command(self, server):
        reply = server.handle(
            {
                "kind": "points",
                "index": 1,
                "relation": "missing",
                "items": [1],
                "weights": None,
            }
        )
        assert reply["kind"] == "error"
        assert "missing" in reply["message"]


class TestClusterIngestAndMerge:
    def test_merged_sketch_matches_single_process(self, tmp_path, rng):
        ops = [
            ("points", [int(i) for i in rng.integers(0, 1 << 10, size=200)]),
            ("intervals", [[10, 900], [0, 1023], [512, 513]]),
            ("points", [int(i) for i in rng.integers(0, 1 << 10, size=100)]),
        ]
        with make_cluster(tmp_path) as cluster:
            cluster.register_relation("r", 10)
            handle = cluster.register_self_join("r")
            for kind, payload in ops:
                if kind == "points":
                    cluster.ingest_points("r", payload)
                else:
                    cluster.ingest_intervals("r", payload)
            cluster.flush()
            merged = cluster.merged_sketch("r").values()
            answer = cluster.answer(handle)
        ref = reference(ops)
        assert np.array_equal(merged, ref.sketch_of("r").values())
        want = ref.answer(ref.register_self_join("r"))
        assert answer.value == want
        assert answer.coverage == 1.0 and not answer.degraded
        assert answer.error_width_factor == 1.0

    def test_weighted_points_route_with_their_weights(self, tmp_path):
        with make_cluster(tmp_path, shards=2) as cluster:
            cluster.register_relation("r", 10)
            cluster.ingest_points("r", [1, 1000, 2, 999], [2.0, 3.0, 4.0, 5.0])
            cluster.flush()
            merged = cluster.merged_sketch("r").values()
        ref = StreamProcessor(medians=3, averages=16, seed=7)
        ref.register_relation("r", 10)
        ref.process_points("r", [1, 1000, 2, 999], [2.0, 3.0, 4.0, 5.0])
        assert np.array_equal(merged, ref.sketch_of("r").values())

    def test_interval_split_at_shard_boundaries_is_exact(self, tmp_path):
        with make_cluster(tmp_path, shards=4) as cluster:
            cluster.register_relation("r", 10)
            ranges = cluster.shard_ranges("r")
            assert [low for low, _ in ranges] == [0, 256, 512, 768]
            cluster.ingest_intervals("r", [[0, 1023], [250, 260]], [1.0, 3.0])
            cluster.flush()
            merged = cluster.merged_sketch("r").values()
        ref = StreamProcessor(medians=3, averages=16, seed=7)
        ref.register_relation("r", 10)
        ref.process_intervals("r", [[0, 1023], [250, 260]], [1.0, 3.0])
        assert np.array_equal(merged, ref.sketch_of("r").values())

    def test_shard_of_partitions_the_domain(self, tmp_path):
        with make_cluster(tmp_path, shards=4) as cluster:
            cluster.register_relation("r", 10)
            assert cluster.shard_of("r", 0) == 0
            assert cluster.shard_of("r", 255) == 0
            assert cluster.shard_of("r", 256) == 1
            assert cluster.shard_of("r", 1023) == 3

    def test_coordinator_screens_before_sharding(self, tmp_path):
        with make_cluster(tmp_path, policy="quarantine") as cluster:
            cluster.register_relation("r", 10)
            cluster.ingest_points("r", [5, -3, 1 << 30, 9])
            cluster.flush()
            stats = cluster.stats()
            assert stats["quarantined_total"] == 2
            assert stats["quarantine_counts"]["negative-item"] == 1
            merged = cluster.merged_sketch("r").values()
        ref = StreamProcessor(medians=3, averages=16, seed=7)
        ref.register_relation("r", 10)
        ref.process_points("r", [5, 9])
        assert np.array_equal(merged, ref.sketch_of("r").values())

    def test_unknown_relation_raises(self, tmp_path):
        from repro.stream.errors import UnknownRelationError

        with make_cluster(tmp_path) as cluster:
            with pytest.raises(UnknownRelationError):
                cluster.ingest_points("ghost", [1])


class TestSupervisionInline:
    def test_dead_shard_restarts_and_replays(self, tmp_path, rng):
        items = [int(i) for i in rng.integers(0, 1 << 10, size=150)]
        with make_cluster(tmp_path) as cluster:
            cluster.register_relation("r", 10)
            cluster.ingest_points("r", items[:100])
            cluster.flush()
            cluster._shards[1].link.kill()
            cluster.supervise()  # restart + WAL recovery + fingerprints
            cluster.ingest_points("r", items[100:])
            cluster.flush()
            assert cluster.stats()["shards"]["shard-1"]["restarts"] == 1
            assert any(
                incident.operation == "shard-restart"
                for incident in cluster.incidents
            )
            merged = cluster.merged_sketch("r").values()
        ref = StreamProcessor(medians=3, averages=16, seed=7)
        ref.register_relation("r", 10)
        ref.process_points("r", items)
        assert np.array_equal(merged, ref.sketch_of("r").values())

    def test_failed_shard_rejects_ingest_loudly(self, tmp_path):
        class DeadRespawns:
            def __init__(self, inner):
                self.inner = inner
                self.name = inner.name
                self.dead = False

            def spawn(self, spec):
                link = self.inner.spawn(spec)
                if self.dead and spec.shard_id == 0:
                    link.kill()
                return link

        transport = DeadRespawns(InlineTransport())
        with make_cluster(
            tmp_path, transport=transport, restart_limit=2
        ) as cluster:
            cluster.register_relation("r", 10)
            cluster.ingest_points("r", list(range(64)))
            cluster.flush()
            transport.dead = True
            cluster._shards[0].link.kill()
            cluster.supervise()
            stats = cluster.stats()["shards"]["shard-0"]
            assert stats["failed"]
            # Keys 0..255 belong to the failed shard 0 of 4... here 3
            # shards, width 342: key 1 is shard 0's.
            with pytest.raises(ShardFailedError):
                cluster.ingest_points("r", [1])
            assert any(
                incident.operation == "shard-failed"
                for incident in cluster.incidents
            )

    def test_degraded_answer_reports_coverage_and_staleness(self, tmp_path):
        class DeadRespawns:
            def __init__(self, inner):
                self.inner = inner
                self.name = inner.name
                self.dead = False

            def spawn(self, spec):
                link = self.inner.spawn(spec)
                if self.dead and spec.shard_id == 0:
                    link.kill()
                return link

        transport = DeadRespawns(InlineTransport())
        with make_cluster(
            tmp_path, transport=transport, restart_limit=2
        ) as cluster:
            cluster.register_relation("r", 10)
            handle = cluster.register_self_join("r")
            cluster.ingest_points("r", list(range(0, 1024, 3)))
            cluster.flush()
            healthy = cluster.answer(handle)
            transport.dead = True
            cluster._shards[0].link.kill()
            cluster.supervise()
            degraded = cluster.answer(handle)
            assert degraded.degraded
            assert degraded.stale_shards == 1
            assert degraded.live_shards == 2
            assert 0 < degraded.coverage < 1
            assert degraded.error_width_factor == pytest.approx(
                1.0 / degraded.coverage
            )
            # The failed shard's cache was complete, so the value is
            # stale-but-whole.
            assert degraded.value == healthy.value
            assert degraded.max_staleness_ops == 0
            assert float(degraded) == degraded.value
            assert any(
                incident.operation == "degraded-answer"
                for incident in cluster.incidents
            )
            metrics = cluster.stats()["metrics"]
            assert metrics["cluster.answer.degraded_total"]["value"] >= 1
            assert metrics["cluster.answer.coverage"]["value"] < 1

    def test_checkpoint_snapshots_every_shard(self, tmp_path):
        import os

        with make_cluster(tmp_path, shards=2) as cluster:
            cluster.register_relation("r", 10)
            cluster.ingest_points("r", list(range(100)))
            cluster.checkpoint()
            for shard in cluster._shards:
                snaps = [
                    name
                    for name in os.listdir(shard.spec.directory)
                    if name.startswith("snap-")
                ]
                assert snaps


class TestConfigAndWiring:
    def test_bad_policy_rejected(self):
        with pytest.raises(ValueError, match="policy"):
            ClusterConfig(policy="shrug")

    def test_bad_transport_rejected(self):
        with pytest.raises(ValueError, match="transport"):
            get_transport("carrier-pigeon")

    def test_zero_shards_rejected(self, tmp_path):
        with pytest.raises(ValueError, match="shards"):
            ClusterProcessor(str(tmp_path / "c"), shards=0)

    def test_join_needs_matching_domains(self, tmp_path):
        with make_cluster(tmp_path) as cluster:
            cluster.register_relation("a", 10)
            cluster.register_relation("b", 8)
            with pytest.raises(ValueError, match="domain"):
                cluster.register_join("a", "b")

    def test_command_error_is_not_retried_blindly(self, tmp_path):
        with make_cluster(tmp_path) as cluster:
            shard = cluster._shards[0]
            with pytest.raises(ShardCommandError):
                cluster._request(shard, {"kind": "no-such-kind"})

    def test_seeded_rng_makes_backoff_deterministic(self, tmp_path):
        # Sample the jitter stream directly: same injected seed, same
        # backoff schedule on replay.
        a = ClusterProcessor(
            str(tmp_path / "a"),
            shards=1,
            medians=3,
            averages=16,
            seed=7,
            transport=InlineTransport(),
            config=inline_config(),
            rng=np.random.default_rng(123),
        )
        b = ClusterProcessor(
            str(tmp_path / "b"),
            shards=1,
            medians=3,
            averages=16,
            seed=7,
            transport=InlineTransport(),
            config=inline_config(),
            rng=np.random.default_rng(123),
        )
        try:
            assert [a._rng.random() for _ in range(5)] == [
                b._rng.random() for _ in range(5)
            ]
        finally:
            a.close()
            b.close()


class TestDeadLetterEvictions:
    """Satellite: quarantine overflow is counted, never silent."""

    def test_evictions_counted_on_buffer_and_metric(self):
        from repro import obs
        from repro.stream.validation import DeadLetterBuffer, QuarantinedRecord

        before = (
            obs.snapshot()
            .get("stream.quarantine.dropped_total", {})
            .get("value", 0.0)
        )
        buffer = DeadLetterBuffer(capacity=3)
        for position in range(5):
            buffer.add(
                QuarantinedRecord("r", "point", (position, 1.0), "code", "why")
            )
        assert buffer.total == 5
        assert buffer.dropped == 2
        assert len(buffer) == 3
        after = (
            obs.snapshot()["stream.quarantine.dropped_total"]["value"]
        )
        assert after - before == 2

    def test_drop_count_surfaces_in_processor_stats(self):
        processor = StreamProcessor(
            medians=3,
            averages=8,
            seed=1,
            policy="quarantine",
            quarantine_capacity=2,
        )
        processor.register_relation("r", 8)
        for _ in range(4):
            processor.process_point("r", -1)
        stats = processor.stats()
        assert stats["quarantined_total"] == 4
        assert stats["quarantine_counts"]["dropped"] == 2
        assert stats["quarantine_counts"]["negative-item"] == 4
