"""The interprocedural pass: call graph, dataflow rules, degradation.

Pass 1 (the call graph) is pinned by a golden serialization of a small
fixture project; each dataflow rule (R008-R011) gets violating and
compliant fixtures exercising the interprocedural machinery (taint
through helper returns, guards in transitive callers, per-type
exception consumption, async reachability).  Malformed inputs -- syntax
errors, circular imports, dynamic dispatch -- must degrade to recorded
skips, never crash the scan.
"""

from __future__ import annotations

import json
import textwrap
from pathlib import Path

from repro.analysis import Violation, analyze_project, rule_by_id
from repro.analysis.callgraph import (
    CallGraph,
    build_call_graph,
    module_name_for,
)
from repro.analysis.engine import analyze_source

import ast

REPO_ROOT = Path(__file__).resolve().parents[1]
GOLDEN_PATH = Path(__file__).parent / "data" / "callgraph_golden.json"


def project_scan(
    sources: dict[str, str], *rule_ids: str
) -> list[Violation]:
    """Scan a ``{path: source}`` fixture with the named rules only."""
    rules = [rule_by_id(rule_id) for rule_id in rule_ids]
    dedented = {
        path: textwrap.dedent(source) for path, source in sources.items()
    }
    return analyze_project(dedented, rules).violations


def build(sources: dict[str, str]) -> CallGraph:
    trees = {
        path: ast.parse(textwrap.dedent(source))
        for path, source in sources.items()
    }
    return build_call_graph(trees)


# ---------------------------------------------------------------------------
# Pass 1: the call graph.
# ---------------------------------------------------------------------------

#: Fixture project shared by the resolution tests and the golden test.
#: Touches every resolution feature: absolute and relative imports,
#: aliasing, self-dispatch, class -> __init__, decorators, and a
#: dynamic-getattr site that must degrade to a recorded skip.
GRAPH_FIXTURE = {
    "src/pkg/__init__.py": """\
        from pkg.util import shared
        """,
    "src/pkg/util.py": """\
        def shared(x):
            return x + 1

        def only_here():
            return shared(0)
        """,
    "src/pkg/core.py": """\
        from pkg.util import shared as sh
        from . import util

        def trace(fn):
            return fn

        class Engine:
            def __init__(self, size):
                self.size = size

            def step(self):
                return self.helper()

            def helper(self):
                return sh(self.size)

        @trace
        def run():
            engine = Engine(4)
            engine.step()
            return util.only_here()

        def dynamic(name):
            return getattr(util, name)()
        """,
}


class TestCallGraph:
    def test_module_name_mapping(self) -> None:
        assert module_name_for("src/repro/stream/processor.py") == (
            "repro.stream.processor"
        )
        assert module_name_for("src/repro/stream/__init__.py") == (
            "repro.stream"
        )
        assert module_name_for("tools/gen.py") == "tools.gen"

    def test_import_alias_resolution(self) -> None:
        graph = build(GRAPH_FIXTURE)
        resolved = {
            (site.caller, site.name): site.callee
            for site in graph.calls
            if site.callee is not None
        }
        # Aliased cross-module call: sh -> pkg.util.shared.
        assert (
            resolved[("src/pkg/core.py::Engine.helper", "sh")]
            == "src/pkg/util.py::shared"
        )
        # Module-attribute call through a relative import.
        assert (
            resolved[("src/pkg/core.py::run", "util.only_here")]
            == "src/pkg/util.py::only_here"
        )

    def test_self_dispatch_and_class_init(self) -> None:
        graph = build(GRAPH_FIXTURE)
        resolved = {
            (site.caller, site.name): site.callee
            for site in graph.calls
            if site.callee is not None
        }
        assert (
            resolved[("src/pkg/core.py::Engine.step", "self.helper")]
            == "src/pkg/core.py::Engine.helper"
        )
        # Constructing Engine resolves to its __init__.
        assert (
            resolved[("src/pkg/core.py::run", "Engine")]
            == "src/pkg/core.py::Engine.__init__"
        )

    def test_decorator_is_a_call_edge(self) -> None:
        graph = build(GRAPH_FIXTURE)
        decorator_edges = [
            site
            for site in graph.calls
            if site.name == "trace"
            and site.callee == "src/pkg/core.py::trace"
        ]
        assert decorator_edges, "decorator application must be an edge"

    def test_dynamic_getattr_recorded_as_skip(self) -> None:
        graph = build(GRAPH_FIXTURE)
        reasons = {skip.reason for skip in graph.skips}
        assert "dynamic-getattr" in reasons

    def test_caller_closure_crosses_modules(self) -> None:
        graph = build(GRAPH_FIXTURE)
        closure = graph.caller_closure("src/pkg/util.py::shared")
        assert "src/pkg/core.py::Engine.helper" in closure
        assert "src/pkg/core.py::run" in closure
        assert "src/pkg/util.py::only_here" in closure

    def test_call_path_shortest_chain(self) -> None:
        graph = build(GRAPH_FIXTURE)
        # Two routes exist (run -> Engine.step -> Engine.helper -> sh,
        # and run -> util.only_here -> shared); BFS picks the shorter.
        chain = graph.call_path(
            "src/pkg/core.py::run", "src/pkg/util.py::shared"
        )
        assert chain is not None
        assert [site.caller for site in chain] == [
            "src/pkg/core.py::run",
            "src/pkg/util.py::only_here",
        ]
        assert chain[-1].callee == "src/pkg/util.py::shared"

    def test_json_round_trip(self) -> None:
        graph = build(GRAPH_FIXTURE)
        clone = CallGraph.from_dict(json.loads(graph.to_json()))
        assert clone.to_dict() == graph.to_dict()


class TestCallGraphGolden:
    """The serialized pass-1 artifact is pinned against a golden file.

    Any change to symbol collection, qualnames, import resolution or
    skip recording shows up as a golden diff; refresh deliberately with
    ``python tests/test_dataflow.py`` after reviewing the change.
    """

    def test_matches_golden(self) -> None:
        graph = build(GRAPH_FIXTURE)
        golden = json.loads(GOLDEN_PATH.read_text(encoding="utf-8"))
        assert graph.to_dict() == golden, (
            "call-graph serialization drifted from "
            f"{GOLDEN_PATH}; review the diff, then regenerate with "
            "'python tests/test_dataflow.py'"
        )


# ---------------------------------------------------------------------------
# R008: seed taint.
# ---------------------------------------------------------------------------


class TestSeedTaint:
    def test_direct_clock_seed_flagged(self) -> None:
        found = project_scan(
            {
                "src/repro/apps/run.py": """\
                    import time
                    from repro.generators.eh3 import EH3

                    def make():
                        seed = time.time_ns()
                        return EH3(seed)
                    """,
            },
            "R008",
        )
        assert [v.rule for v in found] == ["R008"]
        assert "time.time_ns" in found[0].message
        assert found[0].why  # evidence chain present

    def test_taint_through_helper_return(self) -> None:
        found = project_scan(
            {
                "src/repro/apps/seeds.py": """\
                    import time

                    def fresh_seed():
                        return time.time_ns()
                    """,
                "src/repro/apps/run.py": """\
                    from repro.apps.seeds import fresh_seed
                    from repro.generators.eh3 import EH3

                    def make():
                        value = fresh_seed()
                        shifted = value + 1
                        return EH3(shifted)
                    """,
            },
            "R008",
        )
        assert [v.rule for v in found] == ["R008"]
        assert found[0].path == "src/repro/apps/run.py"

    def test_unseeded_default_rng_flagged(self) -> None:
        found = project_scan(
            {
                "src/repro/apps/run.py": """\
                    import numpy as np
                    from repro.sketch.ams import SketchMatrix

                    def make():
                        rng = np.random.default_rng()
                        return SketchMatrix(rng.integers(0, 2**31))
                    """,
            },
            "R008",
        )
        assert [v.rule for v in found] == ["R008"]
        assert "unseeded" in found[0].message

    def test_injected_seed_clean(self) -> None:
        found = project_scan(
            {
                "src/repro/apps/run.py": """\
                    import numpy as np
                    from repro.generators.eh3 import EH3
                    from repro.sketch.ams import SketchMatrix

                    def make(seed):
                        rng = np.random.default_rng(seed)
                        generator = EH3(seed)
                        return SketchMatrix(int(rng.integers(0, 2**31)))
                    """,
            },
            "R008",
        )
        assert found == []

    def test_tainted_index_does_not_spread_to_container_key(self) -> None:
        # cells[key] = tainted taints the container, never the key --
        # the regression that falsely tainted bench.py's loop variables.
        found = project_scan(
            {
                "src/repro/apps/run.py": """\
                    import time
                    from repro.generators.eh3 import EH3

                    def measure(names, seed):
                        cells = {}
                        for name in names:
                            cells[name] = time.perf_counter()
                        return EH3(seed)
                    """,
            },
            "R008",
        )
        assert found == []

    def test_analysis_package_exempt(self) -> None:
        found = project_scan(
            {
                "src/repro/analysis/fixture_gen.py": """\
                    import time
                    from repro.generators.eh3 import EH3

                    def make():
                        return EH3(time.time_ns())
                    """,
            },
            "R008",
        )
        assert found == []


# ---------------------------------------------------------------------------
# R009: capability contracts.
# ---------------------------------------------------------------------------


class TestCapabilityContract:
    def test_unguarded_batched_call_flagged(self) -> None:
        found = project_scan(
            {
                "src/repro/apps/run.py": """\
                    from repro.rangesum.batched import batched_range_sums

                    def totals(generator, intervals):
                        return batched_range_sums(generator, intervals)
                    """,
            },
            "R009",
        )
        assert [v.rule for v in found] == ["R009"]
        assert "batched_range_sums" in found[0].message

    def test_local_guard_dominates(self) -> None:
        found = project_scan(
            {
                "src/repro/apps/run.py": """\
                    from repro.rangesum.batched import batched_range_sums
                    from repro.sketch.plane import plane_decision

                    def totals(generator, intervals, grid):
                        decision = plane_decision(grid)
                        return batched_range_sums(generator, intervals)
                    """,
            },
            "R009",
        )
        assert found == []

    def test_capability_attribute_guard_dominates(self) -> None:
        found = project_scan(
            {
                "src/repro/apps/run.py": """\
                    from repro.rangesum.batched import batched_range_sums

                    def totals(spec, generator, intervals):
                        if not spec.fast_range_sum:
                            raise ValueError("scheme cannot range-sum")
                        return batched_range_sums(generator, intervals)
                    """,
            },
            "R009",
        )
        assert found == []

    def test_guard_in_transitive_caller_dominates(self) -> None:
        found = project_scan(
            {
                "src/repro/apps/inner.py": """\
                    from repro.rangesum.batched import batched_range_sums

                    def totals(generator, intervals):
                        return batched_range_sums(generator, intervals)
                    """,
                "src/repro/apps/outer.py": """\
                    from repro.apps.inner import totals
                    from repro.sketch.plane import require_plane

                    def entry(grid, generator, intervals):
                        require_plane(grid)
                        return totals(generator, intervals)
                    """,
            },
            "R009",
        )
        assert found == []

    def test_gate_implementation_modules_exempt(self) -> None:
        found = project_scan(
            {
                "src/repro/rangesum/batched.py": """\
                    def batched_range_sums(generator, intervals):
                        return batched_range_sums(generator, intervals)
                    """,
                "src/repro/sketch/backends/numpy_backend.py": """\
                    from repro.rangesum.batched import batched_range_sums

                    def kernel(generator, intervals):
                        return batched_range_sums(generator, intervals)
                    """,
            },
            "R009",
        )
        assert found == []


# ---------------------------------------------------------------------------
# R010: exception flow.
# ---------------------------------------------------------------------------

_ERRORS_MODULE = """\
    class StreamError(Exception):
        pass

    class DeadError(StreamError):
        pass

    class LiveError(StreamError):
        pass
    """


class TestExceptionFlow:
    def test_never_raised_type_is_dead(self) -> None:
        found = project_scan(
            {
                "src/repro/stream/errors.py": _ERRORS_MODULE,
                "src/repro/stream/worker.py": """\
                    from repro.stream.errors import LiveError

                    def work():
                        raise LiveError("boom")

                    def consume():
                        try:
                            work()
                        except LiveError:
                            return None
                    """,
            },
            "R010",
        )
        dead = [v for v in found if "dead error type" in v.message]
        assert [v.rule for v in dead] == ["R010"]
        assert "DeadError" in dead[0].message
        assert dead[0].path == "src/repro/stream/errors.py"

    def test_base_class_alive_through_subclass_raise(self) -> None:
        found = project_scan(
            {
                "src/repro/stream/errors.py": """\
                    class StreamError(Exception):
                        pass

                    class LiveError(StreamError):
                        pass
                    """,
                "src/repro/stream/worker.py": """\
                    from repro.stream.errors import LiveError

                    def work():
                        raise LiveError("boom")

                    def consume():
                        try:
                            work()
                        except LiveError:
                            return None
                    """,
            },
            "R010",
        )
        assert found == []

    def test_raised_but_unconsumed_type_flagged(self) -> None:
        found = project_scan(
            {
                "src/repro/stream/errors.py": """\
                    class StreamError(Exception):
                        pass

                    class OrphanError(StreamError):
                        pass
                    """,
                "src/repro/stream/worker.py": """\
                    from repro.stream.errors import OrphanError

                    def work():
                        raise OrphanError("nobody can catch me by type")
                    """,
            },
            "R010",
        )
        orphan = [v for v in found if "silently-dead" in v.message]
        assert [v.rule for v in orphan] == ["R010"]
        assert orphan[0].path == "src/repro/stream/worker.py"
        assert "OrphanError" in orphan[0].message

    def test_typed_handler_anywhere_keeps_type_alive(self) -> None:
        found = project_scan(
            {
                "src/repro/stream/errors.py": """\
                    class StreamError(Exception):
                        pass

                    class CaughtError(StreamError):
                        pass
                    """,
                "src/repro/stream/worker.py": """\
                    from repro.stream.errors import CaughtError

                    def work():
                        raise CaughtError("boom")
                    """,
                "src/repro/stream/boundary.py": """\
                    from repro.stream.errors import StreamError
                    from repro.stream.worker import work

                    def guard():
                        try:
                            work()
                        except StreamError:
                            return None
                    """,
            },
            "R010",
        )
        assert found == []

    def test_generic_handler_does_not_count(self) -> None:
        found = project_scan(
            {
                "src/repro/stream/errors.py": """\
                    class StreamError(Exception):
                        pass

                    class SwallowedError(StreamError):
                        pass
                    """,
                "src/repro/stream/worker.py": """\
                    from repro.stream.errors import SwallowedError

                    def work():
                        raise SwallowedError("boom")

                    def consume():
                        try:
                            work()
                        except Exception:
                            return None
                    """,
            },
            "R010",
        )
        assert any("SwallowedError" in v.message for v in found)

    def test_surface_reachability_keeps_type_alive(self) -> None:
        found = project_scan(
            {
                "src/repro/stream/errors.py": """\
                    class StreamError(Exception):
                        pass

                    class PublicError(StreamError):
                        pass
                    """,
                "src/repro/stream/worker.py": """\
                    from repro.stream.errors import PublicError

                    def work():
                        raise PublicError("escapes through the CLI")
                    """,
                "src/repro/cli.py": """\
                    from repro.stream.worker import work

                    def main():
                        return work()
                    """,
            },
            "R010",
        )
        assert found == []


# ---------------------------------------------------------------------------
# R011: async safety.
# ---------------------------------------------------------------------------


class TestAsyncSafety:
    def test_direct_blocking_call_flagged(self) -> None:
        found = project_scan(
            {
                "src/repro/apps/service.py": """\
                    import time

                    async def tick():
                        time.sleep(1.0)
                    """,
            },
            "R011",
        )
        assert [v.rule for v in found] == ["R011"]
        assert "time.sleep" in found[0].message

    def test_transitive_blocking_call_flagged_with_chain(self) -> None:
        found = project_scan(
            {
                "src/repro/apps/io_helpers.py": """\
                    def persist(path, payload):
                        path.write_text(payload)
                    """,
                "src/repro/apps/service.py": """\
                    from repro.apps.io_helpers import persist

                    async def save(path, payload):
                        persist(path, payload)
                    """,
            },
            "R011",
        )
        assert [v.rule for v in found] == ["R011"]
        assert found[0].path == "src/repro/apps/service.py"
        assert found[0].why  # the call chain is recorded

    def test_executor_handoff_clean(self) -> None:
        found = project_scan(
            {
                "src/repro/apps/service.py": """\
                    import asyncio
                    import time

                    async def tick():
                        await asyncio.to_thread(time.sleep, 1.0)
                        await asyncio.sleep(0.1)
                    """,
            },
            "R011",
        )
        assert found == []

    def test_sync_only_project_clean(self) -> None:
        found = project_scan(
            {
                "src/repro/apps/service.py": """\
                    import time

                    def tick():
                        time.sleep(1.0)
                    """,
            },
            "R011",
        )
        assert found == []


# ---------------------------------------------------------------------------
# Malformed inputs degrade to recorded skips, never crashes.
# ---------------------------------------------------------------------------


class TestMalformedInputs:
    def test_syntax_error_reports_r000_and_scans_the_rest(self) -> None:
        result = analyze_project(
            {
                "src/repro/apps/broken.py": "def broken(:\n",
                "src/repro/apps/fine.py": textwrap.dedent(
                    """\
                    import time
                    from repro.generators.eh3 import EH3

                    def make():
                        return EH3(time.time_ns())
                    """
                ),
            }
        )
        rules = [v.rule for v in result.violations]
        assert "R000" in rules  # the parse failure
        assert "R008" in rules  # the healthy file still got scanned
        assert any(
            skip.reason == "syntax-error"
            for skip in result.project.graph.skips
        )

    def test_circular_imports_build_a_graph(self) -> None:
        graph = build(
            {
                "src/pkg/a.py": """\
                    from pkg.b import beta

                    def alpha():
                        return beta()
                    """,
                "src/pkg/b.py": """\
                    from pkg.a import alpha

                    def beta():
                        return alpha()
                    """,
            }
        )
        resolved = {
            site.name: site.callee
            for site in graph.calls
            if site.callee is not None
        }
        assert resolved["beta"] == "src/pkg/b.py::beta"
        assert resolved["alpha"] == "src/pkg/a.py::alpha"

    def test_dynamic_dispatch_is_a_skip_not_a_guess(self) -> None:
        graph = build(
            {
                "src/pkg/a.py": """\
                    def run(registry, name):
                        handler = getattr(registry, name)
                        return handler()
                    """,
            }
        )
        assert any(
            skip.reason == "dynamic-getattr" for skip in graph.skips
        )
        # The unresolvable call produced no made-up edge.
        assert all(
            site.callee is None
            for site in graph.calls
            if site.name == "handler"
        )

    def test_single_file_scan_still_works(self) -> None:
        # analyze_source treats one file as a whole project.
        found = analyze_source(
            "import time\nseed = time.time()\n",
            "src/repro/generators/fixture.py",
        )
        assert any(v.rule == "R003" for v in found)


def _regenerate_golden() -> None:
    GOLDEN_PATH.parent.mkdir(parents=True, exist_ok=True)
    graph = build(GRAPH_FIXTURE)
    GOLDEN_PATH.write_text(
        json.dumps(graph.to_dict(), indent=2, sort_keys=True) + "\n",
        encoding="utf-8",
    )
    print(f"wrote {GOLDEN_PATH}")


if __name__ == "__main__":
    _regenerate_golden()
