"""Tests for the Monte-Carlo approximate range-summation extension."""

from __future__ import annotations

import numpy as np
import pytest

from repro.generators import BCH5, EH3, SeedSource
from repro.rangesum import brute_force_range_sum
from repro.rangesum.approximate import (
    sampled_range_sum,
    samples_for_absolute_error,
    stratified_range_sum,
)


class TestSampleAccounting:
    def test_hoeffding_bound_shape(self):
        # Halving the error quadruples the samples.
        base = samples_for_absolute_error(1 << 20, 1000.0)
        tighter = samples_for_absolute_error(1 << 20, 500.0)
        assert tighter == pytest.approx(4 * base, rel=0.01)

    def test_relative_guarantee_needs_linear_samples(self):
        """The paper's implicit negative result: aiming at the natural
        sqrt(size) target costs ~size samples."""
        size = 1 << 16
        needed = samples_for_absolute_error(size, float(np.sqrt(size)))
        assert needed > size  # no better than enumerating the interval

    def test_validation(self):
        with pytest.raises(ValueError):
            samples_for_absolute_error(16, 0.0)
        with pytest.raises(ValueError):
            samples_for_absolute_error(16, 1.0, confidence=1.0)


class TestEstimators:
    def test_unbiased_on_average(self, rng):
        generator = BCH5.from_source(12, SeedSource(1), mode="arithmetic")
        alpha, beta = 100, 3500
        truth = brute_force_range_sum(generator, alpha, beta)
        estimates = [
            sampled_range_sum(generator, alpha, beta, 500, rng).estimate
            for _ in range(80)
        ]
        sd = (beta - alpha + 1) / np.sqrt(500)
        assert abs(np.mean(estimates) - truth) < 4 * sd / np.sqrt(80)

    def test_exhaustive_sampling_bound_holds(self, rng):
        generator = EH3.from_source(10, SeedSource(2))
        alpha, beta = 17, 900
        truth = brute_force_range_sum(generator, alpha, beta)
        result = sampled_range_sum(
            generator, alpha, beta, 20_000, rng, confidence=0.999
        )
        assert abs(result.estimate - truth) <= result.absolute_error_bound

    def test_stratified_matches_truth_with_many_samples(self, rng):
        generator = BCH5.from_source(10, SeedSource(3), mode="gf")
        alpha, beta = 5, 1000
        truth = brute_force_range_sum(generator, alpha, beta)
        result = stratified_range_sum(generator, alpha, beta, 30_000, rng)
        assert abs(result.estimate - truth) <= result.absolute_error_bound

    def test_sample_counts_recorded(self, rng):
        generator = EH3.from_source(8, SeedSource(4))
        result = sampled_range_sum(generator, 0, 255, 64, rng)
        assert result.samples == 64
        assert result.interval_size == 256

    def test_validation(self, rng):
        generator = EH3.from_source(8, SeedSource(5))
        with pytest.raises(ValueError):
            sampled_range_sum(generator, 10, 5, 10, rng)
        with pytest.raises(ValueError):
            sampled_range_sum(generator, 0, 10, 0, rng)
        with pytest.raises(ValueError):
            stratified_range_sum(generator, 0, 200, 1, rng)
