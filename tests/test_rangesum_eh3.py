"""Tests for EH3 fast range-summation (Theorem 2 / Algorithm H3Interval)."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.dyadic import DyadicInterval
from repro.generators import EH3
from repro.rangesum import (
    brute_force_range_sum,
    eh3_dyadic_sum,
    eh3_range_sum,
    h3_interval,
)


class TestTheorem2:
    @given(st.data())
    @settings(max_examples=200)
    def test_dyadic_closed_form_matches_brute_force(self, data):
        n = data.draw(st.integers(min_value=2, max_value=12))
        s0 = data.draw(st.integers(min_value=0, max_value=1))
        s1 = data.draw(st.integers(min_value=0, max_value=(1 << n) - 1))
        j = data.draw(st.integers(min_value=0, max_value=n // 2))
        offset = data.draw(
            st.integers(min_value=0, max_value=(1 << (n - 2 * j)) - 1)
        )
        generator = EH3(n, s0, s1)
        interval = DyadicInterval(2 * j, offset)
        assert eh3_dyadic_sum(generator, interval) == brute_force_range_sum(
            generator, interval.low, interval.high - 1
        )

    def test_magnitude_is_2_to_j(self):
        """Every quaternary dyadic sum has magnitude exactly 2^j."""
        generator = EH3(8, 0, 184)
        for j in range(5):
            for offset in range(1 << (8 - 2 * j)):
                total = eh3_dyadic_sum(generator, DyadicInterval(2 * j, offset))
                assert abs(total) == 1 << j

    def test_sign_flips_with_zero_or_pairs(self):
        """#ZERO parity controls the sign (Theorem 2's (-1)^#ZERO)."""
        # Seed pair (0,0) at the bottom -> one flip for every j >= 1.
        generator = EH3(4, 0, 0b1100)
        interval = DyadicInterval(2, 0)  # [0, 4): j = 1
        assert eh3_dyadic_sum(generator, interval) == -2 * generator.value(0)
        # Seed with no zero pairs -> positive sign.
        generator = EH3(4, 0, 0b0101)
        assert eh3_dyadic_sum(generator, interval) == 2 * generator.value(0)

    def test_odd_level_rejected(self):
        with pytest.raises(ValueError):
            eh3_dyadic_sum(EH3(4, 0, 1), DyadicInterval(1, 0))

    def test_out_of_domain_rejected(self):
        with pytest.raises(ValueError):
            eh3_dyadic_sum(EH3(4, 0, 1), DyadicInterval(6, 0))


class TestPaperExample1:
    """Example 1: S = [s0, S1] = [0, 184], interval [124, 197]."""

    def test_range_sum_value(self):
        """Under Eq. 1's mapping xi = (-1)^f the example evaluates to -12.

        The paper's worked arithmetic reports +12 because it maps bits to
        signs the opposite way (f = 0 -> -1); the flip is global, so every
        estimator (products of sketches) is unchanged.  We pin our
        convention here and check the magnitude matches the paper.
        """
        generator = EH3(8, 0, 184)
        total = eh3_range_sum(generator, 124, 197)
        assert total == -12
        assert total == brute_force_range_sum(generator, 124, 197)

    def test_piecewise_magnitudes(self):
        """|g| per dyadic piece: 2, 8, 2, 1, 1 as in the example."""
        generator = EH3(8, 0, 184)
        pieces = [
            (124, 127, 2),
            (128, 191, 8),
            (192, 195, 2),
            (196, 196, 1),
            (197, 197, 1),
        ]
        for low, high, magnitude in pieces:
            assert abs(eh3_range_sum(generator, low, high)) == magnitude


class TestGeneralIntervals:
    @given(st.data())
    @settings(max_examples=300)
    def test_matches_brute_force(self, data):
        n = data.draw(st.integers(min_value=1, max_value=13))
        s0 = data.draw(st.integers(min_value=0, max_value=1))
        s1 = data.draw(st.integers(min_value=0, max_value=(1 << n) - 1))
        alpha = data.draw(st.integers(min_value=0, max_value=(1 << n) - 1))
        beta = data.draw(st.integers(min_value=alpha, max_value=(1 << n) - 1))
        generator = EH3(n, s0, s1)
        assert eh3_range_sum(generator, alpha, beta) == brute_force_range_sum(
            generator, alpha, beta
        )

    @given(st.data())
    @settings(max_examples=150)
    def test_fast_path_equals_cover_reference(self, data):
        """The allocation-free walk equals the explicit-cover H3Interval."""
        from repro.rangesum.eh3_rangesum import eh3_range_sum_via_cover

        n = data.draw(st.integers(min_value=1, max_value=34))
        s0 = data.draw(st.integers(min_value=0, max_value=1))
        s1 = data.draw(st.integers(min_value=0, max_value=(1 << n) - 1))
        alpha = data.draw(st.integers(min_value=0, max_value=(1 << n) - 1))
        beta = data.draw(st.integers(min_value=alpha, max_value=(1 << n) - 1))
        generator = EH3(n, s0, s1)
        assert eh3_range_sum(generator, alpha, beta) == (
            eh3_range_sum_via_cover(generator, alpha, beta)
        )

    def test_h3_interval_alias(self):
        generator = EH3(10, 1, 0x2F1)
        assert h3_interval(generator, 5, 900) == eh3_range_sum(generator, 5, 900)

    def test_single_point(self):
        generator = EH3(10, 0, 0x3A5)
        for i in (0, 513, 1023):
            assert eh3_range_sum(generator, i, i) == generator.value(i)

    def test_generator_method_delegates(self):
        generator = EH3(8, 0, 0xB4)
        assert generator.range_sum(3, 200) == eh3_range_sum(generator, 3, 200)

    def test_additivity_across_split(self):
        generator = EH3(12, 1, 0xABC)
        a, b, c = 100, 2000, 4000
        assert eh3_range_sum(generator, a, c) == eh3_range_sum(
            generator, a, b
        ) + eh3_range_sum(generator, b + 1, c)

    def test_empty_or_outside_rejected(self):
        generator = EH3(4, 0, 1)
        with pytest.raises(ValueError):
            eh3_range_sum(generator, 5, 4)
        with pytest.raises(ValueError):
            eh3_range_sum(generator, 0, 16)

    def test_large_domain_logarithmic_work(self):
        """Sub-second on a 2^62 domain, self-consistent via additivity."""
        generator = EH3(62, 0, (1 << 61) | 0xF0F0F0)
        a, b = 123456789, (1 << 61) + 5
        mid = 1 << 40
        assert eh3_range_sum(generator, a, b) == eh3_range_sum(
            generator, a, mid
        ) + eh3_range_sum(generator, mid + 1, b)

    def test_whole_quaternary_domain_single_piece(self):
        generator = EH3(8, 0, 99)
        sign = -1 if generator.zero_or_pairs_below(4) % 2 else 1
        assert eh3_range_sum(generator, 0, 255) == sign * 16 * generator.value(0)
