"""Smoke tests: the example scripts run end-to-end and tell their story.

Each example is executed in a subprocess exactly as a user would run it.
Demos that take minutes at their full showcase settings (selectivity,
dynamic histogram) run with their ``--quick`` flag; the spatial demo has
no quick mode and stays out.
"""

from __future__ import annotations

import pathlib
import subprocess
import sys

import pytest

EXAMPLES = pathlib.Path(__file__).resolve().parent.parent / "examples"


def run_example(name: str, *args: str, timeout: float = 240.0) -> str:
    result = subprocess.run(
        [sys.executable, str(EXAMPLES / name), *args],
        capture_output=True,
        text=True,
        timeout=timeout,
    )
    assert result.returncode == 0, result.stderr
    return result.stdout


@pytest.mark.slow
class TestExamples:
    def test_quickstart(self):
        out = run_example("quickstart.py")
        assert "H3Interval closed form: -12" in out
        assert "Dyadic intervals" in out
        assert "relative error" in out

    def test_l1_difference_demo(self):
        out = run_example("l1_difference_demo.py")
        assert "true L1 difference" in out
        assert "relative error" in out

    def test_distributed_sketching_demo(self):
        out = run_example("distributed_sketching_demo.py")
        assert "estimate from merged sketches" in out
        assert "+/-" in out  # the typed Estimate's confidence band
        assert "communication" in out

    def test_selectivity_demo_quick(self):
        out = run_example("selectivity_demo.py", "--quick")
        assert "sketched once into" in out
        assert "query rectangle" in out
        assert "+/-" in out

    def test_dynamic_histogram_demo_quick(self):
        out = run_example("dynamic_histogram_demo.py", "--quick")
        assert "sketch-estimated counts" in out
        assert "total mass from the sketch" in out

    def test_stream_processor_demo(self):
        out = run_example("stream_processor_demo.py")
        assert "registered 2 relations" in out
        assert "regardless of stream length" in out
