"""Tests for the negative-result demonstrations (Theorems 3 and 4)."""

from __future__ import annotations

import pytest

from repro.generators import BCH3, EH3, PolynomialsOverPrimes, RM7, SeedSource
from repro.rangesum.hardness import (
    algebraic_normal_form,
    anf_terms,
    bch5_has_cubic_term,
    max_anf_degree,
    polyprime_dyadic_profile,
)


class TestANF:
    def test_constant_functions(self):
        assert algebraic_normal_form(lambda x: 0, 3) == [0] * 8
        anf = algebraic_normal_form(lambda x: 1, 3)
        assert anf[0] == 1 and sum(anf) == 1

    def test_single_variable(self):
        anf = algebraic_normal_form(lambda x: x & 1, 2)
        assert anf_terms(anf) == [0b01]

    def test_and_is_degree_two(self):
        anf = algebraic_normal_form(lambda x: (x & 1) & (x >> 1 & 1), 2)
        assert anf_terms(anf) == [0b11]
        assert max_anf_degree(anf) == 2

    def test_xor_is_degree_one(self):
        anf = algebraic_normal_form(lambda x: (x & 1) ^ (x >> 1 & 1), 2)
        assert sorted(anf_terms(anf)) == [0b01, 0b10]
        assert max_anf_degree(anf) == 1

    def test_majority_of_three(self):
        def majority(x):
            bits = [(x >> k) & 1 for k in range(3)]
            return 1 if sum(bits) >= 2 else 0

        anf = algebraic_normal_form(majority, 3)
        # maj(a,b,c) = ab ^ ac ^ bc.
        assert sorted(anf_terms(anf)) == [0b011, 0b101, 0b110]

    def test_roundtrip_evaluation(self):
        """The ANF must re-evaluate to the original truth table."""
        function = lambda x: (x * 37 >> 2) & 1  # noqa: E731
        variables = 5
        anf = algebraic_normal_form(function, variables)
        for x in range(1 << variables):
            value = 0
            for monomial in anf_terms(anf):
                if monomial & x == monomial:
                    value ^= 1
            assert value == function(x)

    def test_too_many_variables_rejected(self):
        with pytest.raises(ValueError):
            algebraic_normal_form(lambda x: 0, 23)


class TestSchemeDegrees:
    def test_bch3_is_linear(self):
        """BCH3's ANF is degree 1: the root of its fast range-summability."""
        generator = BCH3(6, 1, 0b101101)
        anf = algebraic_normal_form(generator.bit, 6)
        assert max_anf_degree(anf) == 1

    def test_eh3_is_quadratic(self):
        """h adds degree-2 terms but nothing higher."""
        generator = EH3(6, 0, 0b110011)
        anf = algebraic_normal_form(generator.bit, 6)
        assert max_anf_degree(anf) == 2

    def test_rm7_is_quadratic(self):
        """RM7 stays at degree 2 -- why its range-sum is polynomial."""
        generator = RM7.from_source(6, SeedSource(4))
        anf = algebraic_normal_form(generator.bit, 6)
        assert max_anf_degree(anf) <= 2

    def test_theorem3_bch5_arithmetic_cubic(self):
        """Theorem 3's degree argument holds for the arithmetic cube."""
        for n in (5, 6, 8):
            assert bch5_has_cubic_term(n)

    def test_bch5_gf_cube_is_quadratic(self):
        """Reproduction finding: the GF(2^n) cube is the quadratic Gold
        function, so field-mode BCH5 stays at ANF degree 2 -- making it
        2XOR-AND summable despite Theorem 3's blanket statement."""
        from repro.rangesum.hardness import bch5_gf_anf_degree

        for n in (4, 5, 6, 8):
            assert bch5_gf_anf_degree(n) <= 2

    def test_polyprime_high_degree(self):
        """Theorem 4's engine: mod-p + LSB has high ANF degree."""
        generator = PolynomialsOverPrimes(4, (3, 7), p=17)
        anf = algebraic_normal_form(generator.bit, 4)
        assert max_anf_degree(anf) >= 3


class TestPolyprimeProfile:
    def test_profile_has_full_coverage(self):
        generator = PolynomialsOverPrimes(6, (5, 9), p=67)
        profile = polyprime_dyadic_profile(generator, 3)
        assert len(profile) == 8
        assert all(-8 <= total <= 8 for total in profile)

    def test_profile_irregular_unlike_eh3(self):
        """Theorem 4's consequence: dyadic sums have no fixed magnitude.

        EH3's level-2j dyadic sums all have magnitude exactly 2^j; a
        polynomials-over-primes generator scatters (here: at least two
        distinct magnitudes at level 4).
        """
        generator = PolynomialsOverPrimes(8, (123, 45), p=257)
        profile = polyprime_dyadic_profile(generator, 4)
        magnitudes = {abs(total) for total in profile}
        assert len(magnitudes) >= 2

    def test_level_bounds(self):
        generator = PolynomialsOverPrimes(4, (1, 2), p=17)
        with pytest.raises(ValueError):
            polyprime_dyadic_profile(generator, 5)
