"""Model-based stateful testing of the sketching machinery.

A hypothesis state machine drives a SketchMatrix through arbitrary
sequences of point updates, interval updates, weighted updates, merges
and differences while maintaining an exact frequency-vector model; after
every step the sketch's counters must equal the model's dot products with
the generators' value vectors EXACTLY (sketching is deterministic given
the seeds -- the randomness is only over seed choice).
"""

from __future__ import annotations

import numpy as np
from hypothesis import settings
from hypothesis import strategies as st
from hypothesis.stateful import (
    RuleBasedStateMachine,
    initialize,
    invariant,
    rule,
)

from repro.generators import EH3, SeedSource
from repro.sketch.ams import SketchScheme

BITS = 8
SIZE = 1 << BITS


class SketchModelMachine(RuleBasedStateMachine):
    """Sketch vs exact-frequency-model equivalence under all operations."""

    @initialize(seed=st.integers(min_value=0, max_value=10_000))
    def setup(self, seed):
        source = SeedSource(seed)
        self.scheme = SketchScheme.from_generators(
            lambda src: EH3.from_source(BITS, src), 2, 3, source
        )
        # Precompute each cell generator's full value vector once.
        indices = np.arange(SIZE, dtype=np.uint64)
        self.value_vectors = [
            [
                cell.generator.values(indices).astype(np.float64)
                for cell in row
            ]
            for row in self.scheme.channels
        ]
        self.sketch = self.scheme.sketch()
        self.model = np.zeros(SIZE)
        self.spare = None  # a second (sketch, model) pair for merges

    @rule(
        item=st.integers(min_value=0, max_value=SIZE - 1),
        weight=st.floats(
            min_value=-4, max_value=4, allow_nan=False, allow_infinity=False
        ),
    )
    def point_update(self, item, weight):
        self.sketch.update_point(item, weight)
        self.model[item] += weight

    @rule(data=st.data())
    def interval_update(self, data):
        low = data.draw(st.integers(min_value=0, max_value=SIZE - 1))
        high = data.draw(st.integers(min_value=low, max_value=SIZE - 1))
        weight = data.draw(st.floats(min_value=-2, max_value=2,
                                     allow_nan=False, allow_infinity=False))
        self.sketch.update_interval((low, high), weight)
        self.model[low : high + 1] += weight

    @rule(item=st.integers(min_value=0, max_value=SIZE - 1))
    def stash_and_merge(self, item):
        """Build a second sketch, then fold it in via combined()."""
        other = self.scheme.sketch()
        other.update_point(item)
        self.sketch = self.sketch.combined(other)
        self.model[item] += 1

    @rule(item=st.integers(min_value=0, max_value=SIZE - 1))
    def subtract_singleton(self, item):
        other = self.scheme.sketch()
        other.update_point(item)
        self.sketch = self.sketch.difference(other)
        self.model[item] -= 1

    @invariant()
    def counters_match_model(self):
        if not hasattr(self, "sketch"):
            return
        expected = np.array(
            [
                [float(np.dot(vector, self.model)) for vector in row]
                for row in self.value_vectors
            ]
        )
        assert np.allclose(self.sketch.values(), expected, atol=1e-6)


TestSketchModel = SketchModelMachine.TestCase
TestSketchModel.settings = settings(
    max_examples=25, stateful_step_count=20, deadline=None
)
