"""The observability layer: instruments, registry, spans, exposition.

Unit tests pin the exact instrument semantics (counter monotonicity,
Prometheus ``le`` bucketing, EWMA decay under a fake clock), the module
switch (shared no-op singletons, state preserved across disable/enable),
and the disabled-mode overhead budget from the issue: the per-batch
instrumentation cost with ``repro.obs`` disabled must stay under 3% of a
representative batch-kernel's cost.  Integration tests drive the fault
suite and the ``metrics`` CLI end to end.
"""

from __future__ import annotations

import json
import math
import time
from pathlib import Path

import pytest

from repro import obs
from repro.obs.metrics import (
    Counter,
    EWMARate,
    Gauge,
    Histogram,
    MetricsRegistry,
    NullCounter,
    NullHistogram,
    histogram_quantile,
    snapshot_to_prometheus,
)
from repro.obs.tracing import RemoteSpanBuffer, TraceCollector
from repro.stream.validation import Incident, IncidentLog

SEED = 20060627
GOLDEN_LIST = Path(__file__).with_name("metrics_golden.txt")


class FakeClock:
    """A deterministic monotonic clock tests advance by hand."""

    def __init__(self, start: float = 0.0) -> None:
        self.now = start

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


@pytest.fixture
def fresh_obs():
    """Swap in a fresh live registry; restore the module state after."""
    previous_registry = obs.set_registry(MetricsRegistry())
    previous_enabled = obs.set_enabled(True)
    previous_collector = obs.set_trace_collector(None)
    try:
        yield obs.registry()
    finally:
        obs.set_registry(previous_registry)
        obs.set_enabled(previous_enabled)
        obs.set_trace_collector(previous_collector)


@pytest.fixture
def fake_clock(fresh_obs):
    """A fresh registry driven entirely by a hand-advanced clock."""
    clock = FakeClock()
    obs.set_clock(clock)
    return clock


# ---------------------------------------------------------------------------
# Instrument semantics.
# ---------------------------------------------------------------------------


class TestCounter:
    def test_accumulates(self) -> None:
        counter = Counter("t.counter")
        counter.inc()
        counter.inc(2.5)
        assert counter.value == 3.5
        assert counter.snapshot() == {"type": "counter", "value": 3.5}

    def test_negative_increment_rejected(self) -> None:
        counter = Counter("t.counter")
        with pytest.raises(ValueError, match="cannot decrease"):
            counter.inc(-1)
        assert counter.value == 0.0


class TestGauge:
    def test_set_inc_dec(self) -> None:
        gauge = Gauge("t.gauge")
        gauge.set(10)
        gauge.inc(5)
        gauge.dec(2)
        assert gauge.value == 13.0
        assert gauge.snapshot() == {"type": "gauge", "value": 13.0}


class TestHistogram:
    def test_le_bucketing(self) -> None:
        # Edges are inclusive upper bounds (Prometheus `le`): an
        # observation lands in the first bucket with value <= edge.
        hist = Histogram("t.hist", edges=(1.0, 10.0))
        hist.observe(1.0)  # exactly on the first edge -> bucket 0
        hist.observe(1.5)  # -> bucket 1 (le 10)
        hist.observe(10.0)  # on the second edge -> bucket 1
        hist.observe(10.1)  # past every edge -> implicit +Inf bucket
        assert hist.bucket_counts == [1, 2, 1]
        assert hist.count == 4
        assert hist.sum == pytest.approx(22.6)

    def test_bad_edges_rejected(self) -> None:
        with pytest.raises(ValueError, match="at least one edge"):
            Histogram("t.hist", edges=())
        with pytest.raises(ValueError, match="strictly increasing"):
            Histogram("t.hist", edges=(1.0, 1.0, 2.0))
        with pytest.raises(ValueError, match="finite"):
            Histogram("t.hist", edges=(1.0, math.inf))


class TestEWMARate:
    def test_trajectory_is_reproducible(self) -> None:
        clock = FakeClock()
        rate = EWMARate("t.rate", clock, halflife=1.0)
        rate.mark()  # first mark only anchors the clock
        assert rate.value() == 0.0
        clock.advance(1.0)
        # One event over one half-life: alpha = 1 - 2^-1 = 0.5, the
        # decayed rate is 0, the instantaneous rate is 1 event/s.
        rate.mark()
        assert rate.value() == pytest.approx(0.5)
        clock.advance(1.0)  # decays by one half-life without marking
        assert rate.value() == pytest.approx(0.25)
        assert rate.count == 2
        snap = rate.snapshot()
        assert snap["type"] == "rate"
        assert snap["count"] == 2

    def test_invalid_arguments_rejected(self) -> None:
        clock = FakeClock()
        with pytest.raises(ValueError, match="halflife"):
            EWMARate("t.rate", clock, halflife=0.0)
        rate = EWMARate("t.rate", clock)
        with pytest.raises(ValueError, match="cannot mark"):
            rate.mark(-1)


# ---------------------------------------------------------------------------
# Registry: get-or-create, conflicts, naming, snapshots.
# ---------------------------------------------------------------------------


class TestRegistry:
    def test_get_or_create_returns_same_instrument(self) -> None:
        registry = MetricsRegistry()
        first = registry.counter("layer.part.total")
        first.inc(3)
        assert registry.counter("layer.part.total") is first
        assert registry.counter("layer.part.total").value == 3.0

    def test_kind_conflict_raises(self) -> None:
        registry = MetricsRegistry()
        registry.counter("layer.part.total")
        with pytest.raises(ValueError, match="is a counter"):
            registry.gauge("layer.part.total")

    def test_histogram_edge_mismatch_raises(self) -> None:
        registry = MetricsRegistry()
        hist = registry.histogram("layer.part.size", edges=(1.0, 10.0))
        assert registry.histogram(
            "layer.part.size", edges=(1.0, 10.0)
        ) is hist
        with pytest.raises(ValueError, match="already registered"):
            registry.histogram("layer.part.size", edges=(1.0, 100.0))

    @pytest.mark.parametrize(
        "name", ["single", "Upper.case", "dash-ed.name", "trailing.dot."]
    )
    def test_bad_names_rejected(self, name: str) -> None:
        registry = MetricsRegistry()
        with pytest.raises(ValueError, match="dot-joined lowercase"):
            registry.counter(name)

    def test_snapshot_sorted_and_reset(self) -> None:
        registry = MetricsRegistry()
        registry.counter("b.two").inc()
        registry.counter("a.one").inc()
        assert list(registry.snapshot()) == ["a.one", "b.two"]
        assert registry.instruments() == ("a.one", "b.two")
        registry.reset()
        assert registry.snapshot() == {}

    def test_rate_reads_registry_clock(self) -> None:
        clock = FakeClock()
        registry = MetricsRegistry(clock=clock)
        rate = registry.rate("t.items_rate", halflife=1.0)
        rate.mark()
        clock.advance(1.0)
        rate.mark()
        assert rate.value() == pytest.approx(0.5)
        assert registry.now() == 1.0


# ---------------------------------------------------------------------------
# Prometheus text exposition.
# ---------------------------------------------------------------------------


class TestPrometheusExposition:
    def test_counter_and_rate_lines(self) -> None:
        registry = MetricsRegistry(clock=FakeClock())
        registry.counter("stream.ingest.points_total").inc(42)
        registry.rate("stream.ingest.items_rate").mark(10)
        text = registry.to_prometheus()
        assert "# TYPE repro_stream_ingest_points_total counter" in text
        assert "repro_stream_ingest_points_total 42" in text
        # EWMA rates are exposed as gauges.
        assert "# TYPE repro_stream_ingest_items_rate gauge" in text
        assert text.endswith("\n")

    def test_histogram_buckets_cumulative(self) -> None:
        registry = MetricsRegistry()
        hist = registry.histogram("a.size", edges=(1.0, 10.0))
        for value in (0.5, 5.0, 50.0):
            hist.observe(value)
        lines = registry.to_prometheus().splitlines()
        assert 'repro_a_size_bucket{le="1"} 1' in lines
        assert 'repro_a_size_bucket{le="10"} 2' in lines
        assert 'repro_a_size_bucket{le="+Inf"} 3' in lines
        assert "repro_a_size_sum 55.5" in lines
        assert "repro_a_size_count 3" in lines

    def test_empty_snapshot_renders_empty(self) -> None:
        assert snapshot_to_prometheus({}) == ""


# ---------------------------------------------------------------------------
# Module switch: shared no-ops, preserved live state.
# ---------------------------------------------------------------------------


class TestModuleSwitch:
    def test_disabled_hands_out_shared_singletons(self, fresh_obs) -> None:
        obs.set_enabled(False)
        assert obs.counter("a.b") is obs.counter("c.d")
        assert isinstance(obs.counter("a.b"), NullCounter)
        assert isinstance(obs.histogram("a.b"), NullHistogram)
        # Name validation is skipped entirely on the no-op path.
        obs.counter("not a valid name").inc()
        assert obs.rate("a.b").value() == 0.0
        assert obs.snapshot() == {}
        assert obs.to_prometheus() == ""

    def test_live_state_survives_disable(self, fresh_obs) -> None:
        obs.counter("a.b").inc(3)
        previous = obs.set_enabled(False)
        assert previous is True
        obs.counter("a.b").inc(5)  # discarded
        obs.set_enabled(True)
        assert obs.snapshot()["a.b"]["value"] == 3.0

    def test_monotonic_works_while_disabled(self, fresh_obs) -> None:
        obs.set_enabled(False)
        before = obs.monotonic()
        after = obs.monotonic()
        assert after >= before

    def test_disabled_span_is_shared_noop(self, fresh_obs) -> None:
        obs.set_enabled(False)
        assert obs.span("a.b") is obs.span("c.d", key="value")
        with obs.span("a.b"):
            pass
        obs.set_enabled(True)
        assert obs.snapshot() == {}


# ---------------------------------------------------------------------------
# Spans and tracing.
# ---------------------------------------------------------------------------


class TestSpans:
    def test_duration_lands_in_seconds_histogram(self, fake_clock) -> None:
        with obs.span("outer.region"):
            fake_clock.advance(0.5)
        state = obs.snapshot()["outer.region.seconds"]
        assert state["count"] == 1
        assert state["sum"] == pytest.approx(0.5)

    def test_nesting_records_parent(self, fake_clock) -> None:
        collector = TraceCollector()
        obs.set_trace_collector(collector)
        with obs.span("outer.region", stage="load"):
            fake_clock.advance(1.0)
            with obs.span("inner.region"):
                fake_clock.advance(0.25)
        assert collector.depth == 0
        inner, outer = collector.events
        assert inner["name"] == "inner.region"
        assert inner["ph"] == "X"
        assert inner["dur"] == pytest.approx(0.25e6)  # microseconds
        assert inner["args"]["parent"] == "outer.region"
        assert outer["dur"] == pytest.approx(1.25e6)
        assert outer["args"] == {"stage": "load"}

    def test_exception_closes_span_and_tags_error(self, fake_clock) -> None:
        collector = TraceCollector()
        obs.set_trace_collector(collector)
        with pytest.raises(RuntimeError, match="boom"):
            with obs.span("bad.region"):
                fake_clock.advance(0.1)
                raise RuntimeError("boom")
        assert collector.depth == 0
        assert collector.events[-1]["args"]["error"] == "RuntimeError"
        assert obs.snapshot()["bad.region.seconds"]["count"] == 1

    def test_tracing_works_while_metrics_disabled(self, fresh_obs) -> None:
        obs.set_enabled(False)
        collector = TraceCollector()
        obs.set_trace_collector(collector)
        with obs.span("a.b"):
            pass
        assert len(collector.events) == 1
        assert obs.snapshot() == {}  # no histogram was recorded

    def test_write_jsonl_round_trips(self, fake_clock, tmp_path) -> None:
        collector = TraceCollector()
        obs.set_trace_collector(collector)
        with obs.span("a.b"):
            fake_clock.advance(0.01)
        target = tmp_path / "trace.jsonl"
        count = collector.write_jsonl(str(target))
        lines = target.read_text().splitlines()
        assert count == len(lines) == 1
        event = json.loads(lines[0])
        assert event["name"] == "a.b"
        assert collector.as_chrome_trace() == [collector.events[0]]


# ---------------------------------------------------------------------------
# Histogram quantiles (the SLO engine reads these from snapshots).
# ---------------------------------------------------------------------------


class TestHistogramQuantile:
    def test_empty_histogram_has_no_quantiles(self) -> None:
        assert math.isnan(histogram_quantile((1.0, 10.0), (0, 0, 0), 0.5))
        hist = Histogram("t.hist", edges=(1.0, 10.0))
        assert math.isnan(hist.quantile(0.99))

    def test_single_bucket_interpolates_from_zero(self) -> None:
        # All mass in the first bucket: lower bound is 0, upper is the
        # edge, so the median sits halfway up the bucket.
        assert histogram_quantile((4.0,), (10, 0), 0.5) == pytest.approx(2.0)
        assert histogram_quantile((4.0,), (10, 0), 1.0) == pytest.approx(4.0)

    def test_interpolation_between_edges(self) -> None:
        # 2 observations <= 1, 2 more <= 10: the median rank (2.0) lands
        # exactly on the first bucket's upper edge.
        assert histogram_quantile(
            (1.0, 10.0), (2, 2, 0), 0.5
        ) == pytest.approx(1.0)
        # Rank 3 is halfway through the second bucket: 1 + 9/2.
        assert histogram_quantile(
            (1.0, 10.0), (2, 2, 0), 0.75
        ) == pytest.approx(5.5)

    def test_overflow_bucket_reports_last_finite_edge(self) -> None:
        # Observations past every edge cannot be resolved beyond the
        # histogram's range; the quantile saturates at the last edge.
        assert histogram_quantile((1.0, 10.0), (0, 0, 5), 0.5) == 10.0
        hist = Histogram("t.hist", edges=(1.0, 10.0))
        hist.observe(1000.0)
        assert hist.quantile(0.99) == 10.0

    def test_quantile_out_of_range_rejected(self) -> None:
        with pytest.raises(ValueError, match="within"):
            histogram_quantile((1.0,), (1, 0), 1.5)
        with pytest.raises(ValueError, match="within"):
            Histogram("t.hist", edges=(1.0,)).quantile(-0.1)

    def test_null_histogram_quantile_is_nan(self) -> None:
        assert math.isnan(NullHistogram().quantile(0.5))

    def test_live_histogram_matches_snapshot_math(self) -> None:
        hist = Histogram("t.hist", edges=(1.0, 10.0, 100.0))
        for value in (0.5, 2.0, 3.0, 20.0):
            hist.observe(value)
        state = hist.snapshot()
        assert hist.quantile(0.5) == pytest.approx(
            histogram_quantile(state["edges"], state["buckets"], 0.5)
        )


# ---------------------------------------------------------------------------
# Span identity, context propagation, and remote stitching.
# ---------------------------------------------------------------------------


class TestSpanIdentity:
    def test_events_carry_top_level_ids(self, fake_clock) -> None:
        collector = TraceCollector()
        obs.set_trace_collector(collector)
        with obs.span("outer.region"):
            with obs.span("inner.region"):
                fake_clock.advance(0.1)
        inner, outer = collector.events
        assert inner["trace_id"] == outer["trace_id"] == collector.trace_id
        assert inner["span_id"] != outer["span_id"]
        assert inner["parent_span_id"] == outer["span_id"]
        assert "parent_span_id" not in outer
        # Ids stay out of args (back-compat with attribute assertions).
        assert "span_id" not in inner["args"]

    def test_current_context_tracks_innermost_span(self, fresh_obs) -> None:
        collector = TraceCollector()
        obs.set_trace_collector(collector)
        assert collector.current_context() == {"id": collector.trace_id}
        with obs.span("outer.region"):
            context = collector.current_context()
            assert context["id"] == collector.trace_id
            assert context["parent"] == collector._stack[-1][1]

    def test_adopt_joins_trace_and_parents_roots(self, fresh_obs) -> None:
        sender = TraceCollector()
        obs.set_trace_collector(sender)
        with obs.span("sender.region"):
            context = sender.current_context()
        receiver = TraceCollector()
        receiver.adopt(context)
        obs.set_trace_collector(receiver)
        with obs.span("receiver.region"):
            pass
        event = receiver.events[-1]
        assert event["trace_id"] == sender.trace_id
        assert event["parent_span_id"] == context["parent"]

    def test_stitch_remote_rebases_and_dedupes(self, fresh_obs) -> None:
        collector = TraceCollector()
        records = [
            {
                "name": "cluster.worker.command",
                "start": 100.0,
                "dur": 0.5,
                "args": {"op": "ship"},
                "trace_id": collector.trace_id,
                "span_id": "w.1.1",
                "parent_span_id": "c.1.1",
            },
            {"not a record": True},
        ]
        assert collector.stitch_remote(records, process=2) == 1
        event = collector.events[-1]
        assert event["pid"] == 2
        assert event["ts"] == pytest.approx(0.0)  # rebased onto origin
        assert event["dur"] == pytest.approx(0.5e6)
        assert event["parent_span_id"] == "c.1.1"
        # Crash-replay / duplicate delivery re-ships the same span id.
        assert collector.stitch_remote(records, process=2) == 0
        assert len(collector.events) == 1

    def test_span_ids_unique_across_collectors(self) -> None:
        # Two collectors in one process (e.g. a worker restarted after a
        # crash) must never mint colliding span ids.
        first, second = TraceCollector(), TraceCollector()
        assert first._new_span_id() != second._new_span_id()

    def test_start_span_end_is_idempotent(self, fake_clock) -> None:
        collector = TraceCollector()
        obs.set_trace_collector(collector)
        handle = obs.start_span("manual.region", op="test")
        fake_clock.advance(0.2)
        handle.end()
        handle.end()  # double close is a no-op
        assert len(collector.events) == 1
        assert collector.depth == 0
        assert obs.snapshot()["manual.region.seconds"]["count"] == 1

    def test_disabled_start_span_end_is_noop(self, fresh_obs) -> None:
        obs.set_enabled(False)
        handle = obs.start_span("manual.region")
        handle.end()
        assert obs.snapshot() == {}


class TestRemoteSpanBuffer:
    def test_records_carry_absolute_timings(self, fake_clock) -> None:
        fake_clock.advance(100.0)
        buffer = RemoteSpanBuffer()
        obs.set_trace_collector(buffer)
        with obs.span("cluster.worker.command", op="points"):
            fake_clock.advance(0.25)
        (record,) = buffer.records
        assert record["start"] == pytest.approx(100.0)  # absolute seconds
        assert record["dur"] == pytest.approx(0.25)
        assert record["args"] == {"op": "points"}
        assert record["trace_id"] == buffer.trace_id

    def test_drain_hands_over_and_clears_memory(self, fake_clock) -> None:
        buffer = RemoteSpanBuffer()
        obs.set_trace_collector(buffer)
        with obs.span("a.b"):
            pass
        assert len(buffer.drain()) == 1
        assert buffer.records == []
        assert buffer.drain() == []

    def test_spool_survives_drain_and_reloads(
        self, fake_clock, tmp_path
    ) -> None:
        # drain() must NOT clear the spool: the reply carrying the
        # drained records can still be lost with the worker.  A fresh
        # buffer (the restarted worker) re-ships them from disk.
        spool = str(tmp_path / "trace-spool.jsonl")
        buffer = RemoteSpanBuffer(spool=spool)
        obs.set_trace_collector(buffer)
        with obs.span("a.b"):
            pass
        shipped = buffer.drain()
        assert len(shipped) == 1
        reborn = RemoteSpanBuffer(spool=spool)
        assert [r["span_id"] for r in reborn.records] == [
            shipped[0]["span_id"]
        ]

    def test_spool_tolerates_torn_tail(self, tmp_path) -> None:
        spool = tmp_path / "trace-spool.jsonl"
        good = json.dumps({"name": "a.b", "start": 1.0, "dur": 0.1})
        spool.write_text(good + "\n" + '{"name": "torn', encoding="utf-8")
        buffer = RemoteSpanBuffer(spool=str(spool))
        assert [r["name"] for r in buffer.records] == ["a.b"]

    def test_spool_truncates_at_limit(self, fake_clock, tmp_path) -> None:
        spool = tmp_path / "trace-spool.jsonl"
        buffer = RemoteSpanBuffer(spool=str(spool), spool_limit=2)
        obs.set_trace_collector(buffer)
        for _ in range(5):
            with obs.span("a.b"):
                pass
        lines = spool.read_text().splitlines()
        assert len(lines) <= 2  # bounded replay window

    def test_unwritable_spool_keeps_serving_memory(self, fake_clock) -> None:
        buffer = RemoteSpanBuffer(spool="/nonexistent-dir/spool.jsonl")
        obs.set_trace_collector(buffer)
        with obs.span("a.b"):
            pass
        assert len(buffer.records) == 1


# ---------------------------------------------------------------------------
# Incident ring buffer.
# ---------------------------------------------------------------------------


def _incident(index: int) -> Incident:
    return Incident(
        operation="points",
        relation="stream",
        error=f"boom {index}",
        batch_size=1,
        recovered=True,
    )


class TestIncidentLog:
    def test_capacity_must_be_positive(self) -> None:
        with pytest.raises(ValueError, match="positive"):
            IncidentLog(capacity=0)

    def test_ring_keeps_newest_and_counts_drops(self, fresh_obs) -> None:
        log = IncidentLog(capacity=2)
        for index in range(5):
            log.append(_incident(index))
        assert len(log) == 2
        assert [incident.error for incident in log] == ["boom 3", "boom 4"]
        assert log[0].error == "boom 3"
        assert log.total == 5
        assert log.dropped == 3
        state = obs.snapshot()["stream.incidents.dropped_total"]
        assert state["value"] == 3.0

    def test_clear_keeps_totals(self, fresh_obs) -> None:
        log = IncidentLog(capacity=4)
        log.append(_incident(0))
        log.clear()
        assert len(log) == 0
        assert log.total == 1
        assert log.dropped == 0


# ---------------------------------------------------------------------------
# Disabled-mode overhead budget.
# ---------------------------------------------------------------------------


class TestDisabledOverhead:
    def test_disabled_instrumentation_under_budget(self, fresh_obs) -> None:
        """Per-batch no-op instrument calls cost <3% of the batch kernel.

        The measured sequence mirrors what ``process_points`` adds per
        batch (two counters, a histogram, a rate mark, a span); the
        reference cost is the actual batched sketch update it wraps.
        """
        from repro.stream.processor import StreamProcessor

        processor = StreamProcessor(medians=3, averages=4, seed=SEED)
        processor.register_relation("stream", 14)
        batch = list(range(8192))
        obs.set_enabled(False)
        try:
            processor.process_points("stream", batch)  # warm the kernels
            kernel_seconds = min(
                _timed(lambda: processor.process_points("stream", batch))
                for _ in range(5)
            )

            def instrumentation() -> None:
                obs.counter("stream.ingest.points_total").inc(len(batch))
                obs.counter("stream.ingest.batches_total").inc()
                obs.histogram(
                    "stream.ingest.batch_size", obs.DEFAULT_SIZE_EDGES
                ).observe(float(len(batch)))
                obs.rate("stream.ingest.items_rate").mark(len(batch))
                with obs.span("stream.apply", op="points"):
                    pass

            repeats = 100
            instrumented_seconds = min(
                _timed(lambda: _repeat(instrumentation, repeats)) / repeats
                for _ in range(5)
            )
        finally:
            processor.close()
        assert instrumented_seconds < 0.03 * kernel_seconds, (
            f"disabled-mode instrumentation {instrumented_seconds:.2e}s "
            f"per batch vs kernel {kernel_seconds:.2e}s"
        )


def _timed(thunk) -> float:
    start = time.perf_counter()
    thunk()
    return time.perf_counter() - start


def _repeat(thunk, times: int) -> None:
    for _ in range(times):
        thunk()


# ---------------------------------------------------------------------------
# Integration: the fault suite populates the registry.
# ---------------------------------------------------------------------------


class TestFaultSuiteIntegration:
    def test_fault_suite_populates_metrics(self, fresh_obs, tmp_path) -> None:
        from repro.stream.faults import run_fault_suite

        results = run_fault_suite(SEED, str(tmp_path))
        assert all(result.passed for result in results)
        snapshot = obs.snapshot()

        def value(name: str) -> float:
            return snapshot[name]["value"]

        assert value("durability.wal.appends_total") > 0
        assert value("durability.wal.records_total") > 0
        assert value("durability.recover.recoveries_total") > 0
        assert value("stream.degrade.degradations_total") > 0
        assert value("stream.ingest.quarantined_total") > 0
        assert snapshot["stream.apply.seconds"]["count"] > 0


# ---------------------------------------------------------------------------
# Exposition workload, golden list, and the CLI.
# ---------------------------------------------------------------------------


class TestMetricsCLI:
    def test_exercise_covers_golden_list(self, fresh_obs) -> None:
        from repro.obs.exposition import (
            exercise_all_layers,
            missing_instruments,
            read_golden_list,
        )

        snapshot = exercise_all_layers(seed=SEED)
        required = read_golden_list(str(GOLDEN_LIST))
        assert required, "golden list must not be empty"
        assert missing_instruments(snapshot, required) == []

    def test_metrics_json(self, fresh_obs, capsys) -> None:
        from repro.cli import main

        assert main(["metrics"]) == 0
        document = json.loads(capsys.readouterr().out)
        assert document["schema_version"] == 1
        instruments = document["instruments"]
        assert instruments["stream.ingest.points_total"]["value"] > 0
        assert instruments["schemes.dispatch.range_sum_total"]["value"] > 0

    def test_metrics_prometheus_and_golden(self, fresh_obs, capsys) -> None:
        from repro.cli import main

        code = main(
            [
                "metrics",
                "--format",
                "prometheus",
                "--require-golden",
                str(GOLDEN_LIST),
            ]
        )
        captured = capsys.readouterr()
        assert code == 0
        assert "# TYPE repro_stream_ingest_points_total counter" in captured.out
        assert 'le="+Inf"' in captured.out

    def test_missing_golden_instrument_fails(
        self, fresh_obs, tmp_path, capsys
    ) -> None:
        from repro.cli import main

        golden = tmp_path / "golden.txt"
        golden.write_text("no.such.instrument\n# a comment\n")
        assert main(["metrics", "--require-golden", str(golden)]) == 1
        assert "no.such.instrument" in capsys.readouterr().err

    def test_trace_flag_writes_span_events(
        self, fresh_obs, tmp_path, capsys
    ) -> None:
        from repro.cli import main

        trace = tmp_path / "trace.jsonl"
        assert main(["metrics", "--trace", str(trace)]) == 0
        events = [
            json.loads(line) for line in trace.read_text().splitlines()
        ]
        assert events, "trace must contain span events"
        assert {event["ph"] for event in events} == {"X"}
        names = {event["name"] for event in events}
        assert "stream.apply" in names
        assert obs.trace_collector() is None  # CLI uninstalls it

    def test_trace_rejected_for_experiments(self, capsys) -> None:
        from repro.cli import main

        with pytest.raises(SystemExit):
            main(["table1", "--trace", "out.jsonl"])
