"""Distributed tracing across the cluster process boundary.

A traced cluster round trip must produce ONE stitched Chrome trace:
coordinator spans under ``pid=0``, each shard's worker spans under
``pid=sid+1``, every event carrying the same trace id, and worker spans
parent-linked to the coordinator span that issued their command.  The
crash tests prove the span spool's contract: a worker killed in the ack
window re-ships its already-closed spans after restart, and the
coordinator's span-id dedup keeps the trace free of duplicates.
"""

from __future__ import annotations

import pytest

from repro import obs
from repro.cluster import ClusterConfig, ClusterProcessor
from repro.cluster.faults import _arm_fault
from repro.obs.metrics import MetricsRegistry
from repro.obs.tracing import TraceCollector

SEED = 20060627

pytestmark = pytest.mark.filterwarnings(
    "ignore::pytest.PytestUnraisableExceptionWarning"
)


@pytest.fixture
def traced_obs():
    """Fresh registry + installed collector; restores module state."""
    previous_registry = obs.set_registry(MetricsRegistry())
    previous_enabled = obs.set_enabled(True)
    collector = TraceCollector()
    previous_collector = obs.set_trace_collector(collector)
    try:
        yield collector
    finally:
        obs.set_registry(previous_registry)
        obs.set_enabled(previous_enabled)
        obs.set_trace_collector(previous_collector)


def assert_well_formed(events: list[dict]) -> None:
    """Single trace id, unique span ids, every parent resolves."""
    assert events, "trace must contain events"
    trace_ids = {event["trace_id"] for event in events}
    assert len(trace_ids) == 1, f"expected one trace id, got {trace_ids}"
    span_ids = [event["span_id"] for event in events]
    assert len(span_ids) == len(set(span_ids)), "duplicate span ids"
    known = set(span_ids)
    unresolved = [
        event["name"]
        for event in events
        if "parent_span_id" in event
        and event["parent_span_id"] not in known
    ]
    assert unresolved == [], f"dangling parent links: {unresolved}"


def _run_round_trip(cluster: ClusterProcessor) -> None:
    cluster.register_relation("r", 10)
    handle = cluster.register_self_join("r")
    cluster.ingest_points("r", list(range(64)))
    cluster.ingest_intervals("r", [(0, 1023), (100, 700)])
    cluster.flush()
    cluster.answer(handle)


class TestInlineStitchedTrace:
    def test_round_trip_stitches_one_trace(
        self, traced_obs, tmp_path
    ) -> None:
        with ClusterProcessor(
            str(tmp_path / "cluster"),
            shards=2,
            medians=3,
            averages=8,
            seed=SEED,
            transport="inline",
            config=ClusterConfig(heartbeat_interval=0.0),
        ) as cluster:
            _run_round_trip(cluster)
        events = traced_obs.as_chrome_trace()
        assert_well_formed(events)
        coordinator = [e for e in events if e["pid"] == 0]
        workers = [e for e in events if e["pid"] > 0]
        assert coordinator and workers
        assert {e["pid"] for e in workers} == {1, 2}
        worker_names = {e["name"] for e in workers}
        assert "cluster.worker.command" in worker_names

    def test_worker_spans_parent_to_command_spans(
        self, traced_obs, tmp_path
    ) -> None:
        with ClusterProcessor(
            str(tmp_path / "cluster"),
            shards=2,
            medians=3,
            averages=8,
            seed=SEED,
            transport="inline",
            config=ClusterConfig(heartbeat_interval=0.0),
        ) as cluster:
            _run_round_trip(cluster)
        events = traced_obs.as_chrome_trace()
        command_ids = {
            e["span_id"]
            for e in events
            if e["name"] == "cluster.command" and e["pid"] == 0
        }
        workers = [
            e for e in events if e["name"] == "cluster.worker.command"
        ]
        # Synchronous requests (ship, health) parent the worker span to
        # the coordinator's cluster.command span -- the cross-process
        # parent/child link the stitched trace exists for.
        linked = [
            e for e in workers if e.get("parent_span_id") in command_ids
        ]
        assert linked, "no worker span parented to a cluster.command span"

    def test_stage_spans_present(self, traced_obs, tmp_path) -> None:
        with ClusterProcessor(
            str(tmp_path / "cluster"),
            shards=2,
            medians=3,
            averages=8,
            seed=SEED,
            transport="inline",
            config=ClusterConfig(heartbeat_interval=0.0),
        ) as cluster:
            _run_round_trip(cluster)
        names = {e["name"] for e in traced_obs.as_chrome_trace()}
        assert "cluster.shard.answer" in names  # per-shard answer stage

    def test_ship_and_stitch_counters_balance(
        self, traced_obs, tmp_path
    ) -> None:
        with ClusterProcessor(
            str(tmp_path / "cluster"),
            shards=2,
            medians=3,
            averages=8,
            seed=SEED,
            transport="inline",
            config=ClusterConfig(heartbeat_interval=0.0),
        ) as cluster:
            _run_round_trip(cluster)
        snapshot = obs.snapshot()
        shipped = snapshot["obs.trace.remote.spans_shipped_total"]["value"]
        stitched = snapshot["obs.trace.remote.spans_stitched_total"]["value"]
        # Inline transport shares one registry: every shipped span must
        # stitch exactly once (dedup discards nothing on a clean run).
        assert shipped > 0
        assert stitched == shipped

    def test_untraced_cluster_ships_nothing(self, tmp_path) -> None:
        previous_registry = obs.set_registry(MetricsRegistry())
        previous_enabled = obs.set_enabled(True)
        previous_collector = obs.set_trace_collector(None)
        try:
            with ClusterProcessor(
                str(tmp_path / "cluster"),
                shards=2,
                medians=3,
                averages=8,
                seed=SEED,
                transport="inline",
                config=ClusterConfig(heartbeat_interval=0.0),
            ) as cluster:
                _run_round_trip(cluster)
            snapshot = obs.snapshot()
            assert "obs.trace.remote.spans_shipped_total" not in snapshot
        finally:
            obs.set_registry(previous_registry)
            obs.set_enabled(previous_enabled)
            obs.set_trace_collector(previous_collector)


class TestProcessStitchedTrace:
    def test_real_processes_stitch_one_trace(
        self, traced_obs, tmp_path
    ) -> None:
        config = ClusterConfig(
            command_timeout=2.0, retries=2, backoff_base=0.01
        )
        with ClusterProcessor(
            str(tmp_path / "cluster"),
            shards=2,
            medians=3,
            averages=8,
            seed=SEED,
            config=config,
        ) as cluster:
            _run_round_trip(cluster)
        events = traced_obs.as_chrome_trace()
        assert_well_formed(events)
        pids = {e["pid"] for e in events}
        # Coordinator plus both shard processes, each on its own track.
        assert pids >= {0, 1, 2}
        workers = [
            e for e in events if e["name"] == "cluster.worker.command"
        ]
        assert len(workers) > 0
        # Worker-side counters live in the worker process's registry;
        # only the coordinator-side stitch counter is visible here.
        snapshot = obs.snapshot()
        stitched = snapshot["obs.trace.remote.spans_stitched_total"]["value"]
        assert stitched == len([e for e in events if e["pid"] > 0])


class TestCrashFlush:
    def test_closed_spans_survive_ack_window_crash(
        self, traced_obs, tmp_path
    ) -> None:
        """A worker killed before acking re-ships its spooled spans.

        ``exit_before_ack`` kills the worker after it applied the batch
        (its command span closed and hit the spool) but before the reply
        shipped -- the drained records died with the process.  After the
        coordinator restarts the shard, the reborn worker loads the
        spool and re-ships with its next reply; the stitched trace must
        contain the pre-crash span exactly once.
        """
        config = ClusterConfig(
            command_timeout=2.0, retries=2, backoff_base=0.05
        )
        with ClusterProcessor(
            str(tmp_path / "cluster"),
            shards=2,
            medians=3,
            averages=8,
            seed=SEED,
            config=config,
        ) as cluster:
            cluster.register_relation("r", 10)
            cluster.ingest_points("r", list(range(32)))
            cluster.flush()
            victim = 0
            shard = cluster._shards[victim]
            _arm_fault(
                cluster, victim, "exit_before_ack", shard.mut_index + 1
            )
            cluster.ingest_points("r", list(range(32, 64)))
            shard.link.process.join(timeout=10.0)
            assert not shard.link.process.is_alive()
            cluster.flush()  # detects death, restarts, resends
            cluster.ingest_points("r", list(range(64, 96)))
            cluster.flush()
        events = traced_obs.as_chrome_trace()
        assert_well_formed(events)  # includes span-id uniqueness
        victim_spans = [e for e in events if e["pid"] == victim + 1]
        # Spans closed by the crashed incarnation (loaded from its spool
        # by the reborn worker) and by the reborn one both arrived.
        assert len(victim_spans) >= 2
        restarts = obs.snapshot()["cluster.shard.restarts_total"]["value"]
        assert restarts >= 1
