"""Tests for the Section 5.3 variance formulas against exact enumeration."""

from __future__ import annotations

import numpy as np
import pytest

from repro.generators import BCH3, BCH5, EH3
from repro.sketch.variance import (
    delta_var_bch3_exact,
    delta_var_eh3_exact,
    eh3_expected_delta_var,
    equal_triples,
    predicted_relative_error,
    var_bch3_exact,
    var_bch5,
    var_eh3_exact,
    var_eh3_model,
    zy_counts,
)
from repro.theory.model import exact_estimator_moments

N = 4  # 16-point domain: full-seed-space enumeration is instant
SIZE = 1 << N


def random_freq(rng, scale=4) -> np.ndarray:
    return rng.integers(0, scale, size=SIZE).astype(float)


class TestEq11:
    def test_closed_form(self):
        r = np.array([1.0, 2.0, 0.0, 1.0])
        s = np.array([1.0, 1.0, 3.0, 2.0])
        expected = (
            (r**2).sum() * (s**2).sum()
            + np.dot(r, s) ** 2
            - 2 * ((r * s) ** 2).sum()
        )
        assert var_bch5(r, s) == pytest.approx(expected)

    def test_matches_bch5_seed_enumeration(self, rng):
        """Eq. 11 equals the exact Var(X) over all GF-mode BCH5 seeds."""
        r = random_freq(rng)
        s = random_freq(rng)

        indices = np.arange(SIZE, dtype=np.uint64)
        first = second = 0.0
        count = 0
        for s0 in (0, 1):
            for s1 in range(SIZE):
                for s3 in range(SIZE):
                    xi = BCH5(N, s0, s1, s3, mode="gf").values(indices)
                    xi = xi.astype(np.float64)
                    x = np.dot(r, xi) * np.dot(s, xi)
                    first += x
                    second += x * x
                    count += 1
        mean = first / count
        variance = second / count - mean * mean
        assert mean == pytest.approx(np.dot(r, s))  # unbiased
        assert variance == pytest.approx(var_bch5(r, s), rel=1e-9)

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            var_bch5([1.0], [1.0, 2.0])


class TestBCH3Delta:
    def test_exact_variance_matches_enumeration(self, rng):
        r = random_freq(rng)
        s = random_freq(rng)
        mean, variance = exact_estimator_moments(
            lambda s0, s1: BCH3(N, s0, s1), N, r, s
        )
        assert mean == pytest.approx(np.dot(r, s))
        assert variance == pytest.approx(var_bch3_exact(r, s), rel=1e-9)

    def test_delta_nonnegative(self, rng):
        """BCH3's extra quadruple terms are products of non-negative
        frequencies -- the Delta can only inflate the variance."""
        for _ in range(5):
            r = random_freq(rng)
            s = random_freq(rng)
            assert delta_var_bch3_exact(r, s) >= 0

    def test_domain_power_of_two_required(self):
        with pytest.raises(ValueError):
            delta_var_bch3_exact(np.ones(3), np.ones(3))


class TestEH3Delta:
    def test_exact_variance_matches_enumeration(self, rng):
        r = random_freq(rng)
        s = random_freq(rng)
        mean, variance = exact_estimator_moments(
            lambda s0, s1: EH3(N, s0, s1), N, r, s
        )
        assert mean == pytest.approx(np.dot(r, s))
        assert variance == pytest.approx(var_eh3_exact(r, s, N), rel=1e-9)

    def test_eh3_delta_can_be_negative(self):
        """The signed h-terms push EH3's variance BELOW Eq. 11's."""
        r = np.ones(SIZE)
        s = np.ones(SIZE)
        assert delta_var_eh3_exact(r, s, N) < 0

    def test_proposition5_zero_variance(self):
        """Uniform r and s on a 4^n domain: Var(X)_EH3 == 0 exactly."""
        r = np.full(SIZE, 3.0)
        s = np.full(SIZE, 7.0)
        assert var_eh3_exact(r, s, N) == pytest.approx(0.0, abs=1e-6)
        __, variance = exact_estimator_moments(
            lambda s0, s1: EH3(N, s0, s1), N, r, s
        )
        assert variance == pytest.approx(0.0, abs=1e-6)

    def test_eh3_beats_bch3(self, rng):
        """EH3's exact variance never exceeds BCH3's on average data."""
        totals = {"eh3": 0.0, "bch3": 0.0}
        for _ in range(5):
            r = random_freq(rng)
            s = random_freq(rng)
            totals["eh3"] += var_eh3_exact(r, s, N)
            totals["bch3"] += var_bch3_exact(r, s)
        assert totals["eh3"] < totals["bch3"]


class TestProposition4:
    def test_base_case(self):
        assert zy_counts(1) == (40, 24)

    def test_recursion_totals(self):
        for n in (1, 2, 3, 5):
            z, y = zy_counts(n)
            assert z + y == 64**n

    def test_equal_triples_formula(self):
        assert equal_triples(1) == 3 * 16 - 8
        assert equal_triples(2) == 3 * 256 - 32

    def test_bounds(self):
        with pytest.raises(ValueError):
            zy_counts(0)
        with pytest.raises(ValueError):
            equal_triples(0)


class TestEq12Model:
    def test_vector_length_checked(self):
        with pytest.raises(ValueError):
            eh3_expected_delta_var(np.ones(8), np.ones(8), 2)

    def test_scaling_with_domain(self):
        """The model's extra term shrinks ~1/4^n at fixed total mass."""
        deltas = []
        for n in (2, 3, 4):
            size = 1 << (2 * n)
            r = np.full(size, 64.0 / size)
            deltas.append(abs(eh3_expected_delta_var(r, r, n)))
        assert deltas[0] > deltas[1] > deltas[2]

    def test_model_combines_terms(self):
        r = np.ones(16)
        assert var_eh3_model(r, r, 2) == pytest.approx(
            var_bch5(r, r) + eh3_expected_delta_var(r, r, 2)
        )


class TestErrorPrediction:
    def test_scales_with_averages(self):
        e1 = predicted_relative_error(100.0, 10.0, averages=1)
        e4 = predicted_relative_error(100.0, 10.0, averages=4)
        assert e1 == pytest.approx(2 * e4)

    def test_absolute_factor(self):
        sigma = predicted_relative_error(100.0, 10.0, 1, absolute=False)
        absolute = predicted_relative_error(100.0, 10.0, 1, absolute=True)
        assert absolute == pytest.approx(sigma * np.sqrt(2 / np.pi))

    def test_negative_variance_clamped(self):
        assert predicted_relative_error(-5.0, 10.0, 1) == 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            predicted_relative_error(1.0, 0.0, 1)
        with pytest.raises(ValueError):
            predicted_relative_error(1.0, 1.0, 0)
