"""Shared fixtures for the test-suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.generators import SeedSource


@pytest.fixture
def source() -> SeedSource:
    """A deterministic seed source, fresh per test."""
    return SeedSource(0xDEADBEEF)


@pytest.fixture
def rng() -> np.random.Generator:
    """A deterministic numpy generator, fresh per test."""
    return np.random.default_rng(0xC0FFEE)
