"""Tests for the ingestion front door: screening, policies, quarantine."""

from __future__ import annotations

import numpy as np
import pytest

from repro.stream import (
    DeadLetterBuffer,
    InvalidUpdateError,
    QuarantinedRecord,
    StreamProcessor,
    UnknownRelationError,
)
from repro.stream.validation import (
    POLICIES,
    screen_interval,
    screen_intervals,
    screen_point,
    screen_points,
)

BITS = 8  # domain [0, 256)


class TestScreenPoint:
    def test_clean_passes_through(self):
        assert screen_point(5, 2.0, BITS, "raise") == (5, 2.0)

    def test_integral_float_item_accepted(self):
        assert screen_point(5.0, 1.0, BITS, "raise") == (5, 1.0)

    @pytest.mark.parametrize(
        "item, weight, code",
        [
            (2.5, 1.0, "non-integral-item"),
            (True, 1.0, "non-integral-item"),
            ("7", 1.0, "non-integral-item"),
            (-1, 1.0, "negative-item"),
            (256, 1.0, "item-out-of-domain"),
            (3, float("nan"), "non-finite-weight"),
            (3, float("inf"), "non-finite-weight"),
            (3, "heavy", "non-numeric-weight"),
        ],
    )
    def test_raise_policy(self, item, weight, code):
        with pytest.raises(InvalidUpdateError) as info:
            screen_point(item, weight, BITS, "raise")
        assert info.value.code == code
        assert code in str(info.value)

    def test_invalid_update_is_a_value_error(self):
        # Callers that predate the taxonomy catch ValueError.
        with pytest.raises(ValueError):
            screen_point(-1, 1.0, BITS, "raise")

    def test_quarantine_policy_returns_record(self):
        outcome = screen_point(-1, 1.0, BITS, "quarantine")
        assert isinstance(outcome, QuarantinedRecord)
        assert outcome.code == "negative-item"
        assert outcome.payload == (-1, 1.0)

    def test_clamp_repairs_out_of_domain(self):
        assert screen_point(999, 1.0, BITS, "clamp") == (255, 1.0)
        assert screen_point(-3, 1.0, BITS, "clamp") == (0, 1.0)

    def test_clamp_cannot_repair_bad_weight(self):
        outcome = screen_point(3, float("nan"), BITS, "clamp")
        assert isinstance(outcome, QuarantinedRecord)
        assert outcome.code == "non-finite-weight"


class TestScreenInterval:
    def test_clean_passes_through(self):
        assert screen_interval(3, 9, 1.5, BITS, "raise") == (3, 9, 1.5)

    @pytest.mark.parametrize(
        "low, high, code",
        [
            (9, 3, "inverted-interval"),
            (0, 256, "interval-out-of-domain"),
            (-1, 5, "interval-out-of-domain"),
            (300, 400, "interval-out-of-domain"),
            (1.5, 3, "non-integral-bound"),
        ],
    )
    def test_raise_policy(self, low, high, code):
        with pytest.raises(InvalidUpdateError) as info:
            screen_interval(low, high, 1.0, BITS, "raise")
        assert info.value.code == code

    def test_clamp_swaps_inverted(self):
        assert screen_interval(9, 3, 1.0, BITS, "clamp") == (3, 9, 1.0)

    def test_clamp_clips_partial_overlap(self):
        assert screen_interval(200, 400, 1.0, BITS, "clamp") == (200, 255, 1.0)

    def test_clamp_quarantines_fully_outside(self):
        # Clipping an interval wholly outside the domain would invent
        # points that never arrived.
        outcome = screen_interval(300, 400, 1.0, BITS, "clamp")
        assert isinstance(outcome, QuarantinedRecord)
        assert outcome.code == "interval-out-of-domain"


class TestBatchScreening:
    def test_clean_int_batch_fast_path(self):
        items = np.arange(100, dtype=np.int64)
        screened = screen_points(items, None, BITS, "raise")
        assert screened.items.dtype == np.uint64
        assert screened.rejected == []
        assert np.array_equal(screened.items, items.astype(np.uint64))

    def test_dirty_batch_attributes_reasons(self):
        screened = screen_points(
            [5, -1, 999, 9], None, BITS, "quarantine"
        )
        assert [int(i) for i in screened.items] == [5, 9]
        assert [r.code for r in screened.rejected] == [
            "negative-item", "item-out-of-domain",
        ]

    def test_float_batch_with_integral_values_kept(self):
        screened = screen_points(
            np.array([1.0, 2.0, 3.0]), None, BITS, "raise"
        )
        assert [int(i) for i in screened.items] == [1, 2, 3]

    def test_nan_weight_dirties_batch(self):
        weights = np.array([1.0, float("nan"), 1.0])
        screened = screen_points([1, 2, 3], weights, BITS, "quarantine")
        assert [int(i) for i in screened.items] == [1, 3]
        assert screened.rejected[0].code == "non-finite-weight"

    def test_weight_shape_mismatch(self):
        with pytest.raises(InvalidUpdateError, match="3 weights for 2"):
            screen_points([1, 2], [1.0, 2.0, 3.0], BITS, "quarantine")

    def test_bad_shape(self):
        with pytest.raises(InvalidUpdateError, match="1-D"):
            screen_points([[1, 2], [3, 4]], None, BITS, "raise")
        with pytest.raises(InvalidUpdateError, match=r"\(n, 2\)"):
            screen_intervals([1, 2, 3], None, BITS, "raise")

    def test_empty_batches(self):
        assert screen_points([], None, BITS, "raise").items.size == 0
        assert screen_intervals([], None, BITS, "raise").items.shape == (0, 2)

    def test_clean_interval_batch_fast_path(self):
        intervals = np.array([[0, 10], [20, 255]], dtype=np.int64)
        screened = screen_intervals(intervals, None, BITS, "raise")
        assert screened.rejected == []
        assert screened.items.shape == (2, 2)

    def test_dirty_interval_batch(self):
        screened = screen_intervals(
            [[3, 9], [12, 2], [0, 999]], None, BITS, "quarantine"
        )
        assert screened.items.tolist() == [[3, 9]]
        assert [r.code for r in screened.rejected] == [
            "inverted-interval", "interval-out-of-domain",
        ]

    def test_clamp_batch_repairs(self):
        screened = screen_intervals(
            [[12, 2], [200, 400]], None, BITS, "clamp"
        )
        assert screened.items.tolist() == [[2, 12], [200, 255]]
        assert screened.rejected == []


class TestDeadLetterBuffer:
    def _record(self, code="negative-item"):
        return QuarantinedRecord("r", "point", (-1, 1.0), code, "bad")

    def test_capacity_bounds_records_not_counts(self):
        buffer = DeadLetterBuffer(capacity=3)
        for _ in range(10):
            buffer.add(self._record())
        assert len(buffer) == 3
        assert buffer.total == 10
        assert buffer.counts["negative-item"] == 10

    def test_clear_keeps_counters(self):
        buffer = DeadLetterBuffer(capacity=4)
        buffer.add(self._record())
        buffer.clear()
        assert len(buffer) == 0
        assert buffer.total == 1

    def test_invalid_capacity(self):
        with pytest.raises(ValueError, match="capacity"):
            DeadLetterBuffer(capacity=0)


class TestProcessorPolicies:
    def _processor(self, policy):
        processor = StreamProcessor(
            medians=2, averages=8, seed=3, policy=policy
        )
        processor.register_relation("r", BITS)
        return processor

    def test_policies_tuple_is_exhaustive(self):
        assert POLICIES == ("raise", "quarantine", "clamp")

    def test_unknown_policy_rejected(self):
        with pytest.raises(ValueError, match="policy"):
            StreamProcessor(policy="ignore")

    def test_unknown_relation_typed(self):
        processor = self._processor("raise")
        with pytest.raises(UnknownRelationError):
            processor.process_point("ghost", 1)
        # Still a ValueError for pre-taxonomy callers.
        with pytest.raises(ValueError):
            processor.process_point("ghost", 1)

    def test_raise_rejects_before_counters_move(self):
        processor = self._processor("raise")
        with pytest.raises(InvalidUpdateError):
            processor.process_interval("r", 9, 3)
        assert not processor.sketch_of("r").values().any()

    def test_quarantine_absorbs_everything(self):
        processor = self._processor("quarantine")
        processor.process_point("r", -1)
        processor.process_interval("r", 0, 1 << 30)
        processor.process_points("r", [1, -1, 2])
        processor.process_intervals("r", [[5, 1]])
        stats = processor.stats()
        assert stats["quarantined_total"] == 4
        assert stats["quarantine_counts"]["negative-item"] == 2

    def test_clamp_policy_applies_repaired_records(self):
        clamped = self._processor("clamp")
        direct = self._processor("clamp")
        clamped.process_interval("r", 12, 2)
        direct.process_interval("r", 2, 12)
        assert np.array_equal(
            clamped.sketch_of("r").values(), direct.sketch_of("r").values()
        )
