"""Tests for the spatial size-of-join application (Application 1)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.apps.spatialjoin import (
    endpoint_join_truth,
    estimate_spatial_join,
    exact_spatial_join,
    sketch_segment_dataset,
)
from repro.generators import EH3, SeedSource
from repro.rangesum.dmap import DMAP
from repro.sketch.ams import SketchScheme
from repro.sketch.atomic import DMAPChannel, GeneratorChannel
from repro.workloads.spatial import SegmentDataset


def make_dataset(name, segments, bits=10) -> SegmentDataset:
    return SegmentDataset(name, bits, np.array(segments, dtype=np.int64))


@pytest.fixture
def small_pair():
    rng = np.random.default_rng(11)
    def random_segments(count):
        lows = rng.integers(0, 900, size=count)
        lengths = rng.integers(0, 100, size=count)
        return [(int(a), int(min(a + l, 1023))) for a, l in zip(lows, lengths)]
    first = make_dataset("A", random_segments(40))
    second = make_dataset("B", random_segments(30))
    return first, second


class TestExactReduction:
    def test_endpoint_truth_close_to_exact(self, small_pair):
        """(J1 + J2) / 2 equals the intersection count up to end-point
        coincidences (each shared end-point contributes +/- 1/2)."""
        first, second = small_pair
        truth = exact_spatial_join(first, second)
        reduced = endpoint_join_truth(first, second)
        assert abs(reduced - truth) <= 0.05 * max(truth, 1)

    def test_endpoint_truth_exact_on_disjoint_endpoints(self):
        first = make_dataset("A", [(0, 10), (20, 30)])
        second = make_dataset("B", [(5, 25), (40, 50)])
        assert exact_spatial_join(first, second) == 2
        assert endpoint_join_truth(first, second) == 2.0

    def test_nested_segments(self):
        first = make_dataset("A", [(0, 100)])
        second = make_dataset("B", [(10, 20)])
        assert exact_spatial_join(first, second) == 1
        assert endpoint_join_truth(first, second) == 1.0


class TestSketchEstimation:
    def _eh3_scheme(self, source, medians=5, averages=300):
        return SketchScheme.from_factory(
            lambda src: GeneratorChannel(EH3.from_source(10, src)),
            medians,
            averages,
            source,
        )

    def _dmap_scheme(self, source, medians=5, averages=300):
        return SketchScheme.from_factory(
            lambda src: DMAPChannel(DMAP.from_source(10, src)),
            medians,
            averages,
            source,
        )

    def test_eh3_estimate_converges(self, small_pair, source: SeedSource):
        first, second = small_pair
        scheme = self._eh3_scheme(source)
        estimate = estimate_spatial_join(
            sketch_segment_dataset(scheme, first),
            sketch_segment_dataset(scheme, second),
        )
        truth = endpoint_join_truth(first, second)
        assert abs(estimate - truth) <= 0.5 * max(truth, 10)

    def test_dmap_estimate_converges(self, small_pair, source: SeedSource):
        first, second = small_pair
        scheme = self._dmap_scheme(source)
        estimate = estimate_spatial_join(
            sketch_segment_dataset(scheme, first),
            sketch_segment_dataset(scheme, second),
        )
        truth = endpoint_join_truth(first, second)
        assert abs(estimate - truth) <= 1.5 * max(truth, 10)

    def test_sketch_counts(self, small_pair, source: SeedSource):
        first, __ = small_pair
        scheme = self._eh3_scheme(source, medians=2, averages=2)
        sketches = sketch_segment_dataset(scheme, first)
        assert sketches.count == len(first)
        # Endpoint sketch saw 2 updates per segment: its counter parity
        # matches 2 * count.
        assert sketches.endpoints.values().shape == (2, 2)
