"""The declarative SLO engine and its CI gate.

Unit tests pin the spec validation, the error-budget arithmetic for
both comparison directions, the missing-indicator semantics (required
fails, optional skips), and indicator resolution from histogram
quantiles, bench documents, and counter-only snapshots.  CLI tests
prove both gate directions: the pass path exits zero, an injected
always-burning objective makes ``slo --strict`` exit non-zero.
"""

from __future__ import annotations

import json
import math

import pytest

from repro import obs
from repro.obs.metrics import MetricsRegistry
from repro.obs.slo import (
    SLOReport,
    SLOResult,
    SLOSpec,
    default_slos,
    evaluate_slos,
)

SEED = 20060627


@pytest.fixture
def fresh_obs():
    previous_registry = obs.set_registry(MetricsRegistry())
    previous_enabled = obs.set_enabled(True)
    previous_collector = obs.set_trace_collector(None)
    try:
        yield obs.registry()
    finally:
        obs.set_registry(previous_registry)
        obs.set_enabled(previous_enabled)
        obs.set_trace_collector(previous_collector)


def _spec(**overrides) -> SLOSpec:
    base = dict(
        name="t.objective",
        kind="latency",
        indicator="t.seconds",
        objective=1.0,
    )
    base.update(overrides)
    return SLOSpec(**base)


def _gauge_snapshot(name: str, value: float) -> dict:
    return {name: {"type": "gauge", "value": value}}


class TestSpecValidation:
    def test_bad_comparison_rejected(self) -> None:
        with pytest.raises(ValueError, match="comparison"):
            _spec(comparison="<")

    def test_bad_source_rejected(self) -> None:
        with pytest.raises(ValueError, match="source"):
            _spec(source="file")

    def test_bad_quantile_rejected(self) -> None:
        with pytest.raises(ValueError, match="quantile"):
            _spec(quantile=1.5)

    def test_default_catalogue_is_valid(self) -> None:
        specs = default_slos()
        names = [spec.name for spec in specs]
        assert len(names) == len(set(names))
        assert "latency.point.p50" in names
        assert "latency.point.p99" in names
        assert "latency.range_sum.p99" in names
        assert "latency.f2.p99" in names
        assert "calibration.coverage" in names
        assert "cluster.availability" in names
        assert "cluster.recovery" in names


class TestBudgetArithmetic:
    def test_upper_bound_burn_ratio(self, fresh_obs) -> None:
        # observed/objective: 0.5s against a 1s ceiling burns half.
        spec = _spec(objective=1.0)
        report = evaluate_slos(
            [spec], snapshot=_gauge_snapshot("t.seconds", 0.5)
        )
        (result,) = report.results
        assert result.ok
        assert result.budget_burned == pytest.approx(0.5)

    def test_upper_bound_burned_over_one(self, fresh_obs) -> None:
        spec = _spec(objective=1.0)
        report = evaluate_slos(
            [spec], snapshot=_gauge_snapshot("t.seconds", 2.0)
        )
        (result,) = report.results
        assert not result.ok
        assert result.budget_burned == pytest.approx(2.0)
        assert report.burned == (result,)
        assert not report.ok

    def test_lower_bound_shortfall_budget(self, fresh_obs) -> None:
        # 99% availability against a 95% floor: the allowed shortfall
        # is 5 points, 1 point is used -> 20% of the budget.
        spec = _spec(
            name="t.availability",
            kind="availability",
            indicator="t.availability",
            objective=0.95,
            comparison=">=",
        )
        report = evaluate_slos(
            [spec], snapshot=_gauge_snapshot("t.availability", 0.99)
        )
        (result,) = report.results
        assert result.ok
        assert result.budget_burned == pytest.approx(0.2)

    def test_lower_bound_violation_burns(self, fresh_obs) -> None:
        spec = _spec(
            objective=0.90, comparison=">=", indicator="t.coverage"
        )
        report = evaluate_slos(
            [spec], snapshot=_gauge_snapshot("t.coverage", 0.80)
        )
        (result,) = report.results
        assert not result.ok
        assert result.budget_burned == pytest.approx(2.0)

    def test_boundary_is_within_budget(self, fresh_obs) -> None:
        report = evaluate_slos(
            [_spec(objective=1.0)],
            snapshot=_gauge_snapshot("t.seconds", 1.0),
        )
        assert report.results[0].ok
        assert report.results[0].budget_burned == pytest.approx(1.0)


class TestMissingIndicators:
    def test_required_missing_fails(self, fresh_obs) -> None:
        report = evaluate_slos([_spec(required=True)], snapshot={})
        (result,) = report.results
        assert not result.ok
        assert not result.skipped
        assert result.budget_burned == math.inf
        assert "required" in result.reason
        assert not report.ok

    def test_optional_missing_skips(self, fresh_obs) -> None:
        report = evaluate_slos([_spec(required=False)], snapshot={})
        (result,) = report.results
        assert result.skipped
        assert result.ok
        assert report.ok  # skips never burn the gate

    def test_optional_bench_spec_binds_when_present(self, fresh_obs) -> None:
        spec = _spec(
            name="kernel.speedup",
            kind="throughput",
            indicator="bulk.workloads.eh3_interval_batch.speedup",
            objective=1.0,
            comparison=">=",
            source="bench",
            required=False,
        )
        bench = {
            "bulk": {
                "workloads": {"eh3_interval_batch": {"speedup": 10.4}}
            }
        }
        report = evaluate_slos([spec], snapshot={}, bench=bench)
        (result,) = report.results
        assert result.ok and not result.skipped
        assert result.observed == pytest.approx(10.4)

    def test_bench_bool_rejected_as_value(self, fresh_obs) -> None:
        spec = _spec(
            indicator="durability.passed", source="bench", required=False
        )
        report = evaluate_slos(
            [spec], snapshot={}, bench={"durability": {"passed": True}}
        )
        assert report.results[0].skipped


class TestIndicatorResolution:
    def test_histogram_indicator_reads_quantile(self, fresh_obs) -> None:
        snapshot = {
            "t.seconds": {
                "type": "histogram",
                "edges": [0.1, 1.0],
                "buckets": [10, 0, 0],
                "sum": 0.5,
                "count": 10,
            }
        }
        spec = _spec(objective=0.2, quantile=0.99)
        report = evaluate_slos([spec], snapshot=snapshot)
        (result,) = report.results
        assert result.ok
        assert result.observed == pytest.approx(0.099)

    def test_empty_histogram_counts_as_missing(self, fresh_obs) -> None:
        snapshot = {
            "t.seconds": {
                "type": "histogram",
                "edges": [0.1, 1.0],
                "buckets": [0, 0, 0],
                "sum": 0.0,
                "count": 0,
            }
        }
        report = evaluate_slos(
            [_spec(required=False)], snapshot=snapshot
        )
        assert report.results[0].skipped

    def test_calibration_falls_back_to_counters(self, fresh_obs) -> None:
        # The coverage gauge is absent but the hit/miss counters survive
        # (a merged snapshot): the calibration spec still resolves.
        snapshot = {
            "query.calibration.ci_hits_total": {
                "type": "counter",
                "value": 9.0,
            },
            "query.calibration.ci_misses_total": {
                "type": "counter",
                "value": 1.0,
            },
        }
        spec = _spec(
            name="calibration.coverage",
            kind="calibration",
            indicator="query.calibration.coverage",
            objective=0.85,
            comparison=">=",
        )
        report = evaluate_slos([spec], snapshot=snapshot)
        (result,) = report.results
        assert result.ok
        assert result.observed == pytest.approx(0.9)

    def test_evaluation_bumps_own_instruments(self, fresh_obs) -> None:
        evaluate_slos([_spec(required=False)], snapshot={})
        snapshot = obs.snapshot()
        assert snapshot["slo.evaluations_total"]["value"] == 1.0
        assert snapshot["slo.results_total"]["value"] == 1.0
        assert snapshot["slo.burned_total"]["value"] == 0.0


class TestReportRendering:
    def _report(self) -> SLOReport:
        passing = SLOResult(
            spec=_spec(name="a.pass"), observed=0.5, ok=True,
            budget_burned=0.5,
        )
        burned = SLOResult(
            spec=_spec(name="b.burn"), observed=3.0, ok=False,
            budget_burned=3.0,
        )
        skipped = SLOResult(
            spec=_spec(name="c.skip", required=False),
            observed=None, ok=True, skipped=True, reason="indicator absent",
        )
        return SLOReport(results=(passing, burned, skipped))

    def test_to_text_lines(self) -> None:
        text = self._report().to_text()
        assert "PASS  a.pass" in text
        assert "BURN  b.burn" in text
        assert "SKIP  c.skip" in text
        assert "2/3 objectives within budget" in text

    def test_to_dict_round_trips_through_json(self) -> None:
        document = json.loads(json.dumps(self._report().to_dict()))
        assert document["ok"] is False
        assert [r["name"] for r in document["results"]] == [
            "a.pass", "b.burn", "c.skip",
        ]
        assert document["results"][1]["budget_burned"] == 3.0
        assert document["results"][2]["skipped"] is True


class TestSLOCLI:
    def _write_bench(self, directory) -> None:
        (directory / "BENCH_durability.json").write_text(
            json.dumps(
                {
                    "cluster": {
                        "availability": {"availability": 1.0},
                        "recovery": {"seconds": 0.5},
                    }
                }
            )
        )
        (directory / "BENCH_bulk.json").write_text(
            json.dumps(
                {
                    "workloads": {
                        "eh3_interval_batch": {"speedup": 10.0}
                    }
                }
            )
        )

    def test_strict_pass_path(self, fresh_obs, tmp_path, capsys) -> None:
        from repro.cli import main

        self._write_bench(tmp_path)
        code = main(
            ["slo", "--strict", "--bench-dir", str(tmp_path)]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "PASS  latency.point.p50" in out
        assert "PASS  calibration.coverage" in out
        assert "PASS  cluster.availability" in out
        assert "BURN" not in out

    def test_strict_fail_path_burns_gate(
        self, fresh_obs, tmp_path, capsys, monkeypatch
    ) -> None:
        # Inject a regression: an objective no run can meet.  The gate
        # must report the burn and exit non-zero under --strict.
        import repro.obs.slo as slo_module

        impossible = SLOSpec(
            name="latency.impossible.p50",
            kind="latency",
            indicator="query.execute.point.seconds",
            objective=0.0,
            quantile=0.5,
        )
        monkeypatch.setattr(
            slo_module, "default_slos", lambda: (impossible,)
        )
        from repro.cli import main

        self._write_bench(tmp_path)
        code = main(["slo", "--strict", "--bench-dir", str(tmp_path)])
        captured = capsys.readouterr()
        assert code == 1
        assert "BURN  latency.impossible.p50" in captured.out
        assert "slo gate FAILED" in captured.err

    def test_non_strict_reports_without_failing(
        self, fresh_obs, tmp_path, capsys, monkeypatch
    ) -> None:
        import repro.obs.slo as slo_module

        impossible = SLOSpec(
            name="latency.impossible.p50",
            kind="latency",
            indicator="query.execute.point.seconds",
            objective=0.0,
            quantile=0.5,
        )
        monkeypatch.setattr(
            slo_module, "default_slos", lambda: (impossible,)
        )
        from repro.cli import main

        self._write_bench(tmp_path)
        assert main(["slo", "--bench-dir", str(tmp_path)]) == 0
        assert "BURN" in capsys.readouterr().out

    def test_output_dir_merges_slo_report(
        self, fresh_obs, tmp_path, capsys
    ) -> None:
        from repro.cli import main

        self._write_bench(tmp_path)
        out_dir = tmp_path / "out"
        out_dir.mkdir()
        code = main(
            [
                "slo",
                "--bench-dir",
                str(tmp_path),
                "--output-dir",
                str(out_dir),
            ]
        )
        assert code == 0
        document = json.loads(
            (out_dir / "BENCH_durability.json").read_text()
        )
        assert document["slo"]["ok"] is True
        names = [r["name"] for r in document["slo"]["results"]]
        assert "calibration.coverage" in names

    def test_trace_flag_writes_stitched_trace(
        self, fresh_obs, tmp_path, capsys
    ) -> None:
        from repro.cli import main

        self._write_bench(tmp_path)
        trace = tmp_path / "trace.jsonl"
        code = main(
            [
                "slo",
                "--bench-dir",
                str(tmp_path),
                "--trace",
                str(trace),
            ]
        )
        assert code == 0
        events = [
            json.loads(line) for line in trace.read_text().splitlines()
        ]
        assert events
        names = {event["name"] for event in events}
        # The stitched trace holds coordinator AND worker spans.
        assert "cluster.command" in names
        assert "cluster.worker.command" in names
        assert len({event["trace_id"] for event in events}) == 1
