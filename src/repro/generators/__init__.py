"""The +/-1 generating schemes of paper Section 3.

==============  ============  ==========================  =================
Scheme          Independence  Seed size (bits)            Fast range-sum?
==============  ============  ==========================  =================
``BCH3``        3-wise        n + 1                       yes, O(1) amortized
``EH3``         3-wise        n + 1                       yes, O(log range)
``BCH5``        5-wise        2n + 1                      no (Theorem 3)
``RM7``         7-wise        1 + n + n(n-1)/2            yes but impractical
``Massdal2/4``  2/4-wise      2n / 4n                     no (Theorem 4)
``Toeplitz``    2-wise        n + 2m - 1                  yes (collapses to BCH3)
==============  ============  ==========================  =================
"""

from repro.generators.base import Generator
from repro.generators.bch import BCH
from repro.generators.bch3 import BCH3
from repro.generators.bch5 import BCH5
from repro.generators.eh3 import EH3
from repro.generators.polyprime import PolynomialsOverPrimes, massdal2, massdal4
from repro.generators.rm7 import RM7
from repro.generators.seeds import SeedSource, family_grid, make_family
from repro.generators.sequential import sequential_bits, sequential_values
from repro.generators.toeplitz import Toeplitz, ToeplitzHash

__all__ = [
    "Generator",
    "BCH",
    "BCH3",
    "BCH5",
    "EH3",
    "RM7",
    "PolynomialsOverPrimes",
    "massdal2",
    "massdal4",
    "SeedSource",
    "sequential_bits",
    "sequential_values",
    "family_grid",
    "make_family",
    "Toeplitz",
    "ToeplitzHash",
]
