"""Random seed material and family construction for generating schemes.

Every scheme in Section 3 of the paper draws its seed uniformly from a space
of the form ``{0, ..., 2^m - 1}``; the paper notes such seeds are obtained by
concatenating independent uniform bits.  :class:`SeedSource` provides exactly
that, on top of numpy's PCG64, and :func:`make_family` builds the
``medians x averages`` grid of independently-seeded generators an AGMS
estimator needs.
"""

from __future__ import annotations

from typing import Callable, Sequence, TypeVar

import numpy as np

from repro.generators.base import Generator

__all__ = ["SeedSource", "make_family", "family_grid", "seeds_array"]

G = TypeVar("G", bound=Generator)


class SeedSource:
    """Uniform random bit strings, packaged as Python ints.

    A thin, seedable wrapper over ``numpy.random.Generator`` that produces
    the ``m``-bit uniform integers every scheme's seed is assembled from.
    """

    def __init__(self, seed: int | np.random.Generator | None = None) -> None:
        if isinstance(seed, np.random.Generator):
            self._rng = seed
        else:
            self._rng = np.random.default_rng(seed)

    @property
    def rng(self) -> np.random.Generator:
        """The underlying numpy generator (shared, stateful)."""
        return self._rng

    def bits(self, nbits: int) -> int:
        """A uniform integer in ``[0, 2^nbits)`` built from random words."""
        if nbits < 0:
            raise ValueError(f"nbits must be non-negative, got {nbits}")
        value = 0
        produced = 0
        while produced < nbits:
            take = min(32, nbits - produced)
            word = int(self._rng.integers(0, 1 << take))
            value |= word << produced
            produced += take
        return value

    def bit(self) -> int:
        """A single uniform bit."""
        return int(self._rng.integers(0, 2))

    def below(self, bound: int) -> int:
        """A uniform integer in ``[0, bound)`` (rejection-free via numpy)."""
        if bound <= 0:
            raise ValueError(f"bound must be positive, got {bound}")
        return int(self._rng.integers(0, bound))

    def spawn(self) -> "SeedSource":
        """An independent child source (for parallel families)."""
        return SeedSource(self._rng.spawn(1)[0])


def make_family(
    factory: Callable[[SeedSource], G],
    count: int,
    source: SeedSource,
) -> list[G]:
    """Build ``count`` independently-seeded generators.

    ``factory`` receives the shared :class:`SeedSource` and returns a fresh
    generator; drawing all seeds from one source keeps experiments
    reproducible from a single master seed.
    """
    if count <= 0:
        raise ValueError(f"family size must be positive, got {count}")
    return [factory(source) for _ in range(count)]


def family_grid(
    factory: Callable[[SeedSource], G],
    medians: int,
    averages: int,
    source: SeedSource,
) -> list[list[G]]:
    """A ``medians x averages`` grid of independent generators.

    Row ``m`` holds the generators whose atomic estimates are averaged; the
    median is then taken across rows (paper Section 2.1).
    """
    if medians <= 0 or averages <= 0:
        raise ValueError("medians and averages must both be positive")
    return [
        make_family(factory, averages, source) for _ in range(medians)
    ]


def seeds_array(source: SeedSource, count: int, nbits: int) -> Sequence[int]:
    """``count`` independent ``nbits``-bit seeds (benchmark harness input)."""
    return [source.bits(nbits) for _ in range(count)]
