"""The 7-wise independent Reed-Muller scheme, RM7 (paper Section 3.2).

``f(S, i) = S . [1, i, i^(2)]`` where ``i^(2)`` is the vector of all
pairwise AND products of index bits (Eq. 8).  The seed therefore has
``1 + n + n(n-1)/2`` bits -- by far the largest of the schemes in Table 1 --
and evaluation costs O(n) word operations, which is why the paper measures
RM7 at roughly 300x the cost of BCH5.

RM7 matters because its XOR-of-ANDs expansion is *quadratic* in the index
bits, which makes it the only 4-wise-or-better scheme with a polynomial-time
range-summation algorithm (the Ehrenfeucht-Karpinski 2XOR-AND counting of
Section 4.3) -- practical or not.

Seed layout: ``s0`` (constant bit), ``s1`` (n linear bits), and ``q_rows``,
where ``q_rows[u]`` is a bitmask over positions ``v > u`` holding the
coefficient of the quadratic term ``i_u AND i_v``.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.core.bits import parity, parity_array
from repro.generators.base import Generator, check_domain
from repro.generators.seeds import SeedSource

__all__ = ["RM7"]


class RM7(Generator):
    """RM7 generator: ``xi_i = (-1)^(s0 XOR S1 . i XOR S2 . i^(2))``."""

    independence = 7

    def __init__(
        self,
        domain_bits: int,
        s0: int,
        s1: int,
        q_rows: Sequence[int],
    ) -> None:
        self.domain_bits = check_domain(domain_bits)
        if s0 not in (0, 1):
            raise ValueError(f"s0 must be a single bit, got {s0}")
        if not 0 <= s1 < (1 << domain_bits):
            raise ValueError(f"S1 must fit in {domain_bits} bits, got {s1}")
        rows = tuple(q_rows)
        if len(rows) != domain_bits:
            raise ValueError(
                f"expected {domain_bits} quadratic rows, got {len(rows)}"
            )
        for u, row in enumerate(rows):
            if row < 0 or row >= (1 << domain_bits):
                raise ValueError(f"row {u} does not fit in {domain_bits} bits")
            if row & ((1 << (u + 1)) - 1):
                raise ValueError(
                    f"row {u} must only set positions above {u} "
                    f"(strictly-upper-triangular layout)"
                )
        self.s0 = s0
        self.s1 = s1
        self.q_rows = rows

    @classmethod
    def from_source(cls, domain_bits: int, source: SeedSource) -> "RM7":
        """Draw a uniform ``1 + n + n(n-1)/2``-bit seed from ``source``."""
        rows = []
        for u in range(domain_bits):
            width = domain_bits - u - 1
            rows.append(source.bits(width) << (u + 1) if width > 0 else 0)
        return cls(domain_bits, source.bit(), source.bits(domain_bits), rows)

    @property
    def seed_bits(self) -> int:
        """Seed size: ``1 + n + n(n-1)/2`` bits (Table 1)."""
        n = self.domain_bits
        return 1 + n + n * (n - 1) // 2

    def quadratic_bit(self, i: int) -> int:
        """The ``S2 . i^(2)`` part: XOR of selected pairwise AND products."""
        acc = 0
        bits = i
        u = 0
        while bits:
            if bits & 1:
                acc ^= parity(self.q_rows[u] & i)
            bits >>= 1
            u += 1
        return acc

    def bit(self, i: int) -> int:
        """``f(S, i) = s0 XOR parity(S1 & i) XOR quadratic(i)``."""
        self._check_index(i)
        return self.s0 ^ parity(self.s1 & i) ^ self.quadratic_bit(i)

    def bits(self, indices: np.ndarray) -> np.ndarray:
        indices = self._check_indices(indices)
        out = parity_array(indices & np.uint64(self.s1))
        for u, row in enumerate(self.q_rows):
            if row == 0:
                continue
            selected = ((indices >> np.uint64(u)) & np.uint64(1)).astype(np.uint8)
            out ^= selected & parity_array(indices & np.uint64(row))
        if self.s0:
            out ^= np.uint8(1)
        return out

    def quadratic_coefficient(self, u: int, v: int) -> int:
        """The seed coefficient of the term ``i_u AND i_v`` (u != v)."""
        if u == v:
            raise ValueError("quadratic terms pair two distinct bits")
        lo, hi = min(u, v), max(u, v)
        if not 0 <= lo < self.domain_bits or hi >= self.domain_bits:
            raise ValueError(f"bit positions ({u}, {v}) out of range")
        return (self.q_rows[lo] >> hi) & 1
