"""The general BCH scheme of arbitrary independence (paper Eq. 3).

Alon-Babai-Itai: with a seed of ``kn + 1`` uniform bits the function

    ``f(S, i) = S . [1, i, i^3, i^5, ..., i^(2k-1)]``

(powers in GF(2^n); even powers are omitted because squaring is GF(2)-
linear, making them redundant) generates a ``(2k+1)``-wise independent
family -- the scheme with the smallest known seed for its independence.
``BCH3`` is the ``k = 1`` instance and ``BCH5`` the ``k = 2`` instance;
this class provides every higher level, which the paper needs only to
observe that evaluating ``i^(2k-1)`` over extension fields is what makes
high-independence BCH slow on commodity hardware (Section 3.1).

Like BCH5, none of the ``k >= 2`` levels is practically fast
range-summable -- though each individual term ``i^(2^a + 2^b)`` is a
quadratic (Gold-type) function, the higher odd powers (``i^7 = i^4 i^2 i``
onward) have cubic-and-higher ANF, so the Ehrenfeucht-Karpinski escape of
field-mode BCH5 stops at ``k = 2``.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.core.bits import parity, parity_array
from repro.core.gf2 import field
from repro.generators.base import Generator, check_domain
from repro.generators.seeds import SeedSource

__all__ = ["BCH"]


class BCH(Generator):
    """General BCH generator: ``(2k+1)``-wise independent.

    ``seeds`` holds the ``k`` n-bit vector components, in order of the
    odd powers they multiply: ``seeds[j]`` pairs with ``i^(2j+1)``.
    """

    def __init__(
        self,
        domain_bits: int,
        s0: int,
        seeds: Sequence[int],
    ) -> None:
        self.domain_bits = check_domain(domain_bits)
        if s0 not in (0, 1):
            raise ValueError(f"s0 must be a single bit, got {s0}")
        seeds = tuple(int(s) for s in seeds)
        if not seeds:
            raise ValueError("at least one vector seed component is required")
        for position, seed in enumerate(seeds):
            if not 0 <= seed < (1 << domain_bits):
                raise ValueError(
                    f"seed component {position} must fit in {domain_bits} bits"
                )
        self.s0 = s0
        self.seeds = seeds
        self.level = len(seeds)
        self.independence = 2 * self.level + 1
        self._field = field(domain_bits)
        self._power_tables: list[np.ndarray] | None = None

    @classmethod
    def from_source(
        cls, domain_bits: int, k: int, source: SeedSource
    ) -> "BCH":
        """Draw a uniform ``(kn + 1)``-bit seed for the level-k scheme."""
        if k < 1:
            raise ValueError(f"the BCH level k must be >= 1, got {k}")
        return cls(
            domain_bits,
            source.bit(),
            [source.bits(domain_bits) for _ in range(k)],
        )

    @property
    def seed_bits(self) -> int:
        """Seed size: ``kn + 1`` bits (the paper's Section 3.1)."""
        return self.level * self.domain_bits + 1

    def _powers(self, i: int) -> list[int]:
        """``i^(2j+1)`` for ``j = 0 .. k-1``, via repeated field squaring."""
        gf = self._field
        powers = [i]
        square = gf.square(i)
        current = i
        for _ in range(1, self.level):
            current = gf.mul(current, square)
            powers.append(current)
        return powers

    def bit(self, i: int) -> int:
        """``f(S, i) = s0 XOR (+) parity(seeds[j] & i^(2j+1))``."""
        self._check_index(i)
        acc = self.s0
        for seed, power in zip(self.seeds, self._powers(i)):
            acc ^= parity(seed & power)
        return acc

    def bits(self, indices: np.ndarray) -> np.ndarray:
        indices = self._check_indices(indices)
        if self.domain_bits <= 16:
            if self._power_tables is None:
                self._power_tables = [
                    np.fromiter(
                        (self._powers(i)[j] for i in range(self.domain_size)),
                        dtype=np.uint64,
                        count=self.domain_size,
                    )
                    for j in range(self.level)
                ]
            out = np.full(indices.shape, self.s0, dtype=np.uint8)
            positions = indices.astype(np.int64)
            for seed, table in zip(self.seeds, self._power_tables):
                out ^= parity_array(table[positions] & np.uint64(seed))
            return out
        out = np.fromiter(
            (self.bit(int(i)) for i in indices.ravel()),
            dtype=np.uint8,
            count=indices.size,
        ).reshape(indices.shape)
        return out
