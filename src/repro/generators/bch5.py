"""The 5-wise independent BCH scheme, BCH5 (paper Section 3.1).

``f(S, i) = S . [1, i, i^3]`` with a ``(2n+1)``-bit seed ``[s0, S1, S3]``.
With ``i^3`` computed in the extension field GF(2^n) the family is 5-wise
independent (Alon-Babai-Itai), hence in particular the 4-wise independence
AMS-sketches traditionally require.

The paper's implementation (footnote 2) computes ``i^3`` *arithmetically*
(ordinary integer cube, truncated to n bits) because extension-field
multiplication is slow on commodity processors; this keeps Table 1's speed
while being "good enough" empirically for moderate domains.  Both modes are
provided here: ``mode="gf"`` is the provably 5-wise variant used by the
correctness tests, ``mode="arithmetic"`` matches the paper's benchmarks.

BCH5 is NOT fast range-summable (Theorem 3): its XOR-of-ANDs expansion
contains degree-3 terms, making dyadic counting #P-hard in general.
"""

from __future__ import annotations

from functools import lru_cache

import numpy as np

from repro.core.bits import mask, parity, parity_array
from repro.core.gf2 import field
from repro.generators.base import Generator, check_domain
from repro.generators.seeds import SeedSource

__all__ = ["BCH5"]

_MODES = ("gf", "arithmetic")


@lru_cache(maxsize=8)
def _gf_cube_table(domain_bits: int) -> np.ndarray:
    """Seed-independent lookup table of ``i^3`` in GF(2^domain_bits).

    Shared across every BCH5 instance of the same field, so experiment
    grids with hundreds of generators pay the table cost once.
    """
    gf = field(domain_bits)
    return np.fromiter(
        (gf.cube(i) for i in range(1 << domain_bits)),
        dtype=np.uint64,
        count=1 << domain_bits,
    )


class BCH5(Generator):
    """BCH5 generator: ``xi_i = (-1)^(s0 XOR S1 . i XOR S3 . i^3)``."""

    independence = 5

    def __init__(
        self,
        domain_bits: int,
        s0: int,
        s1: int,
        s3: int,
        mode: str = "gf",
    ) -> None:
        self.domain_bits = check_domain(domain_bits)
        if s0 not in (0, 1):
            raise ValueError(f"s0 must be a single bit, got {s0}")
        for name, value in (("S1", s1), ("S3", s3)):
            if not 0 <= value < (1 << domain_bits):
                raise ValueError(
                    f"{name} must fit in {domain_bits} bits, got {value}"
                )
        if mode not in _MODES:
            raise ValueError(f"mode must be one of {_MODES}, got {mode!r}")
        self.s0 = s0
        self.s1 = s1
        self.s3 = s3
        self.mode = mode
        self._field = field(domain_bits) if mode == "gf" else None
        self._mask = mask(domain_bits)
        self._cube_table: np.ndarray | None = None

    @classmethod
    def from_source(
        cls, domain_bits: int, source: SeedSource, mode: str = "gf"
    ) -> "BCH5":
        """Draw a uniform ``(2n+1)``-bit seed from ``source``."""
        return cls(
            domain_bits,
            source.bit(),
            source.bits(domain_bits),
            source.bits(domain_bits),
            mode=mode,
        )

    @property
    def seed_bits(self) -> int:
        """Seed size: ``2n + 1`` bits (Table 1)."""
        return 2 * self.domain_bits + 1

    def cube(self, i: int) -> int:
        """``i^3`` in the configured arithmetic."""
        if self._field is not None:
            return self._field.cube(i)
        return (i * i * i) & self._mask

    def bit(self, i: int) -> int:
        """``f(S, i) = s0 XOR parity(S1 & i) XOR parity(S3 & i^3)``."""
        self._check_index(i)
        return self.s0 ^ parity(self.s1 & i) ^ parity(self.s3 & self.cube(i))

    def cubes(self, indices: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`cube` over a ``uint64`` array."""
        if self.mode == "arithmetic":
            # uint64 products wrap mod 2^64; masking afterwards yields the
            # cube mod 2^n exactly because 2^n divides 2^64.
            return (indices * indices * indices) & np.uint64(self._mask)
        if self.domain_bits <= 16:
            # Small extension fields: one shared cube lookup table per
            # field keeps repeated vectorized calls O(1) per index.
            if self._cube_table is None:
                self._cube_table = _gf_cube_table(self.domain_bits)
            return self._cube_table[indices.astype(np.int64)]
        gf = self._field
        return np.fromiter(
            (gf.cube(int(i)) for i in indices.ravel()),
            dtype=np.uint64,
            count=indices.size,
        ).reshape(indices.shape)

    def bits(self, indices: np.ndarray) -> np.ndarray:
        indices = self._check_indices(indices)
        cubes = self.cubes(indices)
        out = parity_array(indices & np.uint64(self.s1))
        out ^= parity_array(cubes & np.uint64(self.s3))
        if self.s0:
            out ^= np.uint8(1)
        return out

    def range_sums(self, alphas, betas) -> np.ndarray:
        """Batched field-mode range-sums (seed-level work shared).

        BCH5 stays *not fast* range-summable (Theorem 3); this batch API
        amortizes the one O(n^2) quadratic-form construction across the
        whole batch instead of paying it per interval.
        """
        from repro.rangesum.batched import bch5_range_sums

        return bch5_range_sums(self, alphas, betas)
