"""The 3-wise independent BCH scheme, BCH3 (paper Section 3.1, Eq. 4).

``f(S, i) = S . [1, i]`` -- a GF(2) dot product between an ``(n+1)``-bit
seed and the index prefixed with a constant 1 bit.  Writing the seed as
``S = [s0, S1]`` this is ``f(S, i) = s0 XOR (S1 . i)``.

BCH3 has the smallest possible seed (``n + 1`` bits, near the Rao bound),
is 3-wise independent, and is fast range-summable in O(1) amortized time
(see :mod:`repro.rangesum.bch3_rangesum`).  Its weakness, quantified in
Section 5.3.2, is the large extra variance term when used in place of a
4-wise scheme for size-of-join estimation.
"""

from __future__ import annotations

import numpy as np

from repro.core.bits import mask, parity, parity_array
from repro.generators.base import Generator, check_domain
from repro.generators.seeds import SeedSource

__all__ = ["BCH3"]


class BCH3(Generator):
    """BCH3 generator: ``xi_i = (-1)^(s0 XOR S1 . i)``."""

    independence = 3

    def __init__(self, domain_bits: int, s0: int, s1: int) -> None:
        self.domain_bits = check_domain(domain_bits)
        if s0 not in (0, 1):
            raise ValueError(f"s0 must be a single bit, got {s0}")
        if not 0 <= s1 < (1 << domain_bits):
            raise ValueError(f"S1 must fit in {domain_bits} bits, got {s1}")
        self.s0 = s0
        self.s1 = s1

    @classmethod
    def from_source(cls, domain_bits: int, source: SeedSource) -> "BCH3":
        """Draw a uniform ``(n+1)``-bit seed from ``source``."""
        return cls(domain_bits, source.bit(), source.bits(domain_bits))

    @property
    def seed_bits(self) -> int:
        """Seed size: ``n + 1`` bits (Table 1)."""
        return self.domain_bits + 1

    def bit(self, i: int) -> int:
        """``f(S, i) = s0 XOR parity(S1 & i)``."""
        self._check_index(i)
        return self.s0 ^ parity(self.s1 & i)

    def bits(self, indices: np.ndarray) -> np.ndarray:
        indices = self._check_indices(indices)
        out = parity_array(indices & np.uint64(self.s1))
        if self.s0:
            out ^= np.uint8(1)
        return out

    def alive_level_array(self) -> np.ndarray:
        """Per-level dyadic survival mask, cached on the instance.

        Entry ``l`` is 1.0 when the low ``l`` seed bits vanish (the dyadic
        sum at level ``l`` is ``2^l * xi(low)``) and 0.0 otherwise -- the
        per-seed table behind the bulk/batched BCH3 range-sums.
        """
        cached = getattr(self, "_alive_level_array", None)
        if cached is None:
            levels = np.arange(self.domain_bits + 1, dtype=np.int64)
            cached = (levels <= self.trailing_zero_bits()).astype(np.float64)
            self._alive_level_array = cached
        return cached

    def trailing_zero_bits(self) -> int:
        """Trailing zeros of ``S1`` (``domain_bits`` for the zero seed)."""
        if self.s1 == 0:
            return self.domain_bits
        return (self.s1 & -self.s1).bit_length() - 1

    def restrict_low_bits(self, nbits: int) -> "BCH3":
        """The scheme induced on the low ``nbits`` of the index.

        Fixing the high index bits to zero leaves a BCH3 instance over the
        smaller domain -- the structural fact behind dyadic range-summation.
        """
        if not 1 <= nbits <= self.domain_bits:
            raise ValueError(f"nbits must be in [1, {self.domain_bits}]")
        return BCH3(nbits, self.s0, self.s1 & mask(nbits))

    def range_sum(self, alpha: int, beta: int) -> int:
        """Sum of ``xi_i`` for ``i`` in ``[alpha, beta]`` in O(1) time."""
        from repro.rangesum.bch3_rangesum import bch3_range_sum

        return bch3_range_sum(self, alpha, beta)

    def range_sums(self, alphas, betas) -> np.ndarray:
        """Batched :meth:`range_sum` over arrays of end-points."""
        from repro.rangesum.batched import bch3_range_sums

        return bch3_range_sums(self, alphas, betas)
