"""Common interface of the +/-1 generating schemes (paper Section 3).

Every scheme has the shape ``xi_i(S) = (-1)^f(S, i)`` (paper Eq. 1): a small
random seed ``S`` plus a cheap function of the index determine the value of
the i-th random variable.  Concrete schemes differ in their seed layout,
degree of independence, and whether they admit fast range-summation.

Design notes
------------
* ``bit(i)`` exposes the raw ``f(S, i)`` in {0, 1}; ``value(i)`` maps it to
  {+1, -1}.  Independence proofs and tests operate on bits, estimators on
  values, mirroring the paper's presentation.
* ``values(indices)`` is the vectorized bulk API the benchmark harness uses;
  it must agree with ``value`` element-wise (a property test enforces this).
* ``seed_bits`` reports the seed size in bits exactly as in Table 1's
  "Seed size" column.
* Generators are immutable; an estimator that needs many independent copies
  builds a family with :func:`repro.generators.seeds.make_family`.
"""

from __future__ import annotations

from abc import ABC, abstractmethod

import numpy as np

__all__ = ["Generator", "check_domain"]


def check_domain(domain_bits: int, *, maximum: int = 64) -> int:
    """Validate the ``n`` of a ``{0, ..., 2^n - 1}`` index domain."""
    if not 1 <= domain_bits <= maximum:
        raise ValueError(
            f"domain_bits must be in [1, {maximum}], got {domain_bits}"
        )
    return domain_bits


class Generator(ABC):
    """A family ``{xi_i}`` of +/-1 random variables with a fixed seed."""

    #: Number of bits of the index domain ``I = {0, ..., 2^n - 1}``.
    domain_bits: int

    #: Guaranteed degree of uniform k-wise independence (Definition 1).
    independence: int

    @property
    def domain_size(self) -> int:
        """Number of indices, ``2^domain_bits``."""
        return 1 << self.domain_bits

    @property
    @abstractmethod
    def seed_bits(self) -> int:
        """Seed size in bits (Table 1's accounting)."""

    @abstractmethod
    def bit(self, i: int) -> int:
        """The raw output bit ``f(S, i)`` in {0, 1}."""

    def value(self, i: int) -> int:
        """The +/-1 random variable ``xi_i = (-1)^f(S, i)``."""
        return 1 - 2 * self.bit(i)

    @abstractmethod
    def bits(self, indices: np.ndarray) -> np.ndarray:
        """Vectorized ``bit`` over a ``uint64`` array; returns ``uint8``."""

    def values(self, indices: np.ndarray) -> np.ndarray:
        """Vectorized ``value``; returns an ``int8`` array of +/-1."""
        return (1 - 2 * self.bits(indices).astype(np.int8)).astype(np.int8)

    def _check_index(self, i: int) -> int:
        if not 0 <= i < self.domain_size:
            raise ValueError(
                f"index {i} outside domain of size 2^{self.domain_bits}"
            )
        return i

    def _check_indices(self, indices: np.ndarray) -> np.ndarray:
        indices = np.asarray(indices, dtype=np.uint64)
        if indices.size and self.domain_bits < 64:
            top = int(indices.max())
            if top >= self.domain_size:
                raise ValueError(
                    f"index {top} outside domain of size 2^{self.domain_bits}"
                )
        return indices

    def total_sum(self) -> int:
        """Sum of all ``2^n`` variables (small domains; used in tests)."""
        indices = np.arange(self.domain_size, dtype=np.uint64)
        return int(self.values(indices).astype(np.int64).sum())

    def __repr__(self) -> str:
        return (
            f"{type(self).__name__}(domain_bits={self.domain_bits}, "
            f"independence={self.independence}, seed_bits={self.seed_bits})"
        )
