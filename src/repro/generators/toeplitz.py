"""The Toeplitz hash family (paper Section 4, reference [5]).

Bar-Yosseff, Kumar and Sivakumar observe that +/-1 variables derived from
Toeplitz-matrix hashing are 2-wise independent and fast range-summable.  A
Toeplitz matrix over GF(2) with ``m`` rows and ``n`` columns is determined
by its first row and first column (``n + m - 1`` random bits); row ``r`` is
the diagonal band shifted by ``r``.

The +/-1 variable is the parity of the ``m``-bit hash ``T i + c``:

``xi_i = (-1)^(parity(T i) XOR parity(c))``

Since parity of ``T i`` equals ``(XOR of rows of T) . i``, the one-bit
projection collapses to a BCH3-style dot product -- which is exactly why the
paper treats Toeplitz as one more member of the 2-wise fast range-summable
class rather than a distinct contender.  The class still exposes the full
multi-bit hash because the L1-difference literature uses it directly.
"""

from __future__ import annotations

import numpy as np

from repro.core.bits import mask, parity, parity_array
from repro.generators.base import Generator, check_domain
from repro.generators.seeds import SeedSource

__all__ = ["ToeplitzHash", "Toeplitz"]


class ToeplitzHash:
    """An ``m x n`` Toeplitz matrix hash over GF(2), plus an offset.

    ``diagonal_bits`` holds the ``n + m - 1`` defining bits: bit ``k``
    gives the matrix entry at positions with ``column - row + (m-1) == k``.
    """

    def __init__(self, n: int, m: int, diagonal_bits: int, offset: int) -> None:
        if n < 1 or m < 1:
            raise ValueError("matrix dimensions must be positive")
        if not 0 <= diagonal_bits < (1 << (n + m - 1)):
            raise ValueError("diagonal bits must fit in n + m - 1 bits")
        if not 0 <= offset < (1 << m):
            raise ValueError("offset must fit in m bits")
        self.n = n
        self.m = m
        self.diagonal_bits = diagonal_bits
        self.offset = offset

    @classmethod
    def from_source(cls, n: int, m: int, source: SeedSource) -> "ToeplitzHash":
        """Draw the ``n + m - 1`` diagonal bits and ``m`` offset bits."""
        return cls(n, m, source.bits(n + m - 1), source.bits(m))

    @property
    def seed_bits(self) -> int:
        """Seed size: ``n + 2m - 1`` bits."""
        return self.n + 2 * self.m - 1

    def row(self, r: int) -> int:
        """Row ``r`` of the matrix as an ``n``-bit mask."""
        if not 0 <= r < self.m:
            raise ValueError(f"row index {r} out of range")
        # Entry (r, c) is diagonal bit (c - r + m - 1); shifting the band
        # right by (m - 1 - r) aligns bit c of the row with column c.
        return (self.diagonal_bits >> (self.m - 1 - r)) & mask(self.n)

    def hash(self, i: int) -> int:
        """The ``m``-bit hash ``T i + c`` of an ``n``-bit input."""
        if not 0 <= i < (1 << self.n):
            raise ValueError(f"input {i} does not fit in {self.n} bits")
        out = 0
        for r in range(self.m):
            out |= parity(self.row(r) & i) << r
        return out ^ self.offset

    def parity_row(self) -> int:
        """XOR of all rows -- the single row the +/-1 projection sees."""
        acc = 0
        for r in range(self.m):
            acc ^= self.row(r)
        return acc


class Toeplitz(Generator):
    """+/-1 generator: parity of an ``m``-bit Toeplitz hash.

    The multi-bit Toeplitz hash is guaranteed 2-wise independent; the
    one-bit parity projection together with the uniform offset bit is
    exactly a uniformly-seeded BCH3 instance (the banded XOR of the rows
    is a full-rank linear image of the diagonal bits), so the +/-1 family
    is in fact 3-wise independent -- the paper's footnote-1 effect of the
    extra random constant bit.
    """

    independence = 3

    def __init__(self, domain_bits: int, hash_function: ToeplitzHash) -> None:
        self.domain_bits = check_domain(domain_bits)
        if hash_function.n != domain_bits:
            raise ValueError(
                f"hash input width {hash_function.n} != domain {domain_bits}"
            )
        self.hash_function = hash_function
        self._row = hash_function.parity_row()
        self._offset_parity = parity(hash_function.offset)

    @classmethod
    def from_source(
        cls, domain_bits: int, source: SeedSource, m: int = 16
    ) -> "Toeplitz":
        """Generator from a fresh random ``m``-row Toeplitz hash."""
        return cls(domain_bits, ToeplitzHash.from_source(domain_bits, m, source))

    @property
    def seed_bits(self) -> int:
        """Seed size of the underlying hash."""
        return self.hash_function.seed_bits

    def bit(self, i: int) -> int:
        """Parity of the full hash, computed via the collapsed row."""
        self._check_index(i)
        return parity(self._row & i) ^ self._offset_parity

    def bits(self, indices: np.ndarray) -> np.ndarray:
        indices = self._check_indices(indices)
        out = parity_array(indices & np.uint64(self._row))
        if self._offset_parity:
            out ^= np.uint8(1)
        return out

    def as_bch3(self):
        """The equivalent BCH3 instance (same bits for every index)."""
        from repro.generators.bch3 import BCH3

        return BCH3(self.domain_bits, self._offset_parity, self._row)

    def range_sum(self, alpha: int, beta: int) -> int:
        """Fast range-summation (reference [5]), via the BCH3 collapse."""
        from repro.rangesum.bch3_rangesum import bch3_range_sum

        return bch3_range_sum(self.as_bch3(), alpha, beta)
