"""The polynomials-over-primes scheme (paper Section 3.3, Theorem 1).

Karloff-Mansour construction: pick ``k`` coefficients uniformly from Z_p
(``p >= |domain|`` prime) and set ``X_j = a_0 + a_1 j + ... + a_{k-1}
j^{k-1} mod p``; the ``X_j`` are uniform k-wise independent over Z_p.  A
+/-1 variable is obtained by keeping one output bit (we use the LSB, as the
Massdal library the paper benchmarks does), which introduces a bias of
``1/p`` -- negligible for ``p = 2^31 - 1``.

The paper's Table 1 rows "Massdal2" (k = 2, 2-wise) and "Massdal4"
(k = 4, 4-wise) are instances of this class.  Seed size is ``k * ceil(log
p)`` bits -- about double the BCH seed at equal independence.  The scheme is
NOT fast range-summable for any dyadic interval of size >= 8 (Theorem 4).
"""

from __future__ import annotations

import numpy as np

from repro.core.primefield import MERSENNE_31, PrimeField, prime_field
from repro.generators.base import Generator, check_domain
from repro.generators.seeds import SeedSource

__all__ = ["PolynomialsOverPrimes", "massdal2", "massdal4"]


class PolynomialsOverPrimes(Generator):
    """k-wise (slightly biased) generator via polynomials over GF(p)."""

    def __init__(
        self,
        domain_bits: int,
        coefficients: tuple[int, ...],
        p: int = MERSENNE_31,
    ) -> None:
        self.domain_bits = check_domain(domain_bits)
        self._field: PrimeField = prime_field(p)
        if (1 << domain_bits) > p:
            raise ValueError(
                f"the prime p={p} must be at least the domain size "
                f"2^{domain_bits} (Theorem 1 requires p >= N)"
            )
        coefficients = tuple(int(c) for c in coefficients)
        if not coefficients:
            raise ValueError("at least one polynomial coefficient is required")
        for c in coefficients:
            if not 0 <= c < p:
                raise ValueError(f"coefficient {c} outside Z_{p}")
        self.coefficients = coefficients
        self.p = p
        self.independence = len(coefficients)

    @classmethod
    def from_source(
        cls,
        domain_bits: int,
        source: SeedSource,
        k: int,
        p: int = MERSENNE_31,
    ) -> "PolynomialsOverPrimes":
        """Draw ``k`` uniform coefficients from Z_p."""
        if k < 1:
            raise ValueError(f"independence degree k must be >= 1, got {k}")
        coefficients = tuple(source.below(p) for _ in range(k))
        return cls(domain_bits, coefficients, p=p)

    @property
    def seed_bits(self) -> int:
        """Seed size: ``k * ceil(log2 p)`` bits (Table 1's 2n / 4n rows)."""
        return len(self.coefficients) * (self.p - 1).bit_length()

    def raw_value(self, i: int) -> int:
        """The full k-wise independent value ``X_i`` in Z_p."""
        self._check_index(i)
        return self._field.eval_poly(self.coefficients, i % self.p)

    def bit(self, i: int) -> int:
        """LSB of ``X_i`` -- the (slightly biased) output bit."""
        return self.raw_value(i) & 1

    def bits(self, indices: np.ndarray) -> np.ndarray:
        indices = self._check_indices(indices)
        raw = self._field.eval_poly_array(self.coefficients, indices)
        return (raw & np.uint64(1)).astype(np.uint8)

    def bias(self) -> float:
        """|P[bit=0] - P[bit=1]| over a uniform value in Z_p: ``1/p``."""
        return 1.0 / self.p


def massdal2(
    domain_bits: int, source: SeedSource, p: int = MERSENNE_31
) -> PolynomialsOverPrimes:
    """Table 1's "Massdal2": 2-wise polynomials-over-primes generator."""
    return PolynomialsOverPrimes.from_source(domain_bits, source, k=2, p=p)


def massdal4(
    domain_bits: int, source: SeedSource, p: int = MERSENNE_31
) -> PolynomialsOverPrimes:
    """Table 1's "Massdal4": 4-wise polynomials-over-primes generator."""
    return PolynomialsOverPrimes.from_source(domain_bits, source, k=4, p=p)
