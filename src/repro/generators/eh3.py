"""The extended Hamming 3-wise scheme, EH3 (paper Section 3.1.1).

``f(S, i) = S . [1, i] XOR h(i)`` where ``h`` is the nonlinear fold of
Eq. 6: OR each pair of adjacent index bits, XOR the pair results together.
The nonlinearity does not raise the formal degree of independence beyond
3-wise, but it breaks the XOR-cancellation structure that inflates BCH3's
size-of-join variance: for indices with ``i^j^k^l = 0`` the product
expectation becomes ``(-1)^(h(i)^h(j)^h(k)^h(l))`` and the negative terms
cancel the positive ones on average (Propositions 3-5).  EH3 is the paper's
recommended scheme: seed of ``n + 1`` bits, generation as fast as BCH3, and
practically fast range-summable via Theorem 2.
"""

from __future__ import annotations

import numpy as np

from repro.core.bits import (
    adjacent_pair_or_fold,
    adjacent_pair_or_fold_array,
    mask,
    parity,
    parity_array,
)
from repro.generators.base import Generator, check_domain
from repro.generators.seeds import SeedSource

__all__ = ["EH3"]


class EH3(Generator):
    """EH3 generator: ``xi_i = (-1)^(s0 XOR S1 . i XOR h(i))``."""

    independence = 3

    def __init__(self, domain_bits: int, s0: int, s1: int) -> None:
        self.domain_bits = check_domain(domain_bits)
        if s0 not in (0, 1):
            raise ValueError(f"s0 must be a single bit, got {s0}")
        if not 0 <= s1 < (1 << domain_bits):
            raise ValueError(f"S1 must fit in {domain_bits} bits, got {s1}")
        self.s0 = s0
        self.s1 = s1

    @classmethod
    def from_source(cls, domain_bits: int, source: SeedSource) -> "EH3":
        """Draw a uniform ``(n+1)``-bit seed from ``source``."""
        return cls(domain_bits, source.bit(), source.bits(domain_bits))

    @property
    def seed_bits(self) -> int:
        """Seed size: ``n + 1`` bits, same as BCH3 (Table 1)."""
        return self.domain_bits + 1

    def h(self, i: int) -> int:
        """The nonlinear function ``h(i)`` of Eq. 6."""
        return adjacent_pair_or_fold(i, self.domain_bits)

    def bit(self, i: int) -> int:
        """``f(S, i) = s0 XOR parity(S1 & i) XOR h(i)``."""
        self._check_index(i)
        return self.s0 ^ parity(self.s1 & i) ^ self.h(i)

    def bits(self, indices: np.ndarray) -> np.ndarray:
        indices = self._check_indices(indices)
        out = parity_array(indices & np.uint64(self.s1))
        out ^= adjacent_pair_or_fold_array(indices, self.domain_bits)
        if self.s0:
            out ^= np.uint8(1)
        return out

    def zero_or_pairs(self) -> int:
        """#ZERO of Theorem 2: adjacent seed-bit pairs that OR to zero.

        Counted over all ``ceil(n / 2)`` pairs of ``S1``; the dyadic
        range-sum of level ``2j`` uses only the lowest ``j`` pairs.
        """
        pairs = (self.domain_bits + 1) // 2
        count = 0
        for t in range(pairs):
            pair = (self.s1 >> (2 * t)) & 0b11
            if pair == 0:
                count += 1
        return count

    def signed_scale_array(self) -> np.ndarray:
        """Theorem-2 signed scales ``(-1)^#ZERO_j * 2^j`` per half-level.

        Built once per generator and cached on the instance: this table is
        the per-seed substrate of every bulk/batched EH3 range-sum -- one
        entry per quaternary level ``j`` of the domain.
        """
        cached = getattr(self, "_signed_scale_array", None)
        if cached is None:
            pairs = (self.domain_bits + 1) // 2
            cached = np.empty(pairs + 1, dtype=np.float64)
            zero_pairs = 0
            for j in range(pairs + 1):
                cached[j] = -(1 << j) if zero_pairs % 2 else (1 << j)
                if j < pairs and (self.s1 >> (2 * j)) & 0b11 == 0:
                    zero_pairs += 1
            self._signed_scale_array = cached
        return cached

    def zero_or_pairs_below(self, pair_count: int) -> int:
        """#ZERO restricted to the lowest ``pair_count`` seed-bit pairs."""
        if pair_count < 0:
            raise ValueError(f"pair_count must be non-negative, got {pair_count}")
        count = 0
        for t in range(pair_count):
            pair = (self.s1 >> (2 * t)) & 0b11
            if pair == 0:
                count += 1
        return count

    def restrict_low_bits(self, nbits: int) -> "EH3":
        """The scheme induced on the low ``nbits`` of the index.

        Valid when ``nbits`` is even (pair-aligned) or equal to the full
        width: the pair structure of ``h`` must not straddle the cut.
        """
        if not 1 <= nbits <= self.domain_bits:
            raise ValueError(f"nbits must be in [1, {self.domain_bits}]")
        if nbits != self.domain_bits and nbits % 2 != 0:
            raise ValueError("restriction must align with h()'s bit pairs")
        return EH3(nbits, self.s0, self.s1 & mask(nbits))

    def range_sum(self, alpha: int, beta: int) -> int:
        """Sum of ``xi_i`` for ``i`` in ``[alpha, beta]``, O(log) time."""
        from repro.rangesum.eh3_rangesum import eh3_range_sum

        return eh3_range_sum(self, alpha, beta)

    def range_sums(self, alphas, betas) -> np.ndarray:
        """Batched :meth:`range_sum` over arrays of end-points."""
        from repro.rangesum.batched import eh3_range_sums

        return eh3_range_sums(self, alphas, betas)
