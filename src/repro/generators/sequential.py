"""Incremental sequential generation of +/-1 values.

Streaming systems often consume xi values for *consecutive* indices --
scanning an interval, replaying a domain.  Instead of evaluating the full
dot product per index, the value can be updated incrementally: stepping
from ``i`` to ``i + 1`` flips exactly the trailing-ones block of ``i``
plus the bit above it, so

* the linear part changes by ``parity(S1 & (i XOR (i+1)))``, and
* EH3's nonlinear part changes only on the pairs covered by the flipped
  bits (at most ``(t + 3) / 2`` of them for ``t`` trailing ones).

Since a random index has ~1 trailing one in expectation, the amortized
cost per step is O(1) word operations -- the sequential-generation trick
of the paper's extended version.  :func:`sequential_values` applies it to
BCH3 and EH3 and falls back to direct evaluation for other schemes;
equality with direct evaluation is property-tested.
"""

from __future__ import annotations

from typing import Iterator

from repro.core.bits import parity
from repro.generators.base import Generator
from repro.generators.bch3 import BCH3
from repro.generators.eh3 import EH3

__all__ = [
    "sequential_values",
    "sequential_bits",
    "bch3_sequential_bits",
    "eh3_sequential_bits",
]


def bch3_sequential_bits(generator: BCH3, start: int, count: int) -> Iterator[int]:
    bit = generator.bit(start)
    yield bit
    i = start
    s1 = generator.s1
    for _ in range(count - 1):
        flipped = i ^ (i + 1)
        bit ^= parity(s1 & flipped)
        i += 1
        yield bit


def eh3_sequential_bits(generator: EH3, start: int, count: int) -> Iterator[int]:
    bit = generator.bit(start)
    yield bit
    i = start
    s1 = generator.s1
    for _ in range(count - 1):
        flipped = i ^ (i + 1)
        delta = parity(s1 & flipped)
        # Only pairs overlapping the flipped block can change h.
        pair_span = (flipped.bit_length() + 1) // 2
        before = i
        after = i + 1
        for t in range(pair_span):
            shift = 2 * t
            old_pair = (before >> shift) & 0b11
            new_pair = (after >> shift) & 0b11
            delta ^= (1 if old_pair else 0) ^ (1 if new_pair else 0)
        bit ^= delta
        i += 1
        yield bit


def sequential_bits(
    generator: Generator, start: int, count: int
) -> Iterator[int]:
    """Yield ``f(S, i)`` for ``i = start .. start + count - 1``.

    O(1) amortized per step for BCH3/EH3; direct evaluation otherwise.
    """
    if count < 0:
        raise ValueError("count must be non-negative")
    if count == 0:
        return iter(())
    if start < 0 or start + count > generator.domain_size:
        raise ValueError("scan range outside the generator domain")
    # Late import: repro.schemes registers the built-in specs (whose
    # extras name the kernels below) by importing this module.
    from repro.schemes import spec_for

    spec = spec_for(generator)
    kernel = spec.extras.get("sequential_bits") if spec is not None else None
    if kernel is not None:
        return kernel(generator, start, count)
    return (generator.bit(i) for i in range(start, start + count))


def sequential_values(
    generator: Generator, start: int, count: int
) -> Iterator[int]:
    """Yield ``xi_i`` for ``i = start .. start + count - 1`` incrementally."""
    return (1 - 2 * bit for bit in sequential_bits(generator, start, count))
