"""Sketch-driven dynamic histogram construction (paper Application 3).

Thaper et al. [22] build multidimensional histograms over streaming data
by repeatedly *scoring candidate buckets* -- and the score only needs the
sum of frequencies inside a rectangle, which an interval-capable AMS
sketch answers without touching the data again.  This module closes that
loop: a greedy splitter that sees the data ONLY through a sketch.

Algorithm (greedy binary-space partition, the standard baseline of the
dynamic-histogram literature):

1. start with one bucket covering the domain;
2. repeatedly take the bucket with the largest estimated *non-uniformity*
   -- the |count(left half) - count(right half)| gap over its best split
   axis -- and split it at the midpoint;
3. stop at the bucket budget; each final bucket predicts a uniform
   density ``estimated_count / area``.

Mid-point splits keep every query rectangle dyadic-friendly, so each
score costs two rectangle range-sums per counter.  The quality metric is
the classical SSE against the true frequency matrix; the benchmark
compares sketch-driven splits against exact-count-driven splits (same
algorithm, oracle counts) and against the trivial single bucket.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Callable, Sequence

import numpy as np

from repro.apps.histograms import rect_area
from repro.rangesum.multidim import Rect
from repro.query import engine as query_engine
from repro.sketch.ams import SketchMatrix, SketchScheme

__all__ = [
    "Bucket",
    "Histogram",
    "build_histogram",
    "sketch_count_oracle",
    "exact_count_oracle",
    "histogram_sse",
]

#: A count oracle maps a rectangle to a (possibly estimated) point count.
CountOracle = Callable[[Rect], float]


@dataclass(frozen=True)
class Bucket:
    """One histogram bucket: a rectangle and its (estimated) mass."""

    rect: tuple[tuple[int, int], ...]
    count: float

    @property
    def area(self) -> int:
        """Number of domain cells covered."""
        return rect_area(self.rect)

    @property
    def density(self) -> float:
        """Predicted per-cell frequency (uniform within the bucket)."""
        return self.count / self.area


@dataclass
class Histogram:
    """A bucket partition of a d-dimensional domain."""

    domain_bits: tuple[int, ...]
    buckets: list[Bucket]

    def density_at(self, point: Sequence[int]) -> float:
        """Predicted frequency at a single point."""
        for bucket in self.buckets:
            if all(
                low <= coordinate <= high
                for coordinate, (low, high) in zip(point, bucket.rect)
            ):
                return bucket.density
        raise ValueError(f"point {tuple(point)} outside every bucket")

    def total_mass(self) -> float:
        """Sum of bucket masses."""
        return sum(bucket.count for bucket in self.buckets)


def _split_rect(rect: Rect, axis: int) -> tuple[Rect, Rect] | None:
    low, high = rect[axis]
    if high == low:
        return None
    middle = (low + high) // 2
    left = tuple(
        (low, middle) if k == axis else extent for k, extent in enumerate(rect)
    )
    right = tuple(
        (middle + 1, high) if k == axis else extent
        for k, extent in enumerate(rect)
    )
    return left, right


def _best_split(rect: Rect, oracle: CountOracle):
    """The axis split with the largest estimated half-to-half imbalance."""
    best = None
    for axis in range(len(rect)):
        halves = _split_rect(rect, axis)
        if halves is None:
            continue
        left, right = halves
        left_count = oracle(left)
        right_count = oracle(right)
        score = abs(left_count - right_count)
        if best is None or score > best[0]:
            best = (score, left, right, left_count, right_count)
    return best


def build_histogram(
    domain_bits: Sequence[int],
    oracle: CountOracle,
    buckets: int,
) -> Histogram:
    """Greedy non-uniformity-driven histogram from a count oracle."""
    if buckets < 1:
        raise ValueError("at least one bucket is required")
    root_rect = tuple((0, (1 << bits) - 1) for bits in domain_bits)
    root = Bucket(rect=root_rect, count=max(oracle(root_rect), 0.0))

    # Max-heap of (negative score, tiebreaker, bucket, split description).
    heap: list = []
    counter = 0

    def push(bucket: Bucket) -> None:
        nonlocal counter
        split = _best_split(bucket.rect, oracle)
        if split is None:
            return
        score = split[0]
        heapq.heappush(heap, (-score, counter, bucket, split))
        counter += 1

    final: list[Bucket] = []
    push(root)
    leaves = 1
    pending = {id(root): root}
    while leaves < buckets and heap:
        neg_score, __, bucket, split = heapq.heappop(heap)
        if id(bucket) not in pending:
            continue
        del pending[id(bucket)]
        __, left_rect, right_rect, left_count, right_count = split
        left = Bucket(rect=left_rect, count=max(left_count, 0.0))
        right = Bucket(rect=right_rect, count=max(right_count, 0.0))
        for child in (left, right):
            pending[id(child)] = child
            push(child)
        leaves += 1
    final = list(pending.values())
    return Histogram(domain_bits=tuple(domain_bits), buckets=final)


def sketch_count_oracle(
    data_sketch: SketchMatrix, scheme: SketchScheme
) -> CountOracle:
    """Count oracle backed by rectangle range-sum sketch estimates."""

    def oracle(rect: Rect) -> float:
        region = scheme.sketch()
        region.update_interval(rect)
        return query_engine.product(data_sketch, region, kind="region").value

    return oracle


def exact_count_oracle(points: np.ndarray) -> CountOracle:
    """Oracle with true counts -- the unattainable streaming ideal."""
    points = np.asarray(points, dtype=np.int64)

    def oracle(rect: Rect) -> float:
        inside = np.ones(len(points), dtype=bool)
        for axis, (low, high) in enumerate(rect):
            inside &= (points[:, axis] >= low) & (points[:, axis] <= high)
        return float(inside.sum())

    return oracle


def histogram_sse(histogram: Histogram, frequency_matrix: np.ndarray) -> float:
    """Sum of squared errors of the histogram's uniform-bucket prediction."""
    total = 0.0
    for bucket in histogram.buckets:
        slices = tuple(
            slice(low, high + 1) for low, high in bucket.rect
        )
        block = frequency_matrix[slices]
        total += float(((block - bucket.density) ** 2).sum())
    return total
