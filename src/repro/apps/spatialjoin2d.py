"""Multi-dimensional spatial size-of-join (the paper's Application 1,
generalized "to multiple dimensions, see [7]").

Two axis-aligned rectangles intersect iff their extents intersect on
EVERY axis, and each per-axis intersection test decomposes as in the 1-D
case: averaged over the two end-point assignments,

    [extents meet on axis k] = (1/2) * sum over c_k in {0, 1} of
        [#end-points of one extent inside the other, by assignment c_k]

Multiplying over the ``d`` axes and distributing gives ``2^d`` estimators,
one per *combination* -- each dimension independently chooses which
relation contributes its full extent and which contributes its two
end-points -- and their average estimates the number of intersecting
rectangle pairs.  Each combination is an ordinary size-of-join over the
product domain, sketched with :meth:`ProductGenerator.mixed_sum`: a full
extent costs one 1-D fast range-sum on its axis, an end-point pair two
single evaluations.

This is exactly the construction Das et al. describe ("estimators over
all possible combinations of full segments and end-points in each
dimension"); the 1-D module :mod:`repro.apps.spatialjoin` is its d = 1
special case.
"""

from __future__ import annotations

from itertools import product as cartesian_product

import numpy as np

from repro.schemes import channel_kind
from repro.query import engine as query_engine
from repro.sketch.ams import SketchMatrix, SketchScheme

__all__ = [
    "RectDataset",
    "sketch_rect_dataset",
    "estimate_rect_join",
    "exact_rect_join",
    "rect_join_reduction_truth",
]


class RectDataset:
    """A set of axis-aligned d-dimensional rectangles.

    ``rects`` has shape ``(count, d, 2)``: inclusive ``[low, high]`` per
    axis per rectangle.
    """

    def __init__(self, name: str, domain_bits, rects: np.ndarray) -> None:
        rects = np.asarray(rects, dtype=np.int64)
        if rects.ndim != 3 or rects.shape[2] != 2:
            raise ValueError("rects must have shape (count, d, 2)")
        if rects.shape[1] != len(domain_bits):
            raise ValueError("rectangle rank must match domain_bits")
        if (rects[:, :, 0] > rects[:, :, 1]).any():
            raise ValueError("every extent needs low <= high")
        for axis, bits in enumerate(domain_bits):
            if rects[:, axis, :].min(initial=0) < 0 or rects[
                :, axis, :
            ].max(initial=0) >= (1 << bits):
                raise ValueError(f"axis {axis} extents outside the domain")
        self.name = name
        self.domain_bits = tuple(domain_bits)
        self.rects = rects

    def __len__(self) -> int:
        return len(self.rects)

    @property
    def dimensions(self) -> int:
        """Number of axes."""
        return len(self.domain_bits)


def _combinations(dimensions: int):
    """All 2^d end-point assignments: True = first relation's extent is
    kept whole on that axis (second contributes end-points)."""
    return list(cartesian_product((True, False), repeat=dimensions))


def sketch_rect_dataset(
    scheme: SketchScheme, dataset: RectDataset
) -> dict[tuple, SketchMatrix]:
    """One sketch per role the dataset plays in each combination.

    For combination ``c``, this dataset contributes its full extent on
    axes where its flag says so and its end-points elsewhere; a single
    rectangle therefore triggers ``2^(#end-point axes)`` mixed updates
    (all end-point corners), each a product of fast range-sums and single
    evaluations.
    """
    if not all(
        channel_kind(channel) == "product"
        for row in scheme.channels
        for channel in row
    ):
        raise TypeError("rectangle sketching needs ProductChannel cells")
    sketches: dict[tuple, SketchMatrix] = {}
    for combo in _combinations(dataset.dimensions):
        sketch = scheme.sketch()
        for rect in dataset.rects:
            # Axes where this dataset contributes end-points enumerate
            # both corners; extent axes contribute the interval itself.
            endpoint_axes = [k for k, whole in enumerate(combo) if not whole]
            for corner in cartesian_product((0, 1), repeat=len(endpoint_axes)):
                spec = []
                corner_iter = iter(corner)
                for axis, whole in enumerate(combo):
                    if whole:
                        spec.append((int(rect[axis, 0]), int(rect[axis, 1])))
                    else:
                        spec.append(int(rect[axis, next(corner_iter)]))
                sketch.update_interval(tuple(spec))
        sketches[combo] = sketch
    return sketches


def estimate_rect_join(
    first: dict[tuple, SketchMatrix], second: dict[tuple, SketchMatrix]
) -> float:
    """Average of the 2^d combination estimators.

    Combination ``c`` joins ``first``'s sketch for ``c`` with ``second``'s
    sketch for the complementary assignment (where first keeps its extent,
    second supplies end-points, and vice versa).
    """
    combos = list(first)
    total = 0.0
    for combo in combos:
        complement = tuple(not flag for flag in combo)
        total += query_engine.join_size(first[combo], second[complement]).value
    return total / (2 ** len(combos[0]))


def rect_join_reduction_truth(
    first: RectDataset, second: RectDataset
) -> float:
    """The exact value the sketch estimator is unbiased for.

    Per pair and axis the reduction contributes ``(e_k + f_k) / 2`` where
    ``e_k`` counts second's end-points inside first's extent and ``f_k``
    the reverse; the product over axes is 1 for intersecting pairs except
    at shared-end-point coincidences (the same +/- 1/2-per-axis bias the
    1-D reduction carries).  Quadratic reference for tests.
    """
    if first.dimensions != second.dimensions:
        raise ValueError("datasets must share dimensionality")
    total = 0.0
    for r in first.rects:
        for s in second.rects:
            product = 1.0
            for axis in range(first.dimensions):
                e = sum(
                    1
                    for p in (s[axis, 0], s[axis, 1])
                    if r[axis, 0] <= p <= r[axis, 1]
                )
                f = sum(
                    1
                    for p in (r[axis, 0], r[axis, 1])
                    if s[axis, 0] <= p <= s[axis, 1]
                )
                product *= (e + f) / 2.0
            total += product
    return total


def exact_rect_join(first: RectDataset, second: RectDataset) -> int:
    """Ground truth: pairs of rectangles intersecting on every axis.

    Vectorized all-pairs check -- fine for the dataset sizes the tests
    and examples use.
    """
    if first.dimensions != second.dimensions:
        raise ValueError("datasets must share dimensionality")
    intersects = np.ones((len(first), len(second)), dtype=bool)
    for axis in range(first.dimensions):
        lows = np.maximum.outer(
            first.rects[:, axis, 0], second.rects[:, axis, 0]
        )
        highs = np.minimum.outer(
            first.rects[:, axis, 1], second.rects[:, axis, 1]
        )
        intersects &= lows <= highs
    return int(intersects.sum())
