"""Spatial size-of-join estimation (paper Application 1, Figures 5-7).

Problem: given two sets of 1-D line segments, estimate how many pairs
(one from each set) intersect.  The reduction used by Das et al. [7] and
by this paper: a pair of closed segments intersects exactly when end-points
of one lie inside the other, and (away from shared end-point corner cases)

    ``#intersections = (J1 + J2) / 2``

where ``J1`` joins the *segments* of R with the *end-points* of S (a point
``p`` matches every segment containing it) and ``J2`` is the symmetric
join.  Both are interval-input size-of-join problems:

* the EH3 path sketches every segment with one O(log range) fast
  range-sum and every end-point with one generator evaluation;
* the DMAP path maps segments to their dyadic covers and end-points to
  their ``n + 1`` containing dyadic intervals.

The two estimators use identical memory (the same medians x averages grid
of counters); Figures 5-7 compare their errors as that memory grows.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.query import engine as query_engine
from repro.sketch.ams import SketchMatrix, SketchScheme
from repro.stream.exact import segments_intersecting
from repro.workloads.spatial import SegmentDataset

__all__ = [
    "SegmentSketches",
    "sketch_segment_dataset",
    "estimate_spatial_join",
    "exact_spatial_join",
    "endpoint_join_truth",
]


@dataclass
class SegmentSketches:
    """The two sketches summarizing one segment dataset.

    ``segments`` sketches the coverage multiset (each segment contributes
    every point it covers); ``endpoints`` sketches the multiset of the
    2 * count segment end-points.
    """

    segments: SketchMatrix
    endpoints: SketchMatrix
    count: int


def sketch_segment_dataset(
    scheme: SketchScheme, dataset: SegmentDataset
) -> SegmentSketches:
    """Build both sketches of a segment dataset under one scheme.

    Works unchanged for fast-range-summable generator channels and DMAP
    channels -- the channel abstraction hides which update strategy runs.
    """
    segment_sketch = scheme.sketch()
    endpoint_sketch = scheme.sketch()
    for low, high in dataset.segments:
        segment_sketch.update_interval((int(low), int(high)))
        endpoint_sketch.update_point(int(low))
        endpoint_sketch.update_point(int(high))
    return SegmentSketches(
        segments=segment_sketch,
        endpoints=endpoint_sketch,
        count=len(dataset),
    )


def estimate_spatial_join(
    first: SegmentSketches, second: SegmentSketches
) -> float:
    """``(J1 + J2) / 2`` from the four sketches.

    ``J1 = |segments(first) join endpoints(second)|`` and symmetrically;
    every partially-overlapping or nested pair contributes end-points
    totalling 2 across the two joins, so the average recovers the
    intersection count (shared end-points perturb this by +/- 1/2 per
    coincidence, the same small bias the original scheme carries).
    """
    j1 = query_engine.join_size(first.segments, second.endpoints).value
    j2 = query_engine.join_size(first.endpoints, second.segments).value
    return 0.5 * (j1 + j2)


def exact_spatial_join(
    first: SegmentDataset, second: SegmentDataset
) -> int:
    """Ground-truth intersection count (quadratic reference)."""
    return segments_intersecting(first.segments, second.segments)


def endpoint_join_truth(
    first: SegmentDataset, second: SegmentDataset
) -> float:
    """The exact value of ``(J1 + J2) / 2`` the sketches actually estimate.

    Separates estimator noise from the reduction's own end-point bias in
    tests: sketch estimates converge to *this*, which in turn is close to
    :func:`exact_spatial_join`.
    """
    import numpy as np

    total = 0
    for endpoints_of, other in (
        (first.segments, second.segments),
        (second.segments, first.segments),
    ):
        lows = np.sort(other[:, 0])
        highs = np.sort(other[:, 1])
        points = endpoints_of.reshape(-1)  # both end-points of every segment
        # Containment count for p: #(lows <= p) - #(highs < p).
        contained = np.searchsorted(lows, points, side="right")
        contained -= np.searchsorted(highs, points, side="left")
        total += int(contained.sum())
    return total / 2.0
