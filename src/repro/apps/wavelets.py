"""Sketch-based Haar wavelet synopses (paper reference [12]).

Gilbert et al.'s "one-pass wavelet decompositions of data streams" -- one
of the applications the paper cites for range-summable random variables --
estimates the largest Haar coefficients of a streamed frequency vector
from an AMS sketch.  The key observation fits this library exactly: the
(un-normalized) Haar coefficient of the dyadic interval ``[q 2^j, (q+1)
2^j)`` is

    ``d_{j,q} = sum(left half) - sum(right half)``

an inner product of the frequency vector with a +/-1 step vector -- i.e.
a *difference of two interval sums*.  Sketching that step vector costs
two fast range-sums per counter, so any coefficient is estimable from the
data sketch alone, and a top-k synopsis falls out by scoring candidate
coefficients.

Conventions: coefficients are the orthonormal Haar basis
(``psi_{j,q} = (left - right) / sqrt(2^j)``), plus the overall scaling
coefficient ``total / sqrt(N)``, so Parseval holds and "top-k by
magnitude" minimizes L2 reconstruction error.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.dyadic import DyadicInterval
from repro.query import engine as query_engine
from repro.sketch.ams import SketchMatrix, SketchScheme

__all__ = [
    "HaarCoefficient",
    "exact_haar_transform",
    "inverse_haar_transform",
    "exact_coefficient",
    "estimate_coefficient",
    "estimate_top_synopsis",
    "reconstruct_from_synopsis",
]


@dataclass(frozen=True)
class HaarCoefficient:
    """One (estimated or exact) orthonormal Haar coefficient.

    ``level = -1`` denotes the scaling (overall average) coefficient;
    detail coefficients carry the dyadic interval they straddle:
    ``level`` is the interval's level ``j >= 1`` and ``offset`` its ``q``.
    """

    level: int
    offset: int
    value: float

    @property
    def is_scaling(self) -> bool:
        """Whether this is the overall scaling coefficient."""
        return self.level == -1


def exact_haar_transform(frequencies: np.ndarray) -> list[HaarCoefficient]:
    """All orthonormal Haar coefficients of a length-2^n vector."""
    frequencies = np.asarray(frequencies, dtype=np.float64)
    size = len(frequencies)
    if size & (size - 1) or size == 0:
        raise ValueError("the vector length must be a power of two")
    coefficients: list[HaarCoefficient] = []
    current = frequencies.copy()
    level = 1
    while len(current) > 1:
        pairs = current.reshape(-1, 2)
        details = (pairs[:, 0] - pairs[:, 1]) / np.sqrt(2.0)
        current = (pairs[:, 0] + pairs[:, 1]) / np.sqrt(2.0)
        for offset, value in enumerate(details):
            coefficients.append(HaarCoefficient(level, offset, float(value)))
        level += 1
    coefficients.append(HaarCoefficient(-1, 0, float(current[0])))
    return coefficients


def inverse_haar_transform(
    coefficients: list[HaarCoefficient], size: int
) -> np.ndarray:
    """Reconstruct the vector from (a subset of) its Haar coefficients."""
    if size & (size - 1) or size == 0:
        raise ValueError("size must be a power of two")
    levels = size.bit_length() - 1
    vector = np.zeros(size, dtype=np.float64)
    for coefficient in coefficients:
        if coefficient.is_scaling:
            vector += coefficient.value / np.sqrt(size)
            continue
        j, q = coefficient.level, coefficient.offset
        if not 1 <= j <= levels:
            raise ValueError(f"level {j} outside [1, {levels}]")
        interval = DyadicInterval(j, q)
        if interval.high > size:
            raise ValueError(f"{interval} outside the domain")
        half = interval.size // 2
        scale = coefficient.value / np.sqrt(interval.size)
        vector[interval.low : interval.low + half] += scale
        vector[interval.low + half : interval.high] -= scale
    return vector


def exact_coefficient(
    frequencies: np.ndarray, level: int, offset: int
) -> float:
    """One orthonormal Haar coefficient, directly."""
    frequencies = np.asarray(frequencies, dtype=np.float64)
    if level == -1:
        return float(frequencies.sum() / np.sqrt(len(frequencies)))
    interval = DyadicInterval(level, offset)
    half = interval.size // 2
    left = frequencies[interval.low : interval.low + half].sum()
    right = frequencies[interval.low + half : interval.high].sum()
    return float((left - right) / np.sqrt(interval.size))


def _coefficient_probe(
    scheme: SketchScheme, level: int, offset: int, domain_bits: int
) -> SketchMatrix:
    """Sketch of the Haar basis vector psi_{level, offset}."""
    probe = scheme.sketch()
    if level == -1:
        probe.update_interval((0, (1 << domain_bits) - 1), 1.0)
        return probe
    interval = DyadicInterval(level, offset)
    if interval.high > (1 << domain_bits):
        raise ValueError(f"{interval} outside the domain")
    half = interval.size // 2
    probe.update_interval((interval.low, interval.low + half - 1), 1.0)
    probe.update_interval((interval.low + half, interval.high - 1), -1.0)
    return probe


def estimate_coefficient(
    data_sketch: SketchMatrix,
    scheme: SketchScheme,
    level: int,
    offset: int,
    domain_bits: int,
) -> float:
    """Estimate one orthonormal Haar coefficient from the data sketch.

    The probe costs two fast range-sums per counter (one for the scaling
    coefficient); the estimate is ``<f, step> / sqrt(interval size)``.
    """
    probe = _coefficient_probe(scheme, level, offset, domain_bits)
    raw = query_engine.product(data_sketch, probe, kind="wavelet").value
    if level == -1:
        return raw / np.sqrt(1 << domain_bits)
    return raw / np.sqrt(1 << level)


def estimate_top_synopsis(
    data_sketch: SketchMatrix,
    scheme: SketchScheme,
    domain_bits: int,
    keep: int,
    max_level: int | None = None,
) -> list[HaarCoefficient]:
    """Estimate coefficients down to ``max_level`` and keep the top-k.

    ``max_level`` bounds how fine the synopsis looks (level ``j`` has
    ``2^(n-j)`` coefficients; scanning everything costs O(N) probes, so
    synopses usually stop a few levels above the leaves).  The scaling
    coefficient is always included on top of ``keep`` detail
    coefficients.
    """
    if keep < 0:
        raise ValueError("keep must be non-negative")
    levels = domain_bits
    if max_level is None:
        max_level = max(1, levels - 3)
    if not 1 <= max_level <= levels:
        raise ValueError(f"max_level must be in [1, {levels}]")
    estimates: list[HaarCoefficient] = []
    for level in range(max_level, levels + 1):
        for offset in range(1 << (levels - level)):
            value = estimate_coefficient(
                data_sketch, scheme, level, offset, domain_bits
            )
            estimates.append(HaarCoefficient(level, offset, value))
    estimates.sort(key=lambda c: abs(c.value), reverse=True)
    chosen = estimates[:keep]
    scaling = HaarCoefficient(
        -1,
        0,
        estimate_coefficient(data_sketch, scheme, -1, 0, domain_bits),
    )
    return [scaling] + chosen


def reconstruct_from_synopsis(
    synopsis: list[HaarCoefficient], domain_bits: int
) -> np.ndarray:
    """The synopsis's approximation of the frequency vector."""
    return inverse_haar_transform(synopsis, 1 << domain_bits)
