"""L1-difference of two streamed vectors (paper Application 2).

Feigenbaum et al.'s problem: vectors ``a`` and ``b`` arrive as tuples
``(i, a_i)`` / ``(i, b_i)`` in arbitrary interleaved order; estimate
``sum_i |a_i - b_i|`` in small space.

Reduction to an interval-input self-join (Section 5.1): encode each
element ``(i, a_i)`` as the *interval* of pairs ``{(i, j) : 0 <= j < a_i}``
over the product domain ``index x value``.  With ``X_a`` and ``X_b`` the
atomic sketches of these virtual relations, linearity gives ``X_a - X_b``
as the signed sketch of the symmetric difference, whose self-join size is
exactly the L1 distance: each ``i`` contributes ``|a_i - b_i|`` singleton
tuples to the symmetric difference.

Each arriving tuple costs ONE fast range-sum over the interval
``[i * 2^m, i * 2^m + a_i - 1]`` -- this is the application for which
Feigenbaum et al. invented EH3, and DMAP cannot handle it at all (both
relations are interval-specified; the paper omits DMAP from this
comparison for that reason).
"""

from __future__ import annotations

import numpy as np

from repro.query import engine as query_engine
from repro.sketch.ams import SketchMatrix, SketchScheme

__all__ = [
    "encode_entry_interval",
    "sketch_vector",
    "update_vector_entry",
    "estimate_l1_difference",
    "l1_domain_bits",
]


def l1_domain_bits(index_bits: int, value_bits: int) -> int:
    """Bits of the flattened ``index x value`` sketching domain."""
    if index_bits < 1 or value_bits < 1:
        raise ValueError("index_bits and value_bits must be positive")
    return index_bits + value_bits


def encode_entry_interval(
    index: int, value: int, value_bits: int
) -> tuple[int, int] | None:
    """The flattened-domain interval encoding one vector entry.

    ``(i, v)`` becomes ``[i * 2^m, i * 2^m + v - 1]``; a zero value
    contributes nothing and encodes to None.
    """
    if value < 0:
        raise ValueError("vector entries must be non-negative")
    if value == 0:
        return None
    if value > (1 << value_bits):
        raise ValueError(
            f"value {value} exceeds the declared maximum 2^{value_bits}"
        )
    base = index << value_bits
    return base, base + value - 1


def update_vector_entry(
    sketch: SketchMatrix, index: int, value: int, value_bits: int
) -> None:
    """Stream one ``(index, value)`` tuple into a vector sketch."""
    bounds = encode_entry_interval(index, value, value_bits)
    if bounds is not None:
        sketch.update_interval(bounds)


def sketch_vector(
    scheme: SketchScheme, vector: np.ndarray, value_bits: int
) -> SketchMatrix:
    """Sketch a whole vector (the recorded-stream convenience path)."""
    sketch = scheme.sketch()
    for index, value in enumerate(np.asarray(vector)):
        update_vector_entry(sketch, index, int(value), value_bits)
    return sketch


def estimate_l1_difference(
    sketch_a: SketchMatrix, sketch_b: SketchMatrix
) -> float:
    """L1 estimate: self-join size of the sketched symmetric difference."""
    difference = sketch_a.difference(sketch_b)
    return query_engine.self_join(difference).value
