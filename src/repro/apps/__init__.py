"""The paper's interval-input applications (Section 5.1, Section 6)."""

from repro.apps.histograms import (
    SelectivityEstimator,
    estimate_average_frequency,
    estimate_region_count,
    exact_region_count,
    random_query_rects,
    rect_area,
    sketch_data_points,
    sketch_region,
)
from repro.apps.l1diff import (
    encode_entry_interval,
    estimate_l1_difference,
    l1_domain_bits,
    sketch_vector,
    update_vector_entry,
)
from repro.apps.spatialjoin2d import (
    RectDataset,
    estimate_rect_join,
    exact_rect_join,
    rect_join_reduction_truth,
    sketch_rect_dataset,
)
from repro.apps.wavelets import (
    HaarCoefficient,
    estimate_coefficient,
    estimate_top_synopsis,
    exact_haar_transform,
    inverse_haar_transform,
    reconstruct_from_synopsis,
)
from repro.apps.spatialjoin import (
    SegmentSketches,
    endpoint_join_truth,
    estimate_spatial_join,
    exact_spatial_join,
    sketch_segment_dataset,
)

__all__ = [
    "SelectivityEstimator",
    "estimate_average_frequency",
    "estimate_region_count",
    "exact_region_count",
    "random_query_rects",
    "rect_area",
    "sketch_data_points",
    "sketch_region",
    "encode_entry_interval",
    "estimate_l1_difference",
    "l1_domain_bits",
    "sketch_vector",
    "update_vector_entry",
    "RectDataset",
    "estimate_rect_join",
    "exact_rect_join",
    "rect_join_reduction_truth",
    "sketch_rect_dataset",
    "HaarCoefficient",
    "estimate_coefficient",
    "estimate_top_synopsis",
    "exact_haar_transform",
    "inverse_haar_transform",
    "reconstruct_from_synopsis",
    "SegmentSketches",
    "endpoint_join_truth",
    "estimate_spatial_join",
    "exact_spatial_join",
    "sketch_segment_dataset",
]
