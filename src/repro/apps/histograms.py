"""Selectivity estimation and dynamic-histogram bucket scoring
(paper Application 3, Figure 4).

A histogram construction algorithm over streaming data (Thaper et al.
[22]) repeatedly needs the *average frequency* of candidate rectangular
buckets.  The sum of frequencies inside a rectangle is the size of join
between the data relation (points) and a virtual relation enumerating the
rectangle's cells -- an interval-input join, so a fast range-summable
scheme sketches the rectangle in O(d log side) instead of O(area).

``EH3`` path: data points cost one product-generator evaluation each; a
query rectangle costs one factorized rectangle range-sum.  ``DMAP`` path:
data points cost ``(n + 1)^d`` dyadic-id updates; a rectangle costs the
product of per-axis covers.  Figure 4 sweeps data skew and compares their
selectivity-estimation errors at equal sketch memory.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.rangesum.multidim import Rect
from repro.query import engine as query_engine
from repro.sketch.ams import SketchMatrix, SketchScheme
from repro.stream.exact import region_frequency_sum

__all__ = [
    "sketch_data_points",
    "sketch_region",
    "estimate_region_count",
    "estimate_average_frequency",
    "exact_region_count",
    "rect_area",
    "SelectivityEstimator",
]


def rect_area(rect: Rect) -> int:
    """Number of cells inside an axis-aligned rectangle."""
    area = 1
    for low, high in rect:
        if high < low:
            raise ValueError(f"empty extent ({low}, {high})")
        area *= high - low + 1
    return area


def sketch_data_points(scheme: SketchScheme, points: np.ndarray) -> SketchMatrix:
    """Sketch the data relation: one point update per data point."""
    sketch = scheme.sketch()
    for point in np.asarray(points):
        sketch.update_point(tuple(int(c) for c in point))
    return sketch


def sketch_region(scheme: SketchScheme, rect: Rect) -> SketchMatrix:
    """Sketch the virtual relation enumerating one rectangle's cells."""
    sketch = scheme.sketch()
    sketch.update_interval(rect)
    return sketch


def estimate_region_count(
    data_sketch: SketchMatrix, scheme: SketchScheme, rect: Rect
) -> float:
    """Estimated number of data points falling inside ``rect``."""
    return query_engine.product(
        data_sketch, sketch_region(scheme, rect), kind="region"
    ).value


def estimate_average_frequency(
    data_sketch: SketchMatrix, scheme: SketchScheme, rect: Rect
) -> float:
    """Estimated average frequency of the rectangle (bucket score)."""
    return estimate_region_count(data_sketch, scheme, rect) / rect_area(rect)


def exact_region_count(points: np.ndarray, rect: Rect) -> int:
    """Ground-truth point count inside the rectangle."""
    return region_frequency_sum(points, rect)


class SelectivityEstimator:
    """Convenience wrapper: sketch the data once, query many rectangles."""

    def __init__(self, scheme: SketchScheme, points: np.ndarray) -> None:
        self.scheme = scheme
        self.points = np.asarray(points, dtype=np.int64)
        self.data_sketch = sketch_data_points(scheme, self.points)

    def count(self, rect: Rect) -> float:
        """Estimated point count inside ``rect``."""
        return estimate_region_count(self.data_sketch, self.scheme, rect)

    def selectivity(self, rect: Rect) -> float:
        """Estimated fraction of the data falling inside ``rect``."""
        total = len(self.points)
        if total == 0:
            raise ValueError("selectivity undefined for an empty dataset")
        return self.count(rect) / total

    def average_frequency(self, rect: Rect) -> float:
        """Estimated bucket score for dynamic histogram construction."""
        return self.count(rect) / rect_area(rect)

    def exact_count(self, rect: Rect) -> int:
        """Ground truth for error reporting."""
        return exact_region_count(self.points, rect)


def random_query_rects(
    rng: np.random.Generator,
    domain_bits: Sequence[int],
    count: int,
    min_side: int = 16,
    max_side: int = 512,
) -> list[tuple[tuple[int, int], ...]]:
    """Random axis-aligned query rectangles for selectivity experiments."""
    rects = []
    for _ in range(count):
        rect = []
        for bits in domain_bits:
            size = 1 << bits
            side = int(rng.integers(min_side, min(max_side, size) + 1))
            low = int(rng.integers(0, size - side + 1))
            rect.append((low, low + side - 1))
        rects.append(tuple(rect))
    return rects
