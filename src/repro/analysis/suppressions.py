"""Inline suppression comments: ``# repro: allow[R00x] reason``.

A suppression silences one or more rules on the line it annotates.  It
may share the flagged line or stand alone on the line directly above
(for lines too long to carry a trailing comment).  The reason string is
mandatory: a reasonless ``allow`` does not suppress anything and is
itself reported (rule ``R000``), so every silenced finding documents why
it is safe.

:mod:`repro.analysis.rules` additionally recognizes the repo's
established ``# noqa: BLE001 -- reason`` convention for broad exception
handlers (rule R004); that parsing lives with the rule, not here.
"""

from __future__ import annotations

import re
from dataclasses import dataclass

__all__ = ["Suppression", "collect_suppressions"]

_ALLOW_RE = re.compile(
    r"#\s*repro:\s*allow\[\s*([A-Z][0-9]{3}(?:\s*,\s*[A-Z][0-9]{3})*)\s*\]"
    r"\s*(.*?)\s*$"
)


@dataclass(frozen=True)
class Suppression:
    """One ``repro: allow`` comment: which rules, where, and why."""

    line: int
    rules: tuple[str, ...]
    reason: str
    #: True when the comment is the line's only content, so it covers the
    #: *next* line instead of its own.
    standalone: bool

    @property
    def covered_line(self) -> int:
        """The source line this suppression silences."""
        return self.line + 1 if self.standalone else self.line

    def covers(self, rule: str, line: int) -> bool:
        """Does this suppression silence ``rule`` at ``line``?"""
        return bool(self.reason) and rule in self.rules and (
            line == self.covered_line
        )


def collect_suppressions(source_lines: list[str]) -> list[Suppression]:
    """Every ``repro: allow`` comment in a file, 1-indexed by line."""
    found = []
    for number, text in enumerate(source_lines, start=1):
        match = _ALLOW_RE.search(text)
        if match is None:
            continue
        rules = tuple(
            part.strip() for part in match.group(1).split(",") if part.strip()
        )
        reason = match.group(2).strip()
        standalone = text[: match.start()].strip() == ""
        found.append(
            Suppression(
                line=number, rules=rules, reason=reason, standalone=standalone
            )
        )
    return found
