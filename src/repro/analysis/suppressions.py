"""Inline suppression comments: ``# repro: allow[R00x] reason``.

A suppression silences one or more rules on the line it annotates.  It
may share the flagged line or stand alone on the line directly above
(for lines too long to carry a trailing comment).  The reason string is
mandatory: a reasonless ``allow`` does not suppress anything and is
itself reported (rule ``R000``), so every silenced finding documents why
it is safe.

:mod:`repro.analysis.rules` additionally recognizes the repo's
established ``# noqa: BLE001 -- reason`` convention for broad exception
handlers (rule R004); that parsing lives with the rule, not here.
"""

from __future__ import annotations

import io
import re
import tokenize
from dataclasses import dataclass

__all__ = ["Suppression", "collect_suppressions"]

_ALLOW_RE = re.compile(
    r"#\s*repro:\s*allow\[\s*([A-Z][0-9]{3}(?:\s*,\s*[A-Z][0-9]{3})*)\s*\]"
    r"\s*(.*?)\s*$"
)


@dataclass(frozen=True)
class Suppression:
    """One ``repro: allow`` comment: which rules, where, and why."""

    line: int
    rules: tuple[str, ...]
    reason: str
    #: True when the comment is the line's only content, so it covers the
    #: *next* line instead of its own.
    standalone: bool

    @property
    def covered_line(self) -> int:
        """The source line this suppression silences."""
        return self.line + 1 if self.standalone else self.line

    def covers(self, rule: str, line: int) -> bool:
        """Does this suppression silence ``rule`` at ``line``?"""
        return bool(self.reason) and rule in self.rules and (
            line == self.covered_line
        )


def _comment_columns(source_lines: list[str]) -> dict[int, int] | None:
    """Line number -> column of the line's real ``#`` comment token.

    Distinguishes comments from ``#`` characters inside string literals
    (rule messages quote the marker syntax, and a line scan would
    mistake those for live suppressions).  Returns ``None`` when the
    source cannot be tokenized; the caller falls back to trusting the
    line scan.
    """
    source = "\n".join(source_lines) + "\n"
    columns: dict[int, int] = {}
    try:
        for token in tokenize.generate_tokens(io.StringIO(source).readline):
            if token.type == tokenize.COMMENT:
                columns[token.start[0]] = token.start[1]
    except (tokenize.TokenError, IndentationError, SyntaxError):
        return None
    return columns


def collect_suppressions(source_lines: list[str]) -> list[Suppression]:
    """Every ``repro: allow`` comment in a file, 1-indexed by line."""
    found = []
    comments = _comment_columns(source_lines)
    for number, text in enumerate(source_lines, start=1):
        match = _ALLOW_RE.search(text)
        if match is None:
            continue
        if comments is not None and (
            number not in comments or match.start() < comments[number]
        ):
            continue  # the marker text sits inside a string literal
        rules = tuple(
            part.strip() for part in match.group(1).split(",") if part.strip()
        )
        reason = match.group(2).strip()
        standalone = text[: match.start()].strip() == ""
        found.append(
            Suppression(
                line=number, rules=rules, reason=reason, standalone=standalone
            )
        )
    return found
