"""Changed-line extraction for ``analyze --diff <ref>``.

Asks ``git diff -U0`` which new-side lines differ from a base ref and
returns them per file, so the analyzer can report only findings a
change actually touched.  Pre-commit runs the analyzer this way: the
full-repo strict gate stays in CI, while the hook stays fast and only
complains about lines the commit author just wrote.
"""

from __future__ import annotations

import re
import subprocess
from pathlib import Path

__all__ = ["DiffError", "changed_lines"]

_HUNK_RE = re.compile(r"^@@ -\d+(?:,\d+)? \+(\d+)(?:,(\d+))? @@")


class DiffError(RuntimeError):
    """``git diff`` could not produce a usable changed-line set."""


def changed_lines(ref: str, root: Path) -> dict[str, set[int]]:
    """New-side changed line numbers per file, relative to ``ref``.

    Paths are repo-root-relative posix strings (the same shape the
    analyzer reports).  Deleted files have no new side and do not
    appear; a file with only deletions maps to an empty set.
    """
    command = [
        "git",
        "-C",
        str(root),
        "diff",
        "--unified=0",
        "--no-color",
        ref,
        "--",
        "*.py",
    ]
    try:
        completed = subprocess.run(
            command, capture_output=True, text=True, check=False
        )
    except OSError as exc:
        raise DiffError(f"could not run git: {exc}") from exc
    if completed.returncode not in (0, 1):
        detail = completed.stderr.strip() or f"exit {completed.returncode}"
        raise DiffError(f"git diff {ref!r} failed: {detail}")

    changed: dict[str, set[int]] = {}
    current: set[int] | None = None
    for line in completed.stdout.splitlines():
        if line.startswith("+++ "):
            target = line[4:].strip()
            if target == "/dev/null":
                current = None
                continue
            if target.startswith("b/"):
                target = target[2:]
            current = changed.setdefault(target, set())
            continue
        match = _HUNK_RE.match(line)
        if match and current is not None:
            start = int(match.group(1))
            count = int(match.group(2)) if match.group(2) else 1
            current.update(range(start, start + count))
    return changed
