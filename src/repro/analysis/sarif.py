"""SARIF 2.1.0 rendering of an analyze scan.

CI uploads this as a build artifact so findings are browsable in code
hosting UIs that understand SARIF.  The rendering is deliberately
minimal -- one run, one tool, one result per violation -- and stores the
baseline fingerprint under ``partialFingerprints`` so external viewers
dedupe results the same way ``--strict`` does.
"""

from __future__ import annotations

import json
from typing import Iterable, Sequence

from repro.analysis.rules import Rule
from repro.analysis.violations import Violation

__all__ = ["SARIF_VERSION", "to_sarif", "render_sarif"]

SARIF_VERSION = "2.1.0"
_SCHEMA = (
    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
    "Schemata/sarif-schema-2.1.0.json"
)


def to_sarif(
    violations: Iterable[Violation],
    rules: Sequence[Rule],
    baseline: frozenset[str] = frozenset(),
) -> dict:
    """A SARIF log dict for one scan.

    Baselined findings are carried with level ``note`` so the artifact
    shows the full picture while viewers sort fresh findings first.
    """
    # R000 is emitted by the engine itself (suppression hygiene, parse
    # failures), not by a Rule object, so it gets a static entry.
    rule_entries: list[dict[str, object]] = [
        {
            "id": "R000",
            "name": "AnalyzerHygiene",
            "shortDescription": {
                "text": "suppression hygiene and parse failures"
            },
            "helpUri": "docs/static-analysis.md",
        }
    ]
    rule_entries.extend(
        {
            "id": rule.id,
            "name": type(rule).__name__,
            "shortDescription": {"text": rule.title},
            "helpUri": "docs/static-analysis.md",
        }
        for rule in rules
    )
    rule_order = {
        str(entry["id"]): index for index, entry in enumerate(rule_entries)
    }
    results: list[dict[str, object]] = []
    for violation in violations:
        fingerprint = violation.fingerprint()
        entry = {
            "ruleId": violation.rule,
            "level": "note" if fingerprint in baseline else "error",
            "message": {"text": violation.message},
            "locations": [
                {
                    "physicalLocation": {
                        "artifactLocation": {"uri": violation.path},
                        "region": {
                            "startLine": violation.line,
                            "startColumn": violation.column,
                        },
                    }
                }
            ],
            "partialFingerprints": {"reproFingerprint/v1": fingerprint},
        }
        if violation.rule in rule_order:
            entry["ruleIndex"] = rule_order[violation.rule]
        if violation.why:
            entry["message"] = {
                "text": violation.message,
                "markdown": violation.message
                + "\n\n"
                + "\n".join(f"- {step}" for step in violation.why),
            }
        results.append(entry)
    return {
        "$schema": _SCHEMA,
        "version": SARIF_VERSION,
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": "repro-analyze",
                        "informationUri": "docs/static-analysis.md",
                        "rules": rule_entries,
                    }
                },
                "results": results,
            }
        ],
    }


def render_sarif(
    violations: Iterable[Violation],
    rules: Sequence[Rule],
    baseline: frozenset[str] = frozenset(),
) -> str:
    """The SARIF log as pretty-printed JSON text."""
    return json.dumps(
        to_sarif(violations, rules, baseline), indent=2, sort_keys=False
    ) + "\n"
