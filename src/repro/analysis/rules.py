"""The per-file domain rules (R001-R007, R012) and the rule registry.

Each rule encodes an invariant the generic linters cannot see because it
is about *this* codebase's arithmetic and architecture:

R001  scheme dispatch goes through the capability registry, never through
      ``isinstance`` ladders over generator/channel classes;
R002  kernel modules pin every numpy dtype -- the exact bit-level
      arithmetic (Mersenne reduction, GF(2) products, packed uint64
      planes) breaks silently under platform-default integer widths;
R003  nothing on an estimator or generator path consumes unseeded
      randomness or wall-clock time -- reproducibility is a paper-level
      invariant (every figure must replay bit-identically from a seed);
R004  broad exception handlers on the durability paths (the ``stream``
      layer and the ``cluster`` shard supervisor) are deliberate,
      documented boundaries, never accidental swallows;
R005  all timing flows through the observability layer's injected clock
      (``repro.obs.monotonic``) -- direct ``time.monotonic()`` /
      ``time.perf_counter()`` calls outside ``repro.obs`` and
      ``repro.bench`` make recorded durations impossible to replay
      deterministically under a fake clock;
R006  kernel-tier modules (the packed plane and the interpreted
      backends) stay vectorized and branch-free: no Python-level ``%``
      (Mersenne moduli fold with shifts and adds, see
      ``repro.core.primefield``) and no per-element loops -- a
      whole-batch traversal that must iterate (per seed bit, per index
      byte, per Horner degree) carries a ``# repro: allow[R006]``
      justification on the loop header;
R012  ``obs.span()`` / ``obs.start_span()`` handles are either used as
      context managers or explicitly ``.end()``ed -- an unclosed span
      records nothing and unbalances the trace collector's stack,
      corrupting the parent links of every later span in the stitched
      trace.

Rules here see one parsed file at a time and yield :class:`Violation`
records; suppression filtering happens in :mod:`repro.analysis.engine`.
The interprocedural dataflow rules (R008-R011) live in
:mod:`repro.analysis.dataflow` and run over the project call graph; this
module registers both tiers in :data:`ALL_RULES`.
"""

from __future__ import annotations

import ast
import re
from typing import Iterable, Iterator

from repro.analysis.base import (
    Rule,
    dotted_name as _dotted,
    path_segments as _segments,
    snippet_at as _snippet,
)
from repro.analysis.dataflow import PROJECT_RULES
from repro.analysis.violations import Violation

__all__ = ["Rule", "ALL_RULES", "FILE_RULES", "PROJECT_RULES", "rule_by_id"]

#: Generator/channel classes owned by the scheme registry.  ``isinstance``
#: against any of these outside ``repro.schemes`` is hand-wired dispatch
#: that a new scheme registration would silently miss (R001).
DISPATCH_TYPES = frozenset(
    {
        "Generator",
        "EH3",
        "BCH",
        "BCH3",
        "BCH5",
        "RM7",
        "PolynomialsOverPrimes",
        "Toeplitz",
        "ToeplitzHash",
        "DMAP",
        "DyadicMapper",
        "RangeSummable",
        "ProductGenerator",
        "ProductDMAP",
        "AtomicChannel",
        "GeneratorChannel",
        "DMAPChannel",
        "ProductChannel",
        "ProductDMAPChannel",
    }
)

#: numpy array constructors whose platform-default dtype (``intp`` --
#: int32 on 64-bit Windows) silently narrows kernel arithmetic, plus the
#: positional index at which each accepts ``dtype``.
_CONSTRUCTOR_DTYPE_POS = {
    "arange": 3,
    "zeros": 1,
    "ones": 1,
    "empty": 1,
    "full": 2,
}

#: numpy reductions whose *accumulator* dtype defaults to the platform
#: integer for integer inputs -- the classic silent-overflow vector.
_ACCUMULATORS = frozenset({"sum", "prod", "cumsum", "cumprod"})

#: Legacy global-state numpy RNG entry points (unseedable per call site).
_GLOBAL_RNG_ATTRS = frozenset(
    {
        "rand",
        "randn",
        "randint",
        "random",
        "random_sample",
        "choice",
        "shuffle",
        "permutation",
        "seed",
        "uniform",
        "normal",
        "zipf",
        "exponential",
        "poisson",
    }
)

#: stdlib ``random`` module functions that draw from hidden global state.
_STDLIB_RANDOM_FUNCS = frozenset(
    {
        "random",
        "randint",
        "randrange",
        "getrandbits",
        "choice",
        "choices",
        "sample",
        "shuffle",
        "uniform",
        "gauss",
        "normalvariate",
        "betavariate",
        "expovariate",
        "seed",
    }
)

_BLE_BOUNDARY_RE = re.compile(r"#\s*noqa:\s*BLE001\s*--\s*\S")


class RegistryBypass(Rule):
    """R001: ``isinstance``/``issubclass`` over scheme-owned classes."""

    id = "R001"
    title = "registry-bypass dispatch"

    def applies_to(self, path: str) -> bool:
        segments = _segments(path)
        # repro.schemes owns the one blessed set of structural checks
        # (the registered channel codecs); the analyzer itself is meta.
        return "schemes" not in segments and "analysis" not in segments

    def _class_names(self, node: ast.expr) -> Iterable[str]:
        candidates = (
            node.elts if isinstance(node, ast.Tuple) else [node]
        )
        for candidate in candidates:
            dotted = _dotted(candidate)
            if dotted is None:
                continue
            if dotted.startswith(("np.", "numpy.")):
                # numpy's own types (np.integer, np.random.Generator, ...)
                # are structural value checks, not scheme dispatch.
                continue
            name = dotted.rsplit(".", 1)[-1]
            if name in DISPATCH_TYPES:
                yield name

    def check(
        self, tree: ast.AST, lines: list[str], path: str
    ) -> Iterator[Violation]:
        for node in ast.walk(tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if not (
                isinstance(func, ast.Name)
                and func.id in ("isinstance", "issubclass")
            ):
                continue
            if len(node.args) < 2:
                continue
            for name in self._class_names(node.args[1]):
                yield self._violation(
                    path,
                    node,
                    f"{func.id} dispatch on scheme-owned class {name!r}; "
                    "use the capability registry (repro.schemes.spec_for / "
                    "channel_kind) so new scheme registrations are not "
                    "silently skipped",
                    lines,
                )


class IntegerWidthHazard(Rule):
    """R002: numpy calls in kernel modules must pin their dtype."""

    id = "R002"
    title = "unpinned numpy dtype in kernel module"

    def applies_to(self, path: str) -> bool:
        segments = _segments(path)
        if "core" in segments or "rangesum" in segments:
            return True
        posix = path.replace("\\", "/")
        return posix.endswith("sketch/plane.py") or "sketch/backends/" in posix

    def check(
        self, tree: ast.AST, lines: list[str], path: str
    ) -> Iterator[Violation]:
        for node in ast.walk(tree):
            if not isinstance(node, ast.Call):
                continue
            dotted = _dotted(node.func)
            if dotted is None or "." not in dotted:
                continue
            prefix, attr = dotted.rsplit(".", 1)
            if prefix not in ("np", "numpy"):
                continue
            has_dtype = any(kw.arg == "dtype" for kw in node.keywords)
            if attr in _CONSTRUCTOR_DTYPE_POS:
                positional = len(node.args) > _CONSTRUCTOR_DTYPE_POS[attr]
                if not has_dtype and not positional:
                    yield self._violation(
                        path,
                        node,
                        f"np.{attr} without an explicit dtype in a kernel "
                        "module; the platform-default integer (int32 on "
                        "64-bit Windows) silently narrows exact bit-level "
                        "arithmetic -- pin dtype=np.uint64/np.int64",
                        lines,
                    )
            elif attr in _ACCUMULATORS and not has_dtype:
                yield self._violation(
                    path,
                    node,
                    f"np.{attr} without an explicit accumulator dtype in a "
                    "kernel module; integer reductions accumulate in the "
                    "platform default width and can overflow silently",
                    lines,
                )


class DeterminismGuard(Rule):
    """R003: no unseeded or global-state randomness, no wall-clock."""

    id = "R003"
    title = "non-deterministic source"

    def applies_to(self, path: str) -> bool:
        return "analysis" not in _segments(path)

    def _random_aliases(self, tree: ast.AST) -> tuple[set[str], set[str]]:
        """(module aliases of ``random``, names imported from it)."""
        modules: set[str] = set()
        names: set[str] = set()
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.name == "random":
                        modules.add(alias.asname or "random")
            elif isinstance(node, ast.ImportFrom) and node.module == "random":
                for alias in node.names:
                    if alias.name in _STDLIB_RANDOM_FUNCS:
                        names.add(alias.asname or alias.name)
        return modules, names

    def check(
        self, tree: ast.AST, lines: list[str], path: str
    ) -> Iterator[Violation]:
        random_modules, random_names = self._random_aliases(tree)
        for node in ast.walk(tree):
            if not isinstance(node, ast.Call):
                continue
            dotted = _dotted(node.func)
            if dotted is not None:
                if dotted.endswith("random.default_rng") and not (
                    node.args or node.keywords
                ):
                    yield self._violation(
                        path,
                        node,
                        "unseeded np.random.default_rng(); every figure and "
                        "estimate must replay bit-identically from an "
                        "explicit seed -- thread a seed or Generator in",
                        lines,
                    )
                    continue
                head, _, attr = dotted.rpartition(".")
                if (
                    head in ("np.random", "numpy.random")
                    and attr in _GLOBAL_RNG_ATTRS
                ):
                    yield self._violation(
                        path,
                        node,
                        f"legacy global-state np.random.{attr}; use an "
                        "explicitly seeded np.random.Generator",
                        lines,
                    )
                    continue
                if dotted in ("time.time", "time.time_ns"):
                    yield self._violation(
                        path,
                        node,
                        "wall-clock time on a deterministic path; use "
                        "the injected clock (repro.obs.monotonic) for "
                        "measurement or pass timestamps in",
                        lines,
                    )
                    continue
                if (
                    "." in dotted
                    and dotted.split(".", 1)[0] in random_modules
                    and dotted.rsplit(".", 1)[-1] in _STDLIB_RANDOM_FUNCS
                ):
                    yield self._violation(
                        path,
                        node,
                        f"stdlib {dotted} draws from hidden global state; "
                        "use an explicitly seeded np.random.Generator",
                        lines,
                    )
                    continue
                if "." not in dotted and dotted in random_names:
                    yield self._violation(
                        path,
                        node,
                        f"stdlib random.{dotted} draws from hidden global "
                        "state; use an explicitly seeded np.random.Generator",
                        lines,
                    )


class ExceptionBoundaryAudit(Rule):
    """R004: broad handlers on durability paths carry a boundary note.

    Covers both the single-process durability layer (``stream``) and the
    shard cluster (``cluster``), whose coordinator and workers catch
    broadly at supervision boundaries for the same reason the WAL code
    does: to convert worker faults into replies and restarts instead of
    losing acknowledged updates.
    """

    id = "R004"
    title = "undocumented broad exception handler"

    def applies_to(self, path: str) -> bool:
        segments = _segments(path)
        return "stream" in segments or "cluster" in segments

    def _is_broad(self, handler: ast.ExceptHandler) -> bool:
        if handler.type is None:
            return True
        types = (
            handler.type.elts
            if isinstance(handler.type, ast.Tuple)
            else [handler.type]
        )
        for entry in types:
            dotted = _dotted(entry)
            if dotted is not None and dotted.rsplit(".", 1)[-1] in (
                "Exception",
                "BaseException",
            ):
                return True
        return False

    def check(
        self, tree: ast.AST, lines: list[str], path: str
    ) -> Iterator[Violation]:
        for node in ast.walk(tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            if not self._is_broad(node):
                continue
            if _BLE_BOUNDARY_RE.search(_snippet(lines, node.lineno)):
                continue
            yield self._violation(
                path,
                node,
                "broad exception handler in the durability layer without a "
                "'# noqa: BLE001 -- reason' boundary comment; swallowed "
                "errors here can silently drop acknowledged updates",
                lines,
            )


#: ``time`` module functions R005 reserves for the observability layer.
_MONOTONIC_FUNCS = frozenset(
    {"monotonic", "monotonic_ns", "perf_counter", "perf_counter_ns"}
)


class ClockInjectionGuard(Rule):
    """R005: timing goes through the injected clock, not ``time.*``."""

    id = "R005"
    title = "direct monotonic clock call"

    def applies_to(self, path: str) -> bool:
        # repro.obs owns the injected clock and repro.bench is the one
        # blessed raw-timing harness (its numbers *should* be wall time).
        segments = _segments(path)
        if "obs" in segments:
            return False
        return not path.replace("\\", "/").endswith("repro/bench.py")

    def _time_aliases(self, tree: ast.AST) -> tuple[set[str], set[str]]:
        """(module aliases of ``time``, names imported from it)."""
        modules: set[str] = set()
        names: set[str] = set()
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.name == "time":
                        modules.add(alias.asname or "time")
            elif isinstance(node, ast.ImportFrom) and node.module == "time":
                for alias in node.names:
                    if alias.name in _MONOTONIC_FUNCS:
                        names.add(alias.asname or alias.name)
        return modules, names

    def check(
        self, tree: ast.AST, lines: list[str], path: str
    ) -> Iterator[Violation]:
        time_modules, time_names = self._time_aliases(tree)
        for node in ast.walk(tree):
            if not isinstance(node, ast.Call):
                continue
            dotted = _dotted(node.func)
            if dotted is None:
                continue
            if "." in dotted:
                head, _, attr = dotted.rpartition(".")
                flagged = head in time_modules and attr in _MONOTONIC_FUNCS
            else:
                attr = dotted
                flagged = dotted in time_names
            if flagged:
                yield self._violation(
                    path,
                    node,
                    f"direct time.{attr}() outside repro.obs/repro.bench; "
                    "read the injected clock (repro.obs.monotonic / "
                    "obs.span) so recorded durations replay "
                    "deterministically under a fake clock",
                    lines,
                )


class KernelLoopGuard(Rule):
    """R006: kernel-tier code is vectorized and branch-free.

    The packed-plane layer and the interpreted backends are the hot
    tier: a Python-level ``%`` there usually means a scalar Mersenne
    reduction leaked out of :mod:`repro.core.primefield`'s shift-add
    folds, and a ``for``/``while`` statement usually means per-element
    iteration that belongs in the numba backend or a whole-batch numpy
    pass.  Only the *outermost* loop of a nesting is flagged: the
    justification on a per-word pass covers its per-byte body.  The
    numba backend is exempt (``@njit`` compiles scalar loops -- that is
    its entire point), as is the backend package ``__init__`` (registry
    dispatch, no kernels).
    """

    id = "R006"
    title = "scalar modulo or Python-level loop in the kernel tier"

    #: Kernel-hosting modules outside ``sketch/backends/``.
    _TIER_SUFFIXES = ("sketch/plane.py", "schemes/builtin.py")

    def applies_to(self, path: str) -> bool:
        posix = path.replace("\\", "/")
        if "sketch/backends/" in posix:
            return not posix.endswith(("numba_backend.py", "__init__.py"))
        return posix.endswith(self._TIER_SUFFIXES)

    def _is_string_format(self, node: ast.BinOp) -> bool:
        left = node.left
        return isinstance(left, ast.JoinedStr) or (
            isinstance(left, ast.Constant) and isinstance(left.value, str)
        )

    _MOD_MESSAGE = (
        "Python-level '%' in the kernel tier; Mersenne moduli reduce "
        "branch-free via shift-add folds "
        "(repro.core.primefield.mod_mersenne_array) -- justify anything "
        "else with '# repro: allow[R006] reason'"
    )

    _LOOP_MESSAGE = (
        "Python-level loop in the kernel tier; per-element iteration "
        "belongs in the numba backend or a vectorized whole-batch pass "
        "-- per-bit/per-byte/per-degree traversals must say so with "
        "'# repro: allow[R006] reason' on the loop header"
    )

    def _loop_violations(
        self, node: ast.AST, lines: list[str], path: str
    ) -> Iterator[Violation]:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.For, ast.AsyncFor, ast.While)):
                # Flag the outermost loop only; nested loops are the
                # body of the traversal the outer justification covers.
                yield self._violation(path, child, self._LOOP_MESSAGE, lines)
            else:
                yield from self._loop_violations(child, lines, path)

    def check(
        self, tree: ast.AST, lines: list[str], path: str
    ) -> Iterator[Violation]:
        for node in ast.walk(tree):
            mod_binop = (
                isinstance(node, ast.BinOp)
                and isinstance(node.op, ast.Mod)
                and not self._is_string_format(node)
            )
            mod_augassign = isinstance(node, ast.AugAssign) and isinstance(
                node.op, ast.Mod
            )
            if mod_binop or mod_augassign:
                yield self._violation(path, node, self._MOD_MESSAGE, lines)
        yield from self._loop_violations(tree, lines, path)


class EstimatePathBypass(Rule):
    """R007: every estimate must flow through the query engine.

    ``repro.query`` centralizes the median-of-means reduction, the
    variance/CI accounting and the ``query.*`` instruments; a direct
    call to the legacy estimate front-ends anywhere else produces a bare
    float with none of that attached.  The front-ends themselves
    (``sketch/ams.py``, ``sketch/estimators.py``) are exempt -- they
    delegate to the engine and exist for compatibility -- as is
    ``repro/query/`` itself.
    """

    id = "R007"
    title = "estimate call outside the query engine"

    _BANNED = frozenset(
        {"estimate_product", "estimate_join_size", "estimate_self_join"}
    )

    def applies_to(self, path: str) -> bool:
        segments = _segments(path)
        if "query" in segments or "analysis" in segments:
            return False
        posix = path.replace("\\", "/")
        return not posix.endswith(("sketch/ams.py", "sketch/estimators.py"))

    def check(
        self, tree: ast.AST, lines: list[str], path: str
    ) -> Iterator[Violation]:
        for node in ast.walk(tree):
            if not isinstance(node, ast.Call):
                continue
            dotted = _dotted(node.func)
            if dotted is None:
                continue
            name = dotted.rsplit(".", 1)[-1]
            if name in self._BANNED:
                yield self._violation(
                    path,
                    node,
                    f"direct {name} call bypasses the query engine; go "
                    "through repro.query.engine (product/join_size/"
                    "self_join/execute) so plans, Estimate error "
                    "accounting and query.* metrics stay attached -- or "
                    "justify with '# repro: allow[R007] reason'",
                    lines,
                )


class SpanLifecycleGuard(Rule):
    """R012: span handles are context-managed or explicitly ended.

    ``obs.span()`` returns a context manager and ``obs.start_span()`` an
    already-entered span: a handle that never reaches ``__exit__`` /
    ``.end()`` records nothing and leaves the trace collector's stack
    unbalanced, silently corrupting every later parent/child link in the
    stitched trace.  The check is per scope: a span call must be a
    ``with`` item, or be bound to a name that is later used as a ``with``
    item or has ``.end()`` called on it in the same scope.  A bare
    expression statement discards the handle outright.  Calls forwarded
    elsewhere (returned, passed as an argument) transfer ownership and
    are not flagged.  ``repro.obs`` itself (which implements the
    machinery) is exempt.
    """

    id = "R012"
    title = "span handle never closed"

    _FACTORIES = frozenset(
        {"span", "obs.span", "start_span", "obs.start_span"}
    )

    def applies_to(self, path: str) -> bool:
        return "obs" not in _segments(path)

    def _scope_walk(self, body: Iterable[ast.stmt]) -> Iterator[ast.AST]:
        """Every node of a scope, not descending into nested functions."""
        stack: list[ast.AST] = list(body)
        while stack:
            node = stack.pop()
            if isinstance(
                node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)
            ):
                # A nested (or module-level) function is its own scope;
                # ``check`` walks its body separately.
                continue
            yield node
            stack.extend(ast.iter_child_nodes(node))

    def _check_scope(
        self, body: Iterable[ast.stmt], lines: list[str], path: str
    ) -> Iterator[Violation]:
        with_calls: set[int] = set()  # span calls used as `with` items
        with_names: set[str] = set()  # names used as `with` items
        ended: set[str] = set()  # names with a .end() call
        discarded: set[int] = set()  # bare-Expr statement calls
        assigned: dict[int, tuple[str, ast.Call]] = {}
        span_calls: list[ast.Call] = []
        for node in self._scope_walk(body):
            if isinstance(node, (ast.With, ast.AsyncWith)):
                for item in node.items:
                    expr = item.context_expr
                    if isinstance(expr, ast.Call):
                        with_calls.add(id(expr))
                    elif isinstance(expr, ast.Name):
                        with_names.add(expr.id)
            elif isinstance(node, ast.Expr) and isinstance(
                node.value, ast.Call
            ):
                discarded.add(id(node.value))
            elif isinstance(node, (ast.Assign, ast.AnnAssign)):
                value = node.value
                targets = (
                    node.targets
                    if isinstance(node, ast.Assign)
                    else [node.target]
                )
                if (
                    isinstance(value, ast.Call)
                    and _dotted(value.func) in self._FACTORIES
                    and len(targets) == 1
                    and isinstance(targets[0], ast.Name)
                ):
                    assigned[id(value)] = (targets[0].id, value)
            elif isinstance(node, ast.Call):
                dotted = _dotted(node.func)
                if dotted in self._FACTORIES:
                    span_calls.append(node)
                elif dotted is not None and dotted.endswith(".end"):
                    owner = dotted[: -len(".end")]
                    if "." not in owner:
                        ended.add(owner)
        for call in span_calls:
            if id(call) in with_calls:
                continue
            binding = assigned.get(id(call))
            if binding is not None:
                name = binding[0]
                if name in ended or name in with_names:
                    continue
                yield self._violation(
                    path,
                    call,
                    f"span handle {name!r} is never closed in this scope; "
                    "use it as a `with` item or call its .end() on every "
                    "path so the duration records and the trace stack "
                    "stays balanced -- or justify with "
                    "'# repro: allow[R012] reason'",
                    lines,
                )
            elif id(call) in discarded:
                yield self._violation(
                    path,
                    call,
                    "span handle discarded: the span never enters/exits, "
                    "so no duration records and nothing reaches the trace "
                    "collector; wrap the timed region in `with "
                    "obs.span(...)` -- or justify with "
                    "'# repro: allow[R012] reason'",
                    lines,
                )

    def check(
        self, tree: ast.AST, lines: list[str], path: str
    ) -> Iterator[Violation]:
        scopes: list[list[ast.stmt]] = [list(getattr(tree, "body", []))]
        for node in ast.walk(tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                scopes.append(node.body)
        for body in scopes:
            yield from self._check_scope(body, lines, path)


FILE_RULES: tuple[Rule, ...] = (
    RegistryBypass(),
    IntegerWidthHazard(),
    DeterminismGuard(),
    ExceptionBoundaryAudit(),
    ClockInjectionGuard(),
    KernelLoopGuard(),
    EstimatePathBypass(),
    SpanLifecycleGuard(),
)

ALL_RULES: tuple[Rule, ...] = (*FILE_RULES, *PROJECT_RULES)


def rule_by_id(rule_id: str) -> Rule:
    """The rule instance registered under ``rule_id``."""
    for rule in ALL_RULES:
        if rule.id == rule_id:
            return rule
    known = ", ".join(rule.id for rule in ALL_RULES)
    raise KeyError(f"unknown rule {rule_id!r}; known rules: {known}")
