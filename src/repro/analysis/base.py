"""Shared rule base class and AST helpers.

Both rule tiers -- the per-file rules of :mod:`repro.analysis.rules` and
the interprocedural dataflow rules of :mod:`repro.analysis.dataflow` --
derive from :class:`Rule` and share the same small AST vocabulary
(dotted-name extraction, path segmentation, snippet capture).  Living in
its own module keeps the import graph acyclic: ``rules`` registers the
dataflow rules without ``dataflow`` importing ``rules`` back.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.violations import Violation

__all__ = ["Rule", "ProjectRule", "dotted_name", "path_segments", "snippet_at"]


def path_segments(path: str) -> tuple[str, ...]:
    """``a/b/c.py`` split into its posix components."""
    return tuple(path.replace("\\", "/").split("/"))


def dotted_name(node: ast.expr) -> str | None:
    """``a.b.c`` for a Name/Attribute chain, else ``None``."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def snippet_at(lines: list[str], lineno: int) -> str:
    """The stripped source line at 1-indexed ``lineno`` (or '')."""
    if 1 <= lineno <= len(lines):
        return lines[lineno - 1].strip()
    return ""


class Rule:
    """One named invariant checked over a parsed source file."""

    id: str = ""
    title: str = ""

    def applies_to(self, path: str) -> bool:
        """Is ``path`` (posix-relative) inside this rule's scope?"""
        raise NotImplementedError

    def check(
        self, tree: ast.AST, lines: list[str], path: str
    ) -> Iterator[Violation]:
        """Yield every violation of this rule in one parsed file."""
        raise NotImplementedError

    def _violation(
        self,
        path: str,
        node: ast.AST,
        message: str,
        lines: list[str],
        why: tuple[str, ...] = (),
    ) -> Violation:
        lineno = getattr(node, "lineno", 1)
        return Violation(
            rule=self.id,
            path=path,
            line=lineno,
            column=getattr(node, "col_offset", 0) + 1,
            message=message,
            snippet=snippet_at(lines, lineno),
            why=why,
        )


class ProjectRule(Rule):
    """A rule that sees the whole project, not one file at a time.

    Project rules run in the engine's second pass, after the call graph
    is built; they implement :meth:`check_project` instead of ``check``.
    ``applies_to`` still scopes where their *findings* may land --
    the engine drops any violation reported at an out-of-scope path.
    """

    def check(
        self, tree: ast.AST, lines: list[str], path: str
    ) -> Iterator[Violation]:
        return iter(())

    def check_project(self, project: "object") -> Iterator[Violation]:
        """Yield every violation found over the whole project."""
        raise NotImplementedError
