"""Pass 1 of the interprocedural engine: symbols and the call graph.

:func:`build_call_graph` walks every parsed module of a project and
produces a :class:`CallGraph`: one node per function, method, class and
module body, plus a resolved call edge for every call site whose target
can be named statically.  Resolution understands the project's own
import graph (absolute and relative imports, aliases), ``self.method``
dispatch through the class hierarchy, decorator application, and a
guarded unique-method heuristic for ``obj.method(...)`` receivers whose
class cannot be inferred.

Anything the resolver cannot see -- ``getattr`` dispatch, calls on call
results, starred dynamic invocations -- degrades to a *recorded skip*
(:class:`GraphSkip`), never a crash: the graph reports how much of the
project it could not follow, and the dataflow rules treat those edges
as absent rather than guessing.

The graph serializes to a stable JSON document (:meth:`CallGraph.to_json`)
so ``repro-experiments analyze --graph PATH`` can publish it as an
artifact; a golden test pins the format.
"""

from __future__ import annotations

import ast
import json
from dataclasses import dataclass, field
from typing import Any, Iterator, Mapping

__all__ = [
    "CallGraph",
    "CallSite",
    "ClassInfo",
    "FunctionInfo",
    "GraphSkip",
    "ModuleSymbols",
    "build_call_graph",
    "module_name_for",
]

GRAPH_VERSION = 1

#: Method names owned by the builtin containers and file objects; the
#: unique-method heuristic never resolves these, because a receiver is
#: far more likely to be a ``list``/``dict``/``set``/file than the one
#: project class that happens to define the same name.
_BUILTIN_METHOD_NAMES = frozenset(
    {
        "append", "extend", "insert", "remove", "pop", "clear", "index",
        "count", "sort", "reverse", "copy", "get", "items", "keys",
        "values", "setdefault", "add", "discard", "union", "update",
        "join", "split", "strip", "startswith", "endswith", "format",
        "read", "write", "close", "flush", "seek", "tell", "readline",
        "encode", "decode", "lower", "upper", "replace", "open",
    }
)


def module_name_for(path: str) -> str:
    """The dotted module name a repo-relative path imports as.

    ``src/repro/stream/processor.py`` -> ``repro.stream.processor``;
    a package ``__init__.py`` maps to the package itself.  Components
    up to and including a ``src`` directory are dropped; paths with no
    ``src`` component use every directory component.
    """
    parts = list(path.replace("\\", "/").split("/"))
    if parts and parts[-1].endswith(".py"):
        parts[-1] = parts[-1][: -len(".py")]
    if "src" in parts:
        parts = parts[parts.index("src") + 1:]
    if parts and parts[-1] == "__init__":
        parts = parts[:-1]
    return ".".join(part for part in parts if part)


@dataclass(frozen=True)
class FunctionInfo:
    """One graph node: a function, method, class or module body."""

    key: str  #: ``path::qualname`` -- the node's stable identity.
    path: str
    qualname: str  #: ``f``, ``Class.method``, ``<module>`` ...
    lineno: int
    kind: str  #: ``function`` | ``method`` | ``class`` | ``module``
    is_async: bool = False
    params: tuple[str, ...] = ()
    decorators: tuple[str, ...] = ()

    @property
    def name(self) -> str:
        """The bare (un-qualified) name."""
        return self.qualname.rsplit(".", 1)[-1]


@dataclass(frozen=True)
class ClassInfo:
    """One class definition: its bases and methods, for dispatch."""

    key: str
    path: str
    name: str
    lineno: int
    bases: tuple[str, ...]  #: dotted base names as written
    methods: tuple[str, ...]


@dataclass(frozen=True)
class CallSite:
    """One call expression, resolved or not."""

    caller: str  #: key of the enclosing function node
    path: str
    lineno: int
    name: str  #: the dotted call text as written (``self.f``, ``np.sum``)
    callee: str | None  #: resolved project node key, or ``None``


@dataclass(frozen=True)
class GraphSkip:
    """One thing pass 1 could not follow, recorded instead of guessed."""

    path: str
    lineno: int
    reason: str  #: short machine-readable tag (``dynamic-getattr`` ...)
    detail: str


@dataclass
class ModuleSymbols:
    """Everything pass 1 learned about one module."""

    path: str
    module: str  #: dotted module name
    #: local alias -> absolute dotted target (``np`` -> ``numpy``,
    #: ``plane_decision`` -> ``repro.sketch.plane.plane_decision``).
    imports: dict[str, str] = field(default_factory=dict)
    functions: dict[str, FunctionInfo] = field(default_factory=dict)
    classes: dict[str, ClassInfo] = field(default_factory=dict)

    def resolve_dotted(self, dotted: str) -> str:
        """Expand the first segment of ``dotted`` through the imports.

        ``np.random.default_rng`` -> ``numpy.random.default_rng`` when
        the module did ``import numpy as np``; names with no matching
        import come back unchanged.
        """
        head, _, rest = dotted.partition(".")
        target = self.imports.get(head)
        if target is None:
            return dotted
        return f"{target}.{rest}" if rest else target


@dataclass
class CallGraph:
    """The project-wide call graph produced by pass 1."""

    functions: dict[str, FunctionInfo] = field(default_factory=dict)
    classes: dict[str, ClassInfo] = field(default_factory=dict)
    modules: dict[str, ModuleSymbols] = field(default_factory=dict)
    calls: list[CallSite] = field(default_factory=list)
    skips: list[GraphSkip] = field(default_factory=list)
    #: callee key -> caller keys (derived, rebuilt on load).
    callers: dict[str, set[str]] = field(default_factory=dict)
    #: caller key -> its call sites (derived, rebuilt on load).
    calls_from: dict[str, list[CallSite]] = field(default_factory=dict)

    def _index(self) -> None:
        self.callers = {}
        self.calls_from = {}
        for site in self.calls:
            self.calls_from.setdefault(site.caller, []).append(site)
            if site.callee is not None:
                self.callers.setdefault(site.callee, set()).add(site.caller)

    def caller_closure(self, key: str) -> set[str]:
        """``key`` plus every function that transitively calls it."""
        seen = {key}
        frontier = [key]
        while frontier:
            current = frontier.pop()
            for caller in self.callers.get(current, ()):
                if caller not in seen:
                    seen.add(caller)
                    frontier.append(caller)
        return seen

    def callee_closure(self, key: str) -> set[str]:
        """``key`` plus every project function it transitively calls."""
        seen = {key}
        frontier = [key]
        while frontier:
            current = frontier.pop()
            for site in self.calls_from.get(current, ()):
                if site.callee is not None and site.callee not in seen:
                    seen.add(site.callee)
                    frontier.append(site.callee)
        return seen

    def call_path(self, start: str, goal: str) -> list[CallSite]:
        """A shortest resolved call chain from ``start`` to ``goal``.

        Empty when no chain exists (or start == goal).  Used to build
        the ``why`` evidence attached to interprocedural findings.
        """
        if start == goal:
            return []
        parents: dict[str, CallSite] = {}
        frontier = [start]
        seen = {start}
        while frontier:
            current = frontier.pop(0)
            for site in self.calls_from.get(current, ()):
                callee = site.callee
                if callee is None or callee in seen:
                    continue
                parents[callee] = site
                if callee == goal:
                    chain: list[CallSite] = []
                    node = goal
                    while node != start:
                        site = parents[node]
                        chain.append(site)
                        node = site.caller
                    return list(reversed(chain))
                seen.add(callee)
                frontier.append(callee)
        return []

    def base_closure(self, class_key: str) -> set[str]:
        """Bare names of ``class_key``'s ancestors (project + external).

        Project bases are walked transitively; bases the project does
        not define contribute their final dotted component
        (``ValueError``, ``Exception``) and stop there.
        """
        names: set[str] = set()
        frontier = [class_key]
        seen = {class_key}
        by_name = {info.name: info for info in self.classes.values()}
        while frontier:
            info = self.classes.get(frontier.pop())
            if info is None:
                continue
            for base in info.bases:
                bare = base.rsplit(".", 1)[-1]
                names.add(bare)
                parent = by_name.get(bare)
                if parent is not None and parent.key not in seen:
                    seen.add(parent.key)
                    frontier.append(parent.key)
        return names

    def to_dict(self) -> dict[str, Any]:
        """A stable JSON-compatible form (sorted keys, no derived maps)."""
        return {
            "version": GRAPH_VERSION,
            "functions": [
                {
                    "key": info.key,
                    "path": info.path,
                    "qualname": info.qualname,
                    "lineno": info.lineno,
                    "kind": info.kind,
                    "is_async": info.is_async,
                    "params": list(info.params),
                    "decorators": list(info.decorators),
                }
                for info in sorted(
                    self.functions.values(), key=lambda f: f.key
                )
            ],
            "classes": [
                {
                    "key": info.key,
                    "path": info.path,
                    "name": info.name,
                    "lineno": info.lineno,
                    "bases": list(info.bases),
                    "methods": list(info.methods),
                }
                for info in sorted(self.classes.values(), key=lambda c: c.key)
            ],
            "calls": [
                {
                    "caller": site.caller,
                    "path": site.path,
                    "lineno": site.lineno,
                    "name": site.name,
                    "callee": site.callee,
                }
                for site in sorted(
                    self.calls,
                    key=lambda s: (s.path, s.lineno, s.name, s.caller),
                )
            ],
            "skips": [
                {
                    "path": skip.path,
                    "lineno": skip.lineno,
                    "reason": skip.reason,
                    "detail": skip.detail,
                }
                for skip in sorted(
                    self.skips, key=lambda s: (s.path, s.lineno, s.reason)
                )
            ],
        }

    def to_json(self) -> str:
        """The serialized artifact ``analyze --graph`` writes."""
        return json.dumps(self.to_dict(), indent=2, sort_keys=True) + "\n"

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "CallGraph":
        """Rebuild a graph (with derived indexes) from :meth:`to_dict`."""
        version = data.get("version")
        if version != GRAPH_VERSION:
            raise ValueError(
                f"call-graph artifact has version {version!r}; this "
                f"analyzer reads version {GRAPH_VERSION}"
            )
        graph = cls()
        for entry in data.get("functions", []):
            info = FunctionInfo(
                key=entry["key"],
                path=entry["path"],
                qualname=entry["qualname"],
                lineno=entry["lineno"],
                kind=entry["kind"],
                is_async=entry.get("is_async", False),
                params=tuple(entry.get("params", ())),
                decorators=tuple(entry.get("decorators", ())),
            )
            graph.functions[info.key] = info
        for entry in data.get("classes", []):
            info_c = ClassInfo(
                key=entry["key"],
                path=entry["path"],
                name=entry["name"],
                lineno=entry["lineno"],
                bases=tuple(entry.get("bases", ())),
                methods=tuple(entry.get("methods", ())),
            )
            graph.classes[info_c.key] = info_c
        for entry in data.get("calls", []):
            graph.calls.append(
                CallSite(
                    caller=entry["caller"],
                    path=entry["path"],
                    lineno=entry["lineno"],
                    name=entry["name"],
                    callee=entry.get("callee"),
                )
            )
        for entry in data.get("skips", []):
            graph.skips.append(
                GraphSkip(
                    path=entry["path"],
                    lineno=entry["lineno"],
                    reason=entry["reason"],
                    detail=entry.get("detail", ""),
                )
            )
        graph._index()
        return graph

    def summary(self) -> str:
        """One line of totals for the CLI."""
        resolved = sum(1 for site in self.calls if site.callee is not None)
        return (
            f"{len(self.functions)} function(s), {len(self.classes)} "
            f"class(es), {resolved}/{len(self.calls)} call(s) resolved, "
            f"{len(self.skips)} skip(s)"
        )


# ---------------------------------------------------------------------------
# Pass 1: symbol collection.
# ---------------------------------------------------------------------------


def _collect_imports(
    tree: ast.Module, module: str, is_package: bool
) -> dict[str, str]:
    imports: dict[str, str] = {}
    package_parts = module.split(".")
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.asname:
                    imports[alias.asname] = alias.name
                else:
                    # ``import a.b.c`` binds ``a``; attribute chains
                    # through it already spell the absolute name.
                    head = alias.name.split(".", 1)[0]
                    imports[head] = head
        elif isinstance(node, ast.ImportFrom):
            if node.level:
                # Relative import: climb ``level`` packages.  A package
                # ``__init__`` is its own level-1 base; a plain module
                # climbs to its containing package first.
                climb = node.level - 1 if is_package else node.level
                base_parts = package_parts[: len(package_parts) - climb]
                prefix = ".".join(base_parts)
                source = (
                    f"{prefix}.{node.module}" if node.module else prefix
                )
            else:
                source = node.module or ""
            for alias in node.names:
                if alias.name == "*":
                    continue
                local = alias.asname or alias.name
                imports[local] = (
                    f"{source}.{alias.name}" if source else alias.name
                )
    return imports


class _SymbolCollector(ast.NodeVisitor):
    """Collect functions, methods and classes of one module."""

    def __init__(self, path: str, symbols: ModuleSymbols) -> None:
        self.path = path
        self.symbols = symbols
        self._stack: list[str] = []
        self._class_stack: list[str] = []

    def _qualname(self, name: str) -> str:
        return ".".join([*self._stack, name])

    def _add_function(
        self, node: ast.FunctionDef | ast.AsyncFunctionDef
    ) -> None:
        qualname = self._qualname(node.name)
        kind = "method" if self._class_stack and len(self._stack) == len(
            self._class_stack
        ) else "function"
        decorators = tuple(
            dotted for dotted in (
                _decorator_name(d) for d in node.decorator_list
            ) if dotted is not None
        )
        params = tuple(
            arg.arg
            for arg in [
                *node.args.posonlyargs,
                *node.args.args,
                *node.args.kwonlyargs,
            ]
        )
        info = FunctionInfo(
            key=f"{self.path}::{qualname}",
            path=self.path,
            qualname=qualname,
            lineno=node.lineno,
            kind=kind,
            is_async=isinstance(node, ast.AsyncFunctionDef),
            params=params,
            decorators=decorators,
        )
        self.symbols.functions[qualname] = info
        self._stack.append(node.name)
        self.generic_visit(node)
        self._stack.pop()

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._add_function(node)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._add_function(node)

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        qualname = self._qualname(node.name)
        bases = tuple(
            dotted for dotted in (
                _decorator_name(base) for base in node.bases
            ) if dotted is not None
        )
        methods = tuple(
            child.name
            for child in node.body
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef))
        )
        self.symbols.classes[qualname] = ClassInfo(
            key=f"{self.path}::{qualname}",
            path=self.path,
            name=node.name,
            lineno=node.lineno,
            bases=bases,
            methods=methods,
        )
        self._stack.append(node.name)
        self._class_stack.append(node.name)
        self.generic_visit(node)
        self._class_stack.pop()
        self._stack.pop()


def _decorator_name(node: ast.expr) -> str | None:
    """The dotted name of a decorator/base, unwrapping one call layer."""
    if isinstance(node, ast.Call):
        node = node.func
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    if isinstance(node, ast.Subscript):
        return _decorator_name(node.value)
    return None


# ---------------------------------------------------------------------------
# Pass 1: call-site extraction and resolution.
# ---------------------------------------------------------------------------


class _Resolver:
    """Resolve dotted call names to project node keys."""

    def __init__(self, graph: CallGraph) -> None:
        self.graph = graph
        #: dotted module name -> ModuleSymbols
        self.by_module = {
            symbols.module: symbols for symbols in graph.modules.values()
        }
        #: bare method name -> class keys defining it (for the guarded
        #: unique-method heuristic).
        self.method_owners: dict[str, list[ClassInfo]] = {}
        for info in graph.classes.values():
            for method in info.methods:
                self.method_owners.setdefault(method, []).append(info)

    def node_key(self, path: str, qualname: str) -> str | None:
        key = f"{path}::{qualname}"
        if key in self.graph.functions:
            return key
        return None

    def _resolve_in_module(
        self, symbols: ModuleSymbols, name: str
    ) -> str | None:
        """Resolve ``name`` (``f`` or ``Class.method`` or ``Class``) in
        one module, following the class hierarchy for methods and
        mapping a class call to its constructor."""
        if name in symbols.functions:
            return symbols.functions[name].key
        if name in symbols.classes:
            init = self.node_key(symbols.path, f"{name}.__init__")
            return init or symbols.classes[name].key
        if "." in name:
            cls, _, method = name.partition(".")
            if cls in symbols.classes:
                return self._resolve_method(symbols, cls, method)
        return None

    def _resolve_method(
        self, symbols: ModuleSymbols, cls: str, method: str
    ) -> str | None:
        """``cls.method`` in ``symbols``, walking project base classes."""
        seen: set[str] = set()
        queue = [(symbols, cls)]
        while queue:
            mod, name = queue.pop(0)
            info = mod.classes.get(name)
            if info is None or info.key in seen:
                continue
            seen.add(info.key)
            direct = self.node_key(mod.path, f"{name}.{method}")
            if direct is not None:
                return direct
            for base in info.bases:
                target = self.resolve_absolute(mod.resolve_dotted(base))
                if target is not None and target in self.graph.classes:
                    owner = self.graph.classes[target]
                    owner_symbols = self.graph.modules.get(owner.path)
                    if owner_symbols is not None:
                        local = owner.key.split("::", 1)[1]
                        queue.append((owner_symbols, local))
                bare = base.rsplit(".", 1)[-1]
                for candidate in self.method_owners.get(method, []):
                    if candidate.name == bare:
                        return self.node_key(
                            candidate.path,
                            f"{candidate.key.split('::', 1)[1]}.{method}",
                        ) or None
        return None

    def resolve_absolute(self, dotted: str) -> str | None:
        """An absolute dotted name to a project node/class key.

        Finds the longest module prefix the project defines, then
        resolves the remainder inside it.  Returns a function key, a
        class key (bases/classes), or ``None`` for external names.
        """
        parts = dotted.split(".")
        for cut in range(len(parts), 0, -1):
            module = ".".join(parts[:cut])
            symbols = self.by_module.get(module)
            if symbols is None:
                continue
            remainder = ".".join(parts[cut:])
            if not remainder:
                return self.node_key(symbols.path, "<module>")
            resolved = self._resolve_in_module(symbols, remainder)
            if resolved is not None:
                return resolved
            if remainder in symbols.classes:
                return symbols.classes[remainder].key
            return None
        return None

    def resolve_call(
        self, symbols: ModuleSymbols, caller: FunctionInfo, dotted: str
    ) -> str | None:
        """One call's dotted text to a project node key (or ``None``)."""
        head, _, rest = dotted.partition(".")
        # self.method() / cls.method(): dispatch inside the enclosing
        # class, walking project bases.
        if head in ("self", "cls") and rest and "." not in rest:
            enclosing = caller.qualname.rsplit(".", 1)[0]
            if enclosing and enclosing != caller.qualname:
                resolved = self._resolve_method(symbols, enclosing, rest)
                if resolved is not None:
                    return resolved
            return None
        # Bare name: module-local function/class, or a from-import.
        if not rest:
            local = self._resolve_in_module(symbols, head)
            if local is not None:
                return local
            target = symbols.imports.get(head)
            if target is not None:
                return self.resolve_absolute(target)
            return None
        # Dotted: expand the head through the imports.
        expanded = symbols.resolve_dotted(dotted)
        resolved = self.resolve_absolute(expanded)
        if resolved is not None:
            return resolved
        # Unique-method heuristic: ``receiver.method(...)`` where the
        # receiver's type is unknown but exactly one project class
        # defines ``method`` (and it is not a builtin-container name).
        if "." not in rest and rest not in _BUILTIN_METHOD_NAMES:
            owners = self.method_owners.get(rest, [])
            if len(owners) == 1:
                owner = owners[0]
                local = f"{owner.key.split('::', 1)[1]}.{rest}"
                return self.node_key(owner.path, local)
        return None


class _CallCollector(ast.NodeVisitor):
    """Record every call site inside one module, resolving each."""

    def __init__(
        self,
        symbols: ModuleSymbols,
        resolver: _Resolver,
        graph: CallGraph,
    ) -> None:
        self.symbols = symbols
        self.resolver = resolver
        self.graph = graph
        self._stack: list[str] = ["<module>"]

    def _caller(self) -> FunctionInfo:
        # Class bodies are not function nodes; calls there (decorators
        # ran already, attribute defaults, enum values) attribute to the
        # nearest enclosing function or the module body.
        for qualname in reversed(self._stack):
            info = self.symbols.functions.get(qualname)
            if info is not None:
                return info
        return self.symbols.functions["<module>"]

    def _enter(self, node: ast.AST, name: str) -> None:
        parent = self._stack[-1]
        qualname = name if parent == "<module>" else f"{parent}.{name}"
        self._stack.append(qualname)
        self.generic_visit(node)
        self._stack.pop()

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._record_decorators(node)
        self._enter(node, node.name)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._record_decorators(node)
        self._enter(node, node.name)

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        self._record_decorators(node)
        self._enter(node, node.name)

    def _record_decorators(
        self, node: ast.FunctionDef | ast.AsyncFunctionDef | ast.ClassDef
    ) -> None:
        # Decorator application runs at import time: record it as a
        # call from the *enclosing* scope so ``@register(...)``-style
        # registration shows up in the graph.
        for decorator in node.decorator_list:
            dotted = _decorator_name(decorator)
            if dotted is None:
                continue
            caller = self._caller()
            self.graph.calls.append(
                CallSite(
                    caller=caller.key,
                    path=self.symbols.path,
                    lineno=decorator.lineno,
                    name=dotted,
                    callee=self.resolver.resolve_call(
                        self.symbols, caller, dotted
                    ),
                )
            )

    def visit_Call(self, node: ast.Call) -> None:
        caller = self._caller()
        dotted = _call_name(node.func)
        if dotted is None:
            reason, detail = _dynamic_shape(node.func)
            self.graph.skips.append(
                GraphSkip(
                    path=self.symbols.path,
                    lineno=node.lineno,
                    reason=reason,
                    detail=detail,
                )
            )
        else:
            callee = self.resolver.resolve_call(self.symbols, caller, dotted)
            if callee is None and _is_getattr_dispatch(node):
                self.graph.skips.append(
                    GraphSkip(
                        path=self.symbols.path,
                        lineno=node.lineno,
                        reason="dynamic-getattr",
                        detail="getattr(...) dispatch cannot be resolved",
                    )
                )
            self.graph.calls.append(
                CallSite(
                    caller=caller.key,
                    path=self.symbols.path,
                    lineno=node.lineno,
                    name=dotted,
                    callee=callee,
                )
            )
        self.generic_visit(node)


def _call_name(node: ast.expr) -> str | None:
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def _dynamic_shape(node: ast.expr) -> tuple[str, str]:
    """Classify an unresolvable callee expression for the skip record."""
    if isinstance(node, ast.Call):
        inner = _call_name(node.func)
        if inner == "getattr":
            return "dynamic-getattr", "getattr(...)() dispatch"
        return "call-on-call-result", f"({inner or '<expr>'})(...)(...)"
    return "dynamic-callee", ast.dump(node)[:80]


def _is_getattr_dispatch(node: ast.Call) -> bool:
    return (
        isinstance(node.func, ast.Name) and node.func.id == "getattr"
    )


def build_call_graph(
    modules: Mapping[str, ast.Module],
) -> CallGraph:
    """Build the project call graph from parsed modules.

    ``modules`` maps repo-relative posix paths to parsed trees (files
    that failed to parse are simply absent -- the engine records those
    as R000 findings and skips).  Circular imports are no obstacle:
    resolution works on the collected symbol tables, never by importing
    anything.
    """
    graph = CallGraph()
    for path, tree in modules.items():
        is_package = path.replace("\\", "/").endswith("__init__.py")
        symbols = ModuleSymbols(path=path, module=module_name_for(path))
        symbols.imports = _collect_imports(tree, symbols.module, is_package)
        # The module body is itself a node, so module-level calls
        # (registrations, constants) have a caller.
        module_node = FunctionInfo(
            key=f"{path}::<module>",
            path=path,
            qualname="<module>",
            lineno=1,
            kind="module",
        )
        symbols.functions["<module>"] = module_node
        collector = _SymbolCollector(path, symbols)
        collector.visit(tree)
        graph.modules[path] = symbols
        for info in symbols.functions.values():
            graph.functions[info.key] = info
        for info_c in symbols.classes.values():
            graph.classes[info_c.key] = info_c

    resolver = _Resolver(graph)
    for path, tree in modules.items():
        symbols = graph.modules[path]
        _CallCollector(symbols, resolver, graph).visit(tree)
    graph._index()
    return graph


def iter_function_bodies(
    tree: ast.Module,
) -> Iterator[tuple[str, ast.AST]]:
    """(qualname, node) for the module body and every def, outermost
    first.  The module body is reported as ``<module>`` with the def
    statements excluded implicitly (visitors must skip nested defs
    themselves)."""
    yield "<module>", tree
    stack: list[tuple[str, ast.AST]] = [("", tree)]
    while stack:
        prefix, node = stack.pop()
        for child in ast.iter_child_nodes(node):
            if isinstance(
                child, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
            ):
                qualname = (
                    f"{prefix}.{child.name}" if prefix else child.name
                )
                if isinstance(child, ast.ClassDef):
                    stack.append((qualname, child))
                else:
                    yield qualname, child
                    stack.append((qualname, child))
