"""Pass 2 of the interprocedural engine: the dataflow rules (R008-R011).

These rules run over the whole-project call graph of
:mod:`repro.analysis.callgraph` instead of one file at a time:

R008  seed-taint -- a value originating from a non-deterministic source
      (``os.urandom``, ``uuid.uuid4``, ``secrets``, stdlib ``random``,
      the legacy ``np.random`` globals, wall-clock time, an *unseeded*
      ``np.random.default_rng()``) must never reach a generator, sketch
      or cluster-chaos call.  Taint propagates through assignments,
      arbitrary expressions, call arguments and project function
      returns; clean provenance (a manifest field, a ``SchemeSpec``
      seed schema, an injected RNG/seed parameter) is simply *not* a
      source, so values that flow from it never taint.

R009  capability contracts -- call sites of capability-gated APIs
      (``batched_range_sums``, direct packed-plane kernel construction,
      the registry codecs) must be dominated by a registry capability
      check (``plane_decision`` / ``require_plane`` / ``counter_plane``
      / ``spec_for`` / ``spec.fast_range_sum`` ...), either earlier in
      the same function or in some transitive caller.

R010  exception flow -- every typed error declared in
      ``stream/errors.py`` / ``cluster/errors.py`` must actually be
      raised, and every raise site must either be caught by name (the
      class or a typed ancestor) on some caller path or propagate to a
      surface module (``cli.py`` / ``coordinator.py``) where it is part
      of the public raising contract.  Anything else is a silently-dead
      error type.

R011  async safety -- no blocking call (file I/O, ``time.sleep``, WAL
      ``fsync``, subprocess waits) may be reachable from an ``async
      def`` through synchronous project calls.  Handing the work to an
      executor (``asyncio.to_thread`` / ``run_in_executor``) passes the
      function as a *value*, which creates no call edge -- exactly the
      escape hatch the rule wants.

Each finding carries its dataflow evidence in ``Violation.why`` --
``analyze --why FINGERPRINT`` prints it.
"""

from __future__ import annotations

import ast
from collections import deque
from dataclasses import dataclass, field
from typing import Iterator, Mapping

from repro.analysis.base import (
    ProjectRule,
    dotted_name,
    path_segments,
    snippet_at,
)
from repro.analysis.callgraph import (
    CallGraph,
    FunctionInfo,
    ModuleSymbols,
    build_call_graph,
)
from repro.analysis.violations import Violation

__all__ = [
    "Project",
    "ProjectRule",
    "PROJECT_RULES",
    "SeedTaint",
    "CapabilityContract",
    "ExceptionFlow",
    "AsyncSafety",
    "build_project_graph",
]


@dataclass
class Project:
    """Everything pass 2 sees: parsed modules plus the call graph."""

    #: path -> parsed tree (unparseable files are absent).
    trees: dict[str, ast.Module] = field(default_factory=dict)
    #: path -> source lines, for snippets.
    lines: dict[str, list[str]] = field(default_factory=dict)
    graph: CallGraph = field(default_factory=CallGraph)


def build_project_graph(trees: Mapping[str, ast.Module]) -> CallGraph:
    """Build the call graph for a set of parsed modules."""
    return build_call_graph(dict(trees))


def _function_node(
    tree: ast.Module, qualname: str
) -> ast.AST | None:
    """The def (or module) node for ``qualname`` in one parsed file."""
    if qualname == "<module>":
        return tree
    node: ast.AST = tree
    for part in qualname.split("."):
        found = None
        for child in ast.iter_child_nodes(node):
            if isinstance(
                child, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
            ) and child.name == part:
                found = child
                break
        if found is None:
            return None
        node = found
    return node


def _iter_body(node: ast.AST) -> Iterator[ast.AST]:
    """Every AST node of a function body, nested defs excluded.

    Yields in source order (breadth-first over statements), which the
    taint sweeps rely on: a forward assignment chain converges in one
    sweep instead of one sweep per link.
    """
    queue: deque[ast.AST]
    if isinstance(node, ast.Module):
        queue = deque(
            child
            for child in node.body
            if not isinstance(
                child, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
            )
        )
    else:
        queue = deque(getattr(node, "body", []))
    while queue:
        current = queue.popleft()
        yield current
        for child in ast.iter_child_nodes(current):
            if isinstance(
                child,
                (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef,
                 ast.Lambda),
            ):
                continue
            queue.append(child)


def _target_names(target: ast.expr) -> Iterator[str]:
    """Names an assignment to ``target`` binds (or containers it fills).

    ``cells[key] = value`` taints ``cells`` but never ``key`` -- the
    index is read, not written.  Attribute writes (``obj.attr = value``)
    taint nothing: field-level taint on an object is too coarse for the
    seed-flow question and was the main source of false positives.
    """
    if isinstance(target, ast.Name):
        yield target.id
    elif isinstance(target, (ast.Tuple, ast.List)):
        for element in target.elts:
            yield from _target_names(element)
    elif isinstance(target, ast.Starred):
        yield from _target_names(target.value)
    elif isinstance(target, ast.Subscript):
        yield from _target_names(target.value)


# ---------------------------------------------------------------------------
# R008: seed-taint.
# ---------------------------------------------------------------------------

#: Absolute dotted names that always produce non-deterministic values.
_TAINT_CALLS = frozenset(
    {
        "os.urandom",
        "os.getrandom",
        "uuid.uuid1",
        "uuid.uuid4",
        "time.time",
        "time.time_ns",
        "time.monotonic",
        "time.monotonic_ns",
        "time.perf_counter",
        "time.perf_counter_ns",
    }
)

_GLOBAL_RNG_ATTRS = frozenset(
    {
        "rand", "randn", "randint", "random", "random_sample", "choice",
        "shuffle", "permutation", "uniform", "normal", "zipf",
        "exponential", "poisson", "bytes",
    }
)

_STDLIB_RANDOM_FUNCS = frozenset(
    {
        "random", "randint", "randrange", "getrandbits", "choice",
        "choices", "sample", "shuffle", "uniform", "gauss",
        "normalvariate", "betavariate", "expovariate",
    }
)


def _taint_source_label(
    symbols: ModuleSymbols, node: ast.Call
) -> str | None:
    """A label when ``node`` is a taint source, else ``None``."""
    dotted = dotted_name(node.func)
    if dotted is None:
        return None
    absolute = symbols.resolve_dotted(dotted)
    if absolute in _TAINT_CALLS:
        return absolute
    if absolute.startswith("secrets."):
        return absolute
    if absolute == "numpy.random.default_rng" and not (
        node.args or node.keywords
    ):
        return "numpy.random.default_rng()  [unseeded]"
    head, _, attr = absolute.rpartition(".")
    if head == "numpy.random" and attr in _GLOBAL_RNG_ATTRS:
        return absolute
    if head == "random" and attr in _STDLIB_RANDOM_FUNCS:
        return absolute
    return None


class _TaintScan:
    """Per-function taint state: tainted names and their origins."""

    def __init__(
        self,
        symbols: ModuleSymbols,
        info: FunctionInfo,
        body: ast.AST,
        returns_taint: Mapping[str, str],
        site_index: Mapping[tuple[str, int, str], str],
    ) -> None:
        self.symbols = symbols
        self.info = info
        self.body = body
        self.returns_taint = returns_taint  #: callee key -> origin label
        self.site_index = site_index
        self.tainted: dict[str, str] = {}  #: local name -> origin label
        self.return_origin: str | None = None
        #: (call node, origin, tainted-arg text) for sink checking.
        self.tainted_calls: list[tuple[ast.Call, str, str]] = []
        #: Call positions already recorded, so repeat sweeps (and
        #: repeat fixpoint rounds) report each site once.
        self._recorded: set[tuple[int, int]] = set()

    def expr_taint(self, node: ast.expr | None) -> str | None:
        """The origin label when ``node``'s value is tainted."""
        if node is None:
            return None
        for sub in ast.walk(node):
            if isinstance(sub, ast.Name) and sub.id in self.tainted:
                return self.tainted[sub.id]
            if isinstance(sub, ast.Call):
                label = _taint_source_label(self.symbols, sub)
                if label is not None:
                    return label
                callee = self._resolved(sub)
                if callee is not None and callee in self.returns_taint:
                    return self.returns_taint[callee]
        return None

    def _resolved(self, node: ast.Call) -> str | None:
        dotted = dotted_name(node.func)
        if dotted is None:
            return None
        return self.site_index.get((self.info.key, node.lineno, dotted))

    def run(self) -> None:
        # Two passes so loop-carried assignments converge; taint only
        # ever grows, so two linear sweeps reach the fixpoint for the
        # assignment chains these rules care about.
        for _ in range(2):
            before = dict(self.tainted)
            self._sweep()
            if self.tainted == before:
                break

    def _sweep(self) -> None:
        for stmt in _iter_body(self.body):
            if isinstance(stmt, ast.Assign):
                origin = self.expr_taint(stmt.value)
                if origin is not None:
                    for target in stmt.targets:
                        for name in _target_names(target):
                            self.tainted[name] = origin
            elif isinstance(stmt, (ast.AugAssign, ast.AnnAssign)):
                origin = self.expr_taint(stmt.value)
                if origin is not None:
                    for name in _target_names(stmt.target):
                        self.tainted[name] = origin
            elif isinstance(stmt, ast.Return):
                origin = self.expr_taint(stmt.value)
                if origin is not None:
                    self.return_origin = origin
            if isinstance(stmt, ast.Call):
                self._check_call(stmt)

    def _check_call(self, node: ast.Call) -> None:
        position = (node.lineno, node.col_offset)
        if position in self._recorded:
            return
        for arg in [*node.args, *[kw.value for kw in node.keywords]]:
            origin = self.expr_taint(arg)
            if origin is not None:
                text = ast.unparse(arg) if hasattr(ast, "unparse") else "?"
                self.tainted_calls.append((node, origin, text))
                self._recorded.add(position)
                return


class SeedTaint(ProjectRule):
    """R008: non-deterministic values must not reach seed consumers."""

    id = "R008"
    title = "seed-taint reaches a generator/sketch/chaos call"

    #: Sink scope: resolved callees living under these path fragments.
    _SINK_FRAGMENTS = ("generators/", "sketch/", "cluster/faults.py")

    #: Unresolved bare names that are still obviously generator
    #: constructors (fixtures and not-yet-imported call sites).
    _SINK_NAMES = frozenset(
        {
            "EH3", "BCH", "BCH3", "BCH5", "RM7", "PolynomialsOverPrimes",
            "Toeplitz", "DMAP", "SeedSource", "SketchMatrix",
            "StreamProcessor", "ClusterProcessor", "make_family",
            "family_grid",
        }
    )

    def applies_to(self, path: str) -> bool:
        return "analysis" not in path_segments(path)

    def _is_sink(self, graph: CallGraph, callee: str | None, name: str) -> bool:
        if callee is not None:
            path = callee.split("::", 1)[0].replace("\\", "/")
            if any(frag in path for frag in self._SINK_FRAGMENTS):
                return True
        bare = name.rsplit(".", 1)[-1]
        return bare in self._SINK_NAMES

    def check_project(self, project: Project) -> Iterator[Violation]:
        graph = project.graph
        # Site index: (caller key, lineno, name) -> resolved callee, so
        # the taint scans can look up interprocedural summaries.
        site_index: dict[tuple[str, int, str], str] = {}
        for site in graph.calls:
            if site.callee is not None:
                site_index[(site.caller, site.lineno, site.name)] = (
                    site.callee
                )

        # Interprocedural pass: which project functions *return* taint.
        returns_taint: dict[str, str] = {}
        scans: dict[str, _TaintScan] = {}

        def make_scan(key: str) -> _TaintScan | None:
            info = graph.functions.get(key)
            if info is None or info.kind == "class":
                return None
            tree = project.trees.get(info.path)
            if tree is None:
                return None
            body = _function_node(tree, info.qualname)
            if body is None:
                return None
            return _TaintScan(
                graph.modules[info.path], info, body, returns_taint,
                site_index,
            )

        # Fixpoint on return-taint summaries: bounded by the longest
        # call chain through helper returns, in practice 2-3 sweeps.
        for _ in range(10):
            changed = False
            for key in graph.functions:
                scan = make_scan(key)
                if scan is None:
                    continue
                scan.run()
                scans[key] = scan
                if scan.return_origin is not None and key not in returns_taint:
                    returns_taint[key] = scan.return_origin
                    changed = True
            if not changed:
                break

        for key, scan in sorted(scans.items()):
            info = graph.functions[key]
            if not self.applies_to(info.path):
                continue
            for node, origin, arg_text in scan.tainted_calls:
                dotted = dotted_name(node.func) or "<dynamic>"
                callee = site_index.get((key, node.lineno, dotted))
                if not self._is_sink(graph, callee, dotted):
                    continue
                lines = project.lines.get(info.path, [])
                where = callee or dotted
                yield self._violation(
                    info.path,
                    node,
                    f"seed-taint: value derived from {origin} reaches "
                    f"{dotted}(...); seeds must flow from a manifest, a "
                    "SchemeSpec seed schema, or an injected RNG/seed "
                    "parameter -- thread the seed in explicitly",
                    lines,
                    why=(
                        f"source: {origin}",
                        f"tainted argument: {arg_text}",
                        f"sink: {where} at {info.path}:{node.lineno}",
                    ),
                )


# ---------------------------------------------------------------------------
# R009: capability contracts.
# ---------------------------------------------------------------------------


class CapabilityContract(ProjectRule):
    """R009: gated APIs are dominated by a registry capability check."""

    id = "R009"
    title = "capability-gated call without a dominating registry check"

    #: Call sites needing a dominating check.
    _GATED = frozenset(
        {
            "batched_range_sums",
            "encode_generator",
            "decode_generator",
            "encode_channel",
            "decode_channel",
        }
    )

    #: Registry guards: seeing one of these call names (or capability
    #: attribute reads) before the gated call satisfies the contract.
    _GUARD_CALLS = frozenset(
        {
            "plane_decision",
            "require_plane",
            "counter_plane",
            "spec_for",
            "get_spec",
            "channel_kind",
            "registered_schemes",
            "registered_kinds",
            "registered_channel_kinds",
        }
    )

    _GUARD_ATTRS = frozenset(
        {
            "fast_range_sum",
            "interval_kind",
            "plane_kind",
            "batched",
            "dmap_inner",
            "codec",
        }
    )

    #: Modules that *are* the gate or its implementation.
    _EXEMPT_SUFFIXES = (
        "rangesum/batched.py",
        "sketch/plane.py",
        "sketch/serialize.py",
    )

    def applies_to(self, path: str) -> bool:
        posix = path.replace("\\", "/")
        segments = path_segments(path)
        if "schemes" in segments or "analysis" in segments:
            return False
        if "sketch/backends/" in posix:
            return False
        return not posix.endswith(self._EXEMPT_SUFFIXES)

    def _gated_name(self, graph: CallGraph, name: str) -> str | None:
        bare = name.rsplit(".", 1)[-1]
        if bare in self._GATED:
            return bare
        # Direct packed-plane kernel construction: any project class
        # named ``*Plane`` defined under sketch/ or schemes/.
        if bare.endswith("Plane"):
            for info in graph.classes.values():
                if info.name == bare and (
                    "sketch" in path_segments(info.path)
                    or "schemes" in path_segments(info.path)
                ):
                    return bare
        return None

    def _function_has_guard(
        self, project: Project, key: str, before_line: int | None = None
    ) -> int | None:
        """The line of a guard inside ``key`` (optionally before a line)."""
        info = project.graph.functions.get(key)
        if info is None:
            return None
        tree = project.trees.get(info.path)
        if tree is None:
            return None
        body = _function_node(tree, info.qualname)
        if body is None:
            return None
        for node in _iter_body(body):
            lineno = getattr(node, "lineno", None)
            if lineno is None:
                continue
            if before_line is not None and lineno > before_line:
                continue
            if isinstance(node, ast.Call):
                dotted = dotted_name(node.func)
                if dotted is not None and (
                    dotted.rsplit(".", 1)[-1] in self._GUARD_CALLS
                ):
                    return lineno
            elif isinstance(node, ast.Attribute):
                if node.attr in self._GUARD_ATTRS:
                    return lineno
        return None

    def check_project(self, project: Project) -> Iterator[Violation]:
        graph = project.graph
        for site in graph.calls:
            if not self.applies_to(site.path):
                continue
            gated = self._gated_name(graph, site.name)
            if gated is None:
                continue
            caller = site.caller
            # Same-function domination (guard at or before the call).
            local = self._function_has_guard(
                project, caller, before_line=site.lineno
            )
            if local is not None:
                continue
            # Interprocedural: a guard anywhere in a transitive caller.
            guarded_by: tuple[str, int] | None = None
            for ancestor in sorted(graph.caller_closure(caller) - {caller}):
                line = self._function_has_guard(project, ancestor)
                if line is not None:
                    guarded_by = (ancestor, line)
                    break
            if guarded_by is not None:
                continue
            lines = project.lines.get(site.path, [])
            info = graph.functions.get(caller)
            where = info.qualname if info is not None else caller
            yield Violation(
                rule=self.id,
                path=site.path,
                line=site.lineno,
                column=1,
                message=(
                    f"capability-gated call {gated}(...) is not dominated "
                    "by a registry capability check; gate it behind "
                    "plane_decision/require_plane/spec_for or a "
                    "spec.fast_range_sum/interval_kind test so schemes "
                    "without the capability fail with a typed reason, "
                    "not a kernel error"
                ),
                snippet=snippet_at(lines, site.lineno),
                why=(
                    f"gated call: {site.name} in {where}",
                    "no guard in the enclosing function before line "
                    f"{site.lineno}",
                    f"no guard in any of {len(graph.caller_closure(caller)) - 1} "
                    "transitive caller(s)",
                ),
            )


# ---------------------------------------------------------------------------
# R010: exception flow.
# ---------------------------------------------------------------------------


@dataclass
class _RaiseSite:
    error: str
    function: str  #: graph key
    path: str
    lineno: int


class ExceptionFlow(ProjectRule):
    """R010: no silently-dead typed error."""

    id = "R010"
    title = "silently-dead typed error"

    _ERROR_MODULE_SUFFIXES = ("stream/errors.py", "cluster/errors.py")
    _SURFACE_SUFFIXES = ("cli.py", "coordinator.py")
    _GENERIC = frozenset({"Exception", "BaseException"})

    def applies_to(self, path: str) -> bool:
        return "analysis" not in path_segments(path)

    def _error_classes(self, project: Project) -> dict[str, str]:
        """Bare error name -> class key, from the error modules."""
        found: dict[str, str] = {}
        for info in project.graph.classes.values():
            posix = info.path.replace("\\", "/")
            if posix.endswith(self._ERROR_MODULE_SUFFIXES):
                found[info.name] = info.key
        return found

    def _handlers(
        self, project: Project
    ) -> dict[str, list[tuple[str, int]]]:
        """Caught bare name -> [(function key, lineno)] project-wide."""
        caught: dict[str, list[tuple[str, int]]] = {}
        graph = project.graph
        for key, info in graph.functions.items():
            if info.kind == "class":
                continue
            tree = project.trees.get(info.path)
            if tree is None:
                continue
            body = _function_node(tree, info.qualname)
            if body is None:
                continue
            for node in _iter_body(body):
                if not isinstance(node, ast.ExceptHandler):
                    continue
                if node.type is None:
                    continue
                entries = (
                    node.type.elts
                    if isinstance(node.type, ast.Tuple)
                    else [node.type]
                )
                for entry in entries:
                    dotted = dotted_name(entry)
                    if dotted is None:
                        continue
                    bare = dotted.rsplit(".", 1)[-1]
                    caught.setdefault(bare, []).append((key, node.lineno))
        return caught

    def _raises(self, project: Project, names: set[str]) -> list[_RaiseSite]:
        sites: list[_RaiseSite] = []
        graph = project.graph
        for key, info in graph.functions.items():
            if info.kind == "class":
                continue
            tree = project.trees.get(info.path)
            if tree is None:
                continue
            body = _function_node(tree, info.qualname)
            if body is None:
                continue
            for node in _iter_body(body):
                if not isinstance(node, ast.Raise) or node.exc is None:
                    continue
                exc = node.exc
                if isinstance(exc, ast.Call):
                    exc = exc.func
                dotted = dotted_name(exc)
                if dotted is None:
                    continue
                bare = dotted.rsplit(".", 1)[-1]
                if bare in names:
                    sites.append(
                        _RaiseSite(bare, key, info.path, node.lineno)
                    )
        return sites

    def check_project(self, project: Project) -> Iterator[Violation]:
        graph = project.graph
        errors = self._error_classes(project)
        if not errors:
            return
        handlers = self._handlers(project)
        raise_sites = self._raises(project, set(errors))
        raised_names = {site.error for site in raise_sites}

        # Ancestor names per error (for ``except StreamError`` catching
        # a subclass), minus the generic handlers R004 already audits.
        ancestors: dict[str, set[str]] = {}
        subclasses: dict[str, set[str]] = {}
        for name, key in errors.items():
            bases = graph.base_closure(key) - self._GENERIC
            ancestors[name] = bases
            for base in bases:
                subclasses.setdefault(base, set()).add(name)

        for name in sorted(errors):
            raised_here = name in raised_names
            subclass_raised = any(
                sub in raised_names for sub in subclasses.get(name, ())
            )
            if not raised_here and not subclass_raised:
                info = graph.classes[errors[name]]
                lines = project.lines.get(info.path, [])
                yield Violation(
                    rule=self.id,
                    path=info.path,
                    line=info.lineno,
                    column=1,
                    message=(
                        f"dead error type: {name} is declared but never "
                        "raised anywhere in the project (and no subclass "
                        "is); delete it or wire the failure path that "
                        "should raise it"
                    ),
                    snippet=snippet_at(lines, info.lineno),
                    why=(f"declared at {info.path}:{info.lineno}",),
                )

        # Consumption is judged per error *type*, not per raise site:
        # dispatch through shared method names and calls arriving from
        # outside the package make per-site caller closures structurally
        # incomplete.  A raised type is alive when a typed handler for
        # it (or a non-generic ancestor) exists anywhere in the project,
        # or when some raise site's caller closure reaches a surface
        # module -- the error then escapes through the documented public
        # contract.  A type with neither is one no caller can ever
        # observe by type.
        sites_by_error: dict[str, list[_RaiseSite]] = {}
        for site in raise_sites:
            sites_by_error.setdefault(site.error, []).append(site)

        for name in sorted(sites_by_error):
            sites = sorted(
                sites_by_error[name], key=lambda s: (s.path, s.lineno)
            )
            catchable = {name} | ancestors.get(name, set())
            if any(handlers.get(catch) for catch in catchable):
                continue
            reaches_surface = False
            for site in sites:
                closure = graph.caller_closure(site.function)
                if any(
                    key.split("::", 1)[0]
                    .replace("\\", "/")
                    .endswith(self._SURFACE_SUFFIXES)
                    for key in closure
                ):
                    reaches_surface = True
                    break
            if reaches_surface:
                continue
            anchor = sites[0]
            lines = project.lines.get(anchor.path, [])
            others = len(sites) - 1
            yield Violation(
                rule=self.id,
                path=anchor.path,
                line=anchor.lineno,
                column=1,
                message=(
                    f"silently-dead error: {name} is raised but no typed "
                    "handler anywhere catches it (or a non-generic "
                    "ancestor), and no raising path reaches a surface "
                    "module (cli.py / coordinator.py); add a typed "
                    "handler at the consuming boundary or delete the "
                    "error type"
                ),
                snippet=snippet_at(lines, anchor.lineno),
                why=(
                    f"raised in {anchor.function}"
                    + (f" (and {others} more site(s))" if others else ""),
                    f"no project handler for any of {sorted(catchable)}",
                    "no raise site's caller closure reaches "
                    "cli.py/coordinator.py",
                ),
            )


# ---------------------------------------------------------------------------
# R011: async safety.
# ---------------------------------------------------------------------------


class AsyncSafety(ProjectRule):
    """R011: nothing blocking is reachable from an ``async def``."""

    id = "R011"
    title = "blocking call reachable from async code"

    #: Absolute dotted names that block the event loop.
    _BLOCKING_CALLS = frozenset(
        {
            "time.sleep",
            "os.fsync",
            "os.fdatasync",
            "os.replace",
            "os.rename",
            "subprocess.run",
            "subprocess.call",
            "subprocess.check_call",
            "subprocess.check_output",
            "socket.create_connection",
            "shutil.rmtree",
            "shutil.copyfile",
        }
    )

    #: Method names that block regardless of receiver (file handles,
    #: ``pathlib.Path`` I/O, process waits).
    _BLOCKING_METHODS = frozenset(
        {
            "read_text",
            "write_text",
            "read_bytes",
            "write_bytes",
            "fsync",
            "communicate",
            "wait_for_exit",
        }
    )

    def applies_to(self, path: str) -> bool:
        return "analysis" not in path_segments(path)

    def _blocking_sites(
        self, project: Project, key: str
    ) -> list[tuple[int, str]]:
        """Direct blocking calls inside one function: (lineno, label)."""
        info = project.graph.functions.get(key)
        if info is None or info.kind == "class":
            return []
        tree = project.trees.get(info.path)
        if tree is None:
            return []
        body = _function_node(tree, info.qualname)
        if body is None:
            return []
        symbols = project.graph.modules[info.path]
        found: list[tuple[int, str]] = []
        for node in _iter_body(body):
            if not isinstance(node, ast.Call):
                continue
            dotted = dotted_name(node.func)
            if dotted is None:
                continue
            absolute = symbols.resolve_dotted(dotted)
            if absolute in self._BLOCKING_CALLS or absolute == "open":
                found.append((node.lineno, absolute))
                continue
            bare = dotted.rsplit(".", 1)[-1]
            if "." in dotted and bare in self._BLOCKING_METHODS:
                found.append((node.lineno, dotted))
        return found

    def check_project(self, project: Project) -> Iterator[Violation]:
        graph = project.graph
        async_defs = [
            info for info in graph.functions.values() if info.is_async
        ]
        if not async_defs:
            return
        blocking_cache: dict[str, list[tuple[int, str]]] = {}

        def blocking(key: str) -> list[tuple[int, str]]:
            if key not in blocking_cache:
                blocking_cache[key] = self._blocking_sites(project, key)
            return blocking_cache[key]

        for info in sorted(async_defs, key=lambda f: f.key):
            if not self.applies_to(info.path):
                continue
            reachable = graph.callee_closure(info.key)
            for target in sorted(reachable):
                target_info = graph.functions.get(target)
                if target_info is not None and target_info.is_async:
                    if target != info.key:
                        continue  # awaited async callees audit themselves
                for lineno, label in blocking(target):
                    lines = project.lines.get(info.path, [])
                    if target == info.key:
                        anchor_line = lineno
                        chain: tuple[str, ...] = (
                            f"blocking call {label} directly in async "
                            f"{info.qualname}",
                        )
                    else:
                        path_sites = graph.call_path(info.key, target)
                        anchor_line = (
                            path_sites[0].lineno
                            if path_sites
                            else info.lineno
                        )
                        steps = [
                            f"{site.caller.split('::', 1)[1]} -> "
                            f"{site.name} at {site.path}:{site.lineno}"
                            for site in path_sites
                        ]
                        chain = (
                            f"async {info.qualname} reaches blocking "
                            f"{label} at "
                            f"{target.split('::', 1)[0]}:{lineno}",
                            *steps,
                        )
                    yield Violation(
                        rule=self.id,
                        path=info.path,
                        line=anchor_line,
                        column=1,
                        message=(
                            f"blocking call ({label}) reachable from "
                            f"async def {info.name} without an executor "
                            "hand-off; wrap the blocking step in "
                            "asyncio.to_thread(...) / "
                            "loop.run_in_executor(...) or use an async "
                            "equivalent"
                        ),
                        snippet=snippet_at(lines, anchor_line),
                        why=chain,
                    )


PROJECT_RULES: tuple[ProjectRule, ...] = (
    SeedTaint(),
    CapabilityContract(),
    ExceptionFlow(),
    AsyncSafety(),
)
