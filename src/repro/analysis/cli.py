"""``repro-experiments analyze``: the CI gate over the domain rules.

Scans ``src/repro`` (or explicit ``--path`` targets), prints every
finding, and in ``--strict`` mode exits non-zero when any violation is
not covered by the checked-in baseline.  ``--write-baseline`` refreshes
the baseline from the current scan (for landing a new rule before its
last offender is migrated).
"""

from __future__ import annotations

import sys
from pathlib import Path
from typing import Sequence, TextIO

import repro
from repro.analysis.engine import (
    AnalysisReport,
    analyze_paths,
    load_baseline,
    write_baseline,
)

__all__ = ["run_analyze", "BASELINE_FILENAME", "default_scan_target"]

BASELINE_FILENAME = "analysis-baseline.json"


def default_scan_target() -> tuple[list[Path], Path]:
    """(paths to scan, repo root) when none are given explicitly.

    Prefers ``src/repro`` under the current directory (the checkout
    layout CI runs from); falls back to the installed package directory.
    """
    cwd = Path.cwd()
    checkout = cwd / "src" / "repro"
    if checkout.is_dir():
        return [checkout], cwd
    package_dir = Path(repro.__file__).resolve().parent
    return [package_dir], package_dir.parent.parent


def run_analyze(
    paths: Sequence[str] | None = None,
    strict: bool = False,
    refresh_baseline: bool = False,
    baseline_path: str | None = None,
    stream: TextIO = sys.stdout,
) -> int:
    """Run the scan and report; returns the process exit code."""
    if paths:
        targets = [Path(p) for p in paths]
        root = Path.cwd()
    else:
        targets, root = default_scan_target()
    resolved_baseline = (
        Path(baseline_path)
        if baseline_path is not None
        else root / BASELINE_FILENAME
    )

    violations = analyze_paths(targets, root=root)
    if refresh_baseline:
        write_baseline(resolved_baseline, violations)
        print(
            f"wrote {len(violations)} violation(s) to {resolved_baseline}",
            file=stream,
        )
        return 0

    report = AnalysisReport(
        violations=violations, baseline=load_baseline(resolved_baseline)
    )
    for violation in report.fresh:
        print(violation.render(), file=stream)
    for violation in report.baselined:
        print(f"{violation.render()} [baselined]", file=stream)
    scanned = ", ".join(str(t) for t in targets)
    print(
        f"analyze: {scanned}: {report.summary()}"
        f" ({len(report.fresh)} fresh, {len(report.baselined)} baselined)",
        file=stream,
    )
    if strict and report.fresh:
        print(
            "strict mode: fix the findings above, or suppress a true "
            "structural check inline with '# repro: allow[R00x] reason' "
            "(see docs/static-analysis.md)",
            file=stream,
        )
        return 1
    return 0
