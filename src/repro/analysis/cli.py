"""``repro-experiments analyze``: the CI gate over the domain rules.

Scans ``src/repro`` (or explicit ``--path`` targets), prints every
finding, and in ``--strict`` mode exits non-zero when any violation is
not covered by the checked-in baseline.  ``--write-baseline`` refreshes
the baseline from the current scan (for landing a new rule before its
last offender is migrated).

Introspection flags ride on the same scan:

- ``--graph PATH`` serializes the project call graph (the pass-1
  artifact the dataflow rules run over) for offline inspection.
- ``--why FINGERPRINT`` prints the dataflow evidence chain behind one
  finding; a unique fingerprint prefix is enough.
- ``--diff REF`` restricts reporting (and strict failure) to findings
  on lines changed since ``REF`` -- the pre-commit configuration.
- ``--sarif PATH`` writes the scan as a SARIF 2.1.0 log for CI
  artifact upload.
"""

from __future__ import annotations

import sys
from pathlib import Path
from typing import Sequence, TextIO

import repro
from repro.analysis.diff import DiffError, changed_lines
from repro.analysis.engine import (
    AnalysisReport,
    load_baseline,
    scan_paths,
    write_baseline,
)
from repro.analysis.rules import ALL_RULES
from repro.analysis.sarif import render_sarif

__all__ = ["run_analyze", "BASELINE_FILENAME", "default_scan_target"]

BASELINE_FILENAME = "analysis-baseline.json"


def default_scan_target() -> tuple[list[Path], Path]:
    """(paths to scan, repo root) when none are given explicitly.

    Prefers ``src/repro`` under the current directory (the checkout
    layout CI runs from); falls back to the installed package directory.
    """
    cwd = Path.cwd()
    checkout = cwd / "src" / "repro"
    if checkout.is_dir():
        return [checkout], cwd
    package_dir = Path(repro.__file__).resolve().parent
    return [package_dir], package_dir.parent.parent


def run_analyze(
    paths: Sequence[str] | None = None,
    strict: bool = False,
    refresh_baseline: bool = False,
    baseline_path: str | None = None,
    graph_path: str | None = None,
    why: str | None = None,
    diff_ref: str | None = None,
    sarif_path: str | None = None,
    stream: TextIO = sys.stdout,
) -> int:
    """Run the scan and report; returns the process exit code."""
    if paths:
        targets = [Path(p) for p in paths]
        root = Path.cwd()
    else:
        targets, root = default_scan_target()
    resolved_baseline = (
        Path(baseline_path)
        if baseline_path is not None
        else root / BASELINE_FILENAME
    )

    result = scan_paths(targets, root=root)
    violations = result.violations

    if graph_path is not None:
        Path(graph_path).write_text(
            result.project.graph.to_json(), encoding="utf-8"
        )
        print(
            f"graph: {graph_path} ({result.project.graph.summary()})",
            file=stream,
        )

    if sarif_path is not None:
        baseline = load_baseline(resolved_baseline)
        Path(sarif_path).write_text(
            render_sarif(violations, ALL_RULES, baseline), encoding="utf-8"
        )
        print(
            f"sarif: {sarif_path} ({len(violations)} result(s))",
            file=stream,
        )

    if why is not None:
        matched = [
            v for v in violations if v.fingerprint().startswith(why)
        ]
        if not matched:
            print(
                f"why: no finding in this scan matches {why!r}; "
                "fingerprints look like 'R008::src/repro/...::snippet'",
                file=stream,
            )
            return 1
        for violation in matched:
            print(violation.render_why(), file=stream)
            print(f"  fingerprint: {violation.fingerprint()}", file=stream)
        return 0

    if refresh_baseline:
        write_baseline(resolved_baseline, violations)
        print(
            f"wrote {len(violations)} violation(s) to {resolved_baseline}",
            file=stream,
        )
        return 0

    if diff_ref is not None:
        try:
            touched = changed_lines(diff_ref, root)
        except DiffError as exc:
            print(f"analyze --diff: {exc}", file=stream)
            return 2
        violations = [
            v
            for v in violations
            if v.line in touched.get(v.path, frozenset())
        ]

    report = AnalysisReport(
        violations=violations, baseline=load_baseline(resolved_baseline)
    )
    for violation in report.fresh:
        print(violation.render(), file=stream)
    for violation in report.baselined:
        print(f"{violation.render()} [baselined]", file=stream)
    scanned = ", ".join(str(t) for t in targets)
    scope = f" (changed since {diff_ref})" if diff_ref is not None else ""
    print(
        f"analyze: {scanned}{scope}: {report.summary()}"
        f" ({len(report.fresh)} fresh, {len(report.baselined)} baselined)",
        file=stream,
    )
    if strict and report.fresh:
        print(
            "strict mode: fix the findings above, or suppress a true "
            "structural check inline with '# repro: allow[R00x] reason' "
            "(see docs/static-analysis.md)",
            file=stream,
        )
        return 1
    return 0
