"""The analysis engine: scan, suppress, baseline, report.

``analyze_paths`` walks the given files/directories, parses each Python
file once, runs every in-scope rule (:mod:`repro.analysis.rules`), and
filters findings through the inline suppressions
(:mod:`repro.analysis.suppressions`).  A suppression with an empty
reason suppresses nothing and is itself reported as ``R000``.

The *baseline* is a checked-in JSON file of violation fingerprints that
are tolerated (grandfathered) for now.  ``--strict`` fails on any
violation outside the baseline; the shipped baseline is empty -- every
historical finding was fixed or suppressed-with-reason -- but the
mechanism lets a future rule land before its last offender is migrated.
"""

from __future__ import annotations

import ast
import json
from collections import Counter
from dataclasses import dataclass
from pathlib import Path
from typing import Iterable, Sequence

from repro.analysis.rules import ALL_RULES, Rule
from repro.analysis.suppressions import Suppression, collect_suppressions
from repro.analysis.violations import Violation

__all__ = [
    "AnalysisReport",
    "analyze_source",
    "analyze_paths",
    "load_baseline",
    "write_baseline",
]

BASELINE_VERSION = 1


@dataclass
class AnalysisReport:
    """Everything one scan produced, split against a baseline."""

    violations: list[Violation]
    baseline: frozenset[str]

    @property
    def fresh(self) -> list[Violation]:
        """Violations not covered by the baseline.

        The baseline stores fingerprints without multiplicity; if a file
        gains a *second* copy of a baselined snippet, both share one
        fingerprint and stay baselined -- an accepted imprecision kept in
        exchange for line-number-free stability.
        """
        return [
            v for v in self.violations if v.fingerprint() not in self.baseline
        ]

    @property
    def baselined(self) -> list[Violation]:
        """Violations tolerated by the baseline file."""
        return [
            v for v in self.violations if v.fingerprint() in self.baseline
        ]

    def summary(self) -> str:
        """One-line totals by rule, e.g. ``R001 x2, R003 x1``."""
        counts = Counter(v.rule for v in self.violations)
        if not counts:
            return "clean"
        return ", ".join(
            f"{rule} x{count}" for rule, count in sorted(counts.items())
        )


def _reasonless(suppression: Suppression, path: str) -> Violation:
    return Violation(
        rule="R000",
        path=path,
        line=suppression.line,
        column=1,
        message=(
            "suppression without a reason: '# repro: allow[...]' must "
            "carry a justification after the bracket "
            f"(rules {', '.join(suppression.rules)})"
        ),
        snippet=f"repro: allow[{', '.join(suppression.rules)}]",
    )


def analyze_source(
    source: str,
    path: str,
    rules: Sequence[Rule] = ALL_RULES,
) -> list[Violation]:
    """All violations in one file's source text.

    ``path`` is the repo-relative posix path used for rule scoping and
    reporting.  Unparseable sources are reported as ``R000`` rather than
    crashing the scan.
    """
    try:
        tree = ast.parse(source)
    except SyntaxError as exc:
        return [
            Violation(
                rule="R000",
                path=path,
                line=exc.lineno or 1,
                column=(exc.offset or 0) + 1,
                message=f"file does not parse: {exc.msg}",
                snippet="<syntax error>",
            )
        ]
    lines = source.splitlines()
    suppressions = collect_suppressions(lines)
    findings: list[Violation] = []
    for suppression in suppressions:
        if not suppression.reason:
            findings.append(_reasonless(suppression, path))
    for rule in rules:
        if not rule.applies_to(path):
            continue
        for violation in rule.check(tree, lines, path):
            if any(
                s.covers(violation.rule, violation.line)
                for s in suppressions
            ):
                continue
            findings.append(violation)
    findings.sort(key=lambda v: (v.path, v.line, v.column, v.rule))
    return findings


def _python_files(paths: Iterable[Path]) -> list[Path]:
    files: list[Path] = []
    for path in paths:
        if path.is_dir():
            files.extend(sorted(path.rglob("*.py")))
        elif path.suffix == ".py":
            files.append(path)
    return files


def analyze_paths(
    paths: Sequence[Path | str],
    root: Path | str | None = None,
    rules: Sequence[Rule] = ALL_RULES,
) -> list[Violation]:
    """Scan files/directories; paths in reports are relative to ``root``.

    ``root`` defaults to the current directory; files outside it keep
    their absolute path in reports.
    """
    base = Path(root) if root is not None else Path.cwd()
    findings: list[Violation] = []
    for file_path in _python_files(Path(p) for p in paths):
        try:
            relative = file_path.resolve().relative_to(base.resolve())
            report_path = relative.as_posix()
        except ValueError:
            report_path = file_path.as_posix()
        source = file_path.read_text(encoding="utf-8")
        findings.extend(analyze_source(source, report_path, rules))
    findings.sort(key=lambda v: (v.path, v.line, v.column, v.rule))
    return findings


def load_baseline(path: Path | str) -> frozenset[str]:
    """The fingerprint set of a baseline file (empty if absent)."""
    baseline_path = Path(path)
    if not baseline_path.exists():
        return frozenset()
    data = json.loads(baseline_path.read_text(encoding="utf-8"))
    version = data.get("version")
    if version != BASELINE_VERSION:
        raise ValueError(
            f"baseline {baseline_path} has version {version!r}; this "
            f"analyzer reads version {BASELINE_VERSION}"
        )
    return frozenset(data.get("violations", []))


def write_baseline(path: Path | str, violations: Iterable[Violation]) -> None:
    """Write the fingerprints of ``violations`` as the new baseline."""
    fingerprints = sorted({v.fingerprint() for v in violations})
    payload = {"version": BASELINE_VERSION, "violations": fingerprints}
    Path(path).write_text(
        json.dumps(payload, indent=2) + "\n", encoding="utf-8"
    )
