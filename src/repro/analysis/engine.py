"""The analysis engine: two passes, suppress, baseline, report.

``analyze_project`` is the core: given ``{path: source}`` it parses
every file once (pass 1), builds the project symbol table and call
graph (:mod:`repro.analysis.callgraph`), then runs the per-file rules
over each tree and the interprocedural dataflow rules
(:mod:`repro.analysis.dataflow`) over the whole project (pass 2).
Findings are filtered through the inline suppressions
(:mod:`repro.analysis.suppressions`); a suppression with an empty
reason suppresses nothing and is itself reported as ``R000``, and a
reasoned suppression whose rules no longer fire on its line is reported
as a *stale* ``R000`` so dead markers cannot accumulate silently.

Files that do not parse are reported as ``R000`` and recorded as skips
on the call graph -- the scan degrades, it never crashes.  Each run
ticks the ``analysis.*`` instruments (:mod:`repro.obs`) so analyze runs
are visible in the observability layer.

The *baseline* is a checked-in JSON file of violation fingerprints that
are tolerated (grandfathered) for now.  ``--strict`` fails on any
violation outside the baseline; the shipped baseline is empty -- every
historical finding was fixed or suppressed-with-reason -- but the
mechanism lets a future rule land before its last offender is migrated.
"""

from __future__ import annotations

import ast
import json
from collections import Counter
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Mapping, Sequence

from repro.analysis.callgraph import GraphSkip
from repro.analysis.dataflow import Project, ProjectRule, build_project_graph
from repro.analysis.rules import ALL_RULES, Rule
from repro.analysis.suppressions import Suppression, collect_suppressions
from repro.analysis.violations import Violation

__all__ = [
    "AnalysisReport",
    "ScanResult",
    "analyze_source",
    "analyze_project",
    "analyze_paths",
    "scan_paths",
    "load_baseline",
    "write_baseline",
]

BASELINE_VERSION = 1


@dataclass
class AnalysisReport:
    """Everything one scan produced, split against a baseline."""

    violations: list[Violation]
    baseline: frozenset[str]

    @property
    def fresh(self) -> list[Violation]:
        """Violations not covered by the baseline.

        The baseline stores fingerprints without multiplicity; if a file
        gains a *second* copy of a baselined snippet, both share one
        fingerprint and stay baselined -- an accepted imprecision kept in
        exchange for line-number-free stability.
        """
        return [
            v for v in self.violations if v.fingerprint() not in self.baseline
        ]

    @property
    def baselined(self) -> list[Violation]:
        """Violations tolerated by the baseline file."""
        return [
            v for v in self.violations if v.fingerprint() in self.baseline
        ]

    def summary(self) -> str:
        """One-line totals by rule, e.g. ``R001 x2, R003 x1``."""
        counts = Counter(v.rule for v in self.violations)
        if not counts:
            return "clean"
        return ", ".join(
            f"{rule} x{count}" for rule, count in sorted(counts.items())
        )


@dataclass
class ScanResult:
    """Violations plus the project context that produced them.

    The CLI uses the attached :class:`Project` for ``--graph`` (the
    serialized call-graph artifact) and ``--why`` (dataflow evidence);
    plain callers can keep using :func:`analyze_paths`, which returns
    just the violations.
    """

    violations: list[Violation]
    project: Project = field(default_factory=Project)


def _reasonless(suppression: Suppression, path: str) -> Violation:
    return Violation(
        rule="R000",
        path=path,
        line=suppression.line,
        column=1,
        message=(
            "suppression without a reason: '# repro: allow[...]' must "
            "carry a justification after the bracket "
            f"(rules {', '.join(suppression.rules)})"
        ),
        snippet=f"repro: allow[{', '.join(suppression.rules)}]",
    )


def _stale(suppression: Suppression, path: str) -> Violation:
    rules = ", ".join(suppression.rules)
    return Violation(
        rule="R000",
        path=path,
        line=suppression.line,
        column=1,
        message=(
            f"stale suppression: '# repro: allow[{rules}]' no longer "
            "matches any finding on the line it covers -- the violation "
            "was fixed or the code moved; delete the marker (or move it "
            "next to the code it justifies)"
        ),
        snippet=f"stale: repro: allow[{rules}]",
    )


def _syntax_violation(path: str, exc: SyntaxError) -> Violation:
    return Violation(
        rule="R000",
        path=path,
        line=exc.lineno or 1,
        column=(exc.offset or 0) + 1,
        message=f"file does not parse: {exc.msg}",
        snippet="<syntax error>",
    )


def analyze_project(
    sources: Mapping[str, str],
    rules: Sequence[Rule] = ALL_RULES,
) -> ScanResult:
    """Run both passes over ``{path: source}`` and return everything.

    Paths are the repo-relative posix paths used for rule scoping and
    reporting.  Unparseable files are reported as ``R000``, recorded as
    graph skips, and excluded from the interprocedural pass; everything
    else proceeds.
    """
    project = Project()
    findings: list[Violation] = []
    suppressions_by_path: dict[str, list[Suppression]] = {}
    parse_skips: list[GraphSkip] = []

    for path, source in sources.items():
        lines = source.splitlines()
        project.lines[path] = lines
        suppressions_by_path[path] = collect_suppressions(lines)
        try:
            project.trees[path] = ast.parse(source)
        except SyntaxError as exc:
            findings.append(_syntax_violation(path, exc))
            parse_skips.append(
                GraphSkip(
                    path=path,
                    lineno=exc.lineno or 1,
                    reason="syntax-error",
                    detail=str(exc.msg),
                )
            )

    project.graph = build_project_graph(project.trees)
    project.graph.skips.extend(parse_skips)

    for path, suppressions in suppressions_by_path.items():
        for suppression in suppressions:
            if not suppression.reason:
                findings.append(_reasonless(suppression, path))

    raw: list[Violation] = []
    for rule in rules:
        if isinstance(rule, ProjectRule):
            for violation in rule.check_project(project):
                if rule.applies_to(violation.path):
                    raw.append(violation)
        else:
            for path, tree in project.trees.items():
                if not rule.applies_to(path):
                    continue
                raw.extend(rule.check(tree, project.lines[path], path))

    active_ids = {rule.id for rule in rules}
    used: set[tuple[str, int]] = set()  # (path, suppression line)
    for violation in raw:
        suppressed = False
        for suppression in suppressions_by_path.get(violation.path, ()):
            if suppression.covers(violation.rule, violation.line):
                used.add((violation.path, suppression.line))
                suppressed = True
        if not suppressed:
            findings.append(violation)

    # Stale suppressions: a reasoned marker whose rules all ran in this
    # scan yet covered nothing.  Markers naming any rule outside the
    # active set are left alone -- a partial-rule run cannot tell.
    for path, suppressions in suppressions_by_path.items():
        for suppression in suppressions:
            if not suppression.reason:
                continue  # already reported as reasonless
            if (path, suppression.line) in used:
                continue
            rules_named = set(suppression.rules)
            if "R000" in rules_named:
                continue
            if not rules_named <= active_ids:
                continue
            findings.append(_stale(suppression, path))

    findings.sort(key=lambda v: (v.path, v.line, v.column, v.rule))
    _record_instruments(project, findings, rules)
    return ScanResult(violations=findings, project=project)


def _record_instruments(
    project: Project, findings: list[Violation], rules: Sequence[Rule]
) -> None:
    """Tick the ``analysis.*`` counters for one completed scan."""
    from repro import obs

    obs.counter(
        "analysis.runs_total", "analyze scans completed"
    ).inc()
    obs.counter(
        "analysis.files_total", "files parsed across analyze scans"
    ).inc(len(project.lines))
    obs.counter(
        "analysis.findings_total", "violations found across analyze scans"
    ).inc(len(findings))
    obs.counter(
        "analysis.graph.functions_total",
        "call-graph function nodes built across analyze scans",
    ).inc(len(project.graph.functions))
    obs.counter(
        "analysis.graph.edges_total",
        "call sites recorded across analyze scans",
    ).inc(len(project.graph.calls))
    obs.counter(
        "analysis.graph.skips_total",
        "call sites the resolver degraded to recorded skips",
    ).inc(len(project.graph.skips))
    by_rule = Counter(v.rule for v in findings)
    for rule in rules:
        obs.counter(
            f"analysis.rules.{rule.id.lower()}.findings_total",
            f"findings of rule {rule.id} across analyze scans",
        ).inc(by_rule.get(rule.id, 0))


def analyze_source(
    source: str,
    path: str,
    rules: Sequence[Rule] = ALL_RULES,
) -> list[Violation]:
    """All violations in one file's source text.

    The file is treated as a one-module project, so the dataflow rules
    run too (with only intra-file edges to work from).  ``path`` is the
    repo-relative posix path used for rule scoping and reporting.
    """
    return analyze_project({path: source}, rules).violations


def _python_files(paths: Iterable[Path]) -> list[Path]:
    files: list[Path] = []
    for path in paths:
        if path.is_dir():
            files.extend(sorted(path.rglob("*.py")))
        elif path.suffix == ".py":
            files.append(path)
    return files


def scan_paths(
    paths: Sequence[Path | str],
    root: Path | str | None = None,
    rules: Sequence[Rule] = ALL_RULES,
) -> ScanResult:
    """Scan files/directories and keep the project context.

    Paths in reports are relative to ``root`` (default: the current
    directory); files outside it keep their absolute path.
    """
    base = Path(root) if root is not None else Path.cwd()
    sources: dict[str, str] = {}
    for file_path in _python_files(Path(p) for p in paths):
        try:
            relative = file_path.resolve().relative_to(base.resolve())
            report_path = relative.as_posix()
        except ValueError:
            report_path = file_path.as_posix()
        sources[report_path] = file_path.read_text(encoding="utf-8")
    return analyze_project(sources, rules)


def analyze_paths(
    paths: Sequence[Path | str],
    root: Path | str | None = None,
    rules: Sequence[Rule] = ALL_RULES,
) -> list[Violation]:
    """Scan files/directories; paths in reports are relative to ``root``."""
    return scan_paths(paths, root=root, rules=rules).violations


def load_baseline(path: Path | str) -> frozenset[str]:
    """The fingerprint set of a baseline file (empty if absent)."""
    baseline_path = Path(path)
    if not baseline_path.exists():
        return frozenset()
    data = json.loads(baseline_path.read_text(encoding="utf-8"))
    version = data.get("version")
    if version != BASELINE_VERSION:
        raise ValueError(
            f"baseline {baseline_path} has version {version!r}; this "
            f"analyzer reads version {BASELINE_VERSION}"
        )
    return frozenset(data.get("violations", []))


def write_baseline(path: Path | str, violations: Iterable[Violation]) -> None:
    """Write the fingerprints of ``violations`` as the new baseline."""
    fingerprints = sorted({v.fingerprint() for v in violations})
    payload = {"version": BASELINE_VERSION, "violations": fingerprints}
    Path(path).write_text(
        json.dumps(payload, indent=2) + "\n", encoding="utf-8"
    )
