"""Domain-aware static analysis for the reproduction's invariants.

The generic toolchain (ruff, mypy) cannot see what makes *this* codebase
correct: exact modular arithmetic that a platform-default dtype corrupts
silently, a capability registry that an ``isinstance`` ladder bypasses,
seeded randomness that one stray ``default_rng()`` breaks.  This package
is a small AST-based framework encoding those invariants as named rules
(R001-R004, :mod:`repro.analysis.rules`), with inline suppressions that
require a written reason and a checked-in violation baseline.

Run it as ``repro-experiments analyze --strict`` (the CI gate) or
programmatically through :func:`analyze_paths`.  ``docs/static-analysis.md``
documents every rule and the suppression workflow.
"""

from repro.analysis.cli import BASELINE_FILENAME, run_analyze
from repro.analysis.engine import (
    AnalysisReport,
    analyze_paths,
    analyze_source,
    load_baseline,
    write_baseline,
)
from repro.analysis.rules import ALL_RULES, Rule, rule_by_id
from repro.analysis.suppressions import Suppression, collect_suppressions
from repro.analysis.violations import Violation

__all__ = [
    "ALL_RULES",
    "AnalysisReport",
    "BASELINE_FILENAME",
    "run_analyze",
    "Rule",
    "Suppression",
    "Violation",
    "analyze_paths",
    "analyze_source",
    "collect_suppressions",
    "load_baseline",
    "rule_by_id",
    "write_baseline",
]
