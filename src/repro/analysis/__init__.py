"""Domain-aware static analysis for the reproduction's invariants.

The generic toolchain (ruff, mypy) cannot see what makes *this* codebase
correct: exact modular arithmetic that a platform-default dtype corrupts
silently, a capability registry that an ``isinstance`` ladder bypasses,
seeded randomness that one stray ``default_rng()`` breaks.  This package
is an AST-based framework encoding those invariants as named rules, with
inline suppressions that require a written reason and a checked-in
violation baseline.

The engine runs two passes.  Pass 1 (:mod:`repro.analysis.callgraph`)
parses every file and builds a project-wide symbol table and call graph;
pass 2 runs the per-file rules (R001-R007,
:mod:`repro.analysis.rules`) and the interprocedural dataflow rules
(R008-R011, :mod:`repro.analysis.dataflow`) over it.

Run it as ``repro-experiments analyze --strict`` (the CI gate) or
programmatically through :func:`analyze_paths` /
:func:`analyze_project`.  ``docs/static-analysis.md`` documents every
rule and the suppression workflow.
"""

from repro.analysis.callgraph import CallGraph, build_call_graph
from repro.analysis.cli import BASELINE_FILENAME, run_analyze
from repro.analysis.dataflow import Project, ProjectRule
from repro.analysis.engine import (
    AnalysisReport,
    ScanResult,
    analyze_paths,
    analyze_project,
    analyze_source,
    load_baseline,
    scan_paths,
    write_baseline,
)
from repro.analysis.rules import ALL_RULES, FILE_RULES, PROJECT_RULES, Rule, rule_by_id
from repro.analysis.suppressions import Suppression, collect_suppressions
from repro.analysis.violations import Violation

__all__ = [
    "ALL_RULES",
    "AnalysisReport",
    "BASELINE_FILENAME",
    "CallGraph",
    "FILE_RULES",
    "PROJECT_RULES",
    "Project",
    "ProjectRule",
    "Rule",
    "ScanResult",
    "Suppression",
    "Violation",
    "analyze_paths",
    "analyze_project",
    "analyze_source",
    "build_call_graph",
    "collect_suppressions",
    "load_baseline",
    "rule_by_id",
    "run_analyze",
    "scan_paths",
    "write_baseline",
]
