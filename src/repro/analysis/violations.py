"""Violation records and baseline fingerprints.

A violation is one rule firing at one source location.  The baseline file
stores *fingerprints* -- ``rule::path::snippet`` -- rather than line
numbers, so unrelated edits above a baselined site do not churn the
baseline.  Two identical snippets in one file share a fingerprint; the
engine counts occurrences so a second copy of a baselined violation still
fails strict mode.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["Violation"]


@dataclass(frozen=True)
class Violation:
    """One rule firing at one source location.

    ``why`` carries the dataflow evidence behind interprocedural
    findings (taint chains, call paths, dominating-guard searches) --
    one human-readable step per entry.  It does not participate in
    equality or the fingerprint: the same defect found through two
    different paths is still one defect.
    """

    rule: str
    path: str
    line: int
    column: int
    message: str
    snippet: str
    why: tuple[str, ...] = field(default=(), compare=False)

    def fingerprint(self) -> str:
        """The line-number-free identity used by the baseline file."""
        return f"{self.rule}::{self.path}::{self.snippet}"

    def render(self) -> str:
        """Human-readable one-line report."""
        return (
            f"{self.path}:{self.line}:{self.column}: "
            f"{self.rule} {self.message}"
        )

    def render_why(self) -> str:
        """The one-line report plus the indented evidence chain."""
        if not self.why:
            return self.render()
        steps = "\n".join(f"    {step}" for step in self.why)
        return f"{self.render()}\n{steps}"
