"""Violation records and baseline fingerprints.

A violation is one rule firing at one source location.  The baseline file
stores *fingerprints* -- ``rule::path::snippet`` -- rather than line
numbers, so unrelated edits above a baselined site do not churn the
baseline.  Two identical snippets in one file share a fingerprint; the
engine counts occurrences so a second copy of a baselined violation still
fails strict mode.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["Violation"]


@dataclass(frozen=True)
class Violation:
    """One rule firing at one source location."""

    rule: str
    path: str
    line: int
    column: int
    message: str
    snippet: str

    def fingerprint(self) -> str:
        """The line-number-free identity used by the baseline file."""
        return f"{self.rule}::{self.path}::{self.snippet}"

    def render(self) -> str:
        """Human-readable one-line report."""
        return (
            f"{self.path}:{self.line}:{self.column}: "
            f"{self.rule} {self.message}"
        )
