"""Adversarial workloads for the EH3 scheme (paper Section 5.3.3).

The paper remarks: "In the worst case, an example can be built in which
the -1 terms do not appear with nonzero coefficients, but the 1 terms do.
In this case the performance of EH3 is equivalent to the performance of
BCH3.  These are pathological cases, though."  This module *builds that
example*, making the remark executable and benchable.

Construction: restrict the data's support to indices whose adjacent bit
pairs are all ``00`` or ``11`` (each pair either empty or full).  This set

* is closed under XOR (pairwise XOR of {00, 11} stays in {00, 11}), so
  quadruples with ``i ^ j ^ k ^ l = 0`` abound inside the support, and
* kills EH3's sign: on the support ``h(i)`` equals the number of ``11``
  pairs mod 2, and for any XOR-zero quadruple each pair position flips an
  even number of times, so ``h(i)^h(j)^h(k)^h(l) = 0`` -- every surviving
  quadruple contributes ``+1``, exactly as under BCH3.

On data supported on this set, EH3's variance degrades to BCH3's; on
generic support the negative terms cancel most of it.  The ablation
benchmark quantifies both.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "adverse_support",
    "adverse_frequency_vector",
    "is_pair_aligned",
]


def is_pair_aligned(index: int, domain_bits: int) -> bool:
    """Whether every adjacent bit pair of ``index`` is ``00`` or ``11``."""
    pairs = (domain_bits + 1) // 2
    for t in range(pairs):
        pair = (index >> (2 * t)) & 0b11
        if pair in (0b01, 0b10):
            return False
    return True


def adverse_support(domain_bits: int) -> np.ndarray:
    """All pair-aligned indices of a ``2^domain_bits`` domain, sorted.

    For even ``domain_bits`` there are ``2^(domain_bits / 2)`` of them:
    one per choice of empty/full for each pair.  The set is closed under
    XOR and contains 0.
    """
    if domain_bits % 2 != 0:
        raise ValueError("the construction needs an even bit width")
    pairs = domain_bits // 2
    support = []
    for mask in range(1 << pairs):
        index = 0
        for t in range(pairs):
            if (mask >> t) & 1:
                index |= 0b11 << (2 * t)
        support.append(index)
    return np.array(sorted(support), dtype=np.int64)


def adverse_frequency_vector(
    domain_bits: int,
    tuples: int,
    rng: np.random.Generator | None = None,
) -> np.ndarray:
    """A frequency vector supported only on the adversarial set.

    Mass is spread uniformly (with optional random jitter) over the
    pair-aligned indices; everything off-support is zero.  Feeding this to
    an EH3 self-join estimator reproduces BCH3-level error.
    """
    support = adverse_support(domain_bits)
    frequencies = np.zeros(1 << domain_bits, dtype=np.float64)
    if rng is None:
        frequencies[support] = tuples / len(support)
    else:
        weights = rng.dirichlet(np.ones(len(support)))
        frequencies[support] = weights * tuples
    return frequencies
