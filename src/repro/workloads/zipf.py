"""Zipf-distributed frequency vectors (paper Section 6.1-6.2 workloads).

Figures 2 and 3 estimate self-join sizes of relations whose value
frequencies follow a Zipf law: frequency of the rank-``k`` value
proportional to ``1 / k^z`` with the coefficient ``z`` swept from 0
(uniform) to 5 (extremely skewed).  The generators here produce both the
*expected* (deterministic, real-valued) frequency vector and sampled
integer-count vectors, over domains of ``2^n`` values, with an optional
random permutation decoupling rank from domain position (XOR structure in
the variance theory makes position matter, so experiments shuffle).
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "zipf_weights",
    "zipf_frequency_vector",
    "sample_zipf_counts",
]


def zipf_weights(domain_size: int, z: float) -> np.ndarray:
    """Normalized Zipf probabilities ``p_k ~ 1 / (k+1)^z`` (rank order)."""
    if domain_size < 1:
        raise ValueError("domain_size must be positive")
    if z < 0:
        raise ValueError("the Zipf coefficient must be non-negative")
    ranks = np.arange(1, domain_size + 1, dtype=np.float64)
    weights = ranks**-z
    return weights / weights.sum()


def zipf_frequency_vector(
    domain_size: int,
    tuples: int,
    z: float,
    rng: np.random.Generator | None = None,
    permute: bool = True,
) -> np.ndarray:
    """Expected (real-valued) Zipf frequency vector with ``tuples`` mass.

    The deterministic counterpart of :func:`sample_zipf_counts`: frequency
    of the rank-k value is exactly ``tuples * p_k``.  With ``permute=True``
    ranks are assigned to random domain positions (requires ``rng``).
    """
    frequencies = zipf_weights(domain_size, z) * float(tuples)
    if permute:
        if rng is None:
            raise ValueError("permute=True requires an rng")
        frequencies = frequencies[rng.permutation(domain_size)]
    return frequencies


def sample_zipf_counts(
    domain_size: int,
    tuples: int,
    z: float,
    rng: np.random.Generator,
    permute: bool = True,
) -> np.ndarray:
    """Integer frequency vector of ``tuples`` i.i.d. Zipf draws.

    This is what a real tuple stream produces; totals sum exactly to
    ``tuples``.
    """
    if tuples < 0:
        raise ValueError("tuples must be non-negative")
    weights = zipf_weights(domain_size, z)
    counts = rng.multinomial(tuples, weights).astype(np.float64)
    if permute:
        counts = counts[rng.permutation(domain_size)]
    return counts
