"""Synthetic multi-dimensional region data (paper Section 6.4 / Figure 4).

Reimplementation of the data generator the paper borrows from Dobra et
al. [8]: a two-dimensional point distribution composed of rectangular
*regions* randomly placed in the domain, with

* the number of points assigned to each region Zipf distributed across
  regions, and
* the point distribution *within* each region Zipf distributed as well
  (skew over the region's cells, positions shuffled inside the region).

The Figure 4 experiments use 10 regions over a 1024 x 1024 domain and sweep
the within-region Zipf coefficient.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.workloads.zipf import zipf_weights

__all__ = ["Region", "RegionDataset", "generate_region_dataset"]


@dataclass(frozen=True)
class Region:
    """An axis-aligned rectangular region with a point budget."""

    bounds: tuple[tuple[int, int], ...]  # one inclusive (low, high) per axis
    points: int

    @property
    def cells(self) -> int:
        """Number of domain cells inside the region."""
        total = 1
        for low, high in self.bounds:
            total *= high - low + 1
        return total


@dataclass
class RegionDataset:
    """A generated dataset: the points plus the region metadata."""

    domain_bits: tuple[int, ...]
    regions: list[Region]
    points: np.ndarray  # (count, d) int64

    @property
    def dimensions(self) -> int:
        """Number of axes."""
        return len(self.domain_bits)

    def frequency_matrix(self) -> np.ndarray:
        """Dense d-dimensional histogram of the points (small domains)."""
        shape = tuple(1 << b for b in self.domain_bits)
        freq = np.zeros(shape, dtype=np.float64)
        np.add.at(freq, tuple(self.points[:, k] for k in range(self.dimensions)), 1.0)
        return freq


def _random_region_bounds(
    rng: np.random.Generator,
    domain_bits: tuple[int, ...],
    min_side: int,
    max_side: int,
) -> tuple[tuple[int, int], ...]:
    bounds = []
    for bits in domain_bits:
        size = 1 << bits
        side = int(rng.integers(min_side, min(max_side, size) + 1))
        low = int(rng.integers(0, size - side + 1))
        bounds.append((low, low + side - 1))
    return tuple(bounds)


def generate_region_dataset(
    domain_bits: tuple[int, ...] = (10, 10),
    regions: int = 10,
    total_points: int = 100_000,
    region_zipf: float = 1.0,
    within_zipf: float = 1.0,
    rng: np.random.Generator | None = None,
    min_side: int = 32,
    max_side: int = 256,
) -> RegionDataset:
    """The Figure 4 dataset: Zipf-over-regions, Zipf-within-region points.

    ``region_zipf`` skews how many points each region receives;
    ``within_zipf`` skews how the points spread over a region's cells (the
    coefficient swept on Figure 4's x-axis).

    With ``rng=None`` the dataset is drawn from a fixed seed: every
    workload in this reproduction must replay bit-identically by default
    (determinism invariant R003); pass a seeded Generator to vary it.
    """
    if rng is None:
        rng = np.random.default_rng(0)
    if regions < 1:
        raise ValueError("at least one region is required")

    per_region = rng.multinomial(total_points, zipf_weights(regions, region_zipf))
    region_list: list[Region] = []
    chunks: list[np.ndarray] = []
    for budget in per_region:
        bounds = _random_region_bounds(rng, tuple(domain_bits), min_side, max_side)
        region = Region(bounds=bounds, points=int(budget))
        region_list.append(region)
        if budget == 0:
            continue
        # Zipf over the region's cells, with shuffled cell order so the
        # skew is not axis-aligned.
        cells = region.cells
        cell_weights = zipf_weights(cells, within_zipf)
        cell_counts = rng.multinomial(int(budget), cell_weights)
        cell_ids = rng.permutation(cells)[cell_counts > 0]
        cell_counts = cell_counts[cell_counts > 0]
        # Unrank cell ids into per-axis coordinates.
        sides = [high - low + 1 for low, high in bounds]
        coords = np.empty((len(cell_ids), len(bounds)), dtype=np.int64)
        remainder = cell_ids.astype(np.int64)
        for axis in range(len(bounds) - 1, -1, -1):
            coords[:, axis] = bounds[axis][0] + remainder % sides[axis]
            remainder //= sides[axis]
        chunks.append(np.repeat(coords, cell_counts, axis=0))

    if chunks:
        points = np.concatenate(chunks, axis=0)
        rng.shuffle(points, axis=0)
    else:
        points = np.empty((0, len(domain_bits)), dtype=np.int64)
    return RegionDataset(
        domain_bits=tuple(domain_bits), regions=region_list, points=points
    )
