"""Synthetic GIS-like segment datasets (paper Section 6.3 / Figures 5-7).

The paper evaluates spatial-join estimation on three Wyoming GIS layers:

* LANDO -- land-cover ownership, 33,860 objects,
* LANDC -- land-cover / vegetation types, 14,731 objects,
* SOIL  -- state soils at 1:100,000 scale, 29,662 objects.

Those files are not redistributable, so this module builds synthetic
*stand-ins* with the properties the estimators are sensitive to (see
DESIGN.md, "Substitutions"): identical object counts, spatially clustered
placement (parcels concentrate around populated areas), and heavy-tailed
segment lengths (a few huge ownership parcels, many small ones).  Each
dataset is generated from a fixed per-name seed, so every experiment is
reproducible bit-for-bit.

Segments are 1-D inclusive integer intervals over a ``2^domain_bits``
domain -- the unidimensional spatial-join setting of Application 1 (the
paper's own base case; its d-dimensional extension combines per-dimension
estimators exactly as :mod:`repro.rangesum.multidim` does).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = [
    "SegmentDataset",
    "generate_segments",
    "state_geography",
    "lando",
    "landc",
    "soil",
    "DATASET_SPECS",
]

#: (object count, cluster count, mean log2 length, seed) per paper dataset.
#: All three layers share :func:`state_geography` hotspots (same state).
DATASET_SPECS: dict[str, tuple[int, int, float, int]] = {
    "LANDO": (33_860, 200, 9.0, 0xA1),
    "LANDC": (14_731, 200, 9.5, 0xB2),
    "SOIL": (29_662, 200, 8.5, 0xC3),
}


@dataclass
class SegmentDataset:
    """A named set of 1-D segments over a ``2^domain_bits`` domain."""

    name: str
    domain_bits: int
    segments: np.ndarray  # (count, 2) int64, inclusive [low, high]

    def __post_init__(self) -> None:
        seg = np.asarray(self.segments, dtype=np.int64)
        if seg.ndim != 2 or seg.shape[1] != 2:
            raise ValueError("segments must be a (count, 2) array")
        if (seg[:, 0] > seg[:, 1]).any():
            raise ValueError("every segment needs low <= high")
        if seg.min(initial=0) < 0 or seg.max(initial=0) >= (1 << self.domain_bits):
            raise ValueError("segments outside the domain")
        self.segments = seg

    def __len__(self) -> int:
        return len(self.segments)

    def left_endpoints(self) -> np.ndarray:
        """The left end-point of every segment (the join's point side)."""
        return self.segments[:, 0].copy()

    def coverage_vector(self) -> np.ndarray:
        """Dense count of segments covering each domain point (small domains).

        Computed with a difference array so it is O(count + domain).
        """
        diff = np.zeros((1 << self.domain_bits) + 1, dtype=np.float64)
        np.add.at(diff, self.segments[:, 0], 1.0)
        np.add.at(diff, self.segments[:, 1] + 1, -1.0)
        return np.cumsum(diff)[:-1]


def state_geography(domain_bits: int, clusters: int, seed: int = 0x57A7E) -> np.ndarray:
    """Shared hotspot centers for co-located layers.

    The paper's three layers all describe Wyoming, so their object
    densities peak in the same places; the stand-ins share this fixed
    center set (per-layer placement still differs) which gives the
    pairwise joins realistic, non-vanishing selectivities.
    """
    rng = np.random.default_rng(seed)
    return rng.integers(0, 1 << domain_bits, size=clusters)


def generate_segments(
    name: str,
    count: int,
    domain_bits: int,
    clusters: int,
    mean_log_length: float,
    rng: np.random.Generator,
    cluster_spread: float = 0.08,
    popularity_zipf: float = 0.5,
    length_log_sigma: float = 1.0,
    centers: np.ndarray | None = None,
) -> SegmentDataset:
    """Clustered heavy-tailed segment generator.

    Cluster centers are uniform; each segment picks a cluster (Zipf
    popularity with coefficient ``popularity_zipf``), a Gaussian position
    around its center (``cluster_spread`` of the domain), and a log-normal
    length centered at ``2^mean_log_length``.  The defaults are calibrated
    so coverage depths resemble cadastral GIS layers (tens of overlapping
    parcels at hot spots, not hundreds) -- see DESIGN.md, Substitutions.
    """
    if count < 1 or clusters < 1:
        raise ValueError("count and clusters must be positive")
    domain = 1 << domain_bits

    if centers is None:
        centers = rng.integers(0, domain, size=clusters)
    else:
        centers = np.asarray(centers, dtype=np.int64)
        if len(centers) != clusters:
            raise ValueError("centers must match the cluster count")
    popularity = np.arange(1, clusters + 1, dtype=np.float64) ** -popularity_zipf
    popularity /= popularity.sum()
    assignment = rng.choice(clusters, size=count, p=popularity)

    positions = centers[assignment] + rng.normal(
        0.0, cluster_spread * domain, size=count
    )
    lengths = np.exp2(
        rng.normal(mean_log_length, length_log_sigma, size=count)
    )
    lengths = np.clip(lengths, 1, domain // 4).astype(np.int64)

    # Wrap positions modulo the per-segment feasible start range instead of
    # clipping: clipping would pile thousands of end-points onto the two
    # boundary values and distort every end-point-based reduction.
    lows = positions.astype(np.int64) % (domain - lengths)
    highs = lows + lengths
    segments = np.stack([lows, highs], axis=1)
    return SegmentDataset(name=name, domain_bits=domain_bits, segments=segments)


def _from_spec(name: str, domain_bits: int) -> SegmentDataset:
    count, clusters, mean_log_length, seed = DATASET_SPECS[name]
    rng = np.random.default_rng(seed)
    return generate_segments(
        name,
        count,
        domain_bits,
        clusters,
        mean_log_length,
        rng,
        centers=state_geography(domain_bits, clusters),
    )


def lando(domain_bits: int = 20) -> SegmentDataset:
    """Synthetic stand-in for the LANDO layer (33,860 objects)."""
    return _from_spec("LANDO", domain_bits)


def landc(domain_bits: int = 20) -> SegmentDataset:
    """Synthetic stand-in for the LANDC layer (14,731 objects)."""
    return _from_spec("LANDC", domain_bits)


def soil(domain_bits: int = 20) -> SegmentDataset:
    """Synthetic stand-in for the SOIL layer (29,662 objects)."""
    return _from_spec("SOIL", domain_bits)
