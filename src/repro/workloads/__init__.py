"""Workload generators for the paper's experiments (Section 6)."""

from repro.workloads.adversarial import (
    adverse_frequency_vector,
    adverse_support,
    is_pair_aligned,
)
from repro.workloads.regions import (
    Region,
    RegionDataset,
    generate_region_dataset,
)
from repro.workloads.spatial import (
    DATASET_SPECS,
    SegmentDataset,
    generate_segments,
    landc,
    lando,
    soil,
)
from repro.workloads.zipf import (
    sample_zipf_counts,
    zipf_frequency_vector,
    zipf_weights,
)

__all__ = [
    "adverse_frequency_vector",
    "adverse_support",
    "is_pair_aligned",
    "Region",
    "RegionDataset",
    "generate_region_dataset",
    "DATASET_SPECS",
    "SegmentDataset",
    "generate_segments",
    "landc",
    "lando",
    "soil",
    "sample_zipf_counts",
    "zipf_frequency_vector",
    "zipf_weights",
]
