"""Substrate layer: bit kernels, finite fields, and dyadic intervals."""

from repro.core.bits import (
    adjacent_pair_or_fold,
    adjacent_pair_or_fold_array,
    parity,
    parity_array,
    popcount,
    popcount_array,
    trailing_zeros,
)
from repro.core.dyadic import (
    CoverArrays,
    DyadicInterval,
    containing_intervals,
    dyadic_cover_arrays,
    interval_from_id,
    interval_id,
    minimal_dyadic_cover,
    minimal_quaternary_cover,
    quaternary_cover_arrays,
)
from repro.core.gf2 import GF2Field, field, is_irreducible
from repro.core.primefield import (
    MERSENNE_31,
    MERSENNE_61,
    PrimeField,
    is_prime,
    next_prime_at_least,
    prime_field,
)

__all__ = [
    "adjacent_pair_or_fold",
    "adjacent_pair_or_fold_array",
    "parity",
    "parity_array",
    "popcount",
    "popcount_array",
    "trailing_zeros",
    "CoverArrays",
    "DyadicInterval",
    "containing_intervals",
    "dyadic_cover_arrays",
    "interval_from_id",
    "interval_id",
    "minimal_dyadic_cover",
    "minimal_quaternary_cover",
    "quaternary_cover_arrays",
    "GF2Field",
    "field",
    "is_irreducible",
    "MERSENNE_31",
    "MERSENNE_61",
    "PrimeField",
    "is_prime",
    "next_prime_at_least",
    "prime_field",
]
