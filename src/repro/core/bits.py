"""Low-level bit kernels used throughout the library.

The paper implements the critical inner loop of every generating scheme --
the GF(2) dot product, i.e. ``parity(a & b)`` -- in Pentium assembly to
exploit the hardware parity flag.  Pure Python has no parity instruction, so
this module provides the two idioms that are fast on a modern CPython/numpy
stack instead:

* scalar kernels built on :func:`int.bit_count` (a single CPython bytecode
  dispatch, POPCNT underneath), and
* vectorized kernels that reduce whole ``numpy`` arrays with shift-and-xor
  (SWAR) parity folding, which is what lets the benchmark harness measure
  millions of variables per second.

Everything here is deterministic, allocation-light, and independent of the
rest of the package; all higher layers (generators, range summation, dyadic
covers) are built on these primitives.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "parity",
    "parity_u64",
    "parity_array",
    "popcount",
    "popcount_array",
    "trailing_zeros",
    "trailing_ones",
    "bit_length",
    "bit_reverse",
    "extract_bit",
    "extract_bits",
    "interleave_bits",
    "deinterleave_bits",
    "adjacent_pair_or_fold",
    "adjacent_pair_or_fold_array",
    "mask",
    "MASK64",
]

#: All-ones mask for 64-bit words; used to clamp Python ints into u64 range.
MASK64 = (1 << 64) - 1

# Parity of each byte value, precomputed once.  Scalar ``parity`` uses
# ``int.bit_count`` instead, but the table backs the numpy path for dtypes
# where SWAR folding is not a win and is exported for tests.
_BYTE_PARITY = np.array(
    [bin(b).count("1") & 1 for b in range(256)], dtype=np.uint8
)


def mask(nbits: int) -> int:
    """Return an ``nbits``-wide all-ones mask (``nbits >= 0``)."""
    if nbits < 0:
        raise ValueError(f"mask width must be non-negative, got {nbits}")
    return (1 << nbits) - 1


def parity(x: int) -> int:
    """Parity (XOR of all bits) of a non-negative integer.

    This is the GF(2) "sum of bits" reduction; combined with ``&`` it gives
    the GF(2)^k dot product used by every BCH-style generating scheme:
    ``dot(u, v) == parity(u & v)``.
    """
    if x < 0:
        raise ValueError(f"parity is defined for non-negative ints, got {x}")
    return x.bit_count() & 1


def parity_u64(x: int) -> int:
    """Parity of the low 64 bits of ``x`` (SWAR fold, no table).

    Kept separate from :func:`parity` because some callers deliberately work
    modulo 2^64 (e.g. carry-less multiplication intermediates).
    """
    x &= MASK64
    x ^= x >> 32
    x ^= x >> 16
    x ^= x >> 8
    x ^= x >> 4
    x ^= x >> 2
    x ^= x >> 1
    return x & 1


def parity_array(x: np.ndarray) -> np.ndarray:
    """Element-wise parity of an unsigned integer array.

    Uses logarithmic shift-xor folding so the whole reduction happens in a
    handful of vectorized passes.  Returns ``uint8`` zeros/ones.
    """
    x = np.asarray(x)
    if not np.issubdtype(x.dtype, np.unsignedinteger):
        if np.issubdtype(x.dtype, np.signedinteger):
            if x.size and int(x.min()) < 0:
                raise ValueError("parity_array requires non-negative values")
            x = x.astype(np.uint64)
        else:
            raise TypeError(f"parity_array expects integers, got {x.dtype}")
    x = x.astype(np.uint64, copy=True)
    for shift in (np.uint64(32), np.uint64(16), np.uint64(8),
                  np.uint64(4), np.uint64(2), np.uint64(1)):
        x ^= x >> shift
    return (x & np.uint64(1)).astype(np.uint8)


def popcount(x: int) -> int:
    """Number of set bits of a non-negative integer."""
    if x < 0:
        raise ValueError(f"popcount is defined for non-negative ints, got {x}")
    return x.bit_count()


def popcount_array(x: np.ndarray) -> np.ndarray:
    """Element-wise population count of a ``uint64`` array (SWAR)."""
    x = np.asarray(x, dtype=np.uint64).copy()
    m1 = np.uint64(0x5555555555555555)
    m2 = np.uint64(0x3333333333333333)
    m4 = np.uint64(0x0F0F0F0F0F0F0F0F)
    h01 = np.uint64(0x0101010101010101)
    x -= (x >> np.uint64(1)) & m1
    x = (x & m2) + ((x >> np.uint64(2)) & m2)
    x = (x + (x >> np.uint64(4))) & m4
    return ((x * h01) >> np.uint64(56)).astype(np.uint8)


def trailing_zeros(x: int) -> int:
    """Number of trailing zero bits of ``x > 0``.

    The BCH3 constant-time range-sum hinges on the count of trailing zeros
    of the seed: only those low bits of the interval end-points need
    processing (paper Section 4.2).
    """
    if x <= 0:
        raise ValueError(f"trailing_zeros requires a positive int, got {x}")
    return (x & -x).bit_length() - 1


def trailing_ones(x: int) -> int:
    """Number of trailing one bits of ``x >= 0``."""
    if x < 0:
        raise ValueError(f"trailing_ones requires non-negative int, got {x}")
    count = 0
    while x & 1:
        x >>= 1
        count += 1
    return count


def bit_length(x: int) -> int:
    """``x.bit_length()`` with a domain check, for API symmetry."""
    if x < 0:
        raise ValueError(f"bit_length requires a non-negative int, got {x}")
    return x.bit_length()


def bit_reverse(x: int, width: int) -> int:
    """Reverse the low ``width`` bits of ``x``."""
    if x < 0 or x >= (1 << width):
        raise ValueError(f"{x} does not fit in {width} bits")
    result = 0
    for _ in range(width):
        result = (result << 1) | (x & 1)
        x >>= 1
    return result


def extract_bit(x: int, position: int) -> int:
    """Bit ``position`` (0 = least significant) of ``x``."""
    if position < 0:
        raise ValueError(f"bit position must be non-negative, got {position}")
    return (x >> position) & 1


def extract_bits(x: int, width: int) -> tuple[int, ...]:
    """The low ``width`` bits of ``x`` as a tuple, LSB first."""
    return tuple((x >> k) & 1 for k in range(width))


def interleave_bits(x: int, y: int, width: int) -> int:
    """Interleave the low ``width`` bits of ``x`` (even positions) and ``y``.

    Produces the Morton / Z-order code used when flattening two-dimensional
    domains so that 2-D dyadic rectangles remain contiguous.
    """
    if x < 0 or y < 0 or x >= (1 << width) or y >= (1 << width):
        raise ValueError("coordinates must fit in the given width")
    z = 0
    for k in range(width):
        z |= ((x >> k) & 1) << (2 * k)
        z |= ((y >> k) & 1) << (2 * k + 1)
    return z


def deinterleave_bits(z: int, width: int) -> tuple[int, int]:
    """Inverse of :func:`interleave_bits`: Morton code -> ``(x, y)``."""
    if z < 0 or z >= (1 << (2 * width)):
        raise ValueError(f"{z} does not fit in {2 * width} bits")
    x = 0
    y = 0
    for k in range(width):
        x |= ((z >> (2 * k)) & 1) << k
        y |= ((z >> (2 * k + 1)) & 1) << k
    return x, y


def adjacent_pair_or_fold(i: int, width: int) -> int:
    """The EH3 nonlinear function ``h(i)`` (paper Eq. 6).

    ``h(i) = (i_0 | i_1) ^ (i_2 | i_3) ^ ... ^ (i_{w-2} | i_{w-1})``:
    OR each pair of adjacent bits, then XOR the per-pair results.  ``width``
    is rounded up to the next even number (a missing top bit is zero, and
    ``b | 0 == b`` keeps the fold well defined for odd widths).
    """
    if i < 0:
        raise ValueError(f"h(i) requires a non-negative index, got {i}")
    pairs = (width + 1) // 2
    or_of_pairs = (i | (i >> 1)) & 0x5555_5555_5555_5555_5555_5555_5555_5555
    or_of_pairs &= mask(2 * pairs)
    return parity(or_of_pairs)


def adjacent_pair_or_fold_array(i: np.ndarray, width: int) -> np.ndarray:
    """Vectorized :func:`adjacent_pair_or_fold` over a ``uint64`` array."""
    i = np.asarray(i, dtype=np.uint64)
    pairs = (width + 1) // 2
    even_mask = np.uint64(0x5555555555555555 & mask(2 * pairs))
    or_of_pairs = (i | (i >> np.uint64(1))) & even_mask
    return parity_array(or_of_pairs)
