"""Arithmetic in prime fields GF(p), with fast Mersenne-prime reduction.

Substrate of the polynomials-over-primes generating scheme (paper
Section 3.3): ``X_j = a_0 + a_1 j + ... + a_{k-1} j^{k-1} mod p`` with the
coefficients drawn uniformly from Z_p.  The classical implementation choice
-- also what the Massdal library the paper benchmarks does -- is the
Mersenne prime ``p = 2^31 - 1``, whose reduction needs only shifts and adds.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache

import numpy as np

__all__ = [
    "MERSENNE_31",
    "MERSENNE_61",
    "is_prime",
    "next_prime_at_least",
    "mersenne_exponent",
    "mod_mersenne31",
    "mod_mersenne31_array",
    "mod_mersenne_array",
    "mersenne_mulmod_array",
    "PrimeField",
    "prime_field",
]

#: The Mersenne prime 2^31 - 1, the scheme's standard modulus.
MERSENNE_31 = (1 << 31) - 1
#: The Mersenne prime 2^61 - 1, for domains wider than 31 bits.
MERSENNE_61 = (1 << 61) - 1

_SMALL_PRIMES = (2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37)


def is_prime(n: int) -> bool:
    """Deterministic Miller-Rabin for 64-bit-scale integers."""
    if n < 2:
        return False
    for p in _SMALL_PRIMES:
        if n % p == 0:
            return n == p
    d = n - 1
    r = 0
    while d % 2 == 0:
        d //= 2
        r += 1
    # This witness set is deterministic for n < 3.3 * 10^24.
    for a in (2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37):
        x = pow(a, d, n)
        if x in (1, n - 1):
            continue
        for _ in range(r - 1):
            x = x * x % n
            if x == n - 1:
                break
        else:
            return False
    return True


def next_prime_at_least(n: int) -> int:
    """Smallest prime ``>= n`` (the scheme requires ``p >= |domain|``)."""
    if n <= 2:
        return 2
    candidate = n | 1  # skip even numbers
    while not is_prime(candidate):
        candidate += 2
    return candidate


def mod_mersenne31(x: int) -> int:
    """Reduce a non-negative integer modulo 2^31 - 1 without division.

    Folds 31-bit limbs (``2^31 === 1 (mod p)``), the trick that makes the
    polynomials-over-primes scheme competitive in the paper's Table 1.
    """
    p = MERSENNE_31
    while x >> 31:
        x = (x & p) + (x >> 31)
    if x == p:
        x = 0
    return x


def mod_mersenne31_array(x: np.ndarray) -> np.ndarray:
    """Vectorized Mersenne-31 reduction of a ``uint64`` array.

    Valid for inputs below 2^62 (one product of two 31-bit values), which is
    exactly the range Horner evaluation produces.
    """
    return mod_mersenne_array(x, 31)


def mersenne_exponent(p: int) -> int | None:
    """``b`` when ``p == 2^b - 1``, else ``None``.

    The shift-add reduction below applies exactly to these moduli; callers
    (the kernel backends) use this to decide whether a prime qualifies for
    the branch-free path.
    """
    b = p.bit_length()
    return b if p == (1 << b) - 1 else None


def mod_mersenne_array(x: np.ndarray, bits: int) -> np.ndarray:
    """Branch-free reduction of a ``uint64`` array modulo ``2^bits - 1``.

    ``2^bits === 1 (mod p)``, so folding the high limb onto the low one
    (``x -> (x & p) + (x >> bits)``) preserves the residue; two folds bring
    any ``uint64`` input under ``p + epsilon`` and one data-parallel select
    canonicalizes (Ahle/Knudsen/Thorup, arXiv 2008.08654).  No ``%``, no
    divisions, no per-element branches.
    """
    p = np.uint64((1 << bits) - 1)
    shift = np.uint64(bits)
    x = np.asarray(x, dtype=np.uint64)
    x = (x & p) + (x >> shift)
    x = (x & p) + (x >> shift)
    return np.where(x >= p, x - p, x)


def mersenne_mulmod_array(
    a: np.ndarray, b: np.ndarray, bits: int
) -> np.ndarray:
    """Branch-free ``a * b mod (2^bits - 1)`` over canonical uint64 arrays.

    Inputs must already be reduced (``< 2^bits - 1``).  For ``bits <= 31``
    the product fits ``uint64`` directly; for ``bits == 61`` the factors are
    split into 31/30-bit limbs so every partial product and the final fold
    input stay below 2^64 -- using ``2^62 === 2`` and
    ``2^31 * m === (m >> 30) + ((m & (2^30-1)) << 31) (mod 2^61 - 1)``.
    """
    a = np.asarray(a, dtype=np.uint64)
    b = np.asarray(b, dtype=np.uint64)
    if bits <= 31:
        return mod_mersenne_array(a * b, bits)
    if bits != 61:
        raise ValueError(
            f"no uint64 limb decomposition for Mersenne exponent {bits}"
        )
    mask31 = np.uint64((1 << 31) - 1)
    mask30 = np.uint64((1 << 30) - 1)
    au = a >> np.uint64(31)  # < 2^30
    ad = a & mask31
    bu = b >> np.uint64(31)
    bd = b & mask31
    mid = ad * bu + au * bd  # < 2^62
    folded = (
        (au * bu) * np.uint64(2)
        + (mid >> np.uint64(30))
        + ((mid & mask30) << np.uint64(31))
        + ad * bd
    )  # < 2^63: safe input to the double fold
    return mod_mersenne_array(folded, 61)


@dataclass(frozen=True)
class PrimeField:
    """GF(p) with convenience polynomial evaluation helpers."""

    p: int

    def __post_init__(self) -> None:
        if not is_prime(self.p):
            raise ValueError(f"{self.p} is not prime")

    def _check(self, a: int) -> int:
        if not 0 <= a < self.p:
            raise ValueError(f"{a} is not an element of GF({self.p})")
        return a

    def add(self, a: int, b: int) -> int:
        """Field addition."""
        return (self._check(a) + self._check(b)) % self.p

    def sub(self, a: int, b: int) -> int:
        """Field subtraction."""
        return (self._check(a) - self._check(b)) % self.p

    def mul(self, a: int, b: int) -> int:
        """Field multiplication."""
        return self._check(a) * self._check(b) % self.p

    def pow(self, a: int, exponent: int) -> int:
        """Field exponentiation (supports negative exponents via inverse)."""
        self._check(a)
        return pow(a, exponent, self.p)

    def inverse(self, a: int) -> int:
        """Multiplicative inverse by Fermat's little theorem."""
        if self._check(a) == 0:
            raise ZeroDivisionError(f"0 has no inverse mod {self.p}")
        return pow(a, self.p - 2, self.p)

    def eval_poly(self, coefficients: tuple[int, ...], x: int) -> int:
        """Horner evaluation of ``sum_k c_k x^k`` in GF(p).

        ``coefficients[k]`` is the coefficient of ``x^k`` -- the layout of
        the scheme's seed ``(a_0, ..., a_{k-1})``.
        """
        acc = 0
        for c in reversed(coefficients):
            acc = (acc * x + self._check(c)) % self.p
        return acc

    def eval_poly_array(
        self, coefficients: tuple[int, ...], xs: np.ndarray
    ) -> np.ndarray:
        """Vectorized Horner evaluation over an array of points.

        Mersenne moduli (2^b - 1 with b <= 31, or 2^61 - 1) stay entirely in
        ``uint64`` with branch-free fold reduction; other primes fall back to
        Python-int accumulation per Horner step.
        """
        xs = np.asarray(xs, dtype=np.uint64)
        exponent = mersenne_exponent(self.p)
        if exponent is not None and (exponent <= 31 or exponent == 61):
            xs = mod_mersenne_array(xs, exponent)
            acc = np.zeros_like(xs)
            for c in reversed(coefficients):
                acc = mod_mersenne_array(
                    mersenne_mulmod_array(acc, xs, exponent)
                    + np.uint64(self._check(c)),
                    exponent,
                )
            return acc
        acc = np.zeros(xs.shape, dtype=object)
        for c in reversed(coefficients):
            acc = (acc * xs.astype(object) + self._check(c)) % self.p
        return acc.astype(np.uint64)


@lru_cache(maxsize=None)
def prime_field(p: int) -> PrimeField:
    """Cached :class:`PrimeField` instance for the modulus ``p``."""
    return PrimeField(p)
