"""Dyadic intervals and minimal dyadic covers (paper Section 2.3, Figure 1).

A *dyadic interval* over a domain of size ``2^n`` is an interval of the form
``[q * 2^j, (q+1) * 2^j)`` with ``0 <= j <= n`` and ``0 <= q < 2^(n-j)``.
Every interval ``[alpha, beta]`` has a unique minimal decomposition into at
most ``2n - 2`` dyadic intervals, computable directly from the binary
representations of the end-points.  This decomposition is the backbone of:

* all fast range-summation algorithms (sum per dyadic piece, add up), and
* the DMAP baseline of Das et al., which maps intervals to their covers and
  points to their ``n + 1`` containing dyadic intervals.

The EH3 range-sum theorem (Theorem 2) applies to *quaternary* dyadic
intervals ``[q * 4^j, (q+1) * 4^j)``; :func:`minimal_quaternary_cover`
produces such a cover by splitting odd-level pieces of the binary cover.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Sequence

import numpy as np

__all__ = [
    "DyadicInterval",
    "minimal_dyadic_cover",
    "minimal_quaternary_cover",
    "CoverArrays",
    "dyadic_cover_arrays",
    "quaternary_cover_arrays",
    "containing_intervals",
    "interval_id",
    "interval_from_id",
    "all_dyadic_intervals",
    "render_dyadic_tree",
]


@dataclass(frozen=True, order=True)
class DyadicInterval:
    """The dyadic interval ``[offset * 2^level, (offset+1) * 2^level)``.

    ``level`` is the ``j`` of the paper's ``[q 2^j, (q+1) 2^j)`` notation
    and ``offset`` is the ``q``.
    """

    level: int
    offset: int

    def __post_init__(self) -> None:
        if self.level < 0:
            raise ValueError(f"level must be non-negative, got {self.level}")
        if self.offset < 0:
            raise ValueError(f"offset must be non-negative, got {self.offset}")

    @property
    def low(self) -> int:
        """Inclusive lower end-point ``q * 2^j``."""
        return self.offset << self.level

    @property
    def high(self) -> int:
        """Exclusive upper end-point ``(q+1) * 2^j``."""
        return (self.offset + 1) << self.level

    @property
    def size(self) -> int:
        """Number of domain points covered, ``2^level``."""
        return 1 << self.level

    def contains(self, point: int) -> bool:
        """Whether ``point`` lies inside the interval."""
        return self.low <= point < self.high

    def split(self) -> tuple["DyadicInterval", "DyadicInterval"]:
        """The two dyadic children one level down."""
        if self.level == 0:
            raise ValueError("a singleton dyadic interval cannot be split")
        left = DyadicInterval(self.level - 1, self.offset * 2)
        right = DyadicInterval(self.level - 1, self.offset * 2 + 1)
        return left, right

    def parent(self) -> "DyadicInterval":
        """The enclosing dyadic interval one level up."""
        return DyadicInterval(self.level + 1, self.offset >> 1)

    def points(self) -> range:
        """All domain points in the interval (small intervals only)."""
        return range(self.low, self.high)

    def __repr__(self) -> str:
        return f"Dyadic[{self.low}, {self.high})"


def minimal_dyadic_cover(alpha: int, beta: int) -> list[DyadicInterval]:
    """Minimal dyadic cover of the inclusive interval ``[alpha, beta]``.

    Greedy construction: repeatedly take the largest dyadic block that is
    aligned at the current start and fits inside the remaining range.  This
    is exactly the unique minimal cover, with at most ``2n - 2`` pieces for
    a domain of ``2^n`` points, and runs in time proportional to the number
    of output pieces.
    """
    if alpha < 0:
        raise ValueError(f"alpha must be non-negative, got {alpha}")
    if beta < alpha:
        raise ValueError(f"empty interval [{alpha}, {beta}]")
    cover: list[DyadicInterval] = []
    position = alpha
    remaining = beta - alpha + 1
    while remaining > 0:
        if position == 0:
            alignment = remaining.bit_length() - 1  # only size caps apply
        else:
            alignment = (position & -position).bit_length() - 1
        fit = remaining.bit_length() - 1  # largest 2^l <= remaining
        level = min(alignment, fit)
        cover.append(DyadicInterval(level, position >> level))
        position += 1 << level
        remaining -= 1 << level
    return cover


def minimal_quaternary_cover(alpha: int, beta: int) -> list[DyadicInterval]:
    """Cover of ``[alpha, beta]`` by intervals ``[q 4^j, (q+1) 4^j)``.

    Produced from the minimal binary cover by splitting every odd-level
    piece into its two even-level children, so the result has at most twice
    as many pieces; every returned interval has an even ``level`` and is
    therefore of the ``4^j``-sized shape Theorem 2 requires.
    """
    cover: list[DyadicInterval] = []
    for piece in minimal_dyadic_cover(alpha, beta):
        if piece.level % 2 == 0:
            cover.append(piece)
        else:
            left, right = piece.split()
            cover.append(left)
            cover.append(right)
    return cover


@dataclass
class CoverArrays:
    """Flattened minimal covers of a batch of intervals, as numpy arrays.

    ``lows[p]`` and ``levels[p]`` describe one dyadic piece
    ``[lows[p], lows[p] + 2^levels[p])``; ``index[p]`` names the interval
    (by batch position) the piece covers.  Pieces are ordered exactly as
    the scalar covers emit them: grouped by interval, ascending position.
    """

    lows: np.ndarray  # uint64, piece lower end-points
    levels: np.ndarray  # int64, piece levels
    index: np.ndarray  # int64, owning interval position in the batch
    intervals: int  # number of intervals in the batch

    def counts(self) -> np.ndarray:
        """Pieces per interval, aligned with the input batch."""
        return np.bincount(self.index, minlength=self.intervals)


def _cover_endpoints(
    alphas: Sequence[int] | np.ndarray, betas: Sequence[int] | np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    alphas = np.asarray(alphas, dtype=np.uint64)
    betas = np.asarray(betas, dtype=np.uint64)
    if alphas.shape != betas.shape or alphas.ndim != 1:
        raise ValueError("alphas and betas must be matching 1-D arrays")
    if alphas.size and bool(np.any(betas < alphas)):
        bad = int(np.argmax(betas < alphas))
        raise ValueError(
            f"empty interval [{int(alphas[bad])}, {int(betas[bad])}]"
        )
    if alphas.size and int(betas.max()) >= (1 << 63):
        # The vectorized walk shifts uint64 end-points level by level;
        # 64-bit domains (a single piece of level 64) stay on the scalar
        # path, which works over arbitrary Python ints.
        raise OverflowError(
            "dyadic_cover_arrays supports end-points below 2^63; use "
            "minimal_dyadic_cover for full 64-bit domains"
        )
    return alphas, betas


def dyadic_cover_arrays(
    alphas: Sequence[int] | np.ndarray, betas: Sequence[int] | np.ndarray
) -> CoverArrays:
    """Minimal dyadic covers of a whole batch of inclusive intervals.

    Vectorized over the batch: the classic bottom-up segment-tree walk
    emits, per level ``j``, at most one left-aligned and one right-aligned
    piece per interval, so the whole batch is covered in at most
    ``max bit-length`` fused numpy passes -- no ``DyadicInterval`` objects,
    no per-interval Python loop.  Piece-for-piece identical (including
    order) to :func:`minimal_dyadic_cover` applied per interval.
    """
    alphas, betas = _cover_endpoints(alphas, betas)
    count = len(alphas)
    if count == 0:
        empty64 = np.zeros(0, dtype=np.uint64)
        empty_i = np.zeros(0, dtype=np.int64)
        return CoverArrays(empty64, empty_i.copy(), empty_i, 0)

    one = np.uint64(1)
    lows_parts: list[np.ndarray] = []
    levels_parts: list[np.ndarray] = []
    index_parts: list[np.ndarray] = []

    def emit(mask: np.ndarray, lows: np.ndarray, level: int) -> None:
        where = np.flatnonzero(mask)
        if where.size:
            lows_parts.append(lows[where])
            levels_parts.append(np.full(where.size, level, dtype=np.int64))
            index_parts.append(where.astype(np.int64))

    # Level 0 avoids forming beta + 1 (which could overflow uint64).
    emit((alphas & one).astype(bool), alphas, 0)
    emit((~betas & one).astype(bool), betas, 0)

    for level in range(1, 64):
        j = np.uint64(level)
        low_mask = (one << j) - one
        # lo = ceil(alpha / 2^j), hi = floor((beta + 1) / 2^j), overflow-free.
        lo = (alphas >> j) + ((alphas & low_mask) != 0)
        hi = (betas >> j) + ((betas & low_mask) == low_mask)
        active = lo < hi
        if not bool(active.any()):
            break
        emit(active & ((lo & one) == one).astype(bool), lo << j, level)
        right = active & ((hi & one) == one).astype(bool)
        emit(right, (hi - one) << j, level)

    lows = np.concatenate(lows_parts)
    levels = np.concatenate(levels_parts)
    index = np.concatenate(index_parts)
    # Scalar covers run left to right within each interval.
    order = np.lexsort((lows, index))
    return CoverArrays(lows[order], levels[order], index[order], count)


def quaternary_cover_arrays(
    alphas: Sequence[int] | np.ndarray, betas: Sequence[int] | np.ndarray
) -> CoverArrays:
    """Even-level (``4^j``-shaped) covers of a batch of intervals.

    The batched counterpart of :func:`minimal_quaternary_cover`: odd-level
    pieces of the binary cover are split into their two even-level
    children, entirely with ``np.repeat`` -- order again matches the
    scalar construction piece for piece.
    """
    cover = dyadic_cover_arrays(alphas, betas)
    odd = (cover.levels & 1).astype(bool)
    if not bool(odd.any()):
        return cover
    repeats = np.where(odd, 2, 1)
    levels = np.repeat(cover.levels - odd, repeats)
    lows = np.repeat(cover.lows, repeats)
    index = np.repeat(cover.index, repeats)
    # Mark the second child of each split piece and advance its low end.
    starts = np.cumsum(repeats, dtype=np.int64) - repeats
    is_second = np.arange(len(lows), dtype=np.int64) - np.repeat(
        starts, repeats
    )
    lows = lows + (is_second.astype(np.uint64) << levels.astype(np.uint64))
    return CoverArrays(lows, levels, index, cover.intervals)


def containing_intervals(point: int, n: int) -> list[DyadicInterval]:
    """The ``n + 1`` dyadic intervals over a ``2^n`` domain containing ``point``.

    This is the DMAP mapping for a point update: one interval per level,
    from the singleton ``[point, point + 1)`` up to the whole domain.
    """
    if not 0 <= point < (1 << n):
        raise ValueError(f"point {point} outside domain of size 2^{n}")
    return [DyadicInterval(j, point >> j) for j in range(n + 1)]


def interval_id(interval: DyadicInterval, n: int) -> int:
    """Heap-style unique id of a dyadic interval over a ``2^n`` domain.

    The whole domain gets id 1, its children 2 and 3, and so on:
    ``id = 2^(n - level) + offset``.  Ids range over ``[1, 2^(n+1))`` --
    this is the derived domain DMAP sketches over.
    """
    if interval.level > n or interval.high > (1 << n):
        raise ValueError(f"{interval} does not fit a 2^{n} domain")
    return (1 << (n - interval.level)) + interval.offset


def interval_from_id(identifier: int, n: int) -> DyadicInterval:
    """Inverse of :func:`interval_id`."""
    if not 1 <= identifier < (1 << (n + 1)):
        raise ValueError(f"id {identifier} outside [1, 2^{n + 1})")
    depth = identifier.bit_length() - 1  # 0 for the root
    level = n - depth
    offset = identifier - (1 << depth)
    return DyadicInterval(level, offset)


def all_dyadic_intervals(n: int) -> Iterator[DyadicInterval]:
    """Yield every dyadic interval of a ``2^n`` domain, largest first."""
    for level in range(n, -1, -1):
        for offset in range(1 << (n - level)):
            yield DyadicInterval(level, offset)


def render_dyadic_tree(n: int) -> str:
    """ASCII rendering of the dyadic-interval hierarchy (paper Figure 1).

    Each row is one level; each cell spans the domain points it covers.
    Intended for domains up to ``2^5`` or so.
    """
    if n < 0 or n > 6:
        raise ValueError("render_dyadic_tree is meant for small domains (n <= 6)")
    width_per_point = max(4, len(str((1 << n) - 1)) + 3)
    lines = []
    for level in range(n, -1, -1):
        cells = []
        for offset in range(1 << (n - level)):
            interval = DyadicInterval(level, offset)
            label = f"[{interval.low},{interval.high})"
            cells.append(label.center(interval.size * width_per_point - 1, "-"))
        lines.append("|" + "|".join(cells) + "|")
    header = "".join(
        str(p).center(width_per_point) for p in range(1 << n)
    )
    return "\n".join(lines + [header])
