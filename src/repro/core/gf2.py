"""Arithmetic in the binary extension fields GF(2^k).

The BCH generating schemes evaluate powers of the index ``i`` inside
GF(2^n): BCH5 needs ``i^3`` computed in the extension field for its 5-wise
independence guarantee (paper Section 3.1).  This module implements the
polynomial representation described in Section 2.2 of the paper:

* elements are integers whose bit ``j`` is the coefficient of ``x^j``;
* addition is XOR;
* multiplication is carry-less polynomial multiplication followed by
  reduction modulo a fixed irreducible polynomial of degree ``k``.

A table of irreducible polynomials (low-weight trinomials/pentanomials,
the usual choices in coding-theory practice) covers ``k`` from 1 to 64 and
is verified by Rabin's irreducibility test in the test-suite.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache

__all__ = [
    "GF2Field",
    "IRREDUCIBLE_POLYS",
    "clmul",
    "poly_mod",
    "poly_divmod",
    "poly_gcd",
    "is_irreducible",
    "field",
]

# Irreducible polynomial for GF(2^k), encoded with the implicit leading
# x^k term INCLUDED (so the entry for k=8 is x^8+x^4+x^3+x+1 = 0x11B).
# Low-weight polynomials from the standard tables (Seroussi / HP-98-135,
# also used by Crandall, NIST and the CRC literature).
IRREDUCIBLE_POLYS: dict[int, int] = {
    1: 0b11,                    # x + 1
    2: 0b111,                   # x^2 + x + 1
    3: 0b1011,                  # x^3 + x + 1
    4: 0b10011,                 # x^4 + x + 1
    5: 0b100101,                # x^5 + x^2 + 1
    6: 0b1000011,               # x^6 + x + 1
    7: 0b10000011,              # x^7 + x + 1
    8: 0b100011011,             # x^8 + x^4 + x^3 + x + 1 (AES)
    9: (1 << 9) | (1 << 1) | 1,
    10: (1 << 10) | (1 << 3) | 1,
    11: (1 << 11) | (1 << 2) | 1,
    12: (1 << 12) | (1 << 3) | 1,
    13: (1 << 13) | (1 << 4) | (1 << 3) | (1 << 1) | 1,
    14: (1 << 14) | (1 << 5) | 1,
    15: (1 << 15) | (1 << 1) | 1,
    16: (1 << 16) | (1 << 5) | (1 << 3) | (1 << 1) | 1,
    17: (1 << 17) | (1 << 3) | 1,
    18: (1 << 18) | (1 << 3) | 1,
    19: (1 << 19) | (1 << 5) | (1 << 2) | (1 << 1) | 1,
    20: (1 << 20) | (1 << 3) | 1,
    21: (1 << 21) | (1 << 2) | 1,
    22: (1 << 22) | (1 << 1) | 1,
    23: (1 << 23) | (1 << 5) | 1,
    24: (1 << 24) | (1 << 4) | (1 << 3) | (1 << 1) | 1,
    25: (1 << 25) | (1 << 3) | 1,
    26: (1 << 26) | (1 << 4) | (1 << 3) | (1 << 1) | 1,
    27: (1 << 27) | (1 << 5) | (1 << 2) | (1 << 1) | 1,
    28: (1 << 28) | (1 << 1) | 1,
    29: (1 << 29) | (1 << 2) | 1,
    30: (1 << 30) | (1 << 1) | 1,
    31: (1 << 31) | (1 << 3) | 1,
    32: (1 << 32) | (1 << 7) | (1 << 3) | (1 << 2) | 1,
    33: (1 << 33) | (1 << 10) | 1,
    34: (1 << 34) | (1 << 7) | 1,
    35: (1 << 35) | (1 << 2) | 1,
    36: (1 << 36) | (1 << 9) | 1,
    37: (1 << 37) | (1 << 6) | (1 << 4) | (1 << 1) | 1,
    38: (1 << 38) | (1 << 6) | (1 << 5) | (1 << 1) | 1,
    39: (1 << 39) | (1 << 4) | 1,
    40: (1 << 40) | (1 << 5) | (1 << 4) | (1 << 3) | 1,
    41: (1 << 41) | (1 << 3) | 1,
    42: (1 << 42) | (1 << 7) | 1,
    43: (1 << 43) | (1 << 6) | (1 << 4) | (1 << 3) | 1,
    44: (1 << 44) | (1 << 5) | 1,
    45: (1 << 45) | (1 << 4) | (1 << 3) | (1 << 1) | 1,
    46: (1 << 46) | (1 << 1) | 1,
    47: (1 << 47) | (1 << 5) | 1,
    48: (1 << 48) | (1 << 5) | (1 << 3) | (1 << 2) | 1,
    49: (1 << 49) | (1 << 9) | 1,
    50: (1 << 50) | (1 << 4) | (1 << 3) | (1 << 2) | 1,
    51: (1 << 51) | (1 << 6) | (1 << 3) | (1 << 1) | 1,
    52: (1 << 52) | (1 << 3) | 1,
    53: (1 << 53) | (1 << 6) | (1 << 2) | (1 << 1) | 1,
    54: (1 << 54) | (1 << 9) | 1,
    55: (1 << 55) | (1 << 7) | 1,
    56: (1 << 56) | (1 << 7) | (1 << 4) | (1 << 2) | 1,
    57: (1 << 57) | (1 << 4) | 1,
    58: (1 << 58) | (1 << 19) | 1,
    59: (1 << 59) | (1 << 7) | (1 << 4) | (1 << 2) | 1,
    60: (1 << 60) | (1 << 1) | 1,
    61: (1 << 61) | (1 << 5) | (1 << 2) | (1 << 1) | 1,
    62: (1 << 62) | (1 << 29) | 1,
    63: (1 << 63) | (1 << 1) | 1,
    64: (1 << 64) | (1 << 4) | (1 << 3) | (1 << 1) | 1,
}


def clmul(a: int, b: int) -> int:
    """Carry-less (GF(2)[x]) product of two polynomial bit-vectors."""
    if a < 0 or b < 0:
        raise ValueError("carry-less multiplication requires non-negative ints")
    result = 0
    while b:
        low = b & -b
        result ^= a * low  # multiplying by a power of two is a pure shift
        b ^= low
    return result


def poly_divmod(a: int, b: int) -> tuple[int, int]:
    """Quotient and remainder of GF(2)[x] polynomial division."""
    if b == 0:
        raise ZeroDivisionError("polynomial division by zero")
    deg_b = b.bit_length() - 1
    quotient = 0
    while a.bit_length() - 1 >= deg_b and a:
        shift = (a.bit_length() - 1) - deg_b
        quotient ^= 1 << shift
        a ^= b << shift
    return quotient, a


def poly_mod(a: int, modulus: int) -> int:
    """Remainder of ``a`` modulo ``modulus`` in GF(2)[x]."""
    return poly_divmod(a, modulus)[1]


def poly_gcd(a: int, b: int) -> int:
    """Greatest common divisor in GF(2)[x] (monic by construction)."""
    while b:
        a, b = b, poly_mod(a, b)
    return a


def _poly_powmod_x(exponent: int, modulus: int) -> int:
    """``x^exponent mod modulus`` in GF(2)[x] via square-and-multiply."""
    result = 1
    base = 0b10  # the polynomial "x"
    e = exponent
    while e:
        if e & 1:
            result = poly_mod(clmul(result, base), modulus)
        base = poly_mod(clmul(base, base), modulus)
        e >>= 1
    return result


def is_irreducible(poly: int) -> bool:
    """Rabin's irreducibility test for a GF(2)[x] polynomial.

    ``poly`` (degree ``k``) is irreducible iff ``x^(2^k) == x (mod poly)``
    and ``gcd(x^(2^(k/q)) - x, poly) == 1`` for every prime ``q | k``.
    """
    k = poly.bit_length() - 1
    if k <= 0:
        return False
    if k == 1:
        return True
    # Collect the prime factors of the degree.
    factors = []
    d = k
    candidate = 2
    while candidate * candidate <= d:
        if d % candidate == 0:
            factors.append(candidate)
            while d % candidate == 0:
                d //= candidate
        candidate += 1
    if d > 1:
        factors.append(d)
    for q in factors:
        h = _poly_powmod_x(1 << (k // q), poly) ^ 0b10  # x^(2^(k/q)) - x
        if poly_gcd(h, poly) != 1:
            return False
    return _poly_powmod_x(1 << k, poly) == 0b10


@dataclass(frozen=True)
class GF2Field:
    """The finite field GF(2^k) with a fixed irreducible modulus.

    Elements are ints in ``[0, 2^k)``.  The class is immutable and cheap to
    share; use :func:`field` for a cached instance per degree.
    """

    degree: int
    modulus: int

    def __post_init__(self) -> None:
        if self.degree < 1:
            raise ValueError(f"field degree must be >= 1, got {self.degree}")
        if self.modulus.bit_length() - 1 != self.degree:
            raise ValueError(
                f"modulus degree {self.modulus.bit_length() - 1} does not "
                f"match field degree {self.degree}"
            )

    @property
    def order(self) -> int:
        """Number of field elements, ``2^degree``."""
        return 1 << self.degree

    def _check(self, a: int) -> int:
        if not 0 <= a < self.order:
            raise ValueError(f"{a} is not an element of GF(2^{self.degree})")
        return a

    def add(self, a: int, b: int) -> int:
        """Field addition (coefficient-wise XOR)."""
        return self._check(a) ^ self._check(b)

    def mul(self, a: int, b: int) -> int:
        """Field multiplication (carry-less product, then reduction)."""
        self._check(a)
        self._check(b)
        return poly_mod(clmul(a, b), self.modulus)

    def square(self, a: int) -> int:
        """``a^2``; squaring is linear in GF(2^k) but we just multiply."""
        return self.mul(a, a)

    def pow(self, a: int, exponent: int) -> int:
        """``a^exponent`` by square-and-multiply (exponent >= 0)."""
        if exponent < 0:
            raise ValueError("use inverse() for negative exponents")
        self._check(a)
        result = 1
        base = a
        while exponent:
            if exponent & 1:
                result = self.mul(result, base)
            base = self.mul(base, base)
            exponent >>= 1
        return result

    def cube(self, a: int) -> int:
        """``a^3`` -- the exact operation BCH5 needs per index."""
        return self.mul(self.mul(a, a), a)

    def inverse(self, a: int) -> int:
        """Multiplicative inverse via Fermat: ``a^(2^k - 2)``."""
        if self._check(a) == 0:
            raise ZeroDivisionError("0 has no inverse in GF(2^k)")
        return self.pow(a, self.order - 2)

    def elements(self) -> range:
        """Iterate over all field elements (small fields only)."""
        return range(self.order)


@lru_cache(maxsize=None)
def field(degree: int) -> GF2Field:
    """Cached GF(2^degree) instance using the library's modulus table."""
    try:
        modulus = IRREDUCIBLE_POLYS[degree]
    except KeyError:
        raise ValueError(
            f"no irreducible polynomial tabulated for degree {degree}; "
            f"supported degrees are 1..64"
        ) from None
    return GF2Field(degree=degree, modulus=modulus)
