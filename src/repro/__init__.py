"""repro: Fast Range-Summable Random Variables for Efficient Aggregate Estimation.

A from-scratch Python reproduction of Rusu & Dobra, SIGMOD 2006.  The
package implements every +/-1 generating scheme the paper studies (BCH3,
EH3, BCH5, RM7, polynomials over primes, Toeplitz), the fast
range-summation algorithms (BCH3 in O(1), EH3's Theorem 2 / Algorithm
H3Interval, RM7 via 2XOR-AND quadratic counting), AMS sketching with
median-of-averages estimation, the DMAP baseline of Das et al., the
variance theory of Section 5, and the three interval-input applications:
spatial joins, L1-difference, and selectivity estimation.

Quickstart::

    from repro import EH3, SeedSource, SketchScheme
    from repro.sketch import estimate_product

    source = SeedSource(7)
    scheme = SketchScheme.from_generators(
        lambda src: EH3.from_source(20, src), medians=7, averages=50, source=source
    )
    x = scheme.sketch()
    x.update_interval((1000, 250_000))   # sketch a whole interval, O(log) time
    y = scheme.sketch()
    y.update_point(1234)
    print(estimate_product(x, y))        # ~1.0: the point lies in the interval
"""

from repro.generators import (
    BCH3,
    BCH5,
    EH3,
    RM7,
    Generator,
    PolynomialsOverPrimes,
    SeedSource,
    Toeplitz,
    massdal2,
    massdal4,
)
from repro.rangesum import (
    DMAP,
    ProductDMAP,
    ProductGenerator,
    bch3_range_sum,
    brute_force_range_sum,
    eh3_range_sum,
    h3_interval,
    rm7_range_sum,
)
from repro.sketch import (
    SketchMatrix,
    SketchScheme,
    estimate_product,
    exact_join_size,
    relative_error,
)

__version__ = "1.0.0"

__all__ = [
    "BCH3",
    "BCH5",
    "EH3",
    "RM7",
    "Generator",
    "PolynomialsOverPrimes",
    "SeedSource",
    "Toeplitz",
    "massdal2",
    "massdal4",
    "DMAP",
    "ProductDMAP",
    "ProductGenerator",
    "bch3_range_sum",
    "brute_force_range_sum",
    "eh3_range_sum",
    "h3_interval",
    "rm7_range_sum",
    "SketchMatrix",
    "SketchScheme",
    "estimate_product",
    "exact_join_size",
    "relative_error",
    "__version__",
]
