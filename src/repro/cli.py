"""Command-line entry point: regenerate any paper table or figure.

Usage::

    repro-experiments table1
    repro-experiments fig2 --quick
    repro-experiments all
    repro-experiments bench
    repro-experiments faults
    repro-experiments analyze --strict

``--quick`` shrinks trial counts for a fast sanity pass; the defaults match
the benchmark harness (see EXPERIMENTS.md for recorded outputs).

``bench`` measures the vectorized plane/batched kernels against their
scalar counterparts and writes ``BENCH_bulk.json``/``BENCH_table2.json``/
``BENCH_durability.json`` (into ``--output-dir``, or the working
directory).  ``--scheme NAME`` benches any single registered scheme
(``repro.schemes.registered_schemes()``) instead of the defaults,
exercising whichever capabilities it declares.

``faults`` runs the deterministic fault-injection suite
(:mod:`repro.stream.faults`): torn WAL tails, corrupted sealed segments,
partial snapshots, and mid-batch plane failures, verifying the recovery
invariants end to end.  Exits non-zero if any scenario fails.

``cluster-faults`` runs the shard-cluster chaos suite
(:mod:`repro.cluster.faults`): SIGKILL mid-batch, hung workers, torn WAL
tails on restart, duplicate/late command delivery, and unrestartable
shards, asserting bit-identical recovery against a single-process
reference and honestly degraded answers.  Exits non-zero if any
scenario fails.

``cluster-bench`` measures the cluster itself -- shard-scaling ingest
throughput, crash-recovery time, and availability under faults -- and
publishes the report under the ``"cluster"`` key of
``BENCH_durability.json`` (creating the file if absent).

``hh-bench`` sweeps sketch space (the ``averages`` axis) over a zipf
stream and records heavy-hitter descent recall against the
paper-predicted error envelope, publishing the curve under the ``"hh"``
key of ``BENCH_table2.json`` (creating the file if absent).

``bench --query-engine`` additionally times the typed query engine
(:mod:`repro.query`) against the legacy inline answer path -- values
are verified bit-identical first -- and records the per-query latency
ratio under the ``"query_engine"`` key of ``BENCH_bulk.json``.

``analyze`` runs the domain-aware static-analysis rules
(:mod:`repro.analysis`, rules R001-R012) over ``src/repro``; with
``--strict`` it exits non-zero on any violation outside the checked-in
baseline (``analysis-baseline.json``).  See ``docs/static-analysis.md``.

``slo`` drives the live SLO workload (ground-truth calibration plus a
traced inline-cluster round trip), evaluates the declarative objectives
of :mod:`repro.obs.slo` against the resulting snapshot and the
``BENCH_*.json`` documents in ``--bench-dir``, and publishes the report
under the ``"slo"`` key of ``BENCH_durability.json`` when
``--output-dir`` is given.  With ``--strict`` it exits non-zero when
any error budget is burned -- the CI gate.  ``--trace`` additionally
writes the stitched coordinator+worker trace.

``metrics`` runs a small deterministic workload through every
instrumented layer and prints the resulting registry snapshot
(``--format json`` or ``--format prometheus``); ``--require-golden
PATH`` exits non-zero when any instrument named in the golden list is
missing.  ``--trace out.jsonl`` (on ``bench``, ``faults``, and
``metrics``) writes Chrome-trace span events, one JSON object per line.
See ``docs/observability.md``.
"""

from __future__ import annotations

import argparse
import sys
from typing import Callable

from repro.experiments import (
    run_fig2,
    run_fig3,
    run_fig4,
    run_fig567,
    run_table1,
    run_table2,
)
from repro.experiments.ablations import run_ablations

__all__ = ["main"]


def _quick_overrides(name: str) -> dict:
    return {
        "table1": {"batch": 20_000, "scalar_samples": 500, "min_seconds": 0.02},
        "table2": {"intervals": 100, "rm7_intervals": 3, "min_seconds": 0.02},
        "fig2": {"averages": 20, "trials": 5, "zipf_values": (0.0, 0.5, 1.0, 2.0)},
        "fig3": {"averages": 20, "trials": 3, "zipf_values": (0.0, 0.5, 1.0, 2.0)},
        "fig4": {"total_points": 5_000, "trials": 1, "queries": 10,
                 "zipf_values": (0.0, 1.0, 2.0)},
        "fig567": {"counter_budgets": (256, 1024), "trials": 1,
                   "max_segments": 2_000},
        "ablations": {},
    }[name]


EXPERIMENTS: dict[str, Callable] = {
    "table1": run_table1,
    "table2": run_table2,
    "fig2": run_fig2,
    "fig3": run_fig3,
    "fig4": run_fig4,
    "fig567": run_fig567,
    "ablations": run_ablations,
}


def main(argv: list[str] | None = None) -> int:
    """Run the requested experiments and print their tables."""
    parser = argparse.ArgumentParser(
        prog="repro-experiments",
        description="Regenerate the tables and figures of Rusu & Dobra, "
        "SIGMOD 2006.",
    )
    parser.add_argument(
        "experiment",
        choices=[
            *EXPERIMENTS,
            "all",
            "bench",
            "faults",
            "cluster-faults",
            "cluster-bench",
            "hh-bench",
            "analyze",
            "metrics",
            "slo",
        ],
        help="which table/figure to regenerate ('bench' for the "
        "vectorized-kernel benchmark reports, 'faults' for the "
        "fault-injection suite, 'cluster-faults' for the shard-cluster "
        "chaos suite, 'cluster-bench' for the cluster scaling/recovery/"
        "availability report, 'hh-bench' for the heavy-hitter "
        "accuracy-vs-space curve, 'analyze' for the static-analysis "
        "gate, 'metrics' for the observability snapshot, 'slo' for the "
        "error-budget gate)",
    )
    parser.add_argument(
        "--quick",
        action="store_true",
        help="shrink trial counts for a fast sanity pass",
    )
    parser.add_argument(
        "--seed", type=int, default=20060627, help="master random seed"
    )
    parser.add_argument(
        "--output-dir",
        default=None,
        help="also write each result as JSON into this directory",
    )
    parser.add_argument(
        "--scheme",
        default=None,
        help="bench only: a registered scheme name to bench instead of "
        "the defaults (see repro.schemes.registered_schemes())",
    )
    parser.add_argument(
        "--backend",
        action="append",
        default=None,
        help="bench only: a kernel backend name to put in the bulk "
        "report's per-backend table (repeatable; defaults to every "
        "registered backend; see repro.sketch.backends)",
    )
    parser.add_argument(
        "--check-floors",
        action="store_true",
        help="bench only: exit non-zero when any workload's speedup "
        "drops below the floors recorded in the BENCH_bulk.json config, "
        "or any backend's counters are not bit-identical",
    )
    parser.add_argument(
        "--query-engine",
        action="store_true",
        help="bench only: also time the typed query engine against the "
        "legacy inline answer path and record the latency ratio under "
        "the 'query_engine' key of BENCH_bulk.json",
    )
    parser.add_argument(
        "--strict",
        action="store_true",
        help="analyze: exit non-zero on any non-baselined violation; "
        "slo: exit non-zero when any error budget is burned",
    )
    parser.add_argument(
        "--bench-dir",
        default=None,
        metavar="DIR",
        help="slo only: directory holding the BENCH_*.json documents "
        "the bench-sourced objectives read (default: the working "
        "directory)",
    )
    parser.add_argument(
        "--write-baseline",
        action="store_true",
        help="analyze only: refresh analysis-baseline.json from this scan",
    )
    parser.add_argument(
        "--path",
        action="append",
        default=None,
        help="analyze only: file/directory to scan (repeatable; defaults "
        "to src/repro)",
    )
    parser.add_argument(
        "--graph",
        default=None,
        metavar="PATH",
        dest="graph_path",
        help="analyze only: write the project call graph (JSON) to PATH",
    )
    parser.add_argument(
        "--why",
        default=None,
        metavar="FINGERPRINT",
        help="analyze only: print the evidence chain behind the finding "
        "with this fingerprint (a unique prefix is enough)",
    )
    parser.add_argument(
        "--diff",
        default=None,
        metavar="REF",
        dest="diff_ref",
        help="analyze only: report only findings on lines changed since "
        "the git ref (the pre-commit configuration)",
    )
    parser.add_argument(
        "--sarif",
        default=None,
        metavar="PATH",
        dest="sarif_path",
        help="analyze only: also write the scan as a SARIF 2.1.0 log",
    )
    parser.add_argument(
        "--format",
        choices=("json", "prometheus"),
        default=None,
        dest="metrics_format",
        help="metrics only: exposition format for the registry snapshot "
        "(default: json)",
    )
    parser.add_argument(
        "--require-golden",
        default=None,
        metavar="PATH",
        help="metrics only: exit non-zero if any instrument named in "
        "this golden list (one name per line, '#' comments) is missing",
    )
    parser.add_argument(
        "--trace",
        default=None,
        metavar="PATH",
        help="bench/faults/metrics: write Chrome-trace span events to "
        "this JSONL file",
    )
    args = parser.parse_args(argv)

    analyze_flags = (
        args.write_baseline
        or args.path
        or args.graph_path
        or args.why
        or args.diff_ref
        or args.sarif_path
    )
    if analyze_flags and args.experiment != "analyze":
        parser.error(
            "--write-baseline/--path/--graph/--why/--diff/"
            "--sarif only apply to 'analyze'"
        )
    if args.strict and args.experiment not in ("analyze", "slo"):
        parser.error("--strict only applies to 'analyze' and 'slo'")
    if args.bench_dir and args.experiment != "slo":
        parser.error("--bench-dir only applies to 'slo'")
    if (
        args.metrics_format or args.require_golden
    ) and args.experiment != "metrics":
        parser.error("--format/--require-golden only apply to 'metrics'")
    if args.trace and args.experiment not in (
        "bench", "faults", "cluster-faults", "cluster-bench", "metrics",
        "slo",
    ):
        parser.error(
            "--trace only applies to 'bench', 'faults', 'cluster-faults', "
            "'cluster-bench', 'metrics' and 'slo'"
        )
    if args.experiment == "analyze":
        from repro.analysis.cli import run_analyze

        return run_analyze(
            paths=args.path,
            strict=args.strict,
            refresh_baseline=args.write_baseline,
            graph_path=args.graph_path,
            why=args.why,
            diff_ref=args.diff_ref,
            sarif_path=args.sarif_path,
        )

    collector = None
    if args.trace:
        from repro import obs

        collector = obs.TraceCollector()
        obs.set_trace_collector(collector)

    def _finish_trace() -> None:
        if collector is None:
            return
        from repro import obs

        obs.set_trace_collector(None)
        count = collector.write_jsonl(args.trace)
        print(f"trace: {args.trace} ({count} span events)", file=sys.stderr)

    if args.experiment == "metrics":
        import json as json_module

        from repro import obs
        from repro.obs.exposition import (
            exercise_all_layers,
            missing_instruments,
            read_golden_list,
        )

        snapshot = exercise_all_layers(seed=args.seed)
        _finish_trace()
        if (args.metrics_format or "json") == "prometheus":
            print(obs.snapshot_to_prometheus(snapshot), end="")
        else:
            print(
                json_module.dumps(
                    {"schema_version": 1, "instruments": snapshot},
                    indent=2,
                    sort_keys=True,
                )
            )
        if args.require_golden:
            missing = missing_instruments(
                snapshot, read_golden_list(args.require_golden)
            )
            if missing:
                print(
                    "missing golden instruments: " + ", ".join(missing),
                    file=sys.stderr,
                )
                return 1
        return 0

    if args.experiment == "slo":
        import json as json_module
        import os

        from repro import obs
        from repro.obs.slo import evaluate_slos, run_slo_workload

        obs.reset_metrics()
        snapshot = run_slo_workload(seed=args.seed)
        bench_dir = args.bench_dir or "."
        bench: dict = {}
        for key, filename in (
            ("durability", "BENCH_durability.json"),
            ("bulk", "BENCH_bulk.json"),
        ):
            bench_path = os.path.join(bench_dir, filename)
            if os.path.exists(bench_path):
                try:
                    with open(bench_path) as handle:
                        bench[key] = json_module.load(handle)
                except ValueError:
                    print(
                        f"warning: {bench_path} is not valid JSON; "
                        "bench-sourced objectives will be skipped",
                        file=sys.stderr,
                    )
        report = evaluate_slos(snapshot=snapshot, bench=bench)
        _finish_trace()
        print(report.to_text())
        if args.output_dir:
            os.makedirs(args.output_dir, exist_ok=True)
            path = os.path.join(args.output_dir, "BENCH_durability.json")
            data: dict = {}
            if os.path.exists(path):
                with open(path) as handle:
                    data = json_module.load(handle)
            data["slo"] = report.to_dict()
            with open(path, "w") as handle:
                json_module.dump(data, handle, indent=2)
                handle.write("\n")
            print(
                f"BENCH_durability.json: {path} (slo key updated)",
                file=sys.stderr,
            )
        if args.strict and not report.ok:
            print(
                f"slo gate FAILED: {len(report.burned)} budget(s) burned",
                file=sys.stderr,
            )
            return 1
        return 0

    if args.scheme is not None and args.experiment != "bench":
        parser.error("--scheme only applies to the 'bench' experiment")
    if (
        args.backend or args.check_floors or args.query_engine
    ) and args.experiment != "bench":
        parser.error(
            "--backend/--check-floors/--query-engine only apply to the "
            "'bench' experiment"
        )
    if args.backend:
        from repro.sketch.backends import UnknownBackendError, get_backend

        for backend_name in args.backend:
            try:
                get_backend(backend_name)
            except UnknownBackendError as exc:
                parser.error(str(exc))
    if args.scheme is not None:
        from repro.schemes import get_spec

        try:
            get_spec(args.scheme)
        except Exception as exc:  # noqa: BLE001 -- UnknownSchemeError lists the registry
            parser.error(str(exc))

    if args.experiment == "faults":
        from repro.stream.faults import run_fault_suite

        results = run_fault_suite(seed=args.seed)
        _finish_trace()
        width = max(len(result.name) for result in results)
        for result in results:
            status = "PASS" if result.passed else "FAIL"
            print(f"{status}  {result.name:<{width}}  {result.detail}")
        failed = sum(1 for result in results if not result.passed)
        print(
            f"\n{len(results) - failed}/{len(results)} fault scenarios passed"
        )
        return 1 if failed else 0

    if args.experiment == "cluster-faults":
        from repro.cluster.faults import run_cluster_fault_suite

        results = run_cluster_fault_suite(seed=args.seed)
        _finish_trace()
        width = max(len(result.name) for result in results)
        for result in results:
            status = "PASS" if result.passed else "FAIL"
            print(f"{status}  {result.name:<{width}}  {result.detail}")
        failed = sum(1 for result in results if not result.passed)
        print(
            f"\n{len(results) - failed}/{len(results)} cluster fault "
            "scenarios passed"
        )
        return 1 if failed else 0

    if args.experiment == "cluster-bench":
        import json as json_module
        import os

        from repro import obs
        from repro.bench import run_cluster_bench

        overrides = (
            {"shard_counts": (1, 2), "points": 6_000, "batch": 500}
            if args.quick
            else {}
        )
        obs.reset_metrics()
        report = run_cluster_bench(**overrides)
        report["metrics"] = {
            "schema_version": 1,
            "instruments": obs.snapshot(),
        }
        output_dir = args.output_dir or "."
        os.makedirs(output_dir, exist_ok=True)
        path = os.path.join(output_dir, "BENCH_durability.json")
        data: dict = {}
        if os.path.exists(path):
            with open(path) as handle:
                data = json_module.load(handle)
        data["cluster"] = report
        with open(path, "w") as handle:
            json_module.dump(data, handle, indent=2)
            handle.write("\n")
        _finish_trace()
        print(f"BENCH_durability.json: {path} (cluster key updated)")
        for shards, entry in report["scaling"].items():
            print(
                f"  scaling {shards} shard(s): "
                f"{entry['points_per_second']:,.0f} points/s "
                f"(x{entry['speedup_vs_first']:.2f} vs first)"
            )
        recovery = report["recovery"]
        print(
            f"  recovery: {recovery['seconds'] * 1e3:.1f} ms to restart, "
            f"replay {recovery['replayed_commands']} commands, and rejoin"
        )
        availability = report["availability"]
        print(
            f"  availability: {availability['answers_served']}/"
            f"{availability['answers_attempted']} answers served "
            f"({availability['degraded_answers']} degraded) -> "
            f"{availability['availability']:.3f}"
        )
        return 0

    if args.experiment == "hh-bench":
        import json as json_module
        import os

        from repro import obs
        from repro.bench import run_hh_bench

        hh_overrides = (
            {"averages_sweep": (16, 32), "points": 6_000}
            if args.quick
            else {}
        )
        obs.reset_metrics()
        report = run_hh_bench(seed=args.seed, **hh_overrides)
        report["metrics"] = {
            "schema_version": 1,
            "instruments": obs.snapshot(),
        }
        output_dir = args.output_dir or "."
        os.makedirs(output_dir, exist_ok=True)
        path = os.path.join(output_dir, "BENCH_table2.json")
        data: dict = {}
        if os.path.exists(path):
            with open(path) as handle:
                data = json_module.load(handle)
        data["hh"] = report
        with open(path, "w") as handle:
            json_module.dump(data, handle, indent=2)
            handle.write("\n")
        _finish_trace()
        print(f"BENCH_table2.json: {path} (hh key updated)")
        for entry in report["curve"]:
            print(
                f"  averages={entry['averages']:>4}: "
                f"{entry['space_words']:,} words, "
                f"recall {entry['recall']:.3f}, "
                f"envelope {entry['predicted_leaf_envelope']:.1f}, "
                f"worst error {entry['worst_true_hitter_error']:.1f}"
            )
        return 0

    if args.experiment == "bench":
        import json as json_module

        from repro.bench import check_floors, write_bench_files

        overrides: dict = {}
        if args.quick:
            overrides = {
                "BENCH_bulk": {"intervals": 500, "points": 5_000, "repeats": 2},
                "BENCH_table2": {"intervals": 500, "repeats": 2},
                "BENCH_durability": {
                    "points": 5_000,
                    "intervals": 500,
                    "repeats": 2,
                },
            }
        if args.scheme is not None:
            # Any registered scheme is bench-selectable; each report
            # exercises whichever capabilities the scheme declares.
            overrides.setdefault("BENCH_bulk", {})["schemes"] = (args.scheme,)
            overrides.setdefault("BENCH_table2", {})["schemes"] = (args.scheme,)
            overrides.setdefault("BENCH_durability", {})["scheme"] = args.scheme
        if args.backend:
            overrides.setdefault("BENCH_bulk", {})["backends"] = tuple(
                args.backend
            )
        written = write_bench_files(args.output_dir or ".", **overrides)
        if args.query_engine:
            from repro.bench import run_query_engine_bench

            engine_overrides = (
                {"points": 5_000, "queries": 20, "repeats": 2}
                if args.quick
                else {}
            )
            engine_report = run_query_engine_bench(**engine_overrides)
            with open(written["BENCH_bulk"]) as handle:
                bulk = json_module.load(handle)
            bulk["query_engine"] = engine_report
            with open(written["BENCH_bulk"], "w") as handle:
                json_module.dump(bulk, handle, indent=2)
                handle.write("\n")
            for name, entry in engine_report["workloads"].items():
                print(
                    f"query-engine {name}: ratio {entry['ratio']:.3f} "
                    f"(target <= {engine_report['config']['target']}, "
                    f"identical={entry['identical']})",
                    file=sys.stderr,
                )
        _finish_trace()
        for name, path in written.items():
            print(f"{name}: {path}")
            with open(path) as handle:
                print(handle.read())
        if args.check_floors:
            with open(written["BENCH_bulk"]) as handle:
                problems = check_floors(json_module.load(handle))
            if problems:
                for problem in problems:
                    print(f"floor check FAILED: {problem}", file=sys.stderr)
                return 1
            print("floor check passed", file=sys.stderr)
        return 0

    names = list(EXPERIMENTS) if args.experiment == "all" else [args.experiment]
    for name in names:
        runner = EXPERIMENTS[name]
        overrides = _quick_overrides(name) if args.quick else {}
        result = runner(seed=args.seed, **overrides)
        print(result.to_text())
        print()
        if args.output_dir:
            import os

            os.makedirs(args.output_dir, exist_ok=True)
            path = os.path.join(args.output_dir, f"{name}.json")
            with open(path, "w") as handle:
                handle.write(result.to_json() + "\n")
    return 0


if __name__ == "__main__":
    sys.exit(main())
