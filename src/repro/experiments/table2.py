"""Table 2 -- sketching time per interval for the fast range-summable schemes.

Paper setup: random intervals over a 2^32 domain, time per interval
range-sum.  Paper-reported values:

    BCH3 68.9 ns | EH3 1,798 ns | RM7 26,400,000 ns

plus the Section 5.2 DMAP timings: 1,276 ns per interval and 416 ns per
point (vs 7.9 ns per point for direct EH3 evaluation).

Shapes that must reproduce here: BCH3's range-sum costs a small constant
multiple of a single evaluation (its algorithm is O(1)); EH3 costs roughly
a dyadic-cover factor more; RM7 is slower by about four orders of
magnitude; DMAP's interval cost is comparable to EH3's while its point
cost is ~(n+1) times a single evaluation.
"""

from __future__ import annotations

import numpy as np

from repro.experiments.runner import ExperimentResult, time_per_op
from repro.generators import BCH3, EH3, RM7, SeedSource
from repro.rangesum import (
    DMAP,
    bch3_range_sum,
    bch3_range_sums,
    eh3_range_sum,
    eh3_range_sums,
    rm7_range_sum,
)

__all__ = ["run_table2", "PAPER_TABLE2_NS"]

#: The paper's reported per-interval sketching times (ns).  The batched
#: rows measure this implementation's vectorized kernels; the paper (all
#: scalar C) has no counterpart, hence ``None``.
PAPER_TABLE2_NS: dict[str, float | None] = {
    "BCH3": 68.9,
    "EH3": 1798.0,
    "RM7": 26.4e6,
    "DMAP (interval)": 1276.0,
    "DMAP (point)": 416.0,
    "EH3 (point)": 7.9,
    "BCH3 (batched)": None,
    "EH3 (batched)": None,
    "DMAP (interval, batched)": None,
    "DMAP (point, batched)": None,
}


def _random_intervals(
    rng: np.random.Generator, domain_bits: int, count: int
) -> list[tuple[int, int]]:
    lows = rng.integers(0, 1 << domain_bits, size=count)
    highs = rng.integers(0, 1 << domain_bits, size=count)
    return [
        (int(min(a, b)), int(max(a, b))) for a, b in zip(lows, highs)
    ]


def run_table2(
    domain_bits: int = 32,
    intervals: int = 300,
    rm7_intervals: int = 10,
    seed: int = 20060627,
    min_seconds: float = 0.05,
) -> ExperimentResult:
    """Measure per-interval range-summation cost (plus DMAP timings)."""
    source = SeedSource(seed)
    rng = np.random.default_rng(seed)
    batch = _random_intervals(rng, domain_bits, intervals)
    small_batch = batch[:rm7_intervals]
    points = [int(p) for p in rng.integers(0, 1 << domain_bits, size=intervals)]
    alphas = np.array([a for a, _ in batch], dtype=np.uint64)
    betas = np.array([b for _, b in batch], dtype=np.uint64)
    point_array = np.array(points, dtype=np.uint64)

    bch3 = BCH3.from_source(domain_bits, source)
    eh3 = EH3.from_source(domain_bits, source)
    rm7 = RM7.from_source(domain_bits, source)
    dmap = DMAP.from_source(domain_bits, source)

    result = ExperimentResult(
        title="Table 2: sketching time per interval (plus Section 5.2 DMAP)",
        headers=["Scheme", "ns/op", "Paper ns/op", "x BCH3"],
    )
    measurements = {
        "BCH3": time_per_op(
            lambda: [bch3_range_sum(bch3, a, b) for a, b in batch],
            len(batch),
            min_seconds,
        ),
        "EH3": time_per_op(
            lambda: [eh3_range_sum(eh3, a, b) for a, b in batch],
            len(batch),
            min_seconds,
        ),
        "RM7": time_per_op(
            lambda: [rm7_range_sum(rm7, a, b) for a, b in small_batch],
            len(small_batch),
            min_seconds,
        ),
        "DMAP (interval)": time_per_op(
            lambda: [dmap.interval_contribution(a, b) for a, b in batch],
            len(batch),
            min_seconds,
        ),
        "DMAP (point)": time_per_op(
            lambda: [dmap.point_contribution(p) for p in points],
            len(points),
            min_seconds,
        ),
        "EH3 (point)": time_per_op(
            lambda: [eh3.value(p) for p in points],
            len(points),
            min_seconds,
        ),
        "BCH3 (batched)": time_per_op(
            lambda: bch3_range_sums(bch3, alphas, betas),
            len(batch),
            min_seconds,
        ),
        "EH3 (batched)": time_per_op(
            lambda: eh3_range_sums(eh3, alphas, betas),
            len(batch),
            min_seconds,
        ),
        "DMAP (interval, batched)": time_per_op(
            lambda: dmap.interval_contributions(alphas, betas),
            len(batch),
            min_seconds,
        ),
        "DMAP (point, batched)": time_per_op(
            lambda: dmap.point_contributions(point_array),
            len(points),
            min_seconds,
        ),
    }
    base = measurements["BCH3"]
    for name, nanoseconds in measurements.items():
        result.add_row(
            name, nanoseconds, PAPER_TABLE2_NS[name], nanoseconds / base
        )
    result.add_note(
        f"domain 2^{domain_bits}; scalar per-op costs (the paper's setting); "
        f"absolute ns reflect CPython, ratios reflect the algorithms"
    )
    result.add_note(
        "batched rows amortize one numpy pass over the whole interval/point "
        "batch; the paper's scalar C implementation has no counterpart"
    )
    return result
