"""Table 1 -- generation time and seed size per scheme.

Paper setup: 10,000 seeds x 10,000 indices, all pairs evaluated, time per
generated variable reported in nanoseconds, plus the seed-size column.

Paper-reported values (2.8 GHz Xeon, assembly parity):

    BCH3 10.8 ns | EH3 7.3 ns | Massdal2 27.2 ns | BCH5 12.7 ns |
    Massdal4 101.2 ns | RM7 3,301 ns

Our measurements run the vectorized numpy kernels (see DESIGN.md,
"Substitutions"); absolute values differ from a 2006 C build, but the
paper's qualitative ordering must reproduce: BCH3/EH3 cheapest, BCH5
close behind, the polynomial schemes several times slower, RM7 slower by
orders of magnitude.  A scalar (pure-Python per-call) column is included
for completeness.
"""

from __future__ import annotations

import numpy as np

from repro.experiments.runner import ExperimentResult, time_per_op
from repro.generators import (
    BCH3,
    BCH5,
    EH3,
    RM7,
    SeedSource,
    massdal2,
    massdal4,
)

__all__ = ["run_table1", "PAPER_TABLE1_NS", "scheme_seed_bits"]

#: The paper's reported nanoseconds per generated variable.
PAPER_TABLE1_NS: dict[str, float] = {
    "BCH3": 10.8,
    "EH3": 7.3,
    "Massdal2": 27.2,
    "BCH5": 12.7,
    "Massdal4": 101.2,
    "RM7": 3301.0,
}


def scheme_seed_bits(n: int) -> dict[str, int]:
    """Table 1's seed-size column evaluated for a concrete domain width."""
    return {
        "BCH3": n + 1,
        "EH3": n + 1,
        "Massdal2": 2 * n,
        "BCH5": 2 * n + 1,
        "Massdal4": 4 * n,
        "RM7": 1 + n + n * (n - 1) // 2,
    }


def _build_generators(domain_bits: int, source: SeedSource) -> dict:
    return {
        "BCH3": BCH3.from_source(domain_bits, source),
        "EH3": EH3.from_source(domain_bits, source),
        "Massdal2": massdal2(domain_bits, source),
        "BCH5": BCH5.from_source(domain_bits, source, mode="arithmetic"),
        "Massdal4": massdal4(domain_bits, source),
        "RM7": RM7.from_source(domain_bits, source),
    }


def run_table1(
    domain_bits: int = 30,
    batch: int = 100_000,
    scalar_samples: int = 2_000,
    seed: int = 20060627,
    min_seconds: float = 0.05,
) -> ExperimentResult:
    """Measure per-variable generation cost for all six Table 1 schemes.

    ``domain_bits`` defaults to 30 so the polynomials-over-primes scheme
    runs on its classical Mersenne-31 fast path (the paper used 2^32 with
    a C implementation; the ordering is insensitive to this choice).
    """
    source = SeedSource(seed)
    generators = _build_generators(domain_bits, source)
    indices = np.asarray(
        source.rng.integers(0, 1 << domain_bits, size=batch), dtype=np.uint64
    )
    scalar_indices = [int(i) for i in indices[:scalar_samples]]
    seed_sizes = scheme_seed_bits(domain_bits)

    result = ExperimentResult(
        title="Table 1: generation time and seed size",
        headers=[
            "Scheme",
            "ns/value (vectorized)",
            "ns/value (scalar)",
            "Seed bits",
            "Paper ns/value",
        ],
    )
    for name, generator in generators.items():
        vector_ns = time_per_op(
            lambda g=generator: g.values(indices),
            operations_per_call=batch,
            min_seconds=min_seconds,
        )
        scalar_ns = time_per_op(
            lambda g=generator: [g.value(i) for i in scalar_indices],
            operations_per_call=scalar_samples,
            min_seconds=min_seconds,
        )
        result.add_row(
            name,
            vector_ns,
            scalar_ns,
            seed_sizes[name],
            PAPER_TABLE1_NS[name],
        )
    result.add_note(
        f"domain 2^{domain_bits}; BCH5 cubes computed arithmetically "
        f"(paper footnote 2); paper ns are a 2.8 GHz Xeon C/assembly build"
    )
    return result
