"""The experiment harness: one module per paper table/figure.

==========  =====================================================
Experiment  Regenerates
==========  =====================================================
``table1``  Table 1 -- generation time and seed size per scheme
``table2``  Table 2 -- range-summation time per interval (+ §5.2 DMAP)
``fig2``    Figure 2 -- EH3 measured error vs the Eq. 12 model
``fig3``    Figure 3 -- EH3 vs BCH5 self-join error across skew
``fig4``    Figure 4 -- EH3 vs DMAP selectivity estimation
``fig567``  Figures 5-7 -- EH3 vs DMAP spatial joins vs memory
==========  =====================================================
"""

from repro.experiments.ablations import run_ablations
from repro.experiments.fig2 import run_fig2
from repro.experiments.fig3 import run_fig3
from repro.experiments.fig4 import run_fig4
from repro.experiments.fig567 import run_fig567
from repro.experiments.runner import ExperimentResult
from repro.experiments.table1 import run_table1
from repro.experiments.table2 import run_table2

__all__ = [
    "ExperimentResult",
    "run_ablations",
    "run_fig2",
    "run_fig3",
    "run_fig4",
    "run_fig567",
    "run_table1",
    "run_table2",
]
