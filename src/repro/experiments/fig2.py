"""Figure 2 -- validation of the EH3 variance model (Eq. 12).

Paper setup: self-join size estimation over a domain of 16,384 values
(= 4^7, so Proposition 5 applies at zero skew), 100,000 tuples, frequencies
Zipf distributed with coefficient swept from 0 to 5, AMS sketches with a
single median (averaging only).  The figure plots measured average relative
error against the prediction derived from Eq. 12.

Expected shape: prediction and measurement agree for z > 1; for z in
[0, 1) the measured error drops far below the model (exactly zero at z = 0
on a 4^n domain), because the average-case model cannot see the perfect
cancellation of Proposition 5.
"""

from __future__ import annotations

import numpy as np

from repro.experiments.runner import ExperimentResult
from repro.generators import EH3, SeedSource
from repro.sketch.ams import SketchScheme
from repro.query import engine as query_engine
from repro.sketch.estimators import (
    exact_self_join,
    relative_error,
    sketch_frequency_vector,
)
from repro.theory.model import eh3_error_prediction

__all__ = ["run_fig2", "measure_self_join_error"]


def measure_self_join_error(
    frequencies: np.ndarray,
    generator_factory,
    medians: int,
    averages: int,
    trials: int,
    source: SeedSource,
) -> float:
    """Mean relative self-join error over independently seeded trials."""
    truth = exact_self_join(frequencies)
    errors = []
    for _ in range(trials):
        scheme = SketchScheme.from_generators(
            generator_factory, medians, averages, source
        )
        sketch = sketch_frequency_vector(scheme, frequencies)
        errors.append(
            relative_error(query_engine.self_join(sketch).value, truth)
        )
    return float(np.mean(errors))


def run_fig2(
    domain_bits: int = 14,
    tuples: int = 100_000,
    zipf_values: tuple[float, ...] = (0.0, 0.25, 0.5, 0.75, 1.0, 1.5, 2.0, 3.0, 4.0, 5.0),
    averages: int = 50,
    trials: int = 20,
    seed: int = 20060627,
    sampled: bool = False,
) -> ExperimentResult:
    """Measured EH3 error vs the Eq. 12 prediction across Zipf skew.

    With ``sampled=True`` the frequency vector is drawn as ``tuples``
    i.i.d. Zipf samples (what a physical stream produces) instead of the
    expected real-valued frequencies; Proposition 5's exact zero at z = 0
    then softens to near-zero, since sampled counts are not perfectly
    uniform.
    """
    from repro.workloads.zipf import sample_zipf_counts, zipf_frequency_vector

    if domain_bits % 2 != 0:
        raise ValueError("Figure 2 requires a 4^n domain (even bit width)")
    n_pairs = domain_bits // 2
    source = SeedSource(seed)
    rng = np.random.default_rng(seed)

    result = ExperimentResult(
        title="Figure 2: EH3 measured error vs Eq. 12 prediction (self-join)",
        headers=["Zipf z", "Measured error", "Predicted error (Eq. 12)"],
    )
    for z in zipf_values:
        if sampled:
            frequencies = sample_zipf_counts(
                1 << domain_bits, tuples, z, rng, permute=True
            )
        else:
            frequencies = zipf_frequency_vector(
                1 << domain_bits, tuples, z, rng=rng, permute=True
            )
        measured = measure_self_join_error(
            frequencies,
            lambda src: EH3.from_source(domain_bits, src),
            medians=1,
            averages=averages,
            trials=trials,
            source=source,
        )
        predicted = eh3_error_prediction(
            frequencies, frequencies, n_pairs, averages, absolute=True
        )
        result.add_row(z, measured, predicted)
    result.add_note(
        f"domain 2^{domain_bits} = 4^{n_pairs}, {tuples:,} tuples, "
        f"1 median x {averages} averages, {trials} trials per point"
    )
    return result
