"""Figures 5-7 -- EH3 vs DMAP for spatial size-of-join vs sketch memory.

Paper setup: three Wyoming GIS layers (LANDO, LANDC, SOIL -- here the
documented synthetic stand-ins of :mod:`repro.workloads.spatial`), the
three pairwise spatial joins, sketch memory swept from 4 to 40 K words,
average relative error reported per method.

Expected shape: at every memory budget EH3's error is far below DMAP's
(the paper reports factors up to 8, i.e. DMAP would need up to 64x more
memory for equal error), and both errors fall roughly as 1/sqrt(memory).
"""

from __future__ import annotations

import numpy as np

from repro.apps.spatialjoin import estimate_spatial_join, exact_spatial_join
from repro.experiments.runner import ExperimentResult
from repro.generators import EH3, SeedSource
from repro.rangesum.dmap import DMAP, DyadicMapper
from repro.sketch.ams import SketchScheme
from repro.sketch.atomic import DMAPChannel, GeneratorChannel
from repro.sketch.bulk import (
    bulk_point_update,
    decompose_quaternary,
    dmap_bulk_id_update,
    dmap_ids_for_intervals,
    dmap_ids_for_points,
    eh3_bulk_interval_update,
)
from repro.apps.spatialjoin import SegmentSketches
from repro.workloads.spatial import SegmentDataset, landc, lando, soil

__all__ = ["run_fig567", "spatial_join_error", "sketch_segments_bulk"]


def _subsample(
    dataset: SegmentDataset, limit: int | None, rng: np.random.Generator
) -> SegmentDataset:
    if limit is None or len(dataset) <= limit:
        return dataset
    keep = rng.choice(len(dataset), size=limit, replace=False)
    return SegmentDataset(
        name=dataset.name,
        domain_bits=dataset.domain_bits,
        segments=dataset.segments[np.sort(keep)],
    )


def sketch_segments_bulk(
    scheme: SketchScheme,
    dataset: SegmentDataset,
    method: str,
) -> SegmentSketches:
    """Vectorized equivalent of :func:`repro.apps.spatialjoin.sketch_segment_dataset`."""
    intervals = [(int(a), int(b)) for a, b in dataset.segments]
    endpoints = dataset.segments.reshape(-1).astype(np.uint64)
    segment_sketch = scheme.sketch()
    endpoint_sketch = scheme.sketch()
    if method == "eh3":
        eh3_bulk_interval_update(segment_sketch, decompose_quaternary(intervals))
        bulk_point_update(endpoint_sketch, endpoints)
    elif method == "dmap":
        mapper = DyadicMapper(dataset.domain_bits)
        ids, weights = dmap_ids_for_intervals(mapper, intervals)
        dmap_bulk_id_update(segment_sketch, ids, weights)
        ids, weights = dmap_ids_for_points(mapper, endpoints)
        dmap_bulk_id_update(endpoint_sketch, ids, weights)
    else:
        raise ValueError(f"unknown method {method!r}")
    return SegmentSketches(
        segments=segment_sketch,
        endpoints=endpoint_sketch,
        count=len(dataset),
    )


def spatial_join_error(
    first: SegmentDataset,
    second: SegmentDataset,
    method: str,
    counters: int,
    medians: int,
    source: SeedSource,
    trials: int,
) -> float:
    """Mean relative spatial-join error at a given memory budget."""
    averages = max(1, counters // medians)
    truth = exact_spatial_join(first, second)
    domain_bits = first.domain_bits
    errors = []
    for _ in range(trials):
        if method == "eh3":
            scheme = SketchScheme.from_factory(
                lambda src: GeneratorChannel(EH3.from_source(domain_bits, src)),
                medians,
                averages,
                source,
            )
        else:
            scheme = SketchScheme.from_factory(
                lambda src: DMAPChannel(DMAP.from_source(domain_bits, src)),
                medians,
                averages,
                source,
            )
        estimate = estimate_spatial_join(
            sketch_segments_bulk(scheme, first, method),
            sketch_segments_bulk(scheme, second, method),
        )
        errors.append(abs(estimate - truth) / truth)
    return float(np.mean(errors))


def run_fig567(
    domain_bits: int = 20,
    counter_budgets: tuple[int, ...] = (512, 1024, 2048, 4096),
    medians: int = 4,
    trials: int = 2,
    max_segments: int | None = 4_000,
    seed: int = 20060627,
) -> ExperimentResult:
    """All three dataset pairs: error vs sketch size, EH3 vs DMAP.

    ``max_segments`` subsamples each synthetic layer so the default run
    finishes quickly; pass None to sketch the full paper-sized datasets.
    """
    source = SeedSource(seed)
    rng = np.random.default_rng(seed)
    datasets = {
        "LANDO": _subsample(lando(domain_bits), max_segments, rng),
        "LANDC": _subsample(landc(domain_bits), max_segments, rng),
        "SOIL": _subsample(soil(domain_bits), max_segments, rng),
    }
    pairs = [
        ("Fig 5", "LANDO", "LANDC"),
        ("Fig 6", "LANDO", "SOIL"),
        ("Fig 7", "LANDC", "SOIL"),
    ]

    result = ExperimentResult(
        title="Figures 5-7: EH3 vs DMAP spatial-join error vs sketch size",
        headers=[
            "Figure",
            "Join",
            "Counters",
            "EH3 error",
            "DMAP error",
            "DMAP / EH3",
        ],
    )
    for figure, first_name, second_name in pairs:
        first = datasets[first_name]
        second = datasets[second_name]
        for counters in counter_budgets:
            eh3_error = spatial_join_error(
                first, second, "eh3", counters, medians, source, trials
            )
            dmap_error = spatial_join_error(
                first, second, "dmap", counters, medians, source, trials
            )
            ratio = dmap_error / eh3_error if eh3_error > 0 else float("inf")
            result.add_row(
                figure,
                f"{first_name} x {second_name}",
                counters,
                eh3_error,
                dmap_error,
                ratio,
            )
    result.add_note(
        f"synthetic stand-ins for the Wyoming GIS layers (see DESIGN.md); "
        f"domain 2^{domain_bits}, {medians} medians, {trials} trials"
        + (
            f", subsampled to {max_segments:,} segments per layer"
            if max_segments
            else ""
        )
    )
    return result
