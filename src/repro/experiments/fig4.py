"""Figure 4 -- EH3 vs DMAP for selectivity estimation across data skew.

Paper setup: two-dimensional synthetic data (generator of Dobra et al.
[8]): 10 regions over a 1024 x 1024 domain, point counts and within-region
distributions Zipf distributed; the within-region Zipf coefficient is swept.
Both methods answer random rectangular count queries from sketches of equal
memory.

Expected shape: EH3 beats DMAP across the sweep -- by an order of magnitude
(the paper reports up to 14x) at low skew, with the gap narrowing but not
closing as skew grows.
"""

from __future__ import annotations

import numpy as np

from repro.apps.histograms import random_query_rects
from repro.experiments.runner import ExperimentResult
from repro.generators import SeedSource
from repro.rangesum.multidim import ProductDMAP, ProductGenerator
from repro.schemes import channel_kind
from repro.query import engine as query_engine
from repro.sketch.ams import SketchScheme
from repro.sketch.atomic import ProductChannel, ProductDMAPChannel
from repro.sketch.bulk import (
    product_bulk_point_update,
    product_dmap_bulk_point_update,
)
from repro.stream.exact import region_frequency_sum
from repro.workloads.regions import generate_region_dataset

__all__ = ["run_fig4", "selectivity_errors"]


def _eh3_scheme(
    dims_bits, medians: int, averages: int, source: SeedSource
) -> SketchScheme:
    return SketchScheme.from_factory(
        lambda src: ProductChannel(ProductGenerator.eh3(dims_bits, src)),
        medians,
        averages,
        source,
    )


def _dmap_scheme(
    dims_bits, medians: int, averages: int, source: SeedSource
) -> SketchScheme:
    return SketchScheme.from_factory(
        lambda src: ProductDMAPChannel(ProductDMAP.from_source(dims_bits, src)),
        medians,
        averages,
        source,
    )


def _region_sketches(scheme: SketchScheme, rects) -> list:
    """One region sketch per query rectangle, batched per cell.

    Each cell computes its contributions to *all* rectangles in one
    batched per-axis range-sum pass (:meth:`ProductGenerator.rect_sums` /
    :meth:`ProductDMAP.rect_contributions`) instead of decomposing every
    rectangle once per cell.
    """
    sketches = [scheme.sketch() for _ in rects]
    grids = [[cell for row in sketch.cells for cell in row] for sketch in sketches]
    channels = [channel for row in scheme.channels for channel in row]
    for position, channel in enumerate(channels):
        if channel_kind(channel) == "product":
            values = channel.generator.rect_sums(rects)
        else:
            values = channel.dmap.rect_contributions(rects)
        for sketch_index, value in enumerate(values):
            grids[sketch_index][position].value = float(value)
    return sketches


def selectivity_errors(
    points: np.ndarray,
    rects,
    scheme: SketchScheme,
    bulk_update,
) -> float:
    """Mean relative count error of one sketch over the query rectangles."""
    data_sketch = scheme.sketch()
    bulk_update(data_sketch, points)
    errors = []
    region_sketches = _region_sketches(scheme, rects)
    for rect, region_sketch in zip(rects, region_sketches):
        truth = region_frequency_sum(points, rect)
        if truth == 0:
            continue
        estimate = query_engine.product(
            data_sketch, region_sketch, kind="region"
        ).value
        errors.append(abs(estimate - truth) / truth)
    if not errors:
        raise ValueError("no query rectangle contained any data")
    return float(np.mean(errors))


def run_fig4(
    dims_bits: tuple[int, int] = (10, 10),
    regions: int = 10,
    total_points: int = 20_000,
    zipf_values: tuple[float, ...] = (0.0, 0.5, 1.0, 1.5, 2.0),
    medians: int = 7,
    averages: int = 100,
    queries: int = 20,
    trials: int = 3,
    seed: int = 20060627,
) -> ExperimentResult:
    """EH3 vs DMAP mean selectivity error as within-region skew grows."""
    source = SeedSource(seed)
    rng = np.random.default_rng(seed)

    result = ExperimentResult(
        title="Figure 4: EH3 vs DMAP selectivity estimation vs Zipf skew",
        headers=["Zipf z", "EH3 error", "DMAP error", "DMAP / EH3"],
    )
    for z in zipf_values:
        dataset = generate_region_dataset(
            domain_bits=dims_bits,
            regions=regions,
            total_points=total_points,
            within_zipf=z,
            rng=rng,
        )
        rects = [
            rect
            for rect in random_query_rects(rng, dims_bits, queries * 4)
            if region_frequency_sum(dataset.points, rect)
            >= max(1, total_points // 200)
        ][:queries]
        eh3_errors = []
        dmap_errors = []
        for _ in range(trials):
            eh3_errors.append(
                selectivity_errors(
                    dataset.points,
                    rects,
                    _eh3_scheme(dims_bits, medians, averages, source),
                    product_bulk_point_update,
                )
            )
            dmap_errors.append(
                selectivity_errors(
                    dataset.points,
                    rects,
                    _dmap_scheme(dims_bits, medians, averages, source),
                    product_dmap_bulk_point_update,
                )
            )
        eh3_error = float(np.mean(eh3_errors))
        dmap_error = float(np.mean(dmap_errors))
        ratio = dmap_error / eh3_error if eh3_error > 0 else float("inf")
        result.add_row(z, eh3_error, dmap_error, ratio)
    result.add_note(
        f"{regions} regions, {total_points:,} points over "
        f"{1 << dims_bits[0]}x{1 << dims_bits[1]}, {medians}x{averages} "
        f"counters per method, {len(zipf_values)} skew levels, "
        f"{trials} trials, queries covering >= 0.5% of the data"
    )
    return result
