"""Shared infrastructure for the experiment harness.

Every experiment module produces an :class:`ExperimentResult` -- a titled
table of rows -- that renders to aligned text, so benchmark runs print the
same rows/series the paper's tables and figures report, side by side with
any paper-reported reference values.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Sequence

from repro import obs

__all__ = ["ExperimentResult", "time_per_op", "format_number"]


def format_number(value) -> str:
    """Human-friendly numeric formatting for table cells."""
    if isinstance(value, str):
        return value
    if value is None:
        return "-"
    if isinstance(value, bool):
        return str(value)
    if isinstance(value, int):
        return f"{value:,}"
    if value == 0:
        return "0"
    magnitude = abs(value)
    if magnitude >= 1e6 or magnitude < 1e-3:
        return f"{value:.3e}"
    if magnitude >= 100:
        return f"{value:,.1f}"
    return f"{value:.4g}"


@dataclass
class ExperimentResult:
    """A titled table of experiment rows."""

    title: str
    headers: Sequence[str]
    rows: list[Sequence] = field(default_factory=list)
    notes: list[str] = field(default_factory=list)

    def add_row(self, *cells) -> None:
        """Append one row (must match the header width)."""
        if len(cells) != len(self.headers):
            raise ValueError(
                f"row has {len(cells)} cells, expected {len(self.headers)}"
            )
        self.rows.append(cells)

    def add_note(self, note: str) -> None:
        """Attach a free-form note printed under the table."""
        self.notes.append(note)

    def to_text(self) -> str:
        """Render as an aligned plain-text table."""
        formatted = [[format_number(c) for c in row] for row in self.rows]
        widths = [
            max(len(h), *(len(row[k]) for row in formatted)) if formatted
            else len(h)
            for k, h in enumerate(self.headers)
        ]
        lines = [self.title, "=" * len(self.title)]
        header = "  ".join(h.ljust(w) for h, w in zip(self.headers, widths))
        lines.append(header)
        lines.append("-" * len(header))
        for row in formatted:
            lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
        for note in self.notes:
            lines.append(f"note: {note}")
        return "\n".join(lines)

    def column(self, header: str) -> list:
        """Extract one column by header name (for tests and plots)."""
        index = list(self.headers).index(header)
        return [row[index] for row in self.rows]

    def to_json(self) -> str:
        """Machine-readable form: title, headers, rows, notes."""
        import json

        return json.dumps(
            {
                "title": self.title,
                "headers": list(self.headers),
                "rows": [list(row) for row in self.rows],
                "notes": list(self.notes),
            },
            indent=2,
        )


def time_per_op(
    operation: Callable[[], object],
    operations_per_call: int,
    min_seconds: float = 0.2,
    max_calls: int = 1_000_000,
) -> float:
    """Wall-clock nanoseconds per elementary operation.

    Calls ``operation`` repeatedly until ``min_seconds`` of work has been
    accumulated (at least twice), then divides by the total number of
    elementary operations performed.
    """
    if operations_per_call <= 0:
        raise ValueError("operations_per_call must be positive")
    calls = 0
    elapsed = 0.0
    while (elapsed < min_seconds or calls < 2) and calls < max_calls:
        start = obs.monotonic()
        operation()
        elapsed += obs.monotonic() - start
        calls += 1
    return elapsed / (calls * operations_per_call) * 1e9
