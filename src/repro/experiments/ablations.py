"""Ablation experiments for the design choices the paper fixes silently.

Four studies, all runnable from the CLI (``repro-experiments ablations``)
and asserted in ``benchmarks/bench_ablations.py``:

1. the nonlinear ``h`` function -- what EH3 buys over BCH3;
2. the Section 5.3.3 pathological support -- where that advantage
   provably vanishes;
3. BCH5's cube arithmetic (footnote 2) -- GF vs arithmetic accuracy;
4. binary vs quaternary dyadic covers -- the decomposition overhead of
   Theorem 2's closed form.
"""

from __future__ import annotations

import numpy as np

from repro.core.dyadic import minimal_dyadic_cover, minimal_quaternary_cover
from repro.experiments.fig2 import measure_self_join_error
from repro.experiments.runner import ExperimentResult
from repro.generators import BCH3, BCH5, EH3, SeedSource
from repro.workloads.adversarial import adverse_frequency_vector
from repro.workloads.zipf import zipf_frequency_vector

__all__ = [
    "run_ablation_h_function",
    "run_ablation_adversarial",
    "run_ablation_cube",
    "run_ablation_covers",
    "run_ablation_allocation",
    "run_ablations",
]


def _scheme_errors(
    frequencies: np.ndarray,
    domain_bits: int,
    source: SeedSource,
    averages: int,
    trials: int,
    schemes: dict,
) -> dict[str, float]:
    return {
        name: measure_self_join_error(
            frequencies, factory, medians=1, averages=averages,
            trials=trials, source=source,
        )
        for name, factory in schemes.items()
    }


def run_ablation_h_function(
    domain_bits: int = 12,
    tuples: int = 50_000,
    averages: int = 40,
    trials: int = 12,
    seed: int = 123,
) -> ExperimentResult:
    """EH3 vs BCH3 vs BCH5 self-join error on generic low-skew data."""
    source = SeedSource(seed)
    rng = np.random.default_rng(seed)
    frequencies = zipf_frequency_vector(1 << domain_bits, tuples, 0.3, rng=rng)
    errors = _scheme_errors(
        frequencies, domain_bits, source, averages, trials,
        {
            "EH3": lambda src: EH3.from_source(domain_bits, src),
            "BCH3": lambda src: BCH3.from_source(domain_bits, src),
            "BCH5": lambda src: BCH5.from_source(domain_bits, src),
        },
    )
    result = ExperimentResult(
        "Ablation: the nonlinear h (low-skew self-join error)",
        ["Scheme", "Error"],
    )
    for name, value in errors.items():
        result.add_row(name, value)
    result.add_note(
        "h() alone closes the 3-wise/4-wise gap: EH3 tracks BCH5, BCH3 blows up"
    )
    return result


def run_ablation_adversarial(
    domain_bits: int = 12,
    tuples: int = 50_000,
    averages: int = 40,
    trials: int = 12,
    seed: int = 321,
) -> ExperimentResult:
    """The same comparison on the pair-aligned XOR-closed support."""
    source = SeedSource(seed)
    rng = np.random.default_rng(seed)
    frequencies = adverse_frequency_vector(domain_bits, tuples, rng)
    errors = _scheme_errors(
        frequencies, domain_bits, source, averages, trials,
        {
            "EH3 (adversarial)": lambda src: EH3.from_source(domain_bits, src),
            "BCH3 (adversarial)": lambda src: BCH3.from_source(domain_bits, src),
            "BCH5 (adversarial)": lambda src: BCH5.from_source(domain_bits, src),
        },
    )
    result = ExperimentResult(
        "Ablation: Section 5.3.3's pathological support",
        ["Scheme", "Error"],
    )
    for name, value in errors.items():
        result.add_row(name, value)
    result.add_note(
        "on XOR-closed pair-aligned data EH3's variance provably equals BCH3's"
    )
    return result


def run_ablation_cube(
    domain_bits: int = 12,
    tuples: int = 50_000,
    averages: int = 40,
    trials: int = 16,
    seed: int = 777,
) -> ExperimentResult:
    """BCH5 with exact GF cubes vs fast arithmetic cubes (footnote 2)."""
    source = SeedSource(seed)
    rng = np.random.default_rng(seed)
    frequencies = zipf_frequency_vector(1 << domain_bits, tuples, 1.0, rng=rng)
    errors = _scheme_errors(
        frequencies, domain_bits, source, averages, trials,
        {
            "BCH5 gf": lambda src: BCH5.from_source(
                domain_bits, src, mode="gf"
            ),
            "BCH5 arithmetic": lambda src: BCH5.from_source(
                domain_bits, src, mode="arithmetic"
            ),
        },
    )
    result = ExperimentResult(
        "Ablation: BCH5 cube arithmetic (footnote 2)",
        ["Variant", "Error"],
    )
    for name, value in errors.items():
        result.add_row(name, value)
    result.add_note("estimation quality is indistinguishable between cubes")
    return result


def run_ablation_covers(
    domain_bits: int = 24,
    intervals: int = 2_000,
    seed: int = 5,
) -> ExperimentResult:
    """Piece counts of binary vs quaternary minimal covers."""
    rng = np.random.default_rng(seed)
    batch = [
        (int(min(a, b)), int(max(a, b)))
        for a, b in zip(
            rng.integers(0, 1 << domain_bits, size=intervals),
            rng.integers(0, 1 << domain_bits, size=intervals),
        )
    ]
    binary = sum(len(minimal_dyadic_cover(a, b)) for a, b in batch)
    quaternary = sum(len(minimal_quaternary_cover(a, b)) for a, b in batch)
    result = ExperimentResult(
        f"Ablation: binary vs quaternary cover sizes "
        f"({intervals:,} intervals, 2^{domain_bits})",
        ["Cover", "Total pieces", "Pieces per interval"],
    )
    result.add_row("binary", binary, binary / intervals)
    result.add_row("quaternary", quaternary, quaternary / intervals)
    result.add_note("Theorem 2's closed form costs <= 2x pieces (~1.5x typical)")
    return result


def run_ablation_allocation(
    domain_bits: int = 12,
    tuples: int = 50_000,
    total_counters: int = 120,
    trials: int = 16,
    seed: int = 246,
) -> ExperimentResult:
    """Medians-vs-averages allocation at fixed total memory.

    The paper observes (Section 6.2, echoing Das et al.) that "the medians
    have almost the same effect in reducing the error as the averages".
    This study fixes the counter budget and sweeps how it is split.
    """
    source = SeedSource(seed)
    rng = np.random.default_rng(seed)
    frequencies = zipf_frequency_vector(1 << domain_bits, tuples, 1.0, rng=rng)
    result = ExperimentResult(
        f"Ablation: medians x averages allocation ({total_counters} counters)",
        ["Medians", "Averages", "Error"],
    )
    for medians in (1, 2, 4, 6, 12):
        averages = total_counters // medians
        error = measure_self_join_error(
            frequencies,
            lambda src: EH3.from_source(domain_bits, src),
            medians=medians,
            averages=averages,
            trials=trials,
            source=source,
        )
        result.add_row(medians, averages, error)
    result.add_note(
        "error is roughly flat across splits: medians reduce error almost "
        "as effectively as averages (the paper's Section 6.2 observation)"
    )
    return result


def run_ablations(seed: int = 20060627, **_ignored) -> ExperimentResult:
    """All five ablations, concatenated into one display table."""
    combined = ExperimentResult(
        "Ablations (beyond the paper)", ["Study", "Variant", "Value"]
    )
    for runner in (
        run_ablation_h_function,
        run_ablation_adversarial,
        run_ablation_cube,
        run_ablation_covers,
        run_ablation_allocation,
    ):
        partial = runner()
        study = partial.title.split(":", 1)[1].strip()
        for row in partial.rows:
            variant = " x ".join(str(cell) for cell in row[:-1])
            combined.add_row(study, variant, row[-1])
    return combined
