"""Figure 3 -- EH3 vs BCH5 self-join error across Zipf skew.

Same data as Figure 2 (domain 16,384, 100,000 tuples) but with 10 medians.
Expected shape (the paper's central empirical claim): the two schemes'
errors are virtually identical for Zipf coefficients above 1, while for
low skew EH3 is dramatically better -- its variance collapses toward zero
as the distribution approaches uniform, where BCH5 keeps its full 4-wise
variance.  Errors are also roughly 3x smaller than Figure 2's thanks to
the medians.
"""

from __future__ import annotations

import numpy as np

from repro.experiments.fig2 import measure_self_join_error
from repro.experiments.runner import ExperimentResult
from repro.generators import BCH5, EH3, SeedSource
from repro.workloads.zipf import zipf_frequency_vector

__all__ = ["run_fig3"]


def run_fig3(
    domain_bits: int = 14,
    tuples: int = 100_000,
    zipf_values: tuple[float, ...] = (0.0, 0.25, 0.5, 0.75, 1.0, 1.5, 2.0, 3.0, 4.0, 5.0),
    medians: int = 10,
    averages: int = 50,
    trials: int = 10,
    seed: int = 20060627,
    bch5_mode: str = "gf",
) -> ExperimentResult:
    """Measured EH3 and BCH5 errors for the Figure 3 sweep."""
    source = SeedSource(seed)
    rng = np.random.default_rng(seed)

    result = ExperimentResult(
        title="Figure 3: EH3 vs BCH5 self-join error (10 medians)",
        headers=["Zipf z", "EH3 error", "BCH5 error", "BCH5 / EH3"],
    )
    for z in zipf_values:
        frequencies = zipf_frequency_vector(
            1 << domain_bits, tuples, z, rng=rng, permute=True
        )
        eh3_error = measure_self_join_error(
            frequencies,
            lambda src: EH3.from_source(domain_bits, src),
            medians=medians,
            averages=averages,
            trials=trials,
            source=source,
        )
        bch5_error = measure_self_join_error(
            frequencies,
            lambda src: BCH5.from_source(domain_bits, src, mode=bch5_mode),
            medians=medians,
            averages=averages,
            trials=trials,
            source=source,
        )
        ratio = bch5_error / eh3_error if eh3_error > 0 else float("inf")
        result.add_row(z, eh3_error, bch5_error, ratio)
    result.add_note(
        f"domain 2^{domain_bits}, {tuples:,} tuples, {medians} medians x "
        f"{averages} averages, {trials} trials; BCH5 cubes in GF(2^n)"
    )
    return result
