"""The scheme capability registry (see :mod:`repro.schemes.registry`).

Each +/-1 generating scheme is described once by a
:class:`~repro.schemes.registry.SchemeSpec` -- construction,
capabilities, serialization codec -- and every consumer (plane kernels,
serialization, batched range-sums, bench, CLI, stream processor)
dispatches through this registry instead of hand-wired ``isinstance`` or
``kind ==`` ladders.  Importing the package registers the paper's six
built-in schemes (:mod:`repro.schemes.builtin`).
"""

from repro.schemes.errors import (
    SchemeError,
    SerializationError,
    UnknownSchemeError,
    UnsupportedSchemeError,
)
from repro.schemes.registry import (
    ChannelCodec,
    channel_kind,
    SchemeCodec,
    SchemeSpec,
    all_specs,
    decode_channel,
    decode_generator,
    encode_channel,
    encode_generator,
    get_spec,
    register,
    register_channel_codec,
    registered_channel_kinds,
    registered_kinds,
    registered_schemes,
    spec_for,
)

# Populate the registry with the paper's built-in schemes.  Must come
# after the registry re-exports above: ``builtin`` (and the modules it
# pulls in, e.g. ``repro.sketch.serialize``) may import back into this
# partially-initialized package and needs those names bound already.
from repro.schemes import builtin as _builtin  # noqa: E402
from repro.schemes.builtin import PolyPrimePlane
from repro.schemes.dispatch import (  # noqa: E402
    dispatch_scheme_name,
    range_sum,
    range_sums,
)

__all__ = [
    "SchemeError",
    "UnknownSchemeError",
    "UnsupportedSchemeError",
    "SerializationError",
    "SchemeSpec",
    "SchemeCodec",
    "ChannelCodec",
    "PolyPrimePlane",
    "register",
    "get_spec",
    "spec_for",
    "registered_schemes",
    "all_specs",
    "registered_kinds",
    "encode_generator",
    "decode_generator",
    "register_channel_codec",
    "encode_channel",
    "decode_channel",
    "channel_kind",
    "registered_channel_kinds",
    "range_sum",
    "range_sums",
    "dispatch_scheme_name",
]

del _builtin
