"""Typed errors of the scheme registry.

Every error subclasses :class:`SchemeError` plus the builtin exception the
pre-registry code paths raised (``TypeError`` for unsupported objects,
``ValueError`` for undecodable wire data), so existing ``except`` clauses
and tests keep working while new code can catch the precise type.
"""

from __future__ import annotations

__all__ = [
    "SchemeError",
    "UnknownSchemeError",
    "UnsupportedSchemeError",
    "SerializationError",
]


class SchemeError(Exception):
    """Base class of every scheme-registry error."""


class UnknownSchemeError(SchemeError, ValueError):
    """A scheme name that is not in the registry."""


class UnsupportedSchemeError(SchemeError, TypeError):
    """A scheme (or object) lacks the capability an operation requires."""


class SerializationError(SchemeError, ValueError):
    """Wire data whose ``kind`` tag matches no registered codec."""
