"""Built-in scheme registrations: the paper's six generating schemes.

Each scheme is described once by a :class:`~repro.schemes.registry.SchemeSpec`
-- construction, capabilities, codec -- and every layer (plane,
serialization, batched range-sums, bench, CLI, stream processor) picks it
up from the registry.  This module is also the worked example of the
one-file extension story: :class:`PolyPrimePlane` adds a packed
counter-plane kernel for the polynomials-over-primes scheme (absent from
the hand-wired plane layer before the registry existed) by subclassing
the public :class:`~repro.sketch.plane.PackedPlane` scaffolding, and the
``polyprime`` spec below wires it in for the whole system.

Import-order note: :mod:`repro.sketch.serialize` imports this package, so
``repro.sketch`` modules other than :mod:`repro.sketch.plane` (which is
import-cycle-free) are imported lazily inside the codec closures.
"""

from __future__ import annotations

from typing import Any, Mapping, Sequence

import numpy as np

from repro import obs
from repro.generators.bch3 import BCH3
from repro.generators.bch5 import BCH5
from repro.generators.eh3 import EH3
from repro.generators.polyprime import PolynomialsOverPrimes, massdal2
from repro.generators.rm7 import RM7
from repro.generators.sequential import (
    bch3_sequential_bits,
    eh3_sequential_bits,
)
from repro.generators.toeplitz import Toeplitz, ToeplitzHash
from repro.schemes.registry import (
    ChannelCodec,
    SchemeCodec,
    SchemeSpec,
    decode_generator,
    encode_generator,
    register,
    register_channel_codec,
)
from repro.sketch.plane import (
    BCH3Plane,
    BCH5Plane,
    EH3Plane,
    PackedPlane,
)

__all__ = ["PolyPrimePlane"]


# ---------------------------------------------------------------------------
# The new packed kernel: polynomials over primes.
# ---------------------------------------------------------------------------


class PolyPrimePlane(PackedPlane):
    """All polynomial-over-primes seeds of a grid, packed for batches.

    The per-index work of the scheme is one degree-``(k-1)`` Horner
    evaluation mod ``p`` per counter, delegated to the bound kernel
    backend's ``poly_sign_kernel``.  For Mersenne moduli (the scheme's
    standard ``p = 2^31 - 1``, or ``2^61 - 1`` for wide domains) every
    reduction is a branch-free shift-add fold -- no ``%`` anywhere on the
    packed path -- and the extracted sign bits match the scalar
    :meth:`~repro.generators.polyprime.PolynomialsOverPrimes.bit` path
    bit for bit.  Non-Mersenne research primes take the reference
    backend's exact generic route.

    Batches are processed in chunks to bound the ``(counters, chunk)``
    temporaries.  The stride backend has no polynomial kernel, so direct
    construction auto-selects among the remaining engines; registry
    dispatch enforces the same set via the spec's ``backends`` tuple.
    """

    interval_kind = None
    plane_kind = "generator"
    supported_backends = ("numba", "numpy")

    _CHUNK = 2048

    def __init__(
        self,
        generators: Sequence[PolynomialsOverPrimes],
        backend: Any | None = None,
    ) -> None:
        bits = {g.domain_bits for g in generators}
        primes = {g.p for g in generators}
        if len(bits) != 1 or len(primes) != 1:
            raise ValueError("plane generators must share a domain and prime")
        super().__init__(bits.pop(), len(generators), backend=backend)
        self.p = primes.pop()
        degree = max(len(g.coefficients) for g in generators)
        matrix = np.zeros((self.counters, degree), dtype=np.uint64)
        # repro: allow[R006] construction loop: one coefficient-row write per counter, off the batch path
        for column, generator in enumerate(generators):
            coefficients = generator.coefficients
            matrix[column, : len(coefficients)] = np.asarray(
                coefficients, dtype=np.uint64
            )
        self.coefficients = matrix
        self._signs = self.backend.poly_sign_kernel(self.coefficients, self.p)

    def point_totals(
        self,
        points: Sequence[int] | np.ndarray,
        weights: Sequence[float] | np.ndarray | None = None,
    ) -> np.ndarray:
        """Per-counter ``sum_p w_p * xi_c(p)`` for a point batch."""
        points = self._check_points(points)
        u = self._weights_or_none(weights, points.size)
        totals = np.zeros(self.counters, dtype=np.float64)
        start_time = obs.monotonic()
        # repro: allow[R006] chunk traversal: each pass evaluates a whole (counters, chunk) block
        for start in range(0, points.size, self._CHUNK):
            stop = start + self._CHUNK
            chunk_u = None if u is None else u[start:stop]
            totals += self._signed_totals(
                self._signs(points[start:stop]), chunk_u
            )
        self._observe_kernel(start_time)
        return totals


# ---------------------------------------------------------------------------
# Generator specs.
# ---------------------------------------------------------------------------


def _eh3_range_sums(generator: EH3, alphas: Any, betas: Any) -> np.ndarray:
    from repro.rangesum.batched import eh3_range_sums

    return eh3_range_sums(generator, alphas, betas)


def _bch3_range_sums(generator: BCH3, alphas: Any, betas: Any) -> np.ndarray:
    from repro.rangesum.batched import bch3_range_sums

    return bch3_range_sums(generator, alphas, betas)


def _bch5_range_sums(generator: BCH5, alphas: Any, betas: Any) -> np.ndarray:
    from repro.rangesum.batched import bch5_range_sums

    return bch5_range_sums(generator, alphas, betas)


def _bch5_range_sum(generator: BCH5, alpha: int, beta: int) -> int:
    from repro.rangesum.bch5_rangesum import bch5_range_sum

    return bch5_range_sum(generator, alpha, beta)


def _rm7_range_sum(generator: RM7, alpha: int, beta: int) -> int:
    from repro.rangesum.rm7_rangesum import rm7_range_sum

    return rm7_range_sum(generator, alpha, beta)


def _toeplitz_range_sums(
    generator: Toeplitz, alphas: Any, betas: Any
) -> np.ndarray:
    from repro.rangesum.batched import bch3_range_sums

    return bch3_range_sums(generator.as_bch3(), alphas, betas)


register(
    SchemeSpec(
        name="eh3",
        cls=EH3,
        summary="3-wise independent, range-summable in O(log range) "
        "(Theorem 2 / Algorithm H3Interval)",
        independence=3,
        seed_bits="n + 1",
        factory=lambda bits, src: EH3.from_source(bits, src),
        codec=SchemeCodec(
            kind="eh3",
            encode=lambda g: {
                "kind": "eh3",
                "domain_bits": g.domain_bits,
                "s0": g.s0,
                "s1": g.s1,
            },
            decode=lambda d: EH3(d["domain_bits"], d["s0"], d["s1"]),
        ),
        fast_range_sum=True,
        range_sum=lambda g, a, b: g.range_sum(a, b),
        range_sums=_eh3_range_sums,
        plane=lambda generators, backend=None: EH3Plane(
            generators, backend=backend
        ),
        interval_kind="quaternary",
        dmap_inner=True,
        backends=("stride", "numba", "numpy"),
        extras={"sequential_bits": eh3_sequential_bits},
    )
)

register(
    SchemeSpec(
        name="bch3",
        cls=BCH3,
        summary="3-wise independent, range-summable in O(1) amortized",
        independence=3,
        seed_bits="n + 1",
        factory=lambda bits, src: BCH3.from_source(bits, src),
        codec=SchemeCodec(
            kind="bch3",
            encode=lambda g: {
                "kind": "bch3",
                "domain_bits": g.domain_bits,
                "s0": g.s0,
                "s1": g.s1,
            },
            decode=lambda d: BCH3(d["domain_bits"], d["s0"], d["s1"]),
        ),
        fast_range_sum=True,
        range_sum=lambda g, a, b: g.range_sum(a, b),
        range_sums=_bch3_range_sums,
        plane=lambda generators, backend=None: BCH3Plane(
            generators, backend=backend
        ),
        interval_kind="binary",
        dmap_inner=True,
        backends=("stride", "numba", "numpy"),
        extras={"sequential_bits": bch3_sequential_bits},
    )
)

register(
    SchemeSpec(
        name="bch5",
        cls=BCH5,
        summary="5-wise independent, not fast range-summable (Theorem 3); "
        "dyadic sums amortize via the quadratic form",
        independence=5,
        seed_bits="2n + 1",
        factory=lambda bits, src: BCH5.from_source(bits, src),
        codec=SchemeCodec(
            kind="bch5",
            encode=lambda g: {
                "kind": "bch5",
                "domain_bits": g.domain_bits,
                "s0": g.s0,
                "s1": g.s1,
                "s3": g.s3,
                "mode": g.mode,
            },
            decode=lambda d: BCH5(
                d["domain_bits"], d["s0"], d["s1"], d["s3"], mode=d["mode"]
            ),
        ),
        fast_range_sum=False,
        range_sum=_bch5_range_sum,
        range_sums=_bch5_range_sums,
        plane=lambda generators, backend=None: BCH5Plane(
            generators, backend=backend
        ),
        interval_kind=None,
        dmap_inner=True,
        backends=("stride", "numba", "numpy"),
    )
)

register(
    SchemeSpec(
        name="rm7",
        cls=RM7,
        summary="7-wise independent; range-summable in principle "
        "(2XOR-AND counting) but impractically slow",
        independence=7,
        seed_bits="1 + n + n(n-1)/2",
        factory=lambda bits, src: RM7.from_source(bits, src),
        codec=SchemeCodec(
            kind="rm7",
            encode=lambda g: {
                "kind": "rm7",
                "domain_bits": g.domain_bits,
                "s0": g.s0,
                "s1": g.s1,
                "q_rows": list(g.q_rows),
            },
            decode=lambda d: RM7(
                d["domain_bits"], d["s0"], d["s1"], d["q_rows"]
            ),
        ),
        fast_range_sum=False,
        range_sum=_rm7_range_sum,
        range_sums=None,
        plane=None,
        interval_kind=None,
        dmap_inner=False,
    )
)

register(
    SchemeSpec(
        name="polyprime",
        cls=PolynomialsOverPrimes,
        summary="k-wise independent polynomials over a Mersenne prime; "
        "not range-summable (Theorem 4)",
        independence=2,
        seed_bits="k * ceil(log2 p)",
        factory=lambda bits, src: massdal2(bits, src),
        codec=SchemeCodec(
            kind="polyprime",
            encode=lambda g: {
                "kind": "polyprime",
                "domain_bits": g.domain_bits,
                "coefficients": list(g.coefficients),
                "p": g.p,
            },
            decode=lambda d: PolynomialsOverPrimes(
                d["domain_bits"], tuple(d["coefficients"]), p=d["p"]
            ),
        ),
        fast_range_sum=False,
        range_sum=None,
        range_sums=None,
        plane=lambda generators, backend=None: PolyPrimePlane(
            generators, backend=backend
        ),
        interval_kind=None,
        dmap_inner=True,
        backends=("numba", "numpy"),
    )
)

register(
    SchemeSpec(
        name="toeplitz",
        cls=Toeplitz,
        summary="2-wise independent Toeplitz hashing; range-sums collapse "
        "to BCH3's O(1) algorithm",
        independence=2,
        seed_bits="n + 2m - 1",
        factory=lambda bits, src: Toeplitz.from_source(bits, src),
        codec=SchemeCodec(
            kind="toeplitz",
            encode=lambda g: {
                "kind": "toeplitz",
                "domain_bits": g.domain_bits,
                "m": g.hash_function.m,
                "diagonal_bits": g.hash_function.diagonal_bits,
                "offset": g.hash_function.offset,
            },
            decode=lambda d: Toeplitz(
                d["domain_bits"],
                ToeplitzHash(
                    d["domain_bits"], d["m"], d["diagonal_bits"], d["offset"]
                ),
            ),
        ),
        fast_range_sum=True,
        range_sum=lambda g, a, b: g.range_sum(a, b),
        range_sums=_toeplitz_range_sums,
        plane=None,
        interval_kind=None,
        dmap_inner=False,
    )
)


# ---------------------------------------------------------------------------
# Channel codecs (generator, DMAP, and the d-dimensional products).
# ---------------------------------------------------------------------------


def _is_generator_channel(channel: Any) -> bool:
    from repro.sketch.atomic import GeneratorChannel

    return isinstance(channel, GeneratorChannel)


def _encode_generator_channel(channel: Any) -> dict[str, Any]:
    return {
        "kind": "generator",
        "generator": encode_generator(channel.generator),
    }


def _decode_generator_channel(data: Mapping[str, Any]) -> Any:
    from repro.sketch.atomic import GeneratorChannel

    return GeneratorChannel(decode_generator(data["generator"]))


def _is_dmap_channel(channel: Any) -> bool:
    from repro.sketch.atomic import DMAPChannel

    return isinstance(channel, DMAPChannel)


def _encode_dmap_channel(channel: Any) -> dict[str, Any]:
    return {
        "kind": "dmap",
        "domain_bits": channel.dmap.domain_bits,
        "generator": encode_generator(channel.dmap.generator),
    }


def _decode_dmap_channel(data: Mapping[str, Any]) -> Any:
    from repro.rangesum.dmap import DMAP
    from repro.sketch.atomic import DMAPChannel

    return DMAPChannel(
        DMAP(data["domain_bits"], decode_generator(data["generator"]))
    )


def _is_product_channel(channel: Any) -> bool:
    from repro.sketch.atomic import ProductChannel

    return isinstance(channel, ProductChannel)


def _encode_product_channel(channel: Any) -> dict[str, Any]:
    return {
        "kind": "product",
        "factors": [
            encode_generator(factor) for factor in channel.generator.factors
        ],
    }


def _decode_product_channel(data: Mapping[str, Any]) -> Any:
    from repro.rangesum.multidim import ProductGenerator
    from repro.sketch.atomic import ProductChannel

    return ProductChannel(
        ProductGenerator([decode_generator(f) for f in data["factors"]])
    )


def _is_product_dmap_channel(channel: Any) -> bool:
    from repro.sketch.atomic import ProductDMAPChannel

    return isinstance(channel, ProductDMAPChannel)


def _encode_product_dmap_channel(channel: Any) -> dict[str, Any]:
    return {
        "kind": "product_dmap",
        "axes": [
            {
                "domain_bits": dmap.domain_bits,
                "generator": encode_generator(dmap.generator),
            }
            for dmap in channel.dmap.dmaps
        ],
    }


def _decode_product_dmap_channel(data: Mapping[str, Any]) -> Any:
    from repro.rangesum.dmap import DMAP
    from repro.rangesum.multidim import ProductDMAP
    from repro.sketch.atomic import ProductDMAPChannel

    return ProductDMAPChannel(
        ProductDMAP(
            [
                DMAP(axis["domain_bits"], decode_generator(axis["generator"]))
                for axis in data["axes"]
            ]
        )
    )


register_channel_codec(
    ChannelCodec(
        kind="generator",
        matches=_is_generator_channel,
        encode=_encode_generator_channel,
        decode=_decode_generator_channel,
    )
)

register_channel_codec(
    ChannelCodec(
        kind="dmap",
        matches=_is_dmap_channel,
        encode=_encode_dmap_channel,
        decode=_decode_dmap_channel,
    )
)

register_channel_codec(
    ChannelCodec(
        kind="product",
        matches=_is_product_channel,
        encode=_encode_product_channel,
        decode=_decode_product_channel,
    )
)

register_channel_codec(
    ChannelCodec(
        kind="product_dmap",
        matches=_is_product_dmap_channel,
        encode=_encode_product_dmap_channel,
        decode=_decode_product_dmap_channel,
    )
)
