"""The scheme capability registry.

The paper's +/-1 generating schemes are interchangeable objects
distinguished only by their *capabilities*: independence degree, seed
size, whether range-sums are fast, whether a packed counter-plane kernel
exists.  This module holds the single table describing each scheme once
-- a :class:`SchemeSpec` -- and the dispatch helpers every other layer
(plane, serialization, batched range-sums, bulk updates, bench, CLI,
stream processor) uses instead of hand-wired ``isinstance`` or
``kind ==`` ladders.

Adding a scheme is one :func:`register` call (see
:mod:`repro.schemes.builtin` for the built-in table and ``docs/api.md``
for a walkthrough); every consumer picks it up automatically.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Mapping, Sequence

from repro.schemes.errors import (
    SerializationError,
    UnknownSchemeError,
    UnsupportedSchemeError,
)

__all__ = [
    "SchemeCodec",
    "SchemeSpec",
    "ChannelCodec",
    "register",
    "get_spec",
    "spec_for",
    "registered_schemes",
    "all_specs",
    "registered_kinds",
    "encode_generator",
    "decode_generator",
    "register_channel_codec",
    "encode_channel",
    "decode_channel",
    "channel_kind",
    "registered_channel_kinds",
]


@dataclass(frozen=True)
class SchemeCodec:
    """Wire codec of one generator kind.

    ``encode`` must emit a JSON-compatible dict whose ``"kind"`` equals
    :attr:`kind`; ``decode`` must rebuild a bit-identical generator from
    that dict.  The encoded dict is also the scheme-fingerprint input, so
    its content must be a complete, canonical description of the seed
    material.
    """

    kind: str
    encode: Callable[[Any], dict[str, Any]]
    decode: Callable[[Mapping[str, Any]], Any]


@dataclass(frozen=True)
class SchemeSpec:
    """Everything the system needs to know about one generating scheme.

    Construction (``cls``, ``factory``, ``seed_bits``), capabilities
    (``fast_range_sum``, ``range_sum``, ``range_sums``, ``plane``,
    ``interval_kind``, ``dmap_inner``), and the serialization ``codec``
    are declared here once; every consumer dispatches through the
    registry instead of enumerating schemes by hand.
    """

    name: str
    cls: type
    summary: str
    independence: int
    seed_bits: str
    #: ``factory(domain_bits, source)`` draws a fresh generator.
    factory: Callable[[int, Any], Any]
    codec: SchemeCodec
    #: True when range-sums are practical (paper Sections 4-5).
    fast_range_sum: bool = False
    #: Scalar ``range_sum(generator, alpha, beta)`` or ``None``.
    range_sum: Callable[[Any, int, int], int] | None = None
    #: Batched ``range_sums(generator, alphas, betas)`` or ``None``.
    range_sums: Callable[[Any, Any, Any], Any] | None = None
    #: ``plane(generators)`` packs a grid's seeds into a counter-plane
    #: kernel (see :mod:`repro.sketch.plane`), or ``None``.
    plane: Callable[[Sequence[Any]], Any] | None = None
    #: Piece shape the scheme's fast interval path consumes:
    #: ``"quaternary"`` (EH3 Theorem 2), ``"binary"`` (BCH3), or ``None``.
    interval_kind: str | None = None
    #: True when the scheme can serve as a DMAP channel's inner generator
    #: on the packed-plane path (requires ``plane``).
    dmap_inner: bool = False
    #: Kernel backend names (see :mod:`repro.sketch.backends`) the plane
    #: kernel's primitives cover.  The selection layer only considers these;
    #: ``"numpy"`` (the reference engine) must always be among them so every
    #: plane has a fallback of last resort.
    backends: tuple[str, ...] = ("numpy",)
    extras: Mapping[str, Any] = field(default_factory=dict)

    def capabilities(self) -> dict[str, bool]:
        """The declared capability flags, for docs and guard tests."""
        return {
            "fast_range_sum": self.fast_range_sum,
            "range_sum": self.range_sum is not None,
            "range_sums": self.range_sums is not None,
            "plane": self.plane is not None,
            "fast_intervals": self.interval_kind is not None,
            "dmap_inner": self.dmap_inner,
        }


@dataclass(frozen=True)
class ChannelCodec:
    """Wire codec of one update-channel kind (generator/DMAP/product)."""

    kind: str
    #: ``matches(channel)`` -- does this codec own the channel object?
    matches: Callable[[Any], bool]
    encode: Callable[[Any], dict[str, Any]]
    decode: Callable[[Mapping[str, Any]], Any]


_SPECS: dict[str, SchemeSpec] = {}
_BY_CLS: dict[type, SchemeSpec] = {}
_CODECS: dict[str, SchemeCodec] = {}
_CHANNEL_CODECS: dict[str, ChannelCodec] = {}


def register(spec: SchemeSpec, replace: bool = False) -> SchemeSpec:
    """Add a scheme to the registry; returns the spec for chaining.

    The spec's codec kind is registered alongside it, so a scheme can
    never ship unserializable.  Re-registering a name (or codec kind)
    raises unless ``replace=True``.
    """
    if not replace and spec.name in _SPECS:
        raise ValueError(f"scheme {spec.name!r} is already registered")
    if not replace and spec.codec.kind in _CODECS:
        raise ValueError(
            f"codec kind {spec.codec.kind!r} is already registered"
        )
    if spec.dmap_inner and spec.plane is None:
        raise ValueError(
            f"scheme {spec.name!r} declares dmap_inner without a plane kernel"
        )
    if spec.plane is not None and "numpy" not in spec.backends:
        raise ValueError(
            f"scheme {spec.name!r} declares a plane kernel without the "
            "'numpy' reference backend in its backends tuple"
        )
    _SPECS[spec.name] = spec
    _BY_CLS[spec.cls] = spec
    _CODECS[spec.codec.kind] = spec.codec
    return spec


def get_spec(name: str) -> SchemeSpec:
    """The spec registered under ``name``; lists the registry on a miss."""
    spec = _SPECS.get(name)
    if spec is None:
        known = ", ".join(sorted(_SPECS)) or "<none>"
        raise UnknownSchemeError(
            f"unknown scheme {name!r}; registered schemes: {known}"
        )
    return spec


def spec_for(generator: Any) -> SchemeSpec | None:
    """The spec owning a generator instance (or type), else ``None``.

    Exact-type lookup first; subclasses of a registered class resolve to
    the most derived registered ancestor.
    """
    cls = generator if isinstance(generator, type) else type(generator)
    spec = _BY_CLS.get(cls)
    if spec is not None:
        return spec
    best: SchemeSpec | None = None
    for registered_cls, candidate in _BY_CLS.items():
        if issubclass(cls, registered_cls):
            if best is None or issubclass(registered_cls, best.cls):
                best = candidate
    return best


def registered_schemes() -> tuple[str, ...]:
    """Registered scheme names, in registration order."""
    return tuple(_SPECS)


def all_specs() -> tuple[SchemeSpec, ...]:
    """Every registered spec, in registration order."""
    return tuple(_SPECS.values())


def registered_kinds() -> tuple[str, ...]:
    """Registered generator codec kinds, in registration order."""
    return tuple(_CODECS)


def encode_generator(generator: Any) -> dict[str, Any]:
    """Serialize a generator through its registered codec."""
    spec = spec_for(generator)
    if spec is None:
        raise UnsupportedSchemeError(
            f"cannot serialize generator {type(generator).__name__}: "
            f"no registered scheme owns it (registered: "
            f"{', '.join(registered_schemes()) or '<none>'})"
        )
    return spec.codec.encode(generator)


def decode_generator(data: Mapping[str, Any]) -> Any:
    """Rebuild a generator from its wire dict via the codec table."""
    kind = data.get("kind")
    codec = _CODECS.get(kind) if isinstance(kind, str) else None
    if codec is None:
        known = ", ".join(sorted(_CODECS)) or "<none>"
        raise SerializationError(
            f"unknown generator kind {kind!r}; registered kinds: {known}"
        )
    return codec.decode(data)


def register_channel_codec(
    codec: ChannelCodec, replace: bool = False
) -> ChannelCodec:
    """Add an update-channel codec (generator/DMAP/product wrappers)."""
    if not replace and codec.kind in _CHANNEL_CODECS:
        raise ValueError(f"channel kind {codec.kind!r} is already registered")
    _CHANNEL_CODECS[codec.kind] = codec
    return codec


def encode_channel(channel: Any) -> dict[str, Any]:
    """Serialize a channel through the first codec that claims it."""
    for codec in _CHANNEL_CODECS.values():
        if codec.matches(channel):
            return codec.encode(channel)
    raise UnsupportedSchemeError(
        f"cannot serialize channel {type(channel).__name__}: no registered "
        f"channel codec claims it (registered: "
        f"{', '.join(registered_channel_kinds()) or '<none>'})"
    )


def decode_channel(data: Mapping[str, Any]) -> Any:
    """Rebuild a channel from its wire dict via the codec table."""
    kind = data.get("kind")
    codec = _CHANNEL_CODECS.get(kind) if isinstance(kind, str) else None
    if codec is None:
        known = ", ".join(sorted(_CHANNEL_CODECS)) or "<none>"
        raise SerializationError(
            f"unknown channel kind {kind!r}; registered kinds: {known}"
        )
    return codec.decode(data)


def channel_kind(channel: Any) -> str | None:
    """The registered kind claiming ``channel``, or ``None``.

    The structural-dispatch primitive for consumers that branch on what a
    channel *is* (generator / dmap / product / product_dmap): one lookup
    against the registered codecs' ``matches`` predicates replaces
    hand-wired ``isinstance`` ladders, so a newly registered channel kind
    is seen by every consumer at once.
    """
    for codec in _CHANNEL_CODECS.values():
        if codec.matches(channel):
            return codec.kind
    return None


def registered_channel_kinds() -> tuple[str, ...]:
    """Registered channel codec kinds, in registration order."""
    return tuple(_CHANNEL_CODECS)
