"""Instrumented range-sum dispatch over the capability registry.

The registry describes *whether* a scheme can range-sum fast; this
module is the one choke point that *routes* a range-sum request and
records which path it took.  Callers that hold a bare generator use::

    from repro.schemes import range_sum, range_sums

    total = range_sum(generator, alpha, beta)

and the dispatcher resolves the generator's spec, takes the scheme's
fast kernel when one is declared, and otherwise falls back to the
O(beta - alpha) brute-force enumeration -- bumping, per call:

* ``schemes.dispatch.range_sum_total`` / ``range_sums_total``,
* ``schemes.dispatch.fast_total`` vs ``schemes.dispatch.naive_total``
  (the fast-vs-naive split the paper's Table 2 argues about), and
* ``schemes.dispatch.<scheme>.range_sum_total`` per scheme name,

so a live run can show, e.g., that RM7 queries are silently eating
brute-force cost while EH3's take the Theorem-2 path.
"""

from __future__ import annotations

from typing import Any

import numpy as np

from repro import obs
from repro.schemes.registry import spec_for

__all__ = ["range_sum", "range_sums", "dispatch_scheme_name"]


def dispatch_scheme_name(generator: Any) -> str:
    """The registry name charged for a generator's dispatch metrics."""
    spec = spec_for(generator)
    if spec is not None:
        return spec.name
    return type(generator).__name__.lower()


def _count(operation: str, generator: Any, fast: bool) -> None:
    obs.counter(f"schemes.dispatch.{operation}_total").inc()
    obs.counter(
        "schemes.dispatch.fast_total" if fast
        else "schemes.dispatch.naive_total"
    ).inc()
    obs.counter(
        f"schemes.dispatch.{dispatch_scheme_name(generator)}.{operation}_total"
    ).inc()


def range_sum(generator: Any, alpha: int, beta: int) -> int:
    """``sum_{alpha <= i <= beta} xi_i`` via the scheme's best path.

    Dispatches to the generator's registered fast ``range_sum``
    capability when declared; otherwise falls back to the brute-force
    enumeration (recorded as a naive-path call).
    """
    spec = spec_for(generator)
    if spec is not None and spec.range_sum is not None:
        _count("range_sum", generator, fast=True)
        return spec.range_sum(generator, alpha, beta)
    _count("range_sum", generator, fast=False)
    from repro.rangesum.base import brute_force_range_sum

    return brute_force_range_sum(generator, alpha, beta)


def range_sums(generator: Any, alphas: Any, betas: Any) -> np.ndarray:
    """Batched range sums via the scheme's best path.

    Takes the registered batched ``range_sums`` kernel when declared;
    otherwise maps the scalar dispatch over the batch (one naive-path
    call charged for the whole batch, not per element).
    """
    spec = spec_for(generator)
    if spec is not None and spec.range_sums is not None:
        _count("range_sums", generator, fast=True)
        return np.asarray(spec.range_sums(generator, alphas, betas))
    _count("range_sums", generator, fast=False)
    from repro.rangesum.base import brute_force_range_sum

    alphas = np.asarray(alphas, dtype=np.uint64).ravel()
    betas = np.asarray(betas, dtype=np.uint64).ravel()
    if alphas.shape != betas.shape:
        raise ValueError("alphas and betas must match element-wise")
    return np.array(
        [
            brute_force_range_sum(generator, int(a), int(b))
            for a, b in zip(alphas, betas)
        ],
        dtype=np.int64,
    )
