"""The ingestion front door: strict validation, policies, quarantine.

Sketches are the *only* state the stream processor keeps, and sketch
updates are irreversible -- one malformed record (an out-of-domain item, a
NaN weight) silently poisons every future answer.  This module screens
every record *before* it can reach the plane kernels, under one of three
policies:

``raise``
    reject the record with a typed :class:`~repro.stream.errors.InvalidUpdateError`
    (the default; bad input is a caller bug);
``quarantine``
    divert the record to a bounded :class:`DeadLetterBuffer` with
    per-reason counters and keep serving;
``clamp``
    repair what is repairable (swap inverted interval endpoints, clip
    endpoints/items into the domain) and quarantine the rest
    (non-integral items and non-finite weights have no sensible repair).

Batch screening is vectorized: a clean batch -- the overwhelmingly common
case -- costs one min/max pass; only dirty batches pay a per-element
walk to attribute reasons.
"""

from __future__ import annotations

from collections import Counter, deque
from dataclasses import dataclass, field
from typing import Any, Iterator

import numpy as np

from repro import obs
from repro.stream.errors import InvalidUpdateError

__all__ = [
    "POLICIES",
    "QuarantinedRecord",
    "Incident",
    "IncidentLog",
    "DeadLetterBuffer",
    "screen_point",
    "screen_interval",
    "screen_points",
    "screen_intervals",
]

POLICIES = ("raise", "quarantine", "clamp")


@dataclass(frozen=True)
class QuarantinedRecord:
    """One rejected stream record, preserved for offline inspection."""

    relation: str
    kind: str  # "point" | "interval" | "batch"
    payload: Any
    code: str
    reason: str


@dataclass(frozen=True)
class Incident:
    """One recorded degradation event (fast path failed, kept serving)."""

    operation: str
    relation: str
    error: str
    batch_size: int
    recovered: bool


class IncidentLog:
    """Bounded ring of the most recent incidents, with exact totals.

    An unbounded incident list grows without limit on a long-lived
    stream whose plane keeps failing; this ring keeps the newest
    ``capacity`` incidents for inspection while ``total`` and
    ``dropped`` stay exact over the whole history.  Every drop also
    bumps the ``stream.incidents.dropped_total`` counter so overflow is
    visible in metrics, not just on the object.
    """

    def __init__(self, capacity: int = 256) -> None:
        if capacity < 1:
            raise ValueError("incident capacity must be positive")
        self.capacity = capacity
        self._records: deque[Incident] = deque(maxlen=capacity)
        self.total = 0
        self.dropped = 0

    def append(self, incident: Incident) -> None:
        """Record one incident, evicting the oldest when full."""
        if len(self._records) == self.capacity:
            self.dropped += 1
            obs.counter("stream.incidents.dropped_total").inc()
        self._records.append(incident)
        self.total += 1

    def __len__(self) -> int:
        return len(self._records)

    def __iter__(self) -> Iterator[Incident]:
        return iter(self._records)

    def __getitem__(self, index: int) -> Incident:
        return self._records[index]

    def clear(self) -> None:
        """Drop buffered incidents (totals are kept: they are history)."""
        self._records.clear()


@dataclass
class DeadLetterBuffer:
    """Bounded buffer of quarantined records with per-reason counters.

    The buffer keeps the most recent ``capacity`` records (older ones are
    dropped) but the counters are exact over the whole stream history.
    Every eviction is counted -- on the object (``dropped``) and on the
    ``stream.quarantine.dropped_total`` metric -- so a buffer that has
    silently rolled over is distinguishable from one that never filled.
    """

    capacity: int = 1024
    _records: deque = field(init=False, repr=False)
    counts: Counter = field(init=False)
    total: int = field(init=False, default=0)
    dropped: int = field(init=False, default=0)

    def __post_init__(self) -> None:
        if self.capacity < 1:
            raise ValueError("quarantine capacity must be positive")
        self._records = deque(maxlen=self.capacity)
        self.counts = Counter()

    def add(self, record: QuarantinedRecord) -> None:
        """Quarantine one record and bump its reason counter.

        At capacity the oldest record is evicted to make room; the
        eviction bumps ``dropped`` and ``stream.quarantine.dropped_total``.
        """
        if len(self._records) == self.capacity:
            self.dropped += 1
            obs.counter("stream.quarantine.dropped_total").inc()
        self._records.append(record)
        self.counts[record.code] += 1
        self.total += 1

    def __len__(self) -> int:
        return len(self._records)

    def __iter__(self) -> Iterator[QuarantinedRecord]:
        return iter(self._records)

    def clear(self) -> None:
        """Drop buffered records (counters are kept: they are history)."""
        self._records.clear()


def _domain_limit(domain_bits: int) -> int:
    return 1 << domain_bits


def _is_integral(value: Any) -> bool:
    if isinstance(value, (bool, np.bool_)):
        return False
    if isinstance(value, (int, np.integer)):
        return True
    if isinstance(value, (float, np.floating)):
        return bool(np.isfinite(value)) and float(value).is_integer()
    return False


def _check_point(item: Any, weight: Any, domain_bits: int) -> str | None:
    """The reason code a point record is invalid, or ``None`` if clean."""
    if not _is_integral(item):
        return "non-integral-item"
    if int(item) < 0:
        return "negative-item"
    if int(item) >= _domain_limit(domain_bits):
        return "item-out-of-domain"
    try:
        finite = np.isfinite(float(weight))
    except (TypeError, ValueError):
        return "non-numeric-weight"
    if not finite:
        return "non-finite-weight"
    return None


def _check_interval(
    low: Any, high: Any, weight: Any, domain_bits: int
) -> str | None:
    """The reason code an interval record is invalid, or ``None``."""
    if not _is_integral(low) or not _is_integral(high):
        return "non-integral-bound"
    low, high = int(low), int(high)
    if low > high:
        return "inverted-interval"
    limit = _domain_limit(domain_bits)
    if high < 0 or low >= limit:
        return "interval-out-of-domain"
    if low < 0 or high >= limit:
        return "interval-out-of-domain"
    try:
        finite = np.isfinite(float(weight))
    except (TypeError, ValueError):
        return "non-numeric-weight"
    if not finite:
        return "non-finite-weight"
    return None


_UNREPAIRABLE = frozenset(
    {"non-integral-item", "non-integral-bound", "non-numeric-weight",
     "non-finite-weight"}
)


def screen_point(
    item: Any, weight: Any, domain_bits: int, policy: str
) -> tuple[int, float] | QuarantinedRecord:
    """Screen one point record under ``policy``.

    Returns the (possibly clamped) ``(item, weight)`` to apply, or the
    :class:`QuarantinedRecord` that absorbed it.  Raises
    :class:`InvalidUpdateError` under the ``raise`` policy.
    """
    code = _check_point(item, weight, domain_bits)
    if code is None:
        return int(item), float(weight)
    reason = (
        f"point item={item!r} weight={weight!r} rejected ({code}) on "
        f"domain 2^{domain_bits}"
    )
    if policy == "raise":
        raise InvalidUpdateError(reason, code)
    if policy == "clamp" and code not in _UNREPAIRABLE:
        clamped = min(max(int(item), 0), _domain_limit(domain_bits) - 1)
        obs.counter("stream.validation.clamped_total").inc()
        return clamped, float(weight)
    return QuarantinedRecord("", "point", (item, weight), code, reason)


def screen_interval(
    low: Any, high: Any, weight: Any, domain_bits: int, policy: str
) -> tuple[int, int, float] | QuarantinedRecord:
    """Screen one interval record under ``policy``.

    Clamp repairs inverted endpoints by swapping and clips partially
    out-of-domain intervals; an interval entirely outside the domain is
    quarantined (clipping it would invent points that were never there).
    """
    code = _check_interval(low, high, weight, domain_bits)
    if code is None:
        return int(low), int(high), float(weight)
    reason = (
        f"interval [{low!r}, {high!r}] weight={weight!r} rejected "
        f"({code}) on domain 2^{domain_bits}"
    )
    if policy == "raise":
        raise InvalidUpdateError(reason, code)
    if policy == "clamp" and code not in _UNREPAIRABLE:
        a, b = int(low), int(high)
        if a > b:
            a, b = b, a
        limit = _domain_limit(domain_bits)
        if b < 0 or a >= limit:
            return QuarantinedRecord(
                "", "interval", (low, high, weight), "interval-out-of-domain",
                reason,
            )
        obs.counter("stream.validation.clamped_total").inc()
        return max(a, 0), min(b, limit - 1), float(weight)
    return QuarantinedRecord("", "interval", (low, high, weight), code, reason)


@dataclass
class ScreenedBatch:
    """A screened batch: what to apply plus what was quarantined."""

    items: np.ndarray
    weights: np.ndarray | None
    rejected: list[QuarantinedRecord]


def _as_weights(weights: Any, size: int) -> np.ndarray | None:
    if weights is None:
        return None
    weights = np.asarray(weights, dtype=np.float64).ravel()
    if weights.size != size:
        raise InvalidUpdateError(
            f"{weights.size} weights for {size} batch elements",
            "weight-shape-mismatch",
        )
    return weights


def screen_points(
    items: Any, weights: Any, domain_bits: int, policy: str
) -> ScreenedBatch:
    """Screen a point batch; vectorized fast path for clean batches."""
    raw = np.asarray(items)
    if raw.ndim != 1:
        raise InvalidUpdateError(
            f"point batch must be 1-D, got shape {raw.shape}", "bad-shape"
        )
    weight_arr = _as_weights(weights, raw.size)
    if raw.size == 0:
        return ScreenedBatch(raw.astype(np.uint64), weight_arr, [])
    limit = _domain_limit(domain_bits)
    clean = False
    if raw.dtype.kind in "iu":
        low = int(raw.min())
        high = int(raw.max())
        clean = low >= 0 and high < limit
        if clean and weight_arr is not None:
            clean = bool(np.isfinite(weight_arr).all())
    if clean:
        return ScreenedBatch(raw.astype(np.uint64), weight_arr, [])
    # Dirty (or non-integer dtype) batch: walk elements, attribute reasons.
    kept_items: list[int] = []
    kept_weights: list[float] = []
    rejected: list[QuarantinedRecord] = []
    for position in range(raw.size):
        item = raw[position]
        weight = 1.0 if weight_arr is None else weight_arr[position]
        outcome = screen_point(item, weight, domain_bits, policy)
        if isinstance(outcome, QuarantinedRecord):
            rejected.append(outcome)
        else:
            kept_items.append(outcome[0])
            kept_weights.append(outcome[1])
    kept = np.asarray(kept_items, dtype=np.uint64)
    out_weights = (
        None if weight_arr is None else np.asarray(kept_weights, dtype=np.float64)
    )
    return ScreenedBatch(kept, out_weights, rejected)


def screen_intervals(
    intervals: Any, weights: Any, domain_bits: int, policy: str
) -> ScreenedBatch:
    """Screen an interval batch; vectorized fast path for clean batches."""
    raw = np.asarray(intervals)
    if raw.size == 0:
        raw = raw.reshape(0, 2)
    if raw.ndim != 2 or raw.shape[1] != 2:
        raise InvalidUpdateError(
            f"interval batch must have shape (n, 2), got {raw.shape}",
            "bad-shape",
        )
    weight_arr = _as_weights(weights, raw.shape[0])
    if raw.shape[0] == 0:
        return ScreenedBatch(raw.astype(np.uint64), weight_arr, [])
    limit = _domain_limit(domain_bits)
    clean = False
    if raw.dtype.kind in "iu":
        lows, highs = raw[:, 0], raw[:, 1]
        clean = (
            bool((lows <= highs).all())
            and int(lows.min()) >= 0
            and int(highs.max()) < limit
        )
        if clean and weight_arr is not None:
            clean = bool(np.isfinite(weight_arr).all())
    if clean:
        return ScreenedBatch(raw.astype(np.uint64), weight_arr, [])
    kept: list[tuple[int, int]] = []
    kept_weights: list[float] = []
    rejected: list[QuarantinedRecord] = []
    for position in range(raw.shape[0]):
        low, high = raw[position]
        weight = 1.0 if weight_arr is None else weight_arr[position]
        outcome = screen_interval(low, high, weight, domain_bits, policy)
        if isinstance(outcome, QuarantinedRecord):
            rejected.append(outcome)
        else:
            kept.append((outcome[0], outcome[1]))
            kept_weights.append(outcome[2])
    kept_arr = np.asarray(kept, dtype=np.uint64).reshape(-1, 2)
    out_weights = (
        None if weight_arr is None else np.asarray(kept_weights, dtype=np.float64)
    )
    return ScreenedBatch(kept_arr, out_weights, rejected)
