"""Stream abstractions and exact reference aggregates."""

from repro.stream.exact import (
    join_size,
    l1_difference,
    region_frequency_sum,
    segments_intersecting,
    self_join_size,
)
from repro.stream.processor import QueryHandle, StreamProcessor
from repro.stream.streams import (
    IntervalStream,
    IntervalUpdate,
    PointStream,
    PointUpdate,
    frequency_vector,
    stream_from_frequencies,
)

__all__ = [
    "join_size",
    "l1_difference",
    "region_frequency_sum",
    "segments_intersecting",
    "self_join_size",
    "QueryHandle",
    "StreamProcessor",
    "IntervalStream",
    "IntervalUpdate",
    "PointStream",
    "PointUpdate",
    "frequency_vector",
    "stream_from_frequencies",
]
