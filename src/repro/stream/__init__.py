"""Stream abstractions, exact reference aggregates, and durable ingestion."""

from repro.stream.durability import DurabilityConfig, WriteAheadLog
from repro.stream.errors import (
    DurabilityError,
    InjectedFault,
    InvalidUpdateError,
    RecoveryError,
    SchemeMismatchError,
    SnapshotCorruptionError,
    StreamError,
    UnknownRelationError,
    WALCorruptionError,
)
from repro.stream.exact import (
    join_size,
    l1_difference,
    region_frequency_sum,
    segments_intersecting,
    self_join_size,
)
from repro.stream.processor import QueryHandle, StreamProcessor
from repro.stream.streams import (
    IntervalStream,
    IntervalUpdate,
    PointStream,
    PointUpdate,
    frequency_vector,
    stream_from_frequencies,
)
from repro.stream.validation import (
    POLICIES,
    DeadLetterBuffer,
    Incident,
    QuarantinedRecord,
)

__all__ = [
    "join_size",
    "l1_difference",
    "region_frequency_sum",
    "segments_intersecting",
    "self_join_size",
    "QueryHandle",
    "StreamProcessor",
    "IntervalStream",
    "IntervalUpdate",
    "PointStream",
    "PointUpdate",
    "frequency_vector",
    "stream_from_frequencies",
    "DurabilityConfig",
    "WriteAheadLog",
    "StreamError",
    "InvalidUpdateError",
    "UnknownRelationError",
    "SchemeMismatchError",
    "DurabilityError",
    "WALCorruptionError",
    "SnapshotCorruptionError",
    "RecoveryError",
    "InjectedFault",
    "POLICIES",
    "DeadLetterBuffer",
    "Incident",
    "QuarantinedRecord",
]
