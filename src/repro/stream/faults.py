"""Deterministic fault injection for the durability layer.

Recovery code is only as good as the failures it has survived.  This
module injects the failure modes that matter for sketch durability --
**torn WAL tails** (crash mid-append), **flipped bytes** in sealed
segments, **partial snapshots** (crash mid-checkpoint), and **mid-batch
plane-kernel exceptions** -- and runs a scenario suite that proves the
recovery invariants: post-recovery counters bit-identical to an
uninterrupted run, corruption detected loudly, degradation silent and
exact.

Everything is deterministic: scenarios derive all randomness from an
explicit seed, so a failing scenario replays exactly under
``PYTHONHASHSEED``-pinned CI.  The suite is callable three ways: from
pytest (``tests/test_faults.py``), from the CLI (``repro-experiments
faults``), and directly via :func:`run_fault_suite`.
"""

from __future__ import annotations

import contextlib
import os
import shutil
import tempfile
from dataclasses import dataclass
from typing import Callable, Iterator

import numpy as np

from repro.sketch.plane import counter_plane
from repro.stream.durability import DurabilityConfig
from repro.stream.errors import InjectedFault, WALCorruptionError
from repro.stream.processor import StreamProcessor

__all__ = [
    "truncate_tail",
    "corrupt_byte",
    "wal_segments",
    "write_partial_snapshot",
    "breaking_plane",
    "ScenarioResult",
    "run_fault_suite",
]


# -- low-level injectors -------------------------------------------------


def wal_segments(directory: str) -> list[str]:
    """WAL segment paths in a durability directory, oldest first."""
    names = sorted(
        name
        for name in os.listdir(directory)
        if name.startswith("wal-") and name.endswith(".seg")
    )
    return [os.path.join(directory, name) for name in names]


def truncate_tail(path: str, drop_bytes: int) -> None:
    """Chop ``drop_bytes`` off the end of a file -- a torn final record."""
    size = os.path.getsize(path)
    with open(path, "r+b") as handle:
        handle.truncate(max(0, size - drop_bytes))


def corrupt_byte(path: str, offset: int, xor: int = 0xFF) -> None:
    """Flip bits of one byte in place -- sealed-segment bit rot."""
    with open(path, "r+b") as handle:
        handle.seek(offset)
        original = handle.read(1)
        if not original:
            raise ValueError(f"offset {offset} past end of {path}")
        handle.seek(offset)
        handle.write(bytes([original[0] ^ xor]))


def write_partial_snapshot(directory: str, seq: int) -> str:
    """Plant a truncated snapshot *newer* than every real one.

    Models a crash mid-checkpoint on filesystems without atomic rename
    semantics; recovery must skip it and fall back.
    """
    path = os.path.join(directory, f"snap-{seq:016x}.json")
    with open(path, "w") as handle:
        handle.write('{"crc": 12345, "envelope": {"version": 1, "se')
    return path


@contextlib.contextmanager
def breaking_plane(
    processor: StreamProcessor,
    relation: str,
    fail_after: int = 0,
    method: str = "point_totals",
) -> Iterator[None]:
    """Make a relation's plane kernel raise :class:`InjectedFault`.

    The first ``fail_after`` calls succeed, then every call raises --
    modelling a kernel that dies mid-stream.  Restores the plane on exit.
    """
    plane = counter_plane(processor.scheme_of(relation))
    if plane is None:
        raise ValueError(f"relation {relation!r} has no packed plane to break")
    original = getattr(plane, method)
    calls = {"n": 0}

    def broken(*args, **kwargs):
        calls["n"] += 1
        if calls["n"] > fail_after:
            raise InjectedFault(
                f"injected {method} failure on call {calls['n']}"
            )
        return original(*args, **kwargs)

    setattr(plane, method, broken)
    try:
        yield
    finally:
        setattr(plane, method, original)


# -- the scenario suite --------------------------------------------------


@dataclass(frozen=True)
class ScenarioResult:
    """Outcome of one fault scenario."""

    name: str
    passed: bool
    detail: str


def _workload(seed: int, domain_bits: int = 12, points: int = 400,
              intervals: int = 60):
    """A deterministic mixed stream: single points/intervals + batches."""
    rng = np.random.default_rng(seed)
    limit = 1 << domain_bits
    ops: list[tuple] = []
    for item in rng.integers(0, limit, size=points):
        ops.append(("point", int(item), 1.0))
    for _ in range(intervals):
        a, b = sorted(rng.integers(0, limit, size=2))
        ops.append(("interval", int(a), int(b), 1.0))
    for _ in range(4):
        batch = rng.integers(0, limit, size=50)
        ops.append(("points", [int(i) for i in batch]))
    for _ in range(4):
        lows = rng.integers(0, limit // 2, size=20)
        spans = rng.integers(0, limit // 2, size=20)
        ops.append(
            ("intervals", [[int(a), int(a + s)] for a, s in zip(lows, spans)])
        )
    rng.shuffle(ops)  # interleave kinds deterministically
    return ops


def _feed(processor: StreamProcessor, ops, start: int = 0, stop=None) -> None:
    for op in ops[start:stop]:
        if op[0] == "point":
            processor.process_point("r", op[1], op[2])
        elif op[0] == "interval":
            processor.process_interval("r", op[1], op[2], op[3])
        elif op[0] == "points":
            processor.process_points("r", op[1])
        elif op[0] == "intervals":
            processor.process_intervals("r", op[1])


def _reference_counters(seed: int, ops, domain_bits: int = 12) -> np.ndarray:
    """Counters of an uninterrupted, non-durable run of the workload."""
    processor = StreamProcessor(medians=3, averages=16, seed=seed)
    processor.register_relation("r", domain_bits)
    _feed(processor, ops)
    return processor.sketch_of("r").values()


def _durable(directory: str, seed: int, **config) -> StreamProcessor:
    processor = StreamProcessor(
        medians=3,
        averages=16,
        seed=seed,
        durability=DurabilityConfig(directory=directory, **config),
    )
    processor.register_relation("r", 12)
    return processor


def _check(name: str, condition: bool, detail: str) -> ScenarioResult:
    return ScenarioResult(name, bool(condition), detail)


def _scenario_kill_and_recover(base: str, seed: int) -> ScenarioResult:
    """Kill ingestion at an arbitrary record; recover; finish the stream."""
    ops = _workload(seed)
    reference = _reference_counters(seed, ops)
    cut = len(ops) // 3
    directory = os.path.join(base, "kill")
    processor = _durable(directory, seed, checkpoint_every=57)
    _feed(processor, ops, 0, cut)
    # Simulated kill: no close(), no checkpoint -- the object just dies.
    del processor
    recovered = StreamProcessor.recover(directory)
    _feed(recovered, ops, cut)
    identical = np.array_equal(recovered.sketch_of("r").values(), reference)
    return _check(
        "kill-and-recover",
        identical,
        "post-recovery counters bit-identical to uninterrupted run"
        if identical
        else "counter mismatch after recovery",
    )


def _scenario_torn_tail(base: str, seed: int) -> ScenarioResult:
    """Tear the final WAL record; the intact prefix must replay exactly."""
    ops = _workload(seed)
    cut = len(ops) // 2
    directory = os.path.join(base, "torn")
    processor = _durable(directory, seed)
    _feed(processor, ops, 0, cut - 1)
    processor.close()
    before_tear = processor.sketch_of("r").values()
    # The (cut-1)-th op lands, then its record's tail is ripped off.
    processor2 = StreamProcessor.recover(directory)
    _feed(processor2, ops, cut - 1, cut)
    processor2.close()
    segments = wal_segments(directory)
    truncate_tail(segments[-1], drop_bytes=7)
    recovered = StreamProcessor.recover(directory)
    prefix_ok = np.array_equal(recovered.sketch_of("r").values(), before_tear)
    # The driver re-sends everything past the last durable record.
    _feed(recovered, ops, cut - 1)
    reference = _reference_counters(seed, ops)
    final_ok = np.array_equal(recovered.sketch_of("r").values(), reference)
    return _check(
        "torn-wal-tail",
        prefix_ok and final_ok,
        "torn record dropped; prefix and resumed stream bit-identical"
        if prefix_ok and final_ok
        else f"prefix_ok={prefix_ok} final_ok={final_ok}",
    )


def _scenario_partial_snapshot(base: str, seed: int) -> ScenarioResult:
    """A truncated newest snapshot must fall back to the previous one."""
    ops = _workload(seed)
    cut = 2 * len(ops) // 3
    directory = os.path.join(base, "snap")
    processor = _durable(directory, seed)
    _feed(processor, ops, 0, cut)
    processor.checkpoint()
    _feed(processor, ops, cut, cut + 5)
    processor.close()
    applied = processor.stats()["applied_seq"]
    write_partial_snapshot(directory, applied + 1000)
    recovered = StreamProcessor.recover(directory)
    _feed(recovered, ops, cut + 5)
    reference = _reference_counters(seed, ops)
    identical = np.array_equal(recovered.sketch_of("r").values(), reference)
    return _check(
        "partial-snapshot-fallback",
        identical,
        "fell back past the torn snapshot and replayed the longer tail"
        if identical
        else "counter mismatch after snapshot fallback",
    )


def _scenario_sealed_corruption(base: str, seed: int) -> ScenarioResult:
    """A flipped byte in a sealed (non-final) segment must raise."""
    ops = _workload(seed)
    directory = os.path.join(base, "rot")
    # Tiny segments force several sealed segments.
    processor = _durable(directory, seed, segment_max_bytes=2048)
    _feed(processor, ops)
    processor.close()
    segments = wal_segments(directory)
    if len(segments) < 2:
        return _check("sealed-corruption-detected", False,
                      "workload produced a single segment; cannot test")
    corrupt_byte(segments[0], offset=os.path.getsize(segments[0]) // 2)
    try:
        StreamProcessor.recover(directory)
    except WALCorruptionError:
        return _check("sealed-corruption-detected", True,
                      "WALCorruptionError raised for mid-log bit rot")
    return _check("sealed-corruption-detected", False,
                  "corrupted sealed segment replayed silently")


def _scenario_plane_degradation(base: str, seed: int) -> ScenarioResult:
    """Mid-batch plane failures must degrade to scalar, bit-identically."""
    ops = _workload(seed)
    reference = _reference_counters(seed, ops)
    processor = StreamProcessor(
        medians=3, averages=16, seed=seed, policy="quarantine"
    )
    processor.register_relation("r", 12)
    cut = len(ops) // 2
    _feed(processor, ops, 0, cut)
    with breaking_plane(processor, "r", fail_after=0):
        with breaking_plane(processor, "r", fail_after=0,
                            method="interval_totals"):
            _feed(processor, ops, cut)
    identical = np.array_equal(processor.sketch_of("r").values(), reference)
    degraded = len(processor.incidents) > 0
    recovered_all = all(incident.recovered for incident in processor.incidents)
    return _check(
        "plane-degradation",
        identical and degraded and recovered_all,
        f"{len(processor.incidents)} incidents recorded, counters "
        "bit-identical to the healthy run"
        if identical and degraded
        else f"identical={identical} incidents={len(processor.incidents)}",
    )


def _scenario_quarantine_isolation(base: str, seed: int) -> ScenarioResult:
    """Malformed records must be quarantined without touching counters."""
    ops = _workload(seed)
    processor = StreamProcessor(
        medians=3, averages=16, seed=seed, policy="quarantine"
    )
    processor.register_relation("r", 12)
    _feed(processor, ops)
    # A barrage of garbage: 9 bad records, none of which may move a
    # counter; the clean members of the dirty batches must still land.
    processor.process_point("r", -7)
    processor.process_point("r", 1 << 40)
    processor.process_point("r", 3, weight=float("nan"))
    processor.process_interval("r", 900, 100)
    processor.process_interval("r", 0, 1 << 40)
    processor.process_points("r", [5, -1, 1 << 40, 9])
    processor.process_intervals("r", [[3, 9], [12, 2], [0, 1 << 50]])
    # Reference: the same stream with the garbage pre-stripped.
    probe = StreamProcessor(medians=3, averages=16, seed=seed)
    probe.register_relation("r", 12)
    _feed(probe, ops)
    probe.process_points("r", [5, 9])
    probe.process_intervals("r", [[3, 9]])
    identical = np.array_equal(
        processor.sketch_of("r").values(), probe.sketch_of("r").values()
    )
    counted = processor.dead_letters.total == 9
    return _check(
        "quarantine-isolation",
        identical and counted,
        f"{processor.dead_letters.total} records quarantined "
        f"({dict(processor.dead_letters.counts)}), counters bit-identical "
        "to the garbage-free stream"
        if identical and counted
        else f"identical={identical} quarantined={processor.dead_letters.total}",
    )


def run_fault_suite(
    seed: int = 20060627, base_dir: str | None = None
) -> list[ScenarioResult]:
    """Run every fault scenario; returns one result per scenario."""
    scenarios: list[Callable[[str, int], ScenarioResult]] = [
        _scenario_kill_and_recover,
        _scenario_torn_tail,
        _scenario_partial_snapshot,
        _scenario_sealed_corruption,
        _scenario_plane_degradation,
        _scenario_quarantine_isolation,
    ]
    results: list[ScenarioResult] = []
    own_temp = base_dir is None
    base = base_dir or tempfile.mkdtemp(prefix="repro-faults-")
    try:
        for scenario in scenarios:
            try:
                results.append(scenario(base, seed))
            except Exception as exc:  # noqa: BLE001 -- suite must report
                results.append(
                    ScenarioResult(
                        scenario.__name__.replace("_scenario_", "").replace(
                            "_", "-"
                        ),
                        False,
                        f"unexpected {type(exc).__name__}: {exc}",
                    )
                )
    finally:
        if own_temp:
            shutil.rmtree(base, ignore_errors=True)
    return results
