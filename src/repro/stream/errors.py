"""Typed error taxonomy of the stream-ingestion layer.

The continuous-query engine (:mod:`repro.stream.processor`) is the only
state holder for an unbounded stream, so every failure mode gets its own
exception type: callers can tell *bad input* (:class:`InvalidUpdateError`,
:class:`UnknownRelationError`, :class:`SchemeMismatchError`) from *damaged
durable state* (:class:`WALCorruptionError`, :class:`SnapshotCorruptionError`,
:class:`RecoveryError`) and react per class -- quarantine the former,
page an operator for the latter.

The input-validation errors subclass :class:`ValueError` so existing
callers that caught ``ValueError`` keep working unchanged.
"""

from __future__ import annotations

__all__ = [
    "StreamError",
    "InvalidUpdateError",
    "UnknownRelationError",
    "SchemeMismatchError",
    "DurabilityError",
    "WALCorruptionError",
    "SnapshotCorruptionError",
    "RecoveryError",
    "InjectedFault",
]


class StreamError(Exception):
    """Base class of every stream-layer error."""


class InvalidUpdateError(StreamError, ValueError):
    """A stream record failed ingestion validation.

    Carries ``code`` -- a short machine-readable reason (for example
    ``"inverted-interval"`` or ``"non-finite-weight"``) that the
    quarantine counters aggregate on.
    """

    def __init__(self, message: str, code: str = "invalid") -> None:
        super().__init__(message)
        self.code = code


class UnknownRelationError(StreamError, ValueError):
    """An update or query referenced a relation never registered."""


class SchemeMismatchError(StreamError, ValueError):
    """A remote sketch was built under different seeds than the local one.

    Combining such sketches would silently produce garbage estimates, so
    :meth:`repro.stream.processor.StreamProcessor.merge_sketch` compares
    scheme fingerprints and raises this instead.
    """


class DurabilityError(StreamError):
    """Base class of write-ahead-log / snapshot failures."""


class WALCorruptionError(DurabilityError):
    """A WAL segment failed CRC or framing checks away from the tail.

    A *torn final record* (crash mid-append) is expected and tolerated;
    corruption anywhere else is data loss and must surface loudly.
    """


class SnapshotCorruptionError(DurabilityError):
    """A snapshot file failed its CRC or envelope checks."""


class RecoveryError(DurabilityError):
    """Recovery could not reconstruct a consistent processor.

    Raised when no valid snapshot/WAL prefix exists, when the WAL has a
    gap past the snapshot's sequence number, or when the re-derived
    schemes do not match the fingerprints recorded at checkpoint time
    (wrong master seed or generator factory).
    """


class InjectedFault(RuntimeError):
    """Deliberate failure raised by the fault-injection harness."""
