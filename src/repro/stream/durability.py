"""Write-ahead log and snapshot checkpointing for sketched streams.

The stream processor's sketches are the only representation of an
unbounded stream -- losing them loses the whole history.  This module
makes that state durable with the classical WAL + checkpoint recipe:

**Write-ahead log.**  Every admitted update is framed and appended to a
segmented, append-only log *before* it touches the sketch counters.  A
record is::

    +---------------+---------------+---------------+----------------+
    | length  (u32) | crc32   (u32) | seq     (u64) | payload (JSON) |
    +---------------+---------------+---------------+----------------+

little-endian, with ``crc32`` computed over ``seq || payload``.  Sequence
numbers are assigned once, strictly increasing, and never reused -- they
are what makes replay *exactly-once*.  Segments are named by the first
sequence number they hold (``wal-<seq:016x>.seg``) and rotate at a size
threshold, so old segments can be deleted wholesale after a checkpoint.

**Snapshots.**  A checkpoint serializes the processor's state (ordered
registrations, query handles, per-relation counters via
:mod:`repro.sketch.serialize`, and the last applied sequence number) into
``snap-<seq:016x>.json``, CRC-guarded and written atomically (temp file +
``os.replace``), keeping the newest ``keep`` snapshots.

**Recovery.**  :func:`load_latest_snapshot` returns the newest snapshot
that passes its CRC (a partial or corrupted latest snapshot falls back
to the previous one); the processor then replays WAL records with
``seq > snapshot.seq``.  A *torn final record* -- the expected shape of a
crash mid-append -- is detected by framing/CRC checks and tolerated (the
tail is truncated on reopen); corruption anywhere else raises
:class:`~repro.stream.errors.WALCorruptionError` because it means data
loss that must not pass silently.
"""

from __future__ import annotations

import json
import os
import struct
import zlib
from dataclasses import dataclass
from typing import Any, Iterator

import numpy as np

from repro import obs
from repro.stream.errors import (
    DurabilityError,
    SnapshotCorruptionError,
    WALCorruptionError,
)

__all__ = [
    "DurabilityConfig",
    "WriteAheadLog",
    "encode_record",
    "decode_payload",
    "write_snapshot",
    "load_latest_snapshot",
    "list_snapshots",
    "canonical_json",
]

_HEADER = struct.Struct("<IIQ")
_SEGMENT_PREFIX = "wal-"
_SEGMENT_SUFFIX = ".seg"
_SNAPSHOT_PREFIX = "snap-"
_SNAPSHOT_SUFFIX = ".json"


def canonical_json(value: Any) -> str:
    """Deterministic JSON: sorted keys, no whitespace, numpy coerced."""

    def coerce(obj: Any):
        if isinstance(obj, np.integer):
            return int(obj)
        if isinstance(obj, np.floating):
            return float(obj)
        if isinstance(obj, np.ndarray):
            return obj.tolist()
        raise TypeError(f"not JSON-serializable: {type(obj).__name__}")

    return json.dumps(
        value, sort_keys=True, separators=(",", ":"), default=coerce
    )


def encode_record(seq: int, payload: bytes) -> bytes:
    """Frame one WAL record: length + crc32(seq || payload) + seq + payload."""
    crc = zlib.crc32(seq.to_bytes(8, "little") + payload) & 0xFFFFFFFF
    return _HEADER.pack(len(payload), crc, seq) + payload


def decode_payload(op: dict[str, Any]) -> bytes:
    """Serialize one operation dict into WAL payload bytes."""
    return canonical_json(op).encode("utf-8")


@dataclass(frozen=True)
class DurabilityConfig:
    """Tuning knobs of the durability layer.

    ``sync`` selects the write barrier per append: ``"none"`` leaves
    records in the Python/OS buffers (flushed at rotation, checkpoint and
    close -- fastest, loses the buffered tail on a crash, which recovery
    treats as a torn tail), ``"flush"`` (default) pushes each append into
    the OS (survives process crashes), ``"fsync"`` forces it to disk
    (survives power loss, slowest).  ``checkpoint_every`` auto-checkpoints
    after that many applied records (0 disables auto-checkpoints).
    """

    directory: str
    segment_max_bytes: int = 4 * 1024 * 1024
    sync: str = "flush"
    checkpoint_every: int = 0
    snapshots_keep: int = 2

    def __post_init__(self) -> None:
        if self.sync not in ("none", "flush", "fsync"):
            raise ValueError(f"unknown sync mode {self.sync!r}")
        if self.segment_max_bytes < 64:
            raise ValueError("segment_max_bytes is unreasonably small")
        if self.snapshots_keep < 1:
            raise ValueError("snapshots_keep must be at least 1")
        if self.checkpoint_every < 0:
            raise ValueError("checkpoint_every must be non-negative")


def _segment_base(path: str) -> int:
    name = os.path.basename(path)
    return int(name[len(_SEGMENT_PREFIX):-len(_SEGMENT_SUFFIX)], 16)


def _scan_segment(path: str, final: bool) -> tuple[list[tuple[int, bytes]], int]:
    """Parse one segment's records.

    Returns ``(records, valid_bytes)``.  In the *final* segment a torn or
    corrupted tail ends the scan at the last valid record; in any other
    segment every byte must parse, else :class:`WALCorruptionError`.
    """
    with open(path, "rb") as handle:
        data = handle.read()
    records: list[tuple[int, bytes]] = []
    offset = 0
    while offset < len(data):
        if offset + _HEADER.size > len(data):
            break  # torn header
        length, crc, seq = _HEADER.unpack_from(data, offset)
        start = offset + _HEADER.size
        end = start + length
        if end > len(data):
            break  # torn payload
        payload = data[start:end]
        expected = zlib.crc32(seq.to_bytes(8, "little") + payload) & 0xFFFFFFFF
        if crc != expected:
            obs.counter("durability.wal.crc_failures_total").inc()
            break  # corrupted record: treated as log end below
        records.append((seq, payload))
        offset = end
    if offset != len(data) and not final:
        raise WALCorruptionError(
            f"segment {os.path.basename(path)} is corrupted at byte "
            f"{offset} (not the final segment: this is data loss)"
        )
    return records, offset


class WriteAheadLog:
    """Append-only segmented log with CRC framing and sequence numbers."""

    def __init__(self, directory: str, config: DurabilityConfig) -> None:
        self.directory = directory
        self.config = config
        os.makedirs(directory, exist_ok=True)
        self._handle = None
        self._segment_path: str | None = None
        self._segment_bytes = 0
        self.next_seq = 1
        self._open_tail()

    # -- segment bookkeeping --------------------------------------------

    def segments(self) -> list[str]:
        """Segment paths, ordered by first sequence number."""
        names = [
            name
            for name in os.listdir(self.directory)
            if name.startswith(_SEGMENT_PREFIX)
            and name.endswith(_SEGMENT_SUFFIX)
        ]
        return [
            os.path.join(self.directory, name)
            for name in sorted(names, key=lambda n: _segment_base(
                os.path.join(self.directory, n)))
        ]

    def _open_tail(self) -> None:
        """Open the last segment for appending, truncating any torn tail."""
        existing = self.segments()
        if not existing:
            self._start_segment(self.next_seq)
            return
        tail = existing[-1]
        records, valid_bytes = _scan_segment(tail, final=True)
        actual = os.path.getsize(tail)
        if valid_bytes != actual:
            # Torn final record from a crash mid-append: drop it.
            with open(tail, "r+b") as handle:
                handle.truncate(valid_bytes)
        if records:
            self.next_seq = records[-1][0] + 1
        else:
            self.next_seq = _segment_base(tail)
        self._segment_path = tail
        self._segment_bytes = valid_bytes
        self._handle = open(tail, "ab")

    def _start_segment(self, base_seq: int) -> None:
        if self._handle is not None:
            self.flush(force=True)
            self._handle.close()
        name = f"{_SEGMENT_PREFIX}{base_seq:016x}{_SEGMENT_SUFFIX}"
        self._segment_path = os.path.join(self.directory, name)
        self._handle = open(self._segment_path, "ab")
        self._segment_bytes = 0

    # -- appending -------------------------------------------------------

    def append(self, payload: bytes) -> int:
        """Append one framed record; returns its sequence number."""
        return self.append_many([payload])

    def append_many(self, payloads: list[bytes]) -> int:
        """Append a batch under one write barrier; returns the last seq.

        Group commit is what keeps WAL overhead low on batched ingestion:
        the whole batch is framed into one buffer, written with one
        syscall, and synced once.
        """
        if self._handle is None:
            raise DurabilityError("write-ahead log is closed")
        if not payloads:
            return self.next_seq - 1
        frames = []
        for payload in payloads:
            frames.append(encode_record(self.next_seq, payload))
            self.next_seq += 1
        blob = b"".join(frames)
        self._handle.write(blob)
        self._segment_bytes += len(blob)
        obs.counter("durability.wal.appends_total").inc()
        obs.counter("durability.wal.records_total").inc(len(payloads))
        obs.counter("durability.wal.bytes_total").inc(len(blob))
        obs.histogram(
            "durability.wal.group_commit_size", obs.DEFAULT_SIZE_EDGES
        ).observe(float(len(payloads)))
        self.flush()
        if self._segment_bytes >= self.config.segment_max_bytes:
            self._start_segment(self.next_seq)
        return self.next_seq - 1

    def flush(self, force: bool = False) -> None:
        """Apply the configured write barrier (or a full flush if forced)."""
        if self._handle is None:
            return
        mode = self.config.sync
        if force or mode in ("flush", "fsync"):
            self._handle.flush()
            obs.counter("durability.wal.flushes_total").inc()
        if mode == "fsync":
            os.fsync(self._handle.fileno())
            obs.counter("durability.wal.fsyncs_total").inc()

    def close(self) -> None:
        """Flush and close the active segment."""
        if self._handle is not None:
            self.flush(force=True)
            self._handle.close()
            self._handle = None

    # -- replay and pruning ---------------------------------------------

    def replay(self, after_seq: int = 0) -> Iterator[tuple[int, bytes]]:
        """Yield ``(seq, payload)`` for every record with ``seq > after_seq``.

        Enforces strictly contiguous sequence numbers across segment
        boundaries; a torn tail in the final segment ends the iteration.
        """
        self.flush(force=True)
        paths = self.segments()
        expected: int | None = None
        for position, path in enumerate(paths):
            final = position == len(paths) - 1
            records, _ = _scan_segment(path, final=final)
            for seq, payload in records:
                if expected is not None and seq != expected:
                    raise WALCorruptionError(
                        f"sequence gap in WAL: expected {expected}, found "
                        f"{seq} in {os.path.basename(path)}"
                    )
                expected = seq + 1
                if seq > after_seq:
                    yield seq, payload

    def prune(self, upto_seq: int) -> list[str]:
        """Delete whole segments containing only records ``<= upto_seq``.

        The active (last) segment is always kept.  Returns deleted paths.
        """
        paths = self.segments()
        deleted: list[str] = []
        for position in range(len(paths) - 1):
            # Segment p's records all precede segment p+1's base.
            next_base = _segment_base(paths[position + 1])
            if next_base - 1 <= upto_seq:
                os.remove(paths[position])
                deleted.append(paths[position])
            else:
                break
        return deleted


# -- snapshots -----------------------------------------------------------


def _snapshot_path(directory: str, seq: int) -> str:
    return os.path.join(
        directory, f"{_SNAPSHOT_PREFIX}{seq:016x}{_SNAPSHOT_SUFFIX}"
    )


def list_snapshots(directory: str) -> list[str]:
    """Snapshot paths, oldest first."""
    try:
        names = os.listdir(directory)
    except FileNotFoundError:
        return []
    kept = [
        name
        for name in names
        if name.startswith(_SNAPSHOT_PREFIX) and name.endswith(_SNAPSHOT_SUFFIX)
    ]
    return [os.path.join(directory, name) for name in sorted(kept)]


def write_snapshot(
    directory: str, seq: int, state: dict[str, Any], keep: int = 2
) -> str:
    """Atomically write a CRC-guarded snapshot; prune old ones.

    The envelope's CRC covers the canonical JSON of ``{version, seq,
    state}``, so any truncation or bit damage is detected on load.
    Returns the path written.
    """
    with obs.span("durability.snapshot.write", seq=seq):
        envelope = {"version": 1, "seq": seq, "state": state}
        body = canonical_json(envelope)
        crc = zlib.crc32(body.encode("utf-8")) & 0xFFFFFFFF
        document = json.dumps({"crc": crc, "envelope": envelope})
        path = _snapshot_path(directory, seq)
        temp = path + ".tmp"
        with open(temp, "w") as handle:
            handle.write(document)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(temp, path)
        snapshots = list_snapshots(directory)
        for old in snapshots[:-keep]:
            os.remove(old)
        obs.counter("durability.snapshot.writes_total").inc()
        obs.counter("durability.snapshot.bytes_total").inc(len(document))
    return path


def _load_snapshot(path: str) -> tuple[int, dict[str, Any]]:
    with open(path) as handle:
        document = json.load(handle)
    envelope = document["envelope"]
    body = canonical_json(envelope)
    crc = zlib.crc32(body.encode("utf-8")) & 0xFFFFFFFF
    if crc != document["crc"]:
        obs.counter("durability.snapshot.crc_failures_total").inc()
        raise SnapshotCorruptionError(
            f"snapshot {os.path.basename(path)} failed its CRC check"
        )
    if envelope.get("version") != 1:
        raise SnapshotCorruptionError(
            f"snapshot {os.path.basename(path)} has unsupported version "
            f"{envelope.get('version')!r}"
        )
    return int(envelope["seq"]), envelope["state"]


def load_latest_snapshot(
    directory: str,
) -> tuple[int, dict[str, Any], list[str]] | None:
    """The newest loadable snapshot, or ``None`` if none exists.

    A corrupted or partially-written newest snapshot falls back to the
    previous one; the paths that failed are returned for reporting.
    Raises :class:`SnapshotCorruptionError` only when snapshots exist but
    *none* is loadable (recovery must not silently start empty).
    """
    paths = list_snapshots(directory)
    if not paths:
        return None
    failures: list[str] = []
    for path in reversed(paths):
        try:
            seq, state = _load_snapshot(path)
            return seq, state, failures
        except (SnapshotCorruptionError, json.JSONDecodeError, KeyError,
                OSError, ValueError):
            obs.counter("durability.snapshot.load_failures_total").inc()
            failures.append(path)
    raise SnapshotCorruptionError(
        f"all {len(paths)} snapshots in {directory} are corrupted"
    )
