"""Stream abstractions: relations arriving tuple-by-tuple or as intervals.

The paper's setting (Section 2.1): a relation is observed as an unbounded
sequence of updates -- points for classic AMS sketching, intervals for the
applications of Section 5.  These small dataclasses give the applications
and experiments a common vocabulary and keep workload generators decoupled
from estimators.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Sequence

import numpy as np

__all__ = [
    "PointUpdate",
    "IntervalUpdate",
    "PointStream",
    "IntervalStream",
    "frequency_vector",
    "stream_from_frequencies",
]


@dataclass(frozen=True)
class PointUpdate:
    """One streamed tuple: a domain value and a (signed) multiplicity."""

    item: int
    weight: float = 1.0


@dataclass(frozen=True)
class IntervalUpdate:
    """One streamed interval: every point of ``[low, high]`` (inclusive)."""

    low: int
    high: int
    weight: float = 1.0

    def __post_init__(self) -> None:
        if self.high < self.low:
            raise ValueError(f"empty interval [{self.low}, {self.high}]")

    @property
    def size(self) -> int:
        """Number of domain points covered."""
        return self.high - self.low + 1


@dataclass
class PointStream:
    """A finite recorded point stream over a ``2^domain_bits`` domain."""

    domain_bits: int
    updates: list[PointUpdate] = field(default_factory=list)

    def append(self, item: int, weight: float = 1.0) -> None:
        """Record one arriving tuple."""
        if not 0 <= item < (1 << self.domain_bits):
            raise ValueError(f"item {item} outside domain 2^{self.domain_bits}")
        self.updates.append(PointUpdate(item, weight))

    def __iter__(self) -> Iterator[PointUpdate]:
        return iter(self.updates)

    def __len__(self) -> int:
        return len(self.updates)


@dataclass
class IntervalStream:
    """A finite recorded interval stream over a ``2^domain_bits`` domain."""

    domain_bits: int
    updates: list[IntervalUpdate] = field(default_factory=list)

    def append(self, low: int, high: int, weight: float = 1.0) -> None:
        """Record one arriving interval."""
        if low < 0 or high >= (1 << self.domain_bits):
            raise ValueError(
                f"[{low}, {high}] outside domain 2^{self.domain_bits}"
            )
        self.updates.append(IntervalUpdate(low, high, weight))

    def __iter__(self) -> Iterator[IntervalUpdate]:
        return iter(self.updates)

    def __len__(self) -> int:
        return len(self.updates)

    def total_points(self) -> float:
        """Total weighted number of (expanded) points in the stream."""
        return sum(u.size * u.weight for u in self.updates)


def frequency_vector(stream, domain_bits: int | None = None) -> np.ndarray:
    """Exact frequency vector of a point or interval stream.

    The dense ground-truth representation every experiment checks
    estimates against; only feasible for enumerable domains.
    """
    if domain_bits is None:
        domain_bits = stream.domain_bits
    freq = np.zeros(1 << domain_bits, dtype=np.float64)
    for update in stream:
        if isinstance(update, PointUpdate):
            freq[update.item] += update.weight
        elif isinstance(update, IntervalUpdate):
            freq[update.low : update.high + 1] += update.weight
        else:
            raise TypeError(f"unsupported update type {type(update).__name__}")
    return freq


def stream_from_frequencies(
    frequencies: Sequence[float] | np.ndarray, domain_bits: int
) -> PointStream:
    """A point stream that replays a frequency vector (integer counts)."""
    frequencies = np.asarray(frequencies)
    if len(frequencies) > (1 << domain_bits):
        raise ValueError("frequency vector longer than the domain")
    stream = PointStream(domain_bits)
    for item, count in enumerate(frequencies):
        whole = int(count)
        if whole != count or whole < 0:
            raise ValueError("replaying requires non-negative integer counts")
        for _ in range(whole):
            stream.append(item)
    return stream
