"""A small continuous-query engine over sketched streams.

The paper's systems story (Section 2.1): relations arrive as unbounded
update streams, memory holds only sketches, and registered aggregate
queries are answerable at any time.  :class:`StreamProcessor` packages
that story behind one object:

* **relations** are registered with a domain width; each is backed by one
  :class:`~repro.sketch.ams.SketchMatrix` under a scheme chosen at
  registration (EH3 generator channels by default, so interval updates
  are O(log range));
* **updates** -- points, intervals, weighted, deletions -- stream in via
  :meth:`process_point` / :meth:`process_interval`, screened by the
  validation front door (:mod:`repro.stream.validation`) under a
  configurable ``raise`` / ``quarantine`` / ``clamp`` policy so malformed
  records can never reach the plane kernels;
* **queries** -- size-of-join between two relations, self-join size of
  one -- are registered up front (the sketches must share seeds to be
  comparable, so relations joined together are placed on a shared scheme)
  and answered on demand with :meth:`answer`.

Because the sketches are the *only* state, the processor can make them
durable: pass a :class:`~repro.stream.durability.DurabilityConfig` (or a
directory path) and every admitted update is written ahead to a
CRC-framed, segmented log before it touches a counter;
:meth:`checkpoint` persists an atomic CRC-verified snapshot and prunes
the log; :meth:`StreamProcessor.recover` restores the latest valid
snapshot and replays the WAL tail exactly once (idempotent via sequence
numbers, tolerant of a torn final record).  See ``docs/operations.md``
for the operational lifecycle.

The batched ingestion paths degrade gracefully: if the packed plane
kernels raise mid-batch, the touched counters are rolled back and the
batch re-runs on the per-cell scalar path (bit-identical by the plane's
property tests), recording an :class:`~repro.stream.validation.Incident`
instead of failing the stream.

The processor is deliberately memory-honest: :meth:`memory_words` reports
exactly how many counters it holds, the number the paper's Figures 5-7
sweep on their x-axis.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass
from typing import Any, Callable

import numpy as np

from repro import obs
from repro.generators.base import Generator
from repro.generators.seeds import SeedSource
from repro.query import engine as query_engine
from repro.query.hierarchy import DyadicHierarchy
from repro.query.types import (
    Estimate,
    F2Query,
    HeavyHitter,
    HeavyHittersQuery,
    JoinSizeQuery,
    PointQuery,
    Query,
    QuantileQuery,
    RangeSumQuery,
)
from repro.schemes import get_spec
from repro.sketch.ams import SketchMatrix, SketchScheme
from repro.sketch.atomic import GeneratorChannel
from repro.sketch.plane import plane_decision
from repro.sketch.serialize import (
    scheme_fingerprint,
    sketch_from_dict,
    sketch_to_dict,
)
from repro.stream.durability import (
    DurabilityConfig,
    WriteAheadLog,
    canonical_json,
    list_snapshots,
    load_latest_snapshot,
    write_snapshot,
)
from repro.stream.errors import (
    DurabilityError,
    InvalidUpdateError,
    RecoveryError,
    SchemeMismatchError,
    UnknownRelationError,
)
from repro.stream.validation import (
    POLICIES,
    DeadLetterBuffer,
    Incident,
    IncidentLog,
    QuarantinedRecord,
    screen_interval,
    screen_intervals,
    screen_point,
    screen_points,
)

__all__ = ["StreamProcessor", "QueryHandle"]

_MANIFEST = "manifest.json"


@dataclass(frozen=True)
class QueryHandle:
    """Opaque handle for a registered continuous query."""

    kind: str
    left: str
    right: str
    identifier: int


class StreamProcessor:
    """Sketch-backed continuous aggregate queries over update streams."""

    def __init__(
        self,
        medians: int = 7,
        averages: int = 100,
        seed: int | SeedSource = 0,
        generator_factory: Callable[[int, SeedSource], Generator] | None = None,
        policy: str = "raise",
        quarantine_capacity: int = 1024,
        durability: DurabilityConfig | str | None = None,
        scheme: str | None = None,
        incident_capacity: int = 256,
        backend: str | None = None,
    ) -> None:
        if medians < 1 or averages < 1:
            raise ValueError("medians and averages must be positive")
        if policy not in POLICIES:
            raise ValueError(
                f"unknown policy {policy!r}; expected one of {POLICIES}"
            )
        if scheme is not None and generator_factory is not None:
            raise ValueError(
                "pass either scheme= (a registered scheme name) or "
                "generator_factory=, not both"
            )
        self._medians = medians
        self._averages = averages
        self._seed_config = seed if isinstance(seed, int) else None
        self._source = seed if isinstance(seed, SeedSource) else SeedSource(seed)
        if generator_factory is not None:
            # A custom factory cannot be named in the durability manifest;
            # recover() must be handed the same factory again.
            self._scheme_name: str | None = None
            self._factory = generator_factory
        else:
            self._scheme_name = scheme or "eh3"
            self._factory = get_spec(self._scheme_name).factory
        # Kernel backend request for the packed planes; None defers to the
        # REPRO_KERNEL_BACKEND environment variable and then priority.
        # Degradation (unknown name, unavailable engine, unsupported
        # scheme) is recorded in stats()["planes"], never raised.
        self.kernel_backend = backend
        self.policy = policy
        self.dead_letters = DeadLetterBuffer(quarantine_capacity)
        self.incidents = IncidentLog(incident_capacity)
        self._domain_bits: dict[str, int] = {}
        self._registration_order: list[str] = []
        self._schemes: dict[str, SketchScheme] = {}  # per domain-group
        self._sketches: dict[str, SketchMatrix] = {}
        self._groups: dict[str, str] = {}  # relation -> scheme key
        self._queries: dict[int, QueryHandle] = {}
        self._next_query = 0
        # Continuously-maintained dyadic hierarchies (heavy hitters /
        # quantiles), sharing the relation's scheme -- see
        # repro.query.hierarchy.
        self._hierarchies: dict[str, DyadicHierarchy] = {}
        # -- durability state -------------------------------------------
        self._durability = self._normalize_durability(durability)
        self._wal: WriteAheadLog | None = None
        self._applied_seq = 0
        self._records_since_checkpoint = 0
        self._replaying = False
        if self._durability is not None:
            self._attach_durability(self._durability, fresh=True)

    # -- durability plumbing ---------------------------------------------

    @staticmethod
    def _normalize_durability(
        durability: DurabilityConfig | str | None,
    ) -> DurabilityConfig | None:
        if durability is None or isinstance(durability, DurabilityConfig):
            return durability
        return DurabilityConfig(directory=os.fspath(durability))

    def _attach_durability(self, config: DurabilityConfig, fresh: bool) -> None:
        os.makedirs(config.directory, exist_ok=True)
        manifest_path = os.path.join(config.directory, _MANIFEST)
        if fresh:
            if os.path.exists(manifest_path):
                raise DurabilityError(
                    f"{config.directory} already holds durable stream state; "
                    "use StreamProcessor.recover() to resume it (or point at "
                    "an empty directory to start fresh)"
                )
            manifest = {
                "version": 1,
                "medians": self._medians,
                "averages": self._averages,
                "seed": self._seed_config,
                "policy": self.policy,
                "scheme": self._scheme_name,
            }
            with open(manifest_path, "w") as handle:
                json.dump(manifest, handle)
        self._durability = config
        self._wal = WriteAheadLog(config.directory, config)

    def checkpoint(self) -> str:
        """Snapshot all state and prune the WAL; returns the path written.

        The snapshot is CRC-guarded and written atomically, so a crash
        *during* a checkpoint leaves the previous snapshot (and the full
        WAL tail) intact.  WAL segments wholly covered by the oldest
        retained snapshot are deleted.
        """
        if self._wal is None or self._durability is None:
            raise DurabilityError("durability is not enabled on this processor")
        self._wal.flush(force=True)
        state = {
            "registrations": [
                [name, self._domain_bits[name]]
                for name in self._registration_order
            ],
            "queries": [
                [h.kind, h.left, h.right, h.identifier]
                for h in self._queries.values()
            ],
            "sketches": {
                name: sketch_to_dict(sketch, include_scheme=False)
                for name, sketch in self._sketches.items()
            },
            "quarantine_counts": dict(self.dead_letters.counts),
            "incident_count": self.incidents.total,
            "hierarchies": {
                name: hierarchy.counters_state()
                for name, hierarchy in self._hierarchies.items()
            },
        }
        path = write_snapshot(
            self._durability.directory,
            self._applied_seq,
            state,
            keep=self._durability.snapshots_keep,
        )
        # Prune only past the *oldest retained* snapshot, so recovery can
        # still fall back to it if the newest one is damaged.
        retained = list_snapshots(self._durability.directory)
        oldest_seq = min(
            int(os.path.basename(p)[5:-5], 16) for p in retained
        )
        self._wal.prune(oldest_seq)
        self._records_since_checkpoint = 0
        return path

    def close(self) -> None:
        """Flush and close the WAL (no-op without durability)."""
        if self._wal is not None:
            self._wal.close()

    def __enter__(self) -> "StreamProcessor":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    @classmethod
    def recover(
        cls,
        durability: DurabilityConfig | str,
        generator_factory: Callable[[int, SeedSource], Generator] | None = None,
        policy: str | None = None,
        quarantine_capacity: int = 1024,
        incident_capacity: int = 256,
        backend: str | None = None,
    ) -> "StreamProcessor":
        """Rebuild a processor from its durability directory.

        Restores the newest valid snapshot (a corrupted or partially
        written one falls back to its predecessor) and replays every WAL
        record past the snapshot's sequence number exactly once.  The
        schemes are re-derived from the manifest's master seed by
        replaying registrations in their original order; the result is
        verified against the scheme fingerprints recorded at checkpoint
        time, so a wrong seed or ``generator_factory`` fails loudly
        instead of silently producing incomparable sketches.
        """
        config = cls._normalize_durability(durability)
        assert config is not None
        manifest_path = os.path.join(config.directory, _MANIFEST)
        try:
            with open(manifest_path) as handle:
                manifest = json.load(handle)
        except (OSError, json.JSONDecodeError) as exc:
            raise RecoveryError(
                f"cannot read durability manifest {manifest_path}: {exc}"
            ) from exc
        seed = manifest.get("seed")
        if seed is None:
            raise RecoveryError(
                "the original processor was seeded with a live SeedSource; "
                "its schemes cannot be re-derived from the manifest"
            )
        processor = cls(
            medians=manifest["medians"],
            averages=manifest["averages"],
            seed=seed,
            generator_factory=generator_factory,
            policy=policy or manifest.get("policy", "raise"),
            quarantine_capacity=quarantine_capacity,
            durability=None,
            scheme=(
                None if generator_factory is not None
                else manifest.get("scheme")
            ),
            incident_capacity=incident_capacity,
            backend=backend,
        )
        with obs.span("durability.recover", directory=config.directory):
            processor._replaying = True
            snapshot = load_latest_snapshot(config.directory)
            applied = 0
            if snapshot is not None:
                applied, state, _failures = snapshot
                processor._restore_snapshot(state)
                processor._applied_seq = applied
            processor._attach_durability(config, fresh=False)
            expected = applied + 1
            assert processor._wal is not None
            replayed = 0
            for seq, payload in processor._wal.replay(after_seq=applied):
                if seq != expected:
                    raise RecoveryError(
                        f"WAL gap after snapshot: expected record {expected}, "
                        f"found {seq} (segments pruned too far?)"
                    )
                expected = seq + 1
                processor._apply(json.loads(payload.decode("utf-8")))
                processor._applied_seq = seq
                replayed += 1
            processor._replaying = False
            obs.counter("durability.recover.replayed_records_total").inc(
                replayed
            )
            obs.counter("durability.recover.recoveries_total").inc()
        return processor

    def _restore_snapshot(self, state: dict[str, Any]) -> None:
        """Re-derive schemes, reattach counters, verify fingerprints."""
        for name, domain_bits in state["registrations"]:
            self._do_register(name, int(domain_bits))
        sketches = state.get("sketches", {})
        for name, data in sketches.items():
            if name not in self._sketches:
                raise RecoveryError(
                    f"snapshot holds a sketch for unregistered relation "
                    f"{name!r}"
                )
            scheme = self._schemes[self._groups[name]]
            recorded = data.get("fingerprint")
            if recorded is not None and recorded != scheme_fingerprint(scheme):
                raise RecoveryError(
                    f"relation {name!r}: re-derived scheme does not match "
                    "the checkpointed fingerprint -- wrong master seed or "
                    "generator_factory passed to recover()"
                )
            try:
                self._sketches[name] = sketch_from_dict(data, scheme=scheme)
            except ValueError as exc:
                raise RecoveryError(
                    f"relation {name!r}: checkpointed counters are "
                    f"corrupted: {exc}"
                ) from exc
        for name, counters in state.get("hierarchies", {}).items():
            if name not in self._sketches:
                raise RecoveryError(
                    f"snapshot holds a hierarchy for unregistered relation "
                    f"{name!r}"
                )
            self._do_register_hierarchy(name)
            try:
                self._hierarchies[name].restore_counters(counters)
            except ValueError as exc:
                raise RecoveryError(
                    f"relation {name!r}: checkpointed hierarchy counters "
                    f"are corrupted: {exc}"
                ) from exc
        max_id = -1
        for kind, left, right, identifier in state.get("queries", []):
            identifier = int(identifier)
            self._queries[identifier] = QueryHandle(
                kind, left, right, identifier
            )
            max_id = max(max_id, identifier)
        self._next_query = max_id + 1

    # -- WAL commit path -------------------------------------------------

    def _commit(self, op: dict[str, Any]) -> None:
        """Log one admitted operation (write-ahead), then apply it."""
        seq = 0
        if self._wal is not None and not self._replaying:
            seq = self._wal.append(canonical_json(op).encode("utf-8"))
        self._apply(op)
        if seq:
            self._applied_seq = seq
            self._records_since_checkpoint += 1
            if (
                self._durability is not None
                and self._durability.checkpoint_every
                and self._records_since_checkpoint
                >= self._durability.checkpoint_every
            ):
                self.checkpoint()

    def _apply(self, op: dict[str, Any]) -> None:
        """Apply one (already validated) operation to in-memory state.

        This is the single dispatch both live ingestion and WAL replay
        run through, which is what makes recovery bit-identical to an
        uninterrupted run.
        """
        kind = op["op"]
        with obs.span("stream.apply", op=kind):
            self._dispatch(op, kind)

    def _dispatch(self, op: dict[str, Any], kind: str) -> None:
        if kind == "register":
            self._do_register(op["name"], op["domain_bits"])
        elif kind == "register_join":
            self._do_register_query("join", op["left"], op["right"])
        elif kind == "register_self_join":
            self._do_register_query("self_join", op["relation"], op["relation"])
        elif kind == "register_hierarchy":
            self._do_register_hierarchy(op["relation"])
        elif kind == "point":
            applied = self._guarded_update(
                op["relation"],
                "point",
                1,
                fast=lambda s: s.update_point(op["item"], op["weight"]),
                scalar=lambda s: self._scalar_point(
                    s, op["item"], op["weight"]
                ),
                payload=(op["item"], op["weight"]),
            )
            if applied:
                self._hierarchy_apply(
                    op["relation"],
                    fast=lambda h: h.update_point(op["item"], op["weight"]),
                    scalar=lambda h: h.scalar_update_point(
                        op["item"], op["weight"]
                    ),
                )
        elif kind == "interval":
            applied = self._guarded_update(
                op["relation"],
                "interval",
                1,
                fast=lambda s: s.update_interval(
                    (op["low"], op["high"]), op["weight"]
                ),
                scalar=lambda s: self._scalar_interval(
                    s, op["low"], op["high"], op["weight"]
                ),
                payload=(op["low"], op["high"], op["weight"]),
            )
            if applied:
                self._hierarchy_apply(
                    op["relation"],
                    fast=lambda h: h.update_interval(
                        op["low"], op["high"], op["weight"]
                    ),
                    scalar=lambda h: h.scalar_update_interval(
                        op["low"], op["high"], op["weight"]
                    ),
                )
        elif kind == "points":
            items = np.asarray(op["items"], dtype=np.uint64)
            weights = (
                None
                if op["weights"] is None
                else np.asarray(op["weights"], dtype=np.float64)
            )
            applied = self._guarded_update(
                op["relation"],
                "points",
                int(items.size),
                fast=lambda s: s.update_points(items, weights),
                scalar=lambda s: self._scalar_points(s, items, weights),
                payload={"items": op["items"], "weights": op["weights"]},
            )
            if applied:
                self._hierarchy_apply(
                    op["relation"],
                    fast=lambda h: h.update_points(items, weights),
                    scalar=lambda h: h.scalar_update_points(items, weights),
                )
        elif kind == "intervals":
            intervals = np.asarray(op["intervals"], dtype=np.uint64).reshape(
                -1, 2
            )
            weights = (
                None
                if op["weights"] is None
                else np.asarray(op["weights"], dtype=np.float64)
            )
            applied = self._guarded_update(
                op["relation"],
                "intervals",
                int(intervals.shape[0]),
                fast=lambda s: s.update_intervals(intervals, weights),
                scalar=lambda s: self._scalar_intervals(s, intervals, weights),
                payload={"intervals": op["intervals"], "weights": op["weights"]},
            )
            if applied:
                self._hierarchy_apply(
                    op["relation"],
                    fast=lambda h: h.update_intervals(intervals, weights),
                    scalar=lambda h: h.scalar_update_intervals(
                        intervals, weights
                    ),
                )
        elif kind == "merge":
            self._do_merge(
                op["relation"], op["values"], op.get("fingerprint")
            )
        else:
            raise RecoveryError(f"unknown WAL operation {kind!r}")

    # -- graceful degradation --------------------------------------------

    def _guarded_update(
        self,
        relation: str,
        operation: str,
        batch_size: int,
        fast: Callable[[SketchMatrix], None],
        scalar: Callable[[SketchMatrix], None],
        payload: Any,
    ) -> bool:
        """Run the fast path; on failure roll back and degrade to scalar.

        The plane kernels compute per-counter totals before touching any
        cell, but a failure *during* the scatter would leave the grid
        half-updated -- so the counter values are saved up front (a few
        hundred floats) and restored before the scalar retry.  If the
        scalar path fails too, the record is re-raised under the
        ``raise`` policy and quarantined otherwise: no exception escapes
        the ingestion path under ``quarantine``/``clamp``.

        Returns whether the update reached the counters (on some path),
        so dependent state -- a registered hierarchy -- only sees records
        the base sketch admitted.
        """
        sketch = self._sketches[relation]
        saved = [cell.value for row in sketch.cells for cell in row]
        try:
            fast(sketch)
            return True
        except Exception as exc:  # noqa: BLE001 -- degradation boundary
            self._restore_values(sketch, saved)
            first_error = exc
        try:
            scalar(sketch)
        except Exception as exc:  # noqa: BLE001 -- both paths down
            self._restore_values(sketch, saved)
            self.incidents.append(
                Incident(operation, relation, repr(exc), batch_size, False)
            )
            obs.counter("stream.degrade.incidents_total").inc()
            obs.counter("stream.degrade.failures_total").inc()
            if self.policy == "raise":
                raise
            self.dead_letters.add(
                QuarantinedRecord(
                    relation,
                    operation,
                    payload,
                    "apply-failed",
                    f"both fast and scalar paths failed: {exc!r}",
                )
            )
            return False
        self.incidents.append(
            Incident(operation, relation, repr(first_error), batch_size, True)
        )
        obs.counter("stream.degrade.incidents_total").inc()
        obs.counter("stream.degrade.degradations_total").inc()
        return True

    def _hierarchy_apply(
        self,
        relation: str,
        fast: Callable[[DyadicHierarchy], None],
        scalar: Callable[[DyadicHierarchy], None],
    ) -> None:
        """Mirror an admitted update into the relation's hierarchy.

        Same degradation contract as :meth:`_guarded_update`: the
        hierarchy shares the relation's scheme (and so its packed
        plane), so a broken plane rolls the level sketches back and
        retries on the per-cell scalar path, keeping hierarchy answers
        consistent with the base sketch instead of failing the stream.
        """
        hierarchy = self._hierarchies.get(relation)
        if hierarchy is None:
            return
        saved = hierarchy.counters_state()
        try:
            fast(hierarchy)
            return
        except Exception as exc:  # noqa: BLE001 -- degradation boundary
            hierarchy.restore_counters(saved)
            first_error = exc
        try:
            scalar(hierarchy)
        except Exception as exc:  # noqa: BLE001 -- both paths down
            hierarchy.restore_counters(saved)
            self.incidents.append(
                Incident("hierarchy", relation, repr(exc), 1, False)
            )
            obs.counter("stream.degrade.incidents_total").inc()
            obs.counter("stream.degrade.failures_total").inc()
            if self.policy == "raise":
                raise
            return
        self.incidents.append(
            Incident("hierarchy", relation, repr(first_error), 1, True)
        )
        obs.counter("stream.degrade.incidents_total").inc()
        obs.counter("stream.degrade.degradations_total").inc()

    @staticmethod
    def _restore_values(sketch: SketchMatrix, saved: list[float]) -> None:
        position = 0
        for row in sketch.cells:
            for cell in row:
                cell.value = saved[position]
                position += 1

    @staticmethod
    def _scalar_point(sketch: SketchMatrix, item: int, weight: float) -> None:
        for row in sketch.cells:
            for cell in row:
                cell.update_point(item, weight)

    @staticmethod
    def _scalar_interval(
        sketch: SketchMatrix, low: int, high: int, weight: float
    ) -> None:
        for row in sketch.cells:
            for cell in row:
                cell.update_interval((low, high), weight)

    @staticmethod
    def _scalar_points(sketch: SketchMatrix, items, weights) -> None:
        items = np.asarray(items)
        for row in sketch.cells:
            for cell in row:
                cell.update_points(items, weights)

    @staticmethod
    def _scalar_intervals(sketch: SketchMatrix, intervals, weights) -> None:
        for position, bounds in enumerate(np.asarray(intervals).reshape(-1, 2)):
            scale = 1.0 if weights is None else float(weights[position])
            low, high = int(bounds[0]), int(bounds[1])
            for row in sketch.cells:
                for cell in row:
                    cell.update_interval((low, high), scale)

    # -- registration ----------------------------------------------------

    def register_relation(self, name: str, domain_bits: int) -> None:
        """Declare a relation before streaming into it.

        Relations of the same domain width share one scheme (same seeds),
        which is what makes joins between them well-defined.
        """
        if name in self._domain_bits:
            raise ValueError(f"relation {name!r} already registered")
        if domain_bits < 1:
            raise ValueError("domain_bits must be positive")
        self._commit({"op": "register", "name": name, "domain_bits": domain_bits})

    def _do_register(self, name: str, domain_bits: int) -> None:
        group = f"domain:{domain_bits}"
        if group not in self._schemes:
            bits = domain_bits
            grid = SketchScheme.from_factory(
                lambda src: GeneratorChannel(self._factory(bits, src)),
                self._medians,
                self._averages,
                self._source,
            )
            grid.kernel_backend = self.kernel_backend
            self._schemes[group] = grid
        self._domain_bits[name] = domain_bits
        self._registration_order.append(name)
        self._groups[name] = group
        self._sketches[name] = self._schemes[group].sketch()

    def register_join(self, left: str, right: str) -> QueryHandle:
        """Continuous ``|left JOIN right|`` query."""
        self._require(left)
        self._require(right)
        if self._groups[left] != self._groups[right]:
            raise ValueError(
                "joined relations must share a domain width (and thus seeds)"
            )
        self._commit({"op": "register_join", "left": left, "right": right})
        return self._queries[self._next_query - 1]

    def register_self_join(self, relation: str) -> QueryHandle:
        """Continuous self-join size (F2) query."""
        self._require(relation)
        self._commit({"op": "register_self_join", "relation": relation})
        return self._queries[self._next_query - 1]

    def _do_register_query(self, kind: str, left: str, right: str) -> None:
        handle = QueryHandle(kind, left, right, self._next_query)
        self._queries[self._next_query] = handle
        self._next_query += 1

    def register_hierarchy(self, relation: str) -> None:
        """Maintain a dyadic hierarchy over ``relation`` from now on.

        Enables :meth:`heavy_hitters` and :meth:`quantile` (and the
        corresponding typed queries through :meth:`query`).  The
        hierarchy keeps one extra sketch per dyadic level, **sharing the
        relation's scheme** (same seeds), and is updated continuously by
        every subsequent point/interval record.  Updates streamed before
        registration are not back-filled -- register the hierarchy right
        after the relation.  Remote sketches folded in with
        :meth:`merge_sketch` are likewise invisible to the hierarchy
        (only level-0 counters travel); merging sites should ship their
        hierarchies separately.
        """
        self._require(relation)
        if relation in self._hierarchies:
            raise ValueError(
                f"relation {relation!r} already has a hierarchy"
            )
        self._commit({"op": "register_hierarchy", "relation": relation})

    def _do_register_hierarchy(self, relation: str) -> None:
        self._hierarchies[relation] = DyadicHierarchy(
            self._schemes[self._groups[relation]],
            self._domain_bits[relation],
        )

    # -- streaming -------------------------------------------------------

    def process_point(
        self, relation: str, item: int, weight: float = 1.0
    ) -> None:
        """One arriving tuple (negative weight = deletion)."""
        self._require(relation)
        outcome = screen_point(
            item, weight, self._domain_bits[relation], self.policy
        )
        if isinstance(outcome, QuarantinedRecord):
            self._quarantine(relation, outcome)
            return
        item, weight = outcome
        self._commit(
            {"op": "point", "relation": relation, "item": item,
             "weight": weight}
        )
        obs.counter("stream.ingest.points_total").inc()
        obs.rate("stream.ingest.items_rate").mark()

    def process_interval(
        self, relation: str, low: int, high: int, weight: float = 1.0
    ) -> None:
        """One arriving interval, sketched in sub-linear time.

        On plane-covered schemes (the EH3 default) the interval is
        decomposed once and lands on every counter in one batched pass.
        Invalid intervals (``low > high``, out-of-domain endpoints,
        non-finite weights) are rejected with
        :class:`~repro.stream.errors.InvalidUpdateError` before they can
        reach the kernels (or quarantined/clamped per policy).
        """
        self._require(relation)
        outcome = screen_interval(
            low, high, weight, self._domain_bits[relation], self.policy
        )
        if isinstance(outcome, QuarantinedRecord):
            self._quarantine(relation, outcome)
            return
        low, high, weight = outcome
        self._commit(
            {"op": "interval", "relation": relation, "low": low,
             "high": high, "weight": weight}
        )
        obs.counter("stream.ingest.intervals_total").inc()
        obs.rate("stream.ingest.items_rate").mark()

    def process_points(self, relation: str, items, weights=None) -> None:
        """A batch of arriving tuples, one plane pass for the whole grid."""
        self._require(relation)
        screened = screen_points(
            items, weights, self._domain_bits[relation], self.policy
        )
        for record in screened.rejected:
            self._quarantine(relation, record)
        if screened.items.size == 0:
            return
        self._commit(
            {
                "op": "points",
                "relation": relation,
                "items": [int(i) for i in screened.items],
                "weights": (
                    None
                    if screened.weights is None
                    else [float(w) for w in screened.weights]
                ),
            }
        )
        obs.counter("stream.ingest.points_total").inc(int(screened.items.size))
        obs.counter("stream.ingest.batches_total").inc()
        obs.histogram(
            "stream.ingest.batch_size", obs.DEFAULT_SIZE_EDGES
        ).observe(float(screened.items.size))
        obs.rate("stream.ingest.items_rate").mark(float(screened.items.size))

    def process_intervals(self, relation: str, intervals, weights=None) -> None:
        """A batch of arriving intervals: one decomposition, one plane pass."""
        self._require(relation)
        screened = screen_intervals(
            intervals, weights, self._domain_bits[relation], self.policy
        )
        for record in screened.rejected:
            self._quarantine(relation, record)
        if screened.items.shape[0] == 0:
            return
        self._commit(
            {
                "op": "intervals",
                "relation": relation,
                "intervals": [
                    [int(a), int(b)] for a, b in screened.items
                ],
                "weights": (
                    None
                    if screened.weights is None
                    else [float(w) for w in screened.weights]
                ),
            }
        )
        count = int(screened.items.shape[0])
        obs.counter("stream.ingest.intervals_total").inc(count)
        obs.counter("stream.ingest.batches_total").inc()
        obs.histogram(
            "stream.ingest.batch_size", obs.DEFAULT_SIZE_EDGES
        ).observe(float(count))
        obs.rate("stream.ingest.items_rate").mark(float(count))

    def _quarantine(self, relation: str, record: QuarantinedRecord) -> None:
        obs.counter("stream.ingest.quarantined_total").inc()
        self.dead_letters.add(
            QuarantinedRecord(
                relation, record.kind, record.payload, record.code,
                record.reason,
            )
        )

    def merge_sketch(self, relation: str, other: SketchMatrix) -> None:
        """Fold in a remote site's sketch of the same relation.

        The remote sketch must have been built under the *same seeds*:
        scheme fingerprints are compared and a mismatch raises
        :class:`~repro.stream.errors.SchemeMismatchError` instead of
        silently combining incomparable counters.  Non-finite remote
        counters are rejected as :class:`InvalidUpdateError`.
        """
        self._require(relation)
        mine = self._sketches[relation].scheme
        if other.scheme is not mine and scheme_fingerprint(
            other.scheme
        ) != scheme_fingerprint(mine):
            raise SchemeMismatchError(
                f"remote sketch for {relation!r} was built under different "
                "seeds (scheme fingerprint mismatch); merging would corrupt "
                "every future estimate"
            )
        values = other.values()
        if not np.isfinite(values).all():
            raise InvalidUpdateError(
                f"remote sketch for {relation!r} contains non-finite "
                "counters; refusing to merge",
                "non-finite-counter",
            )
        self._commit(
            {
                "op": "merge",
                "relation": relation,
                "values": values.tolist(),
                "fingerprint": scheme_fingerprint(mine),
            }
        )

    def _do_merge(
        self,
        relation: str,
        values: list[list[float]],
        fingerprint: str | None = None,
    ) -> None:
        """Apply a committed merge (live, or replayed from the WAL).

        The WAL record carries the scheme fingerprint the merge was
        validated against; it is re-verified here so a replay onto a
        re-derived scheme lineage that no longer matches (a corrupted or
        hand-edited manifest, a seed-derivation regression) fails loudly
        instead of folding incomparable counters into the sketch.  The
        finiteness check from commit time is repeated for the same
        reason: replay trusts nothing the current process did not check.
        """
        scheme = self._sketches[relation].scheme
        if fingerprint is not None and fingerprint != scheme_fingerprint(scheme):
            raise SchemeMismatchError(
                f"WAL merge record for {relation!r} was committed against a "
                "different scheme fingerprint; replaying it would corrupt "
                "the sketch"
            )
        grid = np.asarray(values, dtype=np.float64)
        if not np.isfinite(grid).all():
            raise InvalidUpdateError(
                f"WAL merge record for {relation!r} contains non-finite "
                "counters; refusing to apply",
                "non-finite-counter",
            )
        incoming = SketchMatrix(scheme)
        for cells_row, values_row in zip(incoming.cells, grid):
            for cell, value in zip(cells_row, values_row):
                cell.value = float(value)
        self._sketches[relation] = self._sketches[relation].combined(incoming)

    # -- answers ---------------------------------------------------------

    def answer(self, handle: QueryHandle) -> float:
        """Current estimate for a registered query.

        Dispatches through the typed query engine (:meth:`query`); the
        value is bit-identical to the historical direct product path.
        """
        if self._queries.get(handle.identifier) is not handle:
            raise ValueError("unknown query handle")
        if handle.kind == "self_join":
            return self.query(F2Query(handle.left)).value
        return self.query(JoinSizeQuery(handle.left, handle.right)).value

    def query(self, query: Query) -> Any:
        """Execute one typed query against the live sketches.

        The stream-processor executor of :mod:`repro.query`: scalar
        queries (:class:`PointQuery`, :class:`RangeSumQuery`,
        :class:`F2Query`, :class:`JoinSizeQuery`,
        :class:`QuantileQuery`) return an
        :class:`~repro.query.types.Estimate`;
        :class:`HeavyHittersQuery` returns a list of
        :class:`~repro.query.types.HeavyHitter`.  Hierarchical queries
        require :meth:`register_hierarchy` first.
        """
        if isinstance(query, PointQuery):
            self._require(query.relation)
            return query_engine.point(
                self._sketches[query.relation], query.item
            )
        if isinstance(query, RangeSumQuery):
            self._require(query.relation)
            return query_engine.range_sum(
                self._sketches[query.relation], query.low, query.high
            )
        if isinstance(query, F2Query):
            self._require(query.relation)
            return query_engine.self_join(self._sketches[query.relation])
        if isinstance(query, JoinSizeQuery):
            self._require(query.left)
            self._require(query.right)
            return query_engine.product(
                self._sketches[query.left],
                self._sketches[query.right],
                kind="join_size",
            )
        if isinstance(query, HeavyHittersQuery):
            return self._hierarchy_for(query.relation).heavy_hitters(
                query.threshold, query.slack
            )
        if isinstance(query, QuantileQuery):
            return self._hierarchy_for(query.relation).quantile(
                query.fraction
            )
        raise TypeError(f"unsupported query type {type(query).__name__}")

    def heavy_hitters(
        self,
        relation: str,
        threshold: float,
        slack: float | tuple[float, ...] = 0.0,
    ) -> list[HeavyHitter]:
        """Items of ``relation`` estimated at or above ``threshold``.

        Continuously maintained: answers reflect every admitted update
        since :meth:`register_hierarchy`.  ``slack`` lowers the descent's
        pruning bar (see :meth:`DyadicHierarchy.heavy_hitters`).
        """
        result = self.query(HeavyHittersQuery(relation, threshold, slack))
        return list(result)

    def quantile(self, relation: str, fraction: float) -> Estimate:
        """The item at rank ``fraction * total_weight`` of ``relation``."""
        result = self.query(QuantileQuery(relation, fraction))
        assert isinstance(result, Estimate)
        return result

    def hierarchy_of(self, relation: str) -> DyadicHierarchy:
        """The relation's registered hierarchy (for direct descent)."""
        return self._hierarchy_for(relation)

    def _hierarchy_for(self, relation: str) -> DyadicHierarchy:
        self._require(relation)
        hierarchy = self._hierarchies.get(relation)
        if hierarchy is None:
            raise ValueError(
                f"relation {relation!r} has no hierarchy; call "
                "register_hierarchy() before streaming to enable "
                "heavy-hitter and quantile queries"
            )
        return hierarchy

    def query_handles(self) -> list[QueryHandle]:
        """The live handles of every registered query (fresh after
        :meth:`recover`, since handles from the dead process are gone)."""
        return list(self._queries.values())

    def sketch_of(self, relation: str) -> SketchMatrix:
        """The relation's live sketch (e.g. to ship to a coordinator)."""
        self._require(relation)
        return self._sketches[relation]

    def scheme_of(self, relation: str) -> SketchScheme:
        """The scheme backing a relation (to hand to new sites)."""
        self._require(relation)
        return self._schemes[self._groups[relation]]

    def memory_words(self) -> int:
        """Total counters held -- the paper's memory metric.

        Includes the per-level sketches of registered hierarchies: the
        processor stays memory-honest about its heavy-hitter surfaces.
        """
        return sum(
            sketch.scheme.counters for sketch in self._sketches.values()
        ) + sum(
            hierarchy.levels * hierarchy.scheme.counters
            for hierarchy in self._hierarchies.values()
        )

    def relations(self) -> list[str]:
        """Registered relation names."""
        return list(self._domain_bits)

    def stats(self) -> dict[str, Any]:
        """Operational counters: quarantine, incidents, durability, planes.

        ``"planes"`` reports, per scheme group, whether the packed plane
        kernels cover its grid -- and, when they do not, the recorded
        reason (scheme name plus the missing capability) so a silent
        per-cell slowdown is visible in telemetry instead of opaque.
        Each entry also carries the kernel ``backend`` the plane bound
        and the ``backend_reason`` any requested or higher-priority
        backend was skipped for, so backend degradation is observable.
        ``"metrics"`` merges in the process-wide registry snapshot
        (:func:`repro.obs.snapshot`), so the one ``stats()`` call existing
        callers already make now carries every instrument too.
        """
        return {
            "policy": self.policy,
            "quarantined_total": self.dead_letters.total,
            "quarantine_counts": {
                **dict(self.dead_letters.counts),
                "dropped": self.dead_letters.dropped,
            },
            "incidents": self.incidents.total,
            "incidents_buffered": len(self.incidents),
            "incidents_dropped": self.incidents.dropped,
            "applied_seq": self._applied_seq,
            "durable": self._wal is not None,
            "scheme": self._scheme_name,
            "hierarchies": {
                name: hierarchy.levels
                for name, hierarchy in self._hierarchies.items()
            },
            "planes": {
                group: {
                    "plane": (
                        None
                        if decision.plane is None
                        else type(decision.plane).__name__
                    ),
                    "reason": decision.reason,
                    "backend": decision.backend,
                    "backend_reason": decision.backend_reason,
                }
                for group, decision in (
                    (group, plane_decision(scheme))
                    for group, scheme in self._schemes.items()
                )
            },
            "metrics": obs.snapshot(),
        }

    def _require(self, relation: str) -> None:
        if relation not in self._domain_bits:
            raise UnknownRelationError(f"unknown relation {relation!r}")
