"""A small continuous-query engine over sketched streams.

The paper's systems story (Section 2.1): relations arrive as unbounded
update streams, memory holds only sketches, and registered aggregate
queries are answerable at any time.  :class:`StreamProcessor` packages
that story behind one object:

* **relations** are registered with a domain width; each is backed by one
  :class:`~repro.sketch.ams.SketchMatrix` under a scheme chosen at
  registration (EH3 generator channels by default, so interval updates
  are O(log range));
* **updates** -- points, intervals, weighted, deletions -- stream in via
  :meth:`process_point` / :meth:`process_interval`;
* **queries** -- size-of-join between two relations, self-join size of
  one -- are registered up front (the sketches must share seeds to be
  comparable, so relations joined together are placed on a shared scheme)
  and answered on demand with :meth:`answer`.

The processor is deliberately memory-honest: :meth:`memory_words` reports
exactly how many counters it holds, the number the paper's Figures 5-7
sweep on their x-axis.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.generators.base import Generator
from repro.generators.eh3 import EH3
from repro.generators.seeds import SeedSource
from repro.sketch.ams import SketchMatrix, SketchScheme, estimate_product
from repro.sketch.atomic import GeneratorChannel

__all__ = ["StreamProcessor", "QueryHandle"]


@dataclass(frozen=True)
class QueryHandle:
    """Opaque handle for a registered continuous query."""

    kind: str
    left: str
    right: str
    identifier: int


class StreamProcessor:
    """Sketch-backed continuous aggregate queries over update streams."""

    def __init__(
        self,
        medians: int = 7,
        averages: int = 100,
        seed: int | SeedSource = 0,
        generator_factory: Callable[[int, SeedSource], Generator] | None = None,
    ) -> None:
        if medians < 1 or averages < 1:
            raise ValueError("medians and averages must be positive")
        self._medians = medians
        self._averages = averages
        self._source = seed if isinstance(seed, SeedSource) else SeedSource(seed)
        self._factory = generator_factory or (
            lambda bits, src: EH3.from_source(bits, src)
        )
        self._domain_bits: dict[str, int] = {}
        self._schemes: dict[str, SketchScheme] = {}  # per domain-group
        self._sketches: dict[str, SketchMatrix] = {}
        self._groups: dict[str, str] = {}  # relation -> scheme key
        self._queries: dict[int, QueryHandle] = {}
        self._next_query = 0

    # -- registration ----------------------------------------------------

    def register_relation(self, name: str, domain_bits: int) -> None:
        """Declare a relation before streaming into it.

        Relations of the same domain width share one scheme (same seeds),
        which is what makes joins between them well-defined.
        """
        if name in self._domain_bits:
            raise ValueError(f"relation {name!r} already registered")
        if domain_bits < 1:
            raise ValueError("domain_bits must be positive")
        group = f"domain:{domain_bits}"
        if group not in self._schemes:
            bits = domain_bits
            self._schemes[group] = SketchScheme.from_factory(
                lambda src: GeneratorChannel(self._factory(bits, src)),
                self._medians,
                self._averages,
                self._source,
            )
        self._domain_bits[name] = domain_bits
        self._groups[name] = group
        self._sketches[name] = self._schemes[group].sketch()

    def register_join(self, left: str, right: str) -> QueryHandle:
        """Continuous ``|left JOIN right|`` query."""
        self._require(left)
        self._require(right)
        if self._groups[left] != self._groups[right]:
            raise ValueError(
                "joined relations must share a domain width (and thus seeds)"
            )
        handle = QueryHandle("join", left, right, self._next_query)
        self._queries[self._next_query] = handle
        self._next_query += 1
        return handle

    def register_self_join(self, relation: str) -> QueryHandle:
        """Continuous self-join size (F2) query."""
        self._require(relation)
        handle = QueryHandle("self_join", relation, relation, self._next_query)
        self._queries[self._next_query] = handle
        self._next_query += 1
        return handle

    # -- streaming -------------------------------------------------------

    def process_point(
        self, relation: str, item: int, weight: float = 1.0
    ) -> None:
        """One arriving tuple (negative weight = deletion)."""
        self._require(relation)
        self._sketches[relation].update_point(item, weight)

    def process_interval(
        self, relation: str, low: int, high: int, weight: float = 1.0
    ) -> None:
        """One arriving interval, sketched in sub-linear time.

        On plane-covered schemes (the EH3 default) the interval is
        decomposed once and lands on every counter in one batched pass.
        """
        self._require(relation)
        self._sketches[relation].update_interval((low, high), weight)

    def process_points(self, relation: str, items, weights=None) -> None:
        """A batch of arriving tuples, one plane pass for the whole grid."""
        self._require(relation)
        self._sketches[relation].update_points(items, weights)

    def process_intervals(self, relation: str, intervals, weights=None) -> None:
        """A batch of arriving intervals: one decomposition, one plane pass."""
        self._require(relation)
        self._sketches[relation].update_intervals(intervals, weights)

    def merge_sketch(self, relation: str, other: SketchMatrix) -> None:
        """Fold in a remote site's sketch of the same relation."""
        self._require(relation)
        self._sketches[relation] = self._sketches[relation].combined(other)

    # -- answers ---------------------------------------------------------

    def answer(self, handle: QueryHandle) -> float:
        """Current estimate for a registered query."""
        if self._queries.get(handle.identifier) is not handle:
            raise ValueError("unknown query handle")
        return estimate_product(
            self._sketches[handle.left], self._sketches[handle.right]
        )

    def sketch_of(self, relation: str) -> SketchMatrix:
        """The relation's live sketch (e.g. to ship to a coordinator)."""
        self._require(relation)
        return self._sketches[relation]

    def scheme_of(self, relation: str) -> SketchScheme:
        """The scheme backing a relation (to hand to new sites)."""
        self._require(relation)
        return self._schemes[self._groups[relation]]

    def memory_words(self) -> int:
        """Total counters held -- the paper's memory metric."""
        return sum(
            sketch.scheme.counters for sketch in self._sketches.values()
        )

    def relations(self) -> list[str]:
        """Registered relation names."""
        return list(self._domain_bits)

    def _require(self, relation: str) -> None:
        if relation not in self._domain_bits:
            raise ValueError(f"unknown relation {relation!r}")
