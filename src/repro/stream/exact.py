"""Exact reference aggregates -- the ground truth of every experiment.

These are the quantities sketches approximate, computed exactly from dense
frequency vectors or explicit geometry.  Deliberately simple, so that their
correctness is evident: every estimator test and every figure in the
benchmark harness compares against these.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

__all__ = [
    "join_size",
    "self_join_size",
    "l1_difference",
    "segments_intersecting",
    "segments_intersecting_brute",
    "region_frequency_sum",
]


def join_size(r: np.ndarray, s: np.ndarray) -> float:
    """``|R join S| = sum_i r_i s_i``."""
    r = np.asarray(r, dtype=np.float64)
    s = np.asarray(s, dtype=np.float64)
    if r.shape != s.shape:
        raise ValueError("frequency vectors must share a domain")
    return float(np.dot(r, s))


def self_join_size(r: np.ndarray) -> float:
    """``F2 = sum_i r_i^2``."""
    r = np.asarray(r, dtype=np.float64)
    return float(np.dot(r, r))


def l1_difference(a: np.ndarray, b: np.ndarray) -> float:
    """``sum_i |a_i - b_i|`` (Application 2's target quantity)."""
    a = np.asarray(a, dtype=np.float64)
    b = np.asarray(b, dtype=np.float64)
    if a.shape != b.shape:
        raise ValueError("vectors must share a domain")
    return float(np.abs(a - b).sum())


def segments_intersecting(
    first: Sequence[tuple[int, int]], second: Sequence[tuple[int, int]]
) -> int:
    """Number of intersecting segment pairs across two sets (Application 1).

    Segments are inclusive ``(low, high)`` pairs; two segments intersect
    iff ``max(lows) <= min(highs)``.  Counted by complement in
    O((m + n) log(m + n)): a pair does NOT intersect exactly when one
    segment ends strictly before the other starts.
    """
    firsts = np.asarray(first, dtype=np.int64)
    seconds = np.asarray(second, dtype=np.int64)
    if firsts.ndim != 2 or seconds.ndim != 2:
        raise ValueError("segment sets must be (count, 2) arrays")
    first_lows = np.sort(firsts[:, 0])
    first_highs = np.sort(firsts[:, 1])
    # For each s: segments of `first` entirely left of s (high < s.low),
    # and entirely right of s (low > s.high).
    left = np.searchsorted(first_highs, seconds[:, 0], side="left")
    right = len(firsts) - np.searchsorted(
        first_lows, seconds[:, 1], side="right"
    )
    disjoint = int(left.sum()) + int(right.sum())
    return len(firsts) * len(seconds) - disjoint


def segments_intersecting_brute(
    first: Sequence[tuple[int, int]], second: Sequence[tuple[int, int]]
) -> int:
    """Quadratic reference for :func:`segments_intersecting` (tests only)."""
    firsts = np.asarray(first, dtype=np.int64)
    seconds = np.asarray(second, dtype=np.int64)
    lows = np.maximum.outer(firsts[:, 0], seconds[:, 0])
    highs = np.minimum.outer(firsts[:, 1], seconds[:, 1])
    return int((lows <= highs).sum())


def region_frequency_sum(
    points: np.ndarray, rect: Sequence[tuple[int, int]]
) -> int:
    """Number of data points inside an axis-aligned rectangle.

    ``points`` is a ``(count, d)`` integer array; ``rect`` is one inclusive
    ``(low, high)`` pair per axis.  This is the numerator of Application
    3's average-frequency computation.
    """
    points = np.asarray(points, dtype=np.int64)
    if points.ndim != 2 or points.shape[1] != len(rect):
        raise ValueError("points must be (count, d) matching the rectangle")
    inside = np.ones(len(points), dtype=bool)
    for axis, (low, high) in enumerate(rect):
        inside &= (points[:, axis] >= low) & (points[:, axis] <= high)
    return int(inside.sum())
